//! Ablation benches for the design choices called out in DESIGN.md:
//! labeling builders, label compression, and R-tree loading strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsr_bench::Dataset;
use gsr_core::methods::{CandidateMode, DynamicThreeDReach, ScanMode, SocReach, SpaReachBfl};
use gsr_core::{RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::workload::WorkloadGen;
use gsr_geo::{Aabb, Point, Rect};
use gsr_graph::stats::DegreeBucket;
use gsr_index::{DynRTree, KdTree, QuadTree, RTree, UniformGrid};
use gsr_reach::bfl::BflIndex;
use gsr_reach::feline::FelineIndex;
use gsr_reach::grail::GrailIndex;
use gsr_reach::interval::{BuildOptions, Builder, IntervalLabeling};
use gsr_reach::pll::PllIndex;
use gsr_reach::Reachability;
use std::hint::black_box;
use std::time::Duration;

fn labeling_builders(c: &mut Criterion) {
    let ds = Dataset::small();
    let dag = ds.prep.dag();

    let mut group = c.benchmark_group("labeling_build");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    group.bench_function("bottom_up", |b| {
        b.iter(|| IntervalLabeling::build(black_box(dag)))
    });
    group.bench_function("paper_faithful", |b| {
        b.iter(|| {
            IntervalLabeling::build_with(
                black_box(dag),
                BuildOptions { builder: Builder::PaperFaithful, compress: true, ..BuildOptions::default() },
            )
        })
    });
    group.bench_function("uncompressed", |b| {
        b.iter(|| {
            IntervalLabeling::build_with(
                black_box(dag),
                BuildOptions { builder: Builder::BottomUp, compress: false, ..BuildOptions::default() },
            )
        })
    });
    group.finish();
}

fn rtree_loading(c: &mut Criterion) {
    let ds = Dataset::small();
    let entries: Vec<(Aabb<2>, u32)> = ds
        .prep
        .network()
        .spatial_vertices()
        .map(|(v, p)| (Aabb::from_point([p.x, p.y]), v))
        .collect();

    let mut group = c.benchmark_group("rtree_load");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    group.bench_with_input(BenchmarkId::new("bulk_str", entries.len()), &entries, |b, e| {
        b.iter(|| RTree::bulk_load(e.clone()))
    });
    group.bench_with_input(BenchmarkId::new("insert", entries.len()), &entries, |b, e| {
        b.iter(|| {
            let mut t = DynRTree::new();
            for (aabb, v) in e {
                t.insert(*aabb, *v);
            }
            t
        })
    });
    group.finish();
}

fn spatial_filters(c: &mut Criterion) {
    // R-tree vs uniform grid for the spatial range query of SpaReach.
    let ds = Dataset::small();
    let entries_tree: Vec<(Aabb<2>, u32)> = ds
        .prep
        .network()
        .spatial_vertices()
        .map(|(v, p)| (Aabb::from_point([p.x, p.y]), v))
        .collect();
    let entries_grid: Vec<(Point, u32)> =
        ds.prep.network().spatial_vertices().map(|(v, p)| (p, v)).collect();
    let tree = RTree::bulk_load(entries_tree);
    let grid = UniformGrid::bulk_load(ds.prep.space(), entries_grid.clone(), 16);
    let kd = KdTree::bulk_load(entries_grid.clone());
    let qt = QuadTree::bulk_load(ds.prep.space(), entries_grid);

    let space = ds.prep.space();
    let regions: Vec<Rect> = (0..64)
        .map(|i| {
            let f = i as f64 / 64.0;
            Rect::square(
                Point::new(
                    space.min_x + space.width() * (0.1 + 0.8 * f),
                    space.min_y + space.height() * (0.1 + 0.8 * ((i * 7) % 64) as f64 / 64.0),
                ),
                space.width() * 0.05,
            )
        })
        .collect();

    let mut group = c.benchmark_group("spatial_filter");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    group.bench_function("rtree_range", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for r in &regions {
                count += tree.count_in(&(*r).into());
            }
            black_box(count)
        })
    });
    group.bench_function("uniform_grid_range", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for r in &regions {
                count += grid.count_in(r);
            }
            black_box(count)
        })
    });
    group.bench_function("kdtree_range", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for r in &regions {
                count += kd.count_in(r);
            }
            black_box(count)
        })
    });
    group.bench_function("quadtree_range", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for r in &regions {
                count += qt.count_in(r);
            }
            black_box(count)
        })
    });
    group.finish();
}

fn greach_backends(c: &mut Criterion) {
    // Raw GReach latency of the four reachability back-ends.
    let ds = Dataset::small();
    let dag = ds.prep.dag();
    let ncomp = dag.num_vertices() as u64;
    let pairs: Vec<(u32, u32)> = (0..4096u64)
        .map(|i| {
            (
                (i.wrapping_mul(2654435761) % ncomp) as u32,
                (i.wrapping_mul(40503) % ncomp) as u32,
            )
        })
        .collect();

    let mut group = c.benchmark_group("greach_backend");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    let backends: Vec<(&str, Box<dyn Reachability>)> = vec![
        ("BFL", Box::new(BflIndex::build(dag))),
        ("INT", Box::new(IntervalLabeling::build(dag))),
        ("PLL", Box::new(PllIndex::build(dag))),
        ("FELINE", Box::new(FelineIndex::build(dag))),
        ("GRAIL", Box::new(GrailIndex::build(dag))),
    ];
    for (name, idx) in &backends {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in &pairs {
                    hits += idx.reaches(u, v) as usize;
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

fn fidelity_modes(c: &mut Criterion) {
    // The faithful vs optimized variants of SpaReach and SocReach.
    let ds = Dataset::small();
    let gen = WorkloadGen::new(&ds.prep);
    let workload = gen.extent_degree(5.0, DegreeBucket::PAPER_BUCKETS[0], 64, 1);

    let variants: Vec<(&str, Box<dyn RangeReachIndex>)> = vec![
        (
            "spareach_materialize",
            Box::new(SpaReachBfl::build(&ds.prep, SccSpatialPolicy::Replicate)),
        ),
        (
            "spareach_streaming",
            Box::new(
                SpaReachBfl::build(&ds.prep, SccSpatialPolicy::Replicate)
                    .with_candidate_mode(CandidateMode::Streaming),
            ),
        ),
        ("socreach_per_post", Box::new(SocReach::build_with(&ds.prep, ScanMode::PerPost))),
        ("socreach_compacted", Box::new(SocReach::build_with(&ds.prep, ScanMode::Compacted))),
    ];

    let mut group = c.benchmark_group("fidelity_modes");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    for (name, idx) in &variants {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for (v, r) in &workload.queries {
                    hits += idx.query(*v, black_box(r)) as usize;
                }
                hits
            })
        });
    }
    group.finish();
}

fn dynamic_updates(c: &mut Criterion) {
    // Incremental maintenance (Section 8 future work): the cost of one
    // streamed check-in (new venue + edge) vs rebuilding the whole index.
    let ds = Dataset::small();

    let mut group = c.benchmark_group("dynamic_updates");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    group.bench_function("checkin_batch_100", |b| {
        b.iter_batched(
            || DynamicThreeDReach::build(&ds.prep),
            |mut idx| {
                let user = idx.add_user();
                for i in 0..100u32 {
                    let p = gsr_geo::Point::new((i % 32) as f64 * 30.0, (i / 32) as f64 * 30.0);
                    let venue = idx.add_venue(p);
                    idx.add_checkin(user, venue).expect("check-ins never cycle");
                }
                idx
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            black_box(gsr_core::methods::ThreeDReach::build(
                &ds.prep,
                gsr_core::SccSpatialPolicy::Replicate,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    labeling_builders,
    rtree_loading,
    spatial_filters,
    greach_backends,
    fidelity_modes,
    dynamic_updates
);
criterion_main!(benches);
