//! Criterion bench for Figure 5: non-MBR vs MBR SCC policy (SpaReach-INT).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsr_bench::{Dataset, MethodKind};
use gsr_core::SccSpatialPolicy;
use gsr_datagen::workload::WorkloadGen;
use gsr_graph::stats::DegreeBucket;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let ds = Dataset::small();
    let gen = WorkloadGen::new(&ds.prep);
    let bucket = DegreeBucket::PAPER_BUCKETS[0];
    let workload = gen.extent_degree(5.0, bucket, 64, 1);

    let mut group = c.benchmark_group("fig5_scc_policy");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
        let idx = MethodKind::SpaReachInt.build(&ds.prep, policy);
        group.bench_with_input(
            BenchmarkId::new("SpaReach-INT", format!("{policy:?}")),
            &workload,
            |b, w| {
                b.iter(|| {
                    let mut hits = 0;
                    for (v, r) in &w.queries {
                        hits += idx.query(*v, black_box(r)) as usize;
                    }
                    hits
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
