//! Criterion bench for Figure 6: SpaReach-BFL vs SpaReach-INT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsr_bench::{Dataset, MethodKind};
use gsr_core::SccSpatialPolicy;
use gsr_datagen::workload::WorkloadGen;
use gsr_graph::stats::DegreeBucket;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let ds = Dataset::small();
    let gen = WorkloadGen::new(&ds.prep);
    let bucket = DegreeBucket::PAPER_BUCKETS[0];

    let mut group = c.benchmark_group("fig6_spareach");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    for method in [MethodKind::SpaReachBfl, MethodKind::SpaReachInt] {
        let idx = method.build(&ds.prep, SccSpatialPolicy::Replicate);
        for extent in [1.0, 5.0, 20.0] {
            let workload = gen.extent_degree(extent, bucket, 64, 1);
            group.bench_with_input(
                BenchmarkId::new(method.name(), format!("extent={extent}%")),
                &workload,
                |b, w| {
                    b.iter(|| {
                        let mut hits = 0;
                        for (v, r) in &w.queries {
                            hits += idx.query(*v, black_box(r)) as usize;
                        }
                        hits
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
