//! Criterion bench for Figure 7: the final method comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsr_bench::{Dataset, ALL_METHODS};
use gsr_core::SccSpatialPolicy;
use gsr_datagen::workload::WorkloadGen;
use gsr_graph::stats::DegreeBucket;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let ds = Dataset::small();
    let gen = WorkloadGen::new(&ds.prep);
    let bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    let workload = gen.extent_degree(5.0, bucket, 64, 1);

    let mut group = c.benchmark_group("fig7_methods");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    for method in ALL_METHODS {
        let idx = method.build(&ds.prep, SccSpatialPolicy::Replicate);
        group.bench_with_input(BenchmarkId::from_parameter(method.name()), &workload, |b, w| {
            b.iter(|| {
                let mut hits = 0;
                for (v, r) in &w.queries {
                    hits += idx.query(*v, black_box(r)) as usize;
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
