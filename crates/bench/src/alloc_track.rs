//! A counting global allocator for the benchmark harness.
//!
//! Every binary that links `gsr-bench` (the `repro` driver and the
//! integration suites that depend on it) routes heap traffic through
//! [`CountingAllocator`], which delegates to the system allocator and
//! bumps one relaxed atomic per allocation. The counter is what lets the
//! `hotpath` experiment and the zero-allocation tests assert that the
//! steady-state query kernels never touch the heap.
//!
//! The counter is process-global: concurrent threads all feed the same
//! number. Callers that want a per-workload delta must measure on an
//! otherwise-quiet process (the `repro` driver runs the allocation pass
//! single-threaded for exactly this reason).
//!
//! This is the one module in the crate that needs `unsafe`: implementing
//! [`GlobalAlloc`] is inherently unsafe. Every unsafe block is a direct
//! delegation to [`System`] with the caller's own contract.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocations observed since process start (`alloc`, `alloc_zeroed`, and
/// `realloc` calls; `dealloc` is not counted).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The system allocator plus a relaxed allocation counter.
pub struct CountingAllocator;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter update has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded under the caller's `GlobalAlloc` contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded under the caller's `GlobalAlloc` contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded under the caller's `GlobalAlloc` contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded under the caller's `GlobalAlloc` contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Total heap allocations performed by this process so far.
///
/// Take a reading before and after a measured region and subtract; the
/// difference is exact on a quiet process and an upper bound when other
/// threads are running.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_advances_on_heap_allocation() {
        let before = allocation_count();
        let v: Vec<u64> = std::hint::black_box((0..64).collect());
        assert!(allocation_count() > before, "a fresh Vec must be counted");
        drop(v);
    }

    #[test]
    fn pure_arithmetic_does_not_advance_the_counter() {
        // Warm up: the assert machinery itself must not allocate lazily
        // during the measured window.
        let mut acc = 0u64;
        let before = allocation_count();
        for i in 0..1000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let after = allocation_count();
        // Other test threads may allocate concurrently; on a quiet run
        // this is exactly zero, so allow only a tiny cross-thread margin.
        assert!(after - before < 64, "arithmetic loop allocated {} times", after - before);
    }
}
