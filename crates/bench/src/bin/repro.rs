//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! repro [EXPERIMENT..] [--scale S] [--queries N] [--seed K] [--threads T] [--csv]
//!
//! EXPERIMENT: table3 table4 table5 table6 fig5 fig6 fig7 all (default: all)
//! --scale    dataset scale; 1.0 ~ 1% of the paper's sizes (default 1.0)
//! --queries  queries per measurement point (default 1000, as in the paper)
//! --seed     workload RNG seed
//! --threads  workers for index construction (0 = machine parallelism)
//! --csv      additionally print each table as CSV
//!
//! The `loadtest` experiment (not part of `all`: it spins up a real TCP
//! server, sweeps the offered rate, then floods past `--max-conns` to
//! prove admission control sheds cleanly) adds:
//!
//! --rate         offered rate in queries/second (default 1000)
//! --clients      concurrent pipelined TCP clients (default 4)
//! --duration-ms  per-rate-step duration (default 1000)
//! --sweep        sweep the rate geometrically until p99 saturates
//! --cache-entries  server result-cache capacity (default 4096; 0 = off)
//! --shards       also sweep a second server holding an N-shard router,
//!                recorded side by side in BENCH_loadtest.json
//!
//! The `shard` experiment (also not part of `all`) partitions the
//! Yelp-analog dataset into 1/2/4/8 spatial tiles, routes the workload
//! through the MBR-pruned scatter-gather ShardedIndex, verifies every
//! answer against a single-index oracle, and writes BENCH_shard.json.
//! ```

use gsr_bench::experiments;
use gsr_bench::table::TextTable;
use gsr_bench::{Config, Dataset};
use std::collections::BTreeSet;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro [table3|..|fig7|backends|ablations|analysis|latency|throughput|hotpath|memory|parbuild|snapshot|loadtest|chaos|shard|all]... \
         [--scale S] [--queries N] [--seed K] [--threads T] [--csv] \
         [--rate QPS] [--clients K] [--duration-ms MS] [--sweep] [--cache-entries N] [--shards N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = Config::default();
    let mut lt_opts = gsr_bench::loadtest::LoadtestOptions::default();
    let mut experiments_wanted: BTreeSet<String> = BTreeSet::new();
    let mut csv = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                cfg.scale = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--queries" => {
                cfg.queries = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                cfg.seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--threads" => {
                cfg.threads = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--rate" => {
                lt_opts.rate_qps =
                    args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--clients" => {
                lt_opts.clients =
                    args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--duration-ms" => {
                lt_opts.duration_ms =
                    args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--cache-entries" => {
                lt_opts.cache_entries =
                    args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--shards" => {
                lt_opts.shards =
                    args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--sweep" => lt_opts.sweep = true,
            "--csv" => csv = true,
            "all" | "table3" | "table4" | "table5" | "table6" | "fig5" | "fig6" | "fig7"
            | "backends" | "ablations" | "analysis" | "latency" | "throughput" | "hotpath"
            | "memory" | "parbuild" | "forests" | "georeach" | "reduction" | "spatial"
            | "polarity" | "snapshot" | "loadtest" | "chaos" | "shard" => {
                experiments_wanted.insert(arg);
            }
            _ => usage(),
        }
    }
    if experiments_wanted.is_empty() || experiments_wanted.contains("all") {
        for e in [
            "table3", "table4", "table5", "table6", "fig5", "fig6", "fig7", "backends",
            "ablations", "analysis", "latency", "throughput", "hotpath", "memory",
            "parbuild", "forests", "georeach", "reduction", "spatial", "polarity", "snapshot",
        ] {
            experiments_wanted.insert(e.to_string());
        }
        experiments_wanted.remove("all");
    }

    let wanted = |name: &str| experiments_wanted.contains(name);
    let emit = |title: &str, table: &TextTable| {
        println!("== {title} ==");
        print!("{}", table.render());
        if csv {
            println!("--- csv ---");
            print!("{}", table.render_csv());
        }
        println!();
    };

    println!(
        "# Fast Geosocial Reachability Queries — reproduction harness\n\
         # scale={} queries={} seed={} threads={}\n",
        cfg.scale, cfg.queries, cfg.seed, cfg.threads
    );

    let t0 = Instant::now();
    // `loadtest`, `chaos` and `shard` generate their own dataset (and the
    // first two spin up live servers); when only they are wanted, skip the
    // four-dataset generation.
    let needs_datasets =
        experiments_wanted.iter().any(|e| e != "loadtest" && e != "chaos" && e != "shard");
    let datasets = if needs_datasets {
        eprintln!("generating datasets (scale {}) ...", cfg.scale);
        let datasets = Dataset::load_all(&cfg);
        eprintln!("datasets ready in {:.1?}\n", t0.elapsed());
        datasets
    } else {
        Vec::new()
    };

    if wanted("table3") {
        emit("Table 3: dataset characteristics (synthetic analogs)", &experiments::table3(&datasets));
    }
    if wanted("table4") || wanted("table5") {
        let t = Instant::now();
        let (sizes, times) = experiments::tables_4_and_5(&datasets);
        eprintln!("built all indexes in {:.1?}", t.elapsed());
        if wanted("table4") {
            emit("Table 4: index size [MB] (MBR-based variant in parens)", &sizes);
        }
        if wanted("table5") {
            emit("Table 5: indexing time [secs] (MBR-based variant in parens)", &times);
        }
    }
    if wanted("table6") {
        emit("Table 6: interval-based labeling stats (# labels)", &experiments::table6(&datasets));
    }
    if wanted("fig5") {
        let (by_extent, by_degree) = experiments::fig5(&datasets, &cfg);
        emit("Figure 5a: SCC policy, avg query time [us], varying extent", &by_extent);
        emit("Figure 5b: SCC policy, avg query time [us], varying degree", &by_degree);
    }
    if wanted("fig6") {
        let (by_extent, by_degree) = experiments::fig6(&datasets, &cfg);
        emit("Figure 6a: best SpaReach, avg query time [us], varying extent", &by_extent);
        emit("Figure 6b: best SpaReach, avg query time [us], varying degree", &by_degree);
    }
    if wanted("fig7") {
        let (by_extent, by_degree) = experiments::fig7_extent_degree(&datasets, &cfg);
        emit("Figure 7a: all methods, avg query time [us], varying extent", &by_extent);
        emit("Figure 7b: all methods, avg query time [us], varying degree", &by_degree);
        let sel = experiments::fig7_selectivity(&datasets, &cfg);
        emit("Figure 7c: all methods, avg query time [us], varying selectivity", &sel);
    }

    if wanted("backends") {
        emit(
            "Extension: GReach back-ends behind SpaReach (BFL / INT / PLL / FELINE / GRAIL)",
            &experiments::backends(&datasets, &cfg),
        );
    }
    if wanted("ablations") {
        emit(
            "Extension: fidelity ablations (candidate materialization, descendant scan)",
            &experiments::ablations(&datasets, &cfg),
        );
    }
    if wanted("analysis") {
        emit(
            "Extension: average per-query work counters (the drivers of Figure 7)",
            &experiments::analysis(&datasets, &cfg),
        );
    }
    if wanted("polarity") {
        emit(
            "Extension: positive vs negative queries (the paper's motivating hard case)",
            &experiments::polarity(&datasets, &cfg),
        );
    }
    if wanted("spatial") {
        emit(
            "Extension: SpaReach spatial-index backends (Section 7.2 alternatives)",
            &experiments::spatial_backends(&datasets, &cfg),
        );
    }
    if wanted("reduction") {
        emit(
            "Extension: DAG reduction vs labeling size (related work, Section 7.1)",
            &experiments::reduction(&datasets),
        );
    }
    if wanted("georeach") {
        emit(
            "Extension: GeoReach construction-parameter sensitivity",
            &experiments::georeach_params(&datasets, &cfg),
        );
    }
    if wanted("forests") {
        emit(
            "Extension: spanning-forest strategies vs labeling size (Section 8 future work)",
            &experiments::forests(&datasets),
        );
    }
    if wanted("latency") {
        emit(
            "Extension: per-query latency percentiles (default workload)",
            &experiments::latency(&datasets, &cfg),
        );
    }
    if wanted("throughput") {
        emit(
            "Extension: multi-threaded throughput over one shared 3DReach index",
            &experiments::throughput(&datasets, &cfg),
        );
    }
    if wanted("hotpath") {
        let (table, points) = experiments::hotpath(&datasets, &cfg);
        emit("Extension: hot-path profile (latency, throughput, allocs/query)", &table);
        let json = experiments::hotpath_json(&cfg, &points);
        match std::fs::write("BENCH_hotpath.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_hotpath.json ({} results)", points.len()),
            Err(e) => eprintln!("cannot write BENCH_hotpath.json: {e}"),
        }
    }
    if wanted("memory") {
        let (table, points) = experiments::memory(&datasets, &cfg);
        emit("Extension: memory footprint, compact vs pre-compaction layouts", &table);
        let json = experiments::memory_json(&cfg, &points);
        match std::fs::write("BENCH_memory.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_memory.json ({} results)", points.len()),
            Err(e) => eprintln!("cannot write BENCH_memory.json: {e}"),
        }
    }
    if wanted("snapshot") {
        let (table, points) = experiments::snapshot(&datasets, &cfg);
        emit("Extension: cold-start rebuild vs snapshot load (gsr-store)", &table);
        let json = experiments::snapshot_json(&cfg, &points);
        match std::fs::write("BENCH_snapshot.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_snapshot.json ({} results)", points.len()),
            Err(e) => eprintln!("cannot write BENCH_snapshot.json: {e}"),
        }
    }
    if wanted("parbuild") {
        emit(
            "Extension: parallel index construction, measured wall-clock at 1/2/4 threads",
            &experiments::parallel_build(&datasets),
        );
    }
    if wanted("loadtest") {
        eprintln!(
            "loadtest: rate={} qps, clients={}, duration={} ms, sweep={}, cache_entries={}, \
             shards={}",
            lt_opts.rate_qps, lt_opts.clients, lt_opts.duration_ms, lt_opts.sweep,
            lt_opts.cache_entries, lt_opts.shards
        );
        match gsr_bench::loadtest::run_experiment(&cfg, &lt_opts) {
            Ok((table, steps, overload, sharded)) => {
                emit("Extension: open-loop latency-under-throughput sweep", &table);
                eprintln!(
                    "overload: {} flooders vs {} holders -> busy={} served={} \
                     (shed_rate={:.2}, server shed={} rejected={}) served_p99_us={}",
                    overload.flooders,
                    overload.holders,
                    overload.busy,
                    overload.flooder_served,
                    overload.shed_rate(),
                    overload.server_shed,
                    overload.server_rejected,
                    overload.served_p99_us,
                );
                if let Some(sh) = &sharded {
                    for (base, shard_step) in steps.iter().zip(&sh.steps) {
                        eprintln!(
                            "sharded x{}: {} qps offered -> single {:.0} qps p99={} us, \
                             sharded {:.0} qps p99={} us",
                            sh.shards,
                            base.offered_qps,
                            base.achieved_qps,
                            base.p99_us,
                            shard_step.achieved_qps,
                            shard_step.p99_us,
                        );
                    }
                }
                let json = gsr_bench::loadtest::loadtest_json(
                    &cfg,
                    &lt_opts,
                    &steps,
                    Some(&overload),
                    sharded.as_ref(),
                );
                match std::fs::write("BENCH_loadtest.json", &json) {
                    Ok(()) => eprintln!("wrote BENCH_loadtest.json ({} steps)", steps.len()),
                    Err(e) => eprintln!("cannot write BENCH_loadtest.json: {e}"),
                }
                let cache_enabled = lt_opts.cache_entries > 0;
                let mut failed = false;
                let sharded_steps = sharded.as_ref().map(|s| s.steps.as_slice()).unwrap_or(&[]);
                for (i, step) in steps.iter().chain(sharded_steps).enumerate() {
                    if let Err(e) = step.reconcile(cache_enabled) {
                        eprintln!(
                            "loadtest: step {} ({} qps) failed reconciliation: {e}",
                            i + 1,
                            step.offered_qps
                        );
                        failed = true;
                    }
                }
                if let Err(e) = overload.reconcile() {
                    eprintln!("loadtest: overload step failed reconciliation: {e}");
                    failed = true;
                }
                if failed {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("loadtest failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if wanted("shard") {
        match gsr_bench::shard::run_experiment(&cfg) {
            Ok((table, baseline_qps, points)) => {
                emit(
                    "Extension: spatial-tile sharding with MBR-pruned scatter-gather routing",
                    &table,
                );
                eprintln!("shard: single-index baseline {baseline_qps:.0} qps");
                let json = gsr_bench::shard::shard_json(&cfg, baseline_qps, &points);
                match std::fs::write("BENCH_shard.json", &json) {
                    Ok(()) => eprintln!("wrote BENCH_shard.json ({} shard counts)", points.len()),
                    Err(e) => eprintln!("cannot write BENCH_shard.json: {e}"),
                }
                let mut failed = false;
                for p in &points {
                    if p.mismatches > 0 {
                        eprintln!(
                            "shard: {} shards disagreed with the oracle on {} queries",
                            p.shards, p.mismatches
                        );
                        failed = true;
                    }
                    if p.shards > 1 && p.avg_shards_probed >= p.shards as f64 {
                        eprintln!(
                            "shard: no pruning at {} shards (avg probed {:.2})",
                            p.shards, p.avg_shards_probed
                        );
                        failed = true;
                    }
                }
                if failed {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("shard failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if wanted("chaos") {
        let ch_opts = gsr_bench::chaos::ChaosOptions::default();
        eprintln!(
            "chaos: attackers={} kill_points={} reloads={} clients={}",
            ch_opts.attackers, ch_opts.kill_points, ch_opts.reloads, ch_opts.clients
        );
        match gsr_bench::chaos::run_experiment(&cfg, &ch_opts) {
            Ok((table, scenarios)) => {
                emit("Extension: chaos harness — overload and failure drill", &table);
                let json = gsr_bench::chaos::chaos_json(&cfg, &ch_opts, &scenarios);
                match std::fs::write("BENCH_chaos.json", &json) {
                    Ok(()) => {
                        eprintln!("wrote BENCH_chaos.json ({} scenarios)", scenarios.len());
                    }
                    Err(e) => eprintln!("cannot write BENCH_chaos.json: {e}"),
                }
                let mut failed = false;
                for s in &scenarios {
                    if !s.passed() {
                        eprintln!(
                            "chaos: scenario {} handled only {}/{}: {}",
                            s.name, s.handled, s.attempts, s.detail
                        );
                        failed = true;
                    }
                }
                if failed {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("chaos failed: {e}");
                std::process::exit(1);
            }
        }
    }

    eprintln!("total: {:.1?}", t0.elapsed());
}
