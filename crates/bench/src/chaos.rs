//! **Extension**: a chaos harness that attacks a live `gsr-server` and a
//! snapshot store the way a hostile network and an unreliable machine
//! would, then audits the wreckage.
//!
//! The load generator ([`crate::loadtest`]) proves the server is *fast*
//! under well-behaved load; this module proves it is *unkillable* under
//! badly-behaved load. Each scenario mounts one class of attack against a
//! real TCP server (its own instance, so limits and counters are
//! scenario-local) and checks three things afterwards:
//!
//! 1. **Typed refusals** — every attack ends in the documented protocol
//!    error (`ERR 2 line too long`, `ERR 7 busy`, `ERR 7 idle timeout`),
//!    never a hang, a panic, or a silent drop.
//! 2. **Exact ledgers** — the driver's tally of refusals reconciles
//!    against the server's `STATS` counters (`shed=`, `rejected=`,
//!    `reloads=`), and the `live=` gauge returns to baseline, so no
//!    connection state leaks.
//! 3. **Correctness under fire** — queries answered *during* an attack
//!    (including concurrent hot `RELOAD`s) still match a freshly built
//!    in-process oracle.
//!
//! The storage scenarios need no server: a kill-during-save sweep plants
//! truncated staging files at ~100 byte offsets — exactly the debris a
//! `kill -9` leaves behind the atomic-rename save — and a corruption sweep
//! flips payload bytes; the previous snapshot must stay loadable and every
//! damaged file must fail with a typed error, never a panic and never
//! silently wrong data.
//!
//! `repro chaos` runs the full drill and exits nonzero if any scenario's
//! `handled` count falls short of its `attempts` — one unexplained
//! outcome fails the build.

use crate::harness::{Config, Dataset, MethodKind};
use crate::loadtest::{classify, control_roundtrip, stat_u64, ReplayPlan, ReplyOutcome};
use crate::table::TextTable;
use gsr_core::methods::ThreeDReach;
use gsr_core::{RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::workload::WorkloadGen;
use gsr_datagen::NetworkSpec;
use gsr_graph::stats::DegreeBucket;
use gsr_server::{QueryServer, ServerConfig};
use gsr_store::SnapshotIndex;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Knobs of the chaos drill; every scenario stays deterministic in its
/// *assertions* for any setting (counts scale, invariants do not).
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Attack connections per network scenario.
    pub attackers: usize,
    /// Truncation points of the kill-during-save sweep.
    pub kill_points: usize,
    /// Hot `RELOAD`s issued while query clients run.
    pub reloads: usize,
    /// Query clients kept running through the reload storm.
    pub clients: usize,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions { attackers: 8, kill_points: 100, reloads: 6, clients: 2 }
    }
}

/// One scenario's ledger. The scenario passes iff every attempt ended in
/// its expected, typed outcome.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name, stable for the JSON artifact.
    pub name: &'static str,
    /// Attack attempts mounted.
    pub attempts: u64,
    /// Attempts that ended in the expected typed outcome.
    pub handled: u64,
    /// Human-readable tally ("8/8 ERR 2, health ok", …).
    pub detail: String,
}

impl ScenarioResult {
    /// Whether every attempt was handled as specified.
    pub fn passed(&self) -> bool {
        self.handled == self.attempts
    }
}

/// Read timeout for attack sockets: generous, but finite, so a wedged
/// server fails the drill instead of hanging it.
const ATTACK_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// The request-line cap the line-length scenarios run against.
const CHAOS_MAX_LINE: usize = 256;

/// The idle reaper deadline the idle scenario runs against.
const CHAOS_IDLE_MS: u64 = 150;

fn base_config(threads: usize) -> ServerConfig {
    ServerConfig { threads, budget: None, ..ServerConfig::default() }
}

/// Spawns a scenario-local server and returns its address plus a stopper
/// that cancels and joins it.
fn spawn_server(
    index: std::sync::Arc<dyn RangeReachIndex>,
    config: ServerConfig,
) -> Result<(SocketAddr, impl FnOnce()), String> {
    let server = QueryServer::bind(("127.0.0.1", 0), index, config)
        .map_err(|e| format!("chaos: bind: {e}"))?;
    let addr = server.local_addr();
    let token = server.cancel_token();
    let handle = std::thread::spawn(move || server.run());
    Ok((addr, move || {
        token.cancel();
        let _ = handle.join();
    }))
}

/// One correct-answer probe on a fresh connection — the "is the server
/// still sane" check every attack scenario ends with.
fn health_probe(addr: SocketAddr, plan: &ReplayPlan) -> Result<(), String> {
    let reply = control_roundtrip(addr, &plan.lines[0])?;
    if classify(&reply, plan.expected[0]) == ReplyOutcome::Ok {
        Ok(())
    } else {
        Err(format!("health probe got {reply:?}"))
    }
}

fn connect(addr: SocketAddr) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("chaos connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ATTACK_READ_TIMEOUT));
    Ok(stream)
}

/// A connection that sends a query, awaits the correct answer, and then
/// *holds* — pinning one worker and one admission slot so flood scenarios
/// know exactly how many slots remain.
fn primed_holder(
    addr: SocketAddr,
    plan: &ReplayPlan,
    i: usize,
) -> Result<TcpStream, String> {
    let mut stream = connect(addr)?;
    let q = i % plan.len();
    stream
        .write_all(plan.lines[q].as_bytes())
        .map_err(|e| format!("holder {i}: write: {e}"))?;
    let clone = stream.try_clone().map_err(|e| format!("holder {i}: clone: {e}"))?;
    let mut line = String::new();
    BufReader::new(clone)
        .read_line(&mut line)
        .map_err(|e| format!("holder {i}: read: {e}"))?;
    if classify(line.trim_end(), plan.expected[q]) != ReplyOutcome::Ok {
        return Err(format!("holder {i}: wrong prime reply {line:?}"));
    }
    Ok(stream)
}

/// How a no-data knock (connect, immediate write-half close, read) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KnockOutcome {
    /// Turned away with `ERR 7 busy ...`.
    Busy,
    /// Admitted and closed with no reply (a worker saw the clean EOF).
    Eof,
}

/// Knocks on the server with an empty connection: sends only FIN, never
/// data, so the reply (or clean close) is delivered reliably even when the
/// server sheds at the door.
fn knock(addr: SocketAddr) -> Result<KnockOutcome, String> {
    let stream = connect(addr)?;
    let _ = stream.shutdown(Shutdown::Write);
    let mut line = String::new();
    let n = BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("knock read: {e}"))?;
    if n == 0 {
        return Ok(KnockOutcome::Eof);
    }
    let line = line.trim_end();
    if line.starts_with(&format!("ERR {} busy", gsr_server::proto::BUSY_ERR)) {
        Ok(KnockOutcome::Busy)
    } else {
        Err(format!("knock got unexpected reply {line:?}"))
    }
}

/// Polls `STATS` on a fresh control connection, retrying while the server
/// still sheds (flood scenarios read counters right after dropping their
/// holders, and the freed slots take a poll tick to come back).
fn stats_when_admitted(addr: SocketAddr) -> Result<String, String> {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let reply = control_roundtrip(addr, "STATS\n")?;
        if reply.starts_with("STATS ") {
            return Ok(reply);
        }
        if std::time::Instant::now() > deadline {
            return Err(format!("STATS never got through: {reply:?}"));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Oversize request lines: each attacker sends one complete line far over
/// the cap and must get `ERR 2 line too long` followed by a close.
fn oversize_lines(
    index: std::sync::Arc<dyn RangeReachIndex>,
    plan: &ReplayPlan,
    opts: &ChaosOptions,
) -> Result<ScenarioResult, String> {
    let mut config = base_config(2);
    config.max_line = CHAOS_MAX_LINE;
    let (addr, stop) = spawn_server(index, config)?;
    let want = format!("ERR 2 line too long (max {CHAOS_MAX_LINE} bytes)");
    let mut handled = 0u64;
    let payload = format!("REACH {}\n", "9".repeat(2 * CHAOS_MAX_LINE));
    for _ in 0..opts.attackers {
        if control_roundtrip(addr, &payload)? == want {
            handled += 1;
        }
    }
    let health = health_probe(addr, plan);
    stop();
    health?;
    Ok(ScenarioResult {
        name: "oversize-line",
        attempts: opts.attackers as u64,
        handled,
        detail: format!("{handled}/{} answered {want:?}, health ok", opts.attackers),
    })
}

/// Slow-loris writers: dribble an unterminated line past the cap in small
/// pauses. The server must refuse the line *while it is still being
/// assembled* — buffered bytes stay bounded and the socket closes.
fn slow_loris(
    index: std::sync::Arc<dyn RangeReachIndex>,
    plan: &ReplayPlan,
    opts: &ChaosOptions,
) -> Result<ScenarioResult, String> {
    let mut config = base_config(2);
    config.max_line = CHAOS_MAX_LINE;
    let (addr, stop) = spawn_server(index, config)?;
    let want = format!("ERR 2 line too long (max {CHAOS_MAX_LINE} bytes)");
    let attackers = opts.attackers.min(4);
    let mut handled = 0u64;
    for a in 0..attackers {
        let mut stream = connect(addr)?;
        // Five 64-byte dribbles: crosses the 256-byte cap mid-line, never
        // sends a newline, never stops politely.
        for _ in 0..5 {
            stream
                .write_all(&[b'a'; 64])
                .map_err(|e| format!("loris {a}: write: {e}"))?;
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut reply = String::new();
        stream
            .read_to_string(&mut reply)
            .map_err(|e| format!("loris {a}: read: {e}"))?;
        if reply.trim_end() == want {
            handled += 1;
        }
    }
    let health = health_probe(addr, plan);
    stop();
    health?;
    Ok(ScenarioResult {
        name: "slow-loris",
        attempts: attackers as u64,
        handled,
        detail: format!("{handled}/{attackers} refused mid-dribble, health ok"),
    })
}

/// Silent connections must be reaped by the idle timeout with a typed
/// reason, freeing their worker.
fn idle_reap(
    index: std::sync::Arc<dyn RangeReachIndex>,
    plan: &ReplayPlan,
    opts: &ChaosOptions,
) -> Result<ScenarioResult, String> {
    let mut config = base_config(2);
    config.idle_timeout = Some(Duration::from_millis(CHAOS_IDLE_MS));
    let (addr, stop) = spawn_server(index, config)?;
    let want = format!("ERR 7 idle timeout after {CHAOS_IDLE_MS} ms");
    let attackers = opts.attackers.min(3);
    let mut handled = 0u64;
    for a in 0..attackers {
        let stream = connect(addr)?;
        let mut reply = String::new();
        let mut reader = BufReader::new(stream);
        reader
            .read_to_string(&mut reply)
            .map_err(|e| format!("idler {a}: read: {e}"))?;
        if reply.trim_end() == want {
            handled += 1;
        }
    }
    let health = health_probe(addr, plan);
    stop();
    health?;
    Ok(ScenarioResult {
        name: "idle-reap",
        attempts: attackers as u64,
        handled,
        detail: format!("{handled}/{attackers} reaped with {want:?}, health ok"),
    })
}

/// Torn pipelines: each attacker first drops a connection mid-line with no
/// warning, then sends three queries plus a truncated fourth and
/// half-closes. The three complete queries must come back oracle-correct,
/// the torn tail must answer a typed `ERR`, and the server must stay
/// healthy throughout.
fn torn_pipelines(
    index: std::sync::Arc<dyn RangeReachIndex>,
    plan: &ReplayPlan,
    opts: &ChaosOptions,
) -> Result<ScenarioResult, String> {
    let (addr, stop) = spawn_server(index, base_config(2))?;
    let mut handled = 0u64;
    for a in 0..opts.attackers {
        {
            // Half-open abuse: a fragment, then vanish. Nothing to assert
            // on this socket — the health probe below is the assertion.
            let mut stream = connect(addr)?;
            let _ = stream.write_all(b"REACH 1 2");
        }
        let mut stream = connect(addr)?;
        let mut sent = String::new();
        let mut expected = Vec::new();
        for j in 0..3 {
            let q = (a * 3 + j) % plan.len();
            sent.push_str(&plan.lines[q]);
            expected.push(plan.expected[q]);
        }
        sent.push_str("REACH 1 2"); // torn: no newline, wrong arity
        stream.write_all(sent.as_bytes()).map_err(|e| format!("torn {a}: write: {e}"))?;
        let _ = stream.shutdown(Shutdown::Write);
        let mut replies = String::new();
        BufReader::new(stream)
            .read_to_string(&mut replies)
            .map_err(|e| format!("torn {a}: read: {e}"))?;
        let lines: Vec<&str> = replies.lines().collect();
        let answers_ok = lines.len() == 4
            && expected
                .iter()
                .zip(&lines)
                .all(|(&e, l)| classify(l, e) == ReplyOutcome::Ok)
            && lines[3].starts_with("ERR ");
        if answers_ok {
            handled += 1;
        }
    }
    let health = health_probe(addr, plan);
    stop();
    health?;
    Ok(ScenarioResult {
        name: "torn-pipeline",
        attempts: opts.attackers as u64,
        handled,
        detail: format!(
            "{handled}/{} pipelines answered 3 correct + typed ERR tail, health ok",
            opts.attackers
        ),
    })
}

/// Connection flood past `--max-conns`: with every admission slot pinned
/// by primed holders, every flooder must be turned away with `ERR 7 busy`,
/// and the server's `rejected=` counter must equal the driver's tally.
fn connection_flood(
    index: std::sync::Arc<dyn RangeReachIndex>,
    plan: &ReplayPlan,
    opts: &ChaosOptions,
) -> Result<ScenarioResult, String> {
    let slots = 3usize;
    let mut config = base_config(slots);
    config.max_conns = slots;
    let (addr, stop) = spawn_server(index, config)?;
    let run = || -> Result<(u64, u64, u64), String> {
        let mut holders = Vec::with_capacity(slots);
        for i in 0..slots {
            holders.push(primed_holder(addr, plan, i)?);
        }
        let mut busy = 0u64;
        for _ in 0..opts.attackers {
            if knock(addr)? == KnockOutcome::Busy {
                busy += 1;
            }
        }
        drop(holders);
        let stats = stats_when_admitted(addr)?;
        let refused = stat_u64(&stats, "shed")? + stat_u64(&stats, "rejected")?;
        let live = stat_u64(&stats, "live")?;
        Ok((busy, refused, live))
    };
    let outcome = run();
    let health = health_probe(addr, plan);
    stop();
    let (busy, refused, live) = outcome?;
    health?;
    // `live` includes the STATS control connection itself, so baseline
    // after the flood is exactly 1 — anything more is a leaked slot.
    let handled = if busy == refused && live == 1 { busy } else { 0 };
    Ok(ScenarioResult {
        name: "conn-flood",
        attempts: opts.attackers as u64,
        handled,
        detail: format!(
            "{busy}/{} busy replies, server refused {refused}, live back to {live}",
            opts.attackers
        ),
    })
}

/// Flood of the accept→worker queue: one worker, a one-deep pending
/// queue, and a held connection. The first flooder parks in the queue (and
/// ends in a clean EOF once the holder releases the worker); every flooder
/// after it must be shed with `ERR 7 busy`, counted under `shed=`.
fn queue_shed(
    index: std::sync::Arc<dyn RangeReachIndex>,
    plan: &ReplayPlan,
    opts: &ChaosOptions,
) -> Result<ScenarioResult, String> {
    let mut config = base_config(1);
    config.max_pending = 1;
    let (addr, stop) = spawn_server(index, config)?;
    let attempts = opts.attackers as u64;
    let run = || -> Result<(u64, u64, u64), String> {
        let holder = primed_holder(addr, plan, 0)?;
        let busy = AtomicU64::new(0);
        let eof = AtomicU64::new(0);
        let failures = std::thread::scope(|s| -> Result<u64, String> {
            let mut handles = Vec::with_capacity(opts.attackers);
            for _ in 0..opts.attackers {
                handles.push(s.spawn(|| knock(addr)));
            }
            // Let every knock reach the accept loop while the holder still
            // owns the only worker, then release it so the queued knock
            // drains to a clean EOF.
            std::thread::sleep(Duration::from_millis(100));
            drop(holder);
            let mut failures = 0u64;
            for h in handles {
                match h.join().map_err(|_| "queue_shed: knock panicked".to_string())? {
                    Ok(KnockOutcome::Busy) => {
                        busy.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(KnockOutcome::Eof) => {
                        eof.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => failures += 1,
                }
            }
            Ok(failures)
        })?;
        if failures > 0 {
            return Err(format!("queue_shed: {failures} knocks errored"));
        }
        let stats = stats_when_admitted(addr)?;
        Ok((
            busy.load(Ordering::Relaxed),
            eof.load(Ordering::Relaxed),
            stat_u64(&stats, "shed")?,
        ))
    };
    let outcome = run();
    let health = health_probe(addr, plan);
    stop();
    let (busy, eof, shed) = outcome?;
    health?;
    // Exactly one knock fit the one-deep queue; the rest were shed, and
    // the driver and server must agree on how many.
    let handled = if busy == shed && busy + eof == attempts && eof == 1 { attempts } else { 0 };
    Ok(ScenarioResult {
        name: "queue-shed",
        attempts,
        handled,
        detail: format!("{busy} shed (server says {shed}), {eof} drained to EOF"),
    })
}

/// Hot `RELOAD` storm under live query load: while clients hammer the
/// server and verify every answer against the oracle, a reloader swaps in
/// the snapshot over and over (plus one bogus path that must fail typed
/// and leave the old index serving). Afterwards the `reloads=` counter,
/// the query ledger, and the single expected protocol error must all
/// reconcile.
fn reload_storm(
    index: std::sync::Arc<dyn RangeReachIndex>,
    plan: &ReplayPlan,
    snap_path: &Path,
    opts: &ChaosOptions,
) -> Result<ScenarioResult, String> {
    let mut config = base_config(opts.clients + 2);
    config.cache_entries = 256;
    let (addr, stop) = spawn_server(index, config)?;
    let run = || -> Result<(u64, u64, u64, String), String> {
        let stop_flag = AtomicBool::new(false);
        let correct = AtomicU64::new(0);
        let wrong = AtomicU64::new(0);
        let reloads_ok = std::thread::scope(|s| -> Result<u64, String> {
            let mut clients = Vec::with_capacity(opts.clients);
            for c in 0..opts.clients {
                let stop_flag = &stop_flag;
                let correct = &correct;
                let wrong = &wrong;
                clients.push(s.spawn(move || -> Result<(), String> {
                    let mut stream = connect(addr)?;
                    let clone =
                        stream.try_clone().map_err(|e| format!("client {c}: clone: {e}"))?;
                    let mut reader = BufReader::new(clone);
                    let mut line = String::new();
                    let mut q = c;
                    while !stop_flag.load(Ordering::Relaxed) {
                        let i = q % plan.len();
                        stream
                            .write_all(plan.lines[i].as_bytes())
                            .map_err(|e| format!("client {c}: write: {e}"))?;
                        line.clear();
                        let n = reader
                            .read_line(&mut line)
                            .map_err(|e| format!("client {c}: read: {e}"))?;
                        if n == 0 {
                            return Err(format!("client {c}: server closed mid-storm"));
                        }
                        if classify(line.trim_end(), plan.expected[i]) == ReplyOutcome::Ok {
                            correct.fetch_add(1, Ordering::Relaxed);
                        } else {
                            wrong.fetch_add(1, Ordering::Relaxed);
                        }
                        q += 1;
                    }
                    Ok(())
                }));
            }
            let reload_line = format!("RELOAD {}\n", snap_path.display());
            let mut reloads_ok = 0u64;
            for _ in 0..opts.reloads {
                std::thread::sleep(Duration::from_millis(15));
                let reply = control_roundtrip(addr, &reload_line)?;
                if reply.starts_with("OK reload index_bytes=") {
                    reloads_ok += 1;
                } else {
                    return Err(format!("RELOAD failed mid-storm: {reply:?}"));
                }
            }
            // A reload that cannot load must leave the old index serving.
            let bogus = control_roundtrip(addr, "RELOAD /nonexistent/chaos.snap\n")?;
            if !bogus.starts_with("ERR ") {
                return Err(format!("bogus RELOAD was not refused: {bogus:?}"));
            }
            stop_flag.store(true, Ordering::Relaxed);
            for h in clients {
                h.join().map_err(|_| "reload_storm: client panicked".to_string())??;
            }
            Ok(reloads_ok)
        })?;
        let stats = stats_when_admitted(addr)?;
        let served = correct.load(Ordering::Relaxed) + wrong.load(Ordering::Relaxed);
        let ledger = format!(
            "queries={} vs served={}, reloads={} vs ok={}, errors={}",
            stat_u64(&stats, "queries")?,
            served,
            stat_u64(&stats, "reloads")?,
            reloads_ok,
            stat_u64(&stats, "errors")?,
        );
        let balanced = stat_u64(&stats, "queries")? == served
            && stat_u64(&stats, "reloads")? == reloads_ok
            && reloads_ok == opts.reloads as u64
            && stat_u64(&stats, "errors")? == 1; // exactly the bogus RELOAD
        Ok((correct.load(Ordering::Relaxed), wrong.load(Ordering::Relaxed), balanced as u64, ledger))
    };
    let outcome = run();
    let health = health_probe(addr, plan);
    stop();
    let (correct, wrong, balanced, ledger) = outcome?;
    health?;
    let attempts = correct + wrong;
    let handled = if wrong == 0 && balanced == 1 { attempts } else { 0 };
    Ok(ScenarioResult {
        name: "reload-storm",
        attempts,
        handled,
        detail: format!("{correct} correct / {wrong} wrong under reload; {ledger}"),
    })
}

/// Kill-during-save sweep: the atomic-rename save means a kill at *any*
/// byte leaves only a truncated staging file beside an intact snapshot.
/// For ~`kill_points` truncation offsets, plant exactly that debris and
/// require: the target still loads, the debris itself fails typed, and a
/// fresh save sweeps the debris away.
fn kill_during_save(
    snap: &SnapshotIndex,
    dir: &Path,
    opts: &ChaosOptions,
) -> Result<ScenarioResult, String> {
    let target = dir.join("kill.snap");
    gsr_store::save_to_path(&target, snap).map_err(|e| format!("kill sweep: seed save: {e}"))?;
    let mut bytes = Vec::new();
    gsr_store::save(&mut bytes, snap).map_err(|e| format!("kill sweep: render: {e}"))?;
    let staging = gsr_store::staging_path(&target);
    let points = opts.kill_points.max(2);
    let mut handled = 0u64;
    for i in 0..points {
        // Strictly truncated: offsets span [0, len), never a full copy.
        let cut = i * (bytes.len() - 1) / (points - 1);
        std::fs::write(&staging, &bytes[..cut])
            .map_err(|e| format!("kill sweep: plant debris: {e}"))?;
        let target_survives = gsr_store::load_from_path(&target).is_ok();
        let debris_refused = gsr_store::load_from_path(&staging).is_err();
        let resave = gsr_store::save_to_path(&target, snap).is_ok() && !staging.exists();
        if target_survives && debris_refused && resave {
            handled += 1;
        }
    }
    Ok(ScenarioResult {
        name: "kill-during-save",
        attempts: points as u64,
        handled,
        detail: format!(
            "{handled}/{points} truncation offsets over {} bytes left the snapshot intact",
            bytes.len()
        ),
    })
}

/// Bit-rot sweep: flipping any payload byte must make the snapshot fail
/// its checksum with a typed error — never load silently wrong.
fn snapshot_corruption(snap: &SnapshotIndex, dir: &Path) -> Result<ScenarioResult, String> {
    let mut bytes = Vec::new();
    gsr_store::save(&mut bytes, snap).map_err(|e| format!("corruption sweep: render: {e}"))?;
    let path = dir.join("corrupt.snap");
    let points = 16usize.min(bytes.len().saturating_sub(16));
    let mut handled = 0u64;
    for i in 0..points {
        // Spread flips across the payload, clear of nothing — any byte
        // is load-bearing once the checksum covers the file.
        let pos = 8 + i * (bytes.len() - 9) / points.max(1);
        let mut damaged = bytes.clone();
        damaged[pos] ^= 0x40;
        std::fs::write(&path, &damaged)
            .map_err(|e| format!("corruption sweep: write: {e}"))?;
        if gsr_store::load_from_path(&path).is_err() {
            handled += 1;
        }
    }
    Ok(ScenarioResult {
        name: "snapshot-corruption",
        attempts: points as u64,
        handled,
        detail: format!("{handled}/{points} single-byte flips refused with a typed error"),
    })
}

/// Runs the whole drill: builds the dataset, oracle, and serving index
/// once, then mounts every scenario (each on its own server instance) and
/// returns the table plus per-scenario ledgers. Infrastructure failures
/// (bind errors, wedged sockets) surface as `Err`; attack outcomes that
/// merely differ from the specification show up as `handled < attempts`.
pub fn run_experiment(
    cfg: &Config,
    opts: &ChaosOptions,
) -> Result<(TextTable, Vec<ScenarioResult>), String> {
    let ds = Dataset::from_spec(&NetworkSpec::yelp(cfg.scale));
    let gen = WorkloadGen::new(&ds.prep);
    let workload = gen.extent_degree(
        crate::experiments::DEFAULT_EXTENT,
        DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX],
        cfg.queries.max(1),
        cfg.seed,
    );
    let oracle = MethodKind::ThreeDReach.build(&ds.prep, SccSpatialPolicy::Replicate);
    let plan = ReplayPlan::from_workload(&workload, oracle.as_ref());

    let built = ThreeDReach::build_threaded(&ds.prep, SccSpatialPolicy::Replicate, cfg.threads);
    let snap = SnapshotIndex::ThreeDReach(built.clone());
    let index: std::sync::Arc<dyn RangeReachIndex> = std::sync::Arc::new(built);

    let dir = std::env::temp_dir().join("gsr_chaos");
    std::fs::create_dir_all(&dir).map_err(|e| format!("chaos: mkdir: {e}"))?;
    let snap_path = dir.join("reload.snap");
    gsr_store::save_to_path(&snap_path, &snap).map_err(|e| format!("chaos: save: {e}"))?;

    let scenarios = vec![
        oversize_lines(index.clone(), &plan, opts)?,
        slow_loris(index.clone(), &plan, opts)?,
        idle_reap(index.clone(), &plan, opts)?,
        torn_pipelines(index.clone(), &plan, opts)?,
        connection_flood(index.clone(), &plan, opts)?,
        queue_shed(index.clone(), &plan, opts)?,
        reload_storm(index.clone(), &plan, &snap_path, opts)?,
        kill_during_save(&snap, &dir, opts)?,
        snapshot_corruption(&snap, &dir)?,
    ];
    std::fs::remove_dir_all(&dir).ok();

    let mut table = TextTable::new(["scenario", "attempts", "handled", "verdict", "detail"]);
    for s in &scenarios {
        table.row([
            s.name.to_string(),
            s.attempts.to_string(),
            s.handled.to_string(),
            if s.passed() { "ok".to_string() } else { "FAIL".to_string() },
            s.detail.clone(),
        ]);
    }
    Ok((table, scenarios))
}

/// Renders the drill as the `BENCH_chaos.json` artifact.
pub fn chaos_json(cfg: &Config, opts: &ChaosOptions, scenarios: &[ScenarioResult]) -> String {
    let mut s = String::from("{\n  \"experiment\": \"chaos\",\n");
    s.push_str(&format!(
        "  \"scale\": {}, \"queries\": {}, \"seed\": {}, \"attackers\": {}, \
         \"kill_points\": {}, \"reloads\": {},\n  \"scenarios\": [\n",
        cfg.scale, cfg.queries, cfg.seed, opts.attackers, opts.kill_points, opts.reloads,
    ));
    for (i, r) in scenarios.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"attempts\": {}, \"handled\": {}, \
             \"passed\": {}, \"detail\": {:?}}}{}\n",
            r.name,
            r.attempts,
            r.handled,
            r.passed(),
            r.detail,
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_passes_only_when_every_attempt_is_handled() {
        let mut r = ScenarioResult {
            name: "t",
            attempts: 8,
            handled: 8,
            detail: "all".into(),
        };
        assert!(r.passed());
        r.handled = 7;
        assert!(!r.passed());
    }

    #[test]
    fn json_shape_is_stable() {
        let cfg = Config::default();
        let opts = ChaosOptions::default();
        let rows = vec![
            ScenarioResult { name: "a", attempts: 2, handled: 2, detail: "fine".into() },
            ScenarioResult { name: "b", attempts: 3, handled: 1, detail: "2 leaked".into() },
        ];
        let json = chaos_json(&cfg, &opts, &rows);
        assert!(json.contains("\"experiment\": \"chaos\""));
        assert!(json.contains("\"name\": \"a\", \"attempts\": 2, \"handled\": 2, \"passed\": true"));
        assert!(json.contains("\"passed\": false"));
        assert!(json.ends_with("  ]\n}\n"));
    }
}
