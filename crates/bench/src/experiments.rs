//! One driver per table/figure of the paper's evaluation.

use crate::harness::{
    run_workload, run_workload_latencies, run_workload_parallel, Config, Dataset, MethodKind,
    ALL_METHODS, FINAL_METHODS,
};
use crate::table::{fmt_mb, fmt_micros, fmt_secs, TextTable};
use gsr_core::methods::{
    CandidateMode, GeoReach, GeoReachParams, ScanMode, SocReach, SpaReach, SpaReachBfl,
    SpaReachFeline, SpaReachFilterParts, SpaReachGrail, SpaReachInt, SpaReachParts, SpaReachPll,
    SpatialBackend, ThreeDReach, ThreeDReachRev,
};
use gsr_core::{QueryCost, RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::workload::{WorkloadGen, PAPER_EXTENTS_PCT, PAPER_SELECTIVITIES_PCT};
use gsr_graph::dfs::ForestStrategy;
use gsr_graph::reduction::{equivalence_reduction, transitive_reduction};
use gsr_graph::stats::DegreeBucket;
use gsr_reach::bfl::BflIndex;
use gsr_reach::feline::FelineIndex;
use gsr_reach::grail::GrailIndex;
use gsr_reach::interval::{BuildOptions, Builder, IntervalLabeling};
use gsr_reach::pll::PllIndex;
use gsr_reach::Reachability;

/// The default extent used while sweeping the degree (bold 5% in the paper).
pub const DEFAULT_EXTENT: f64 = 5.0;

/// **Table 3**: characteristics of the (synthetic analogs of the) datasets.
pub fn table3(datasets: &[Dataset]) -> TextTable {
    let mut t = TextTable::new([
        "dataset",
        "# users",
        "# venues",
        "|V|",
        "|E|",
        "|P|",
        "# SCCs",
        "# vertices in largest SCC",
    ]);
    for ds in datasets {
        let s = ds.prep.stats();
        t.row([
            ds.name.to_string(),
            s.users.to_string(),
            s.venues.to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
            s.points.to_string(),
            s.sccs.to_string(),
            s.largest_scc.to_string(),
        ]);
    }
    t
}

/// **Tables 4 and 5**: index size [MB] and indexing time [s] per method and
/// dataset; the MBR-based SCC variant in parentheses where it exists.
pub fn tables_4_and_5(datasets: &[Dataset]) -> (TextTable, TextTable) {
    let header: Vec<String> = std::iter::once("dataset".to_string())
        .chain(ALL_METHODS.iter().map(|m| m.name().to_string()))
        .collect();
    let mut sizes = TextTable::new(header.clone());
    let mut times = TextTable::new(header);

    for ds in datasets {
        let mut size_row = vec![ds.name.to_string()];
        let mut time_row = vec![ds.name.to_string()];
        for method in ALL_METHODS {
            let (idx, build) = method.timed_build(&ds.prep, SccSpatialPolicy::Replicate);
            let mut size_cell = fmt_mb(idx.index_bytes());
            let mut time_cell = fmt_secs(build);
            if method.supports_mbr() {
                let (mbr_idx, mbr_build) = method.timed_build(&ds.prep, SccSpatialPolicy::Mbr);
                size_cell = format!("{size_cell} ({})", fmt_mb(mbr_idx.index_bytes()));
                time_cell = format!("{time_cell} ({})", fmt_secs(mbr_build));
            }
            size_row.push(size_cell);
            time_row.push(time_cell);
        }
        sizes.row(size_row);
        times.row(time_row);
    }
    (sizes, times)
}

/// **Table 6**: number of labels in the interval-based labeling, compressed
/// vs uncompressed, for the forward and reversed schemes.
pub fn table6(datasets: &[Dataset]) -> TextTable {
    let mut t = TextTable::new([
        "dataset",
        "fwd uncompressed",
        "fwd compressed",
        "rev uncompressed",
        "rev compressed",
    ]);
    for ds in datasets {
        let dag = ds.prep.dag();
        let rev = dag.reversed();
        let count = |g: &gsr_graph::DiGraph, compress: bool| {
            IntervalLabeling::build_with(
                g,
                BuildOptions { builder: Builder::BottomUp, compress, ..BuildOptions::default() },
            )
            .num_labels()
        };
        t.row([
            ds.name.to_string(),
            count(dag, false).to_string(),
            count(dag, true).to_string(),
            count(&rev, false).to_string(),
            count(&rev, true).to_string(),
        ]);
    }
    t
}

/// Shared sweep driver: average query time (µs) for each method/policy
/// combination, over the extent sweep (at the default degree bucket) and
/// the degree sweep (at the default extent).
fn sweep(
    datasets: &[Dataset],
    cfg: &Config,
    methods: &[(MethodKind, SccSpatialPolicy, String)],
) -> (TextTable, TextTable) {
    let mut header = vec!["dataset".to_string(), "extent %".to_string()];
    header.extend(methods.iter().map(|(_, _, label)| label.clone()));
    let mut by_extent = TextTable::new(header);

    let mut header = vec!["dataset".to_string(), "degree".to_string()];
    header.extend(methods.iter().map(|(_, _, label)| label.clone()));
    let mut by_degree = TextTable::new(header);

    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];

    for ds in datasets {
        let built: Vec<_> =
            methods.iter().map(|(m, policy, _)| m.build(&ds.prep, *policy)).collect();
        let gen = WorkloadGen::new(&ds.prep);

        for extent in PAPER_EXTENTS_PCT {
            let w = gen.extent_degree(extent, default_bucket, cfg.queries, cfg.seed);
            let mut row = vec![ds.name.to_string(), format!("{extent}")];
            for idx in &built {
                row.push(fmt_micros(run_workload(idx.as_ref(), &w).avg_micros));
            }
            by_extent.row(row);
        }

        for bucket in DegreeBucket::PAPER_BUCKETS {
            let w = gen.extent_degree(DEFAULT_EXTENT, bucket, cfg.queries, cfg.seed);
            let mut row = vec![ds.name.to_string(), bucket.label()];
            for idx in &built {
                row.push(fmt_micros(run_workload(idx.as_ref(), &w).avg_micros));
            }
            by_degree.row(row);
        }
    }
    (by_extent, by_degree)
}

/// **Figure 5**: handling spatial SCCs — the non-MBR (replicate) variant of
/// SpaReach-INT against the MBR-based variant, varying query extent and
/// query-vertex degree.
pub fn fig5(datasets: &[Dataset], cfg: &Config) -> (TextTable, TextTable) {
    let methods = vec![
        (MethodKind::SpaReachInt, SccSpatialPolicy::Replicate, "SpaReach-INT".to_string()),
        (MethodKind::SpaReachInt, SccSpatialPolicy::Mbr, "SpaReach-INT (MBR)".to_string()),
    ];
    sweep(datasets, cfg, &methods)
}

/// **Figure 6**: determining the best spatial-first method — SpaReach-BFL
/// vs SpaReach-INT on all four datasets.
pub fn fig6(datasets: &[Dataset], cfg: &Config) -> (TextTable, TextTable) {
    let methods = vec![
        (MethodKind::SpaReachBfl, SccSpatialPolicy::Replicate, "SpaReach-BFL".to_string()),
        (MethodKind::SpaReachInt, SccSpatialPolicy::Replicate, "SpaReach-INT".to_string()),
    ];
    sweep(datasets, cfg, &methods)
}

/// **Figure 7** (extent & degree panels): the final comparison —
/// SpaReach-BFL, GeoReach, SocReach, 3DReach and 3DReach-REV.
pub fn fig7_extent_degree(datasets: &[Dataset], cfg: &Config) -> (TextTable, TextTable) {
    let methods: Vec<_> = FINAL_METHODS
        .iter()
        .map(|m| (*m, SccSpatialPolicy::Replicate, m.name().to_string()))
        .collect();
    sweep(datasets, cfg, &methods)
}

/// **Figure 7** (selectivity panel): the same methods swept over the
/// spatial selectivity of the query region.
pub fn fig7_selectivity(datasets: &[Dataset], cfg: &Config) -> TextTable {
    let mut header = vec!["dataset".to_string(), "selectivity %".to_string()];
    header.extend(FINAL_METHODS.iter().map(|m| m.name().to_string()));
    let mut t = TextTable::new(header);

    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    for ds in datasets {
        let built: Vec<_> = FINAL_METHODS
            .iter()
            .map(|m| m.build(&ds.prep, SccSpatialPolicy::Replicate))
            .collect();
        let gen = WorkloadGen::new(&ds.prep);
        for sel in PAPER_SELECTIVITIES_PCT {
            let w = gen.selectivity(sel, default_bucket, cfg.queries, cfg.seed);
            let mut row = vec![ds.name.to_string(), format!("{sel}")];
            for idx in &built {
                row.push(fmt_micros(run_workload(idx.as_ref(), &w).avg_micros));
            }
            t.row(row);
        }
    }
    t
}

/// **Extension (beyond the paper's figures)**: the four `GReach` back-ends
/// behind SpaReach — BFL, interval labeling, PLL and FELINE (the latter two
/// are the variants the original GeoReach paper evaluated). Reports raw
/// reachability latency, SpaReach query latency, build time and index size
/// per dataset.
pub fn backends(datasets: &[Dataset], cfg: &Config) -> TextTable {
    use std::time::Instant;

    let mut t = TextTable::new([
        "dataset",
        "backend",
        "build [s]",
        "index [MB]",
        "GReach [ns]",
        "SpaReach query [us]",
    ]);
    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];

    for ds in datasets {
        let gen = WorkloadGen::new(&ds.prep);
        let workload = gen.extent_degree(DEFAULT_EXTENT, default_bucket, cfg.queries, cfg.seed);

        // Deterministic GReach pair sample over the condensation.
        let ncomp = ds.prep.num_components() as u32;
        let pairs: Vec<(u32, u32)> = (0..10_000u64)
            .map(|i| {
                let a = (i.wrapping_mul(2654435761) % ncomp as u64) as u32;
                let b = (i.wrapping_mul(40503) % ncomp as u64) as u32;
                (a, b)
            })
            .collect();

        let mut run = |name: &str,
                       build: &dyn Fn() -> Box<dyn Reachability>,
                       spa: &dyn Fn() -> Box<dyn RangeReachIndex>| {
            let start = Instant::now();
            let reach = build();
            let build_time = start.elapsed();

            let start = Instant::now();
            let mut positives = 0usize;
            for &(a, b) in &pairs {
                positives += reach.reaches(a, b) as usize;
            }
            let greach_ns = start.elapsed().as_nanos() as f64 / pairs.len() as f64;
            std::hint::black_box(positives);

            let spa_idx = spa();
            let result = run_workload(spa_idx.as_ref(), &workload);
            t.row([
                ds.name.to_string(),
                name.to_string(),
                fmt_secs(build_time),
                fmt_mb(reach.heap_bytes()),
                fmt_micros(greach_ns),
                fmt_micros(result.avg_micros),
            ]);
        };

        let dag = ds.prep.dag();
        run(
            "BFL",
            &|| Box::new(BflIndex::build(dag)),
            &|| Box::new(SpaReachBfl::build(&ds.prep, SccSpatialPolicy::Replicate)),
        );
        run(
            "INT",
            &|| Box::new(IntervalLabeling::build(dag)),
            &|| Box::new(SpaReachInt::build(&ds.prep, SccSpatialPolicy::Replicate)),
        );
        run(
            "PLL",
            &|| Box::new(PllIndex::build(dag)),
            &|| Box::new(SpaReachPll::build(&ds.prep, SccSpatialPolicy::Replicate)),
        );
        run(
            "FELINE",
            &|| Box::new(FelineIndex::build(dag)),
            &|| Box::new(SpaReachFeline::build(&ds.prep, SccSpatialPolicy::Replicate)),
        );
        run(
            "GRAIL",
            &|| Box::new(GrailIndex::build(dag)),
            &|| Box::new(SpaReachGrail::build(&ds.prep, SccSpatialPolicy::Replicate)),
        );
    }
    t
}

/// **Extension**: ablations of the fidelity knobs — the paper-faithful
/// two-phase SpaReach vs our streaming variant, and the paper-faithful
/// per-post SocReach scan vs our compacted point table.
pub fn ablations(datasets: &[Dataset], cfg: &Config) -> TextTable {
    let mut t = TextTable::new([
        "dataset",
        "extent %",
        "SpaReach materialize",
        "SpaReach streaming",
        "SocReach per-post",
        "SocReach compacted",
    ]);
    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    for ds in datasets {
        let spa_mat = SpaReachBfl::build(&ds.prep, SccSpatialPolicy::Replicate);
        let spa_str = SpaReachBfl::build(&ds.prep, SccSpatialPolicy::Replicate)
            .with_candidate_mode(CandidateMode::Streaming);
        let soc_post = SocReach::build_with(&ds.prep, ScanMode::PerPost);
        let soc_comp = SocReach::build_with(&ds.prep, ScanMode::Compacted);
        let gen = WorkloadGen::new(&ds.prep);
        for extent in [1.0, DEFAULT_EXTENT, 20.0] {
            let w = gen.extent_degree(extent, default_bucket, cfg.queries, cfg.seed);
            t.row([
                ds.name.to_string(),
                format!("{extent}"),
                fmt_micros(run_workload(&spa_mat, &w).avg_micros),
                fmt_micros(run_workload(&spa_str, &w).avg_micros),
                fmt_micros(run_workload(&soc_post, &w).avg_micros),
                fmt_micros(run_workload(&soc_comp, &w).avg_micros),
            ]);
        }
    }
    t
}

/// **Extension**: the work counters behind Figure 7's trends — average
/// per-query candidates, reachability tests, vertices traversed,
/// containment tests and 3-D range queries for every method, at small and
/// large extents. These counters are the quantities the paper's Section
/// 6.4 reasons about ("the average number of the necessary graph
/// reachability queries goes up", "more paths need to be traversed", ...).
pub fn analysis(datasets: &[Dataset], cfg: &Config) -> TextTable {
    let mut t = TextTable::new([
        "dataset",
        "method",
        "extent %",
        "candidates",
        "reach tests",
        "vertices visited",
        "containment tests",
        "range queries",
    ]);
    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    for ds in datasets {
        let built: Vec<_> = FINAL_METHODS
            .iter()
            .map(|m| m.build(&ds.prep, SccSpatialPolicy::Replicate))
            .collect();
        let gen = WorkloadGen::new(&ds.prep);
        for extent in [1.0, 20.0] {
            let w = gen.extent_degree(extent, default_bucket, cfg.queries, cfg.seed);
            for idx in &built {
                let mut total = QueryCost::default();
                for (v, region) in &w.queries {
                    let (_, cost) = idx.query_with_cost(*v, region);
                    total.accumulate(&cost);
                }
                let n = w.queries.len().max(1) as f64;
                let avg = |x: usize| format!("{:.1}", x as f64 / n);
                t.row([
                    ds.name.to_string(),
                    idx.name().to_string(),
                    format!("{extent}"),
                    avg(total.spatial_candidates),
                    avg(total.reach_tests),
                    avg(total.vertices_visited),
                    avg(total.containment_tests),
                    avg(total.range_queries),
                ]);
            }
        }
    }
    t
}

/// **Extension**: query polarity — the paper's motivating observation is
/// that "both methods may perform poorly for RangeReach queries with a
/// negative answer" (Section 2.2.3). This experiment separates three
/// regimes: the standard (mostly positive) workload, spatially negative
/// queries (empty regions — every method must exhaust its search), and
/// socially negative queries (vertices that reach no spatial vertex —
/// only possible on the many-SCC datasets).
pub fn polarity(datasets: &[Dataset], cfg: &Config) -> TextTable {
    let mut header = vec!["dataset".to_string(), "workload".to_string()];
    header.extend(FINAL_METHODS.iter().map(|m| m.name().to_string()));
    let mut t = TextTable::new(header);
    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];

    for ds in datasets {
        let built: Vec<_> = FINAL_METHODS
            .iter()
            .map(|m| m.build(&ds.prep, SccSpatialPolicy::Replicate))
            .collect();
        let gen = WorkloadGen::new(&ds.prep);

        let standard = gen.extent_degree(DEFAULT_EXTENT, default_bucket, cfg.queries, cfg.seed);
        let spatial_neg =
            gen.spatial_negative(DEFAULT_EXTENT, default_bucket, cfg.queries, cfg.seed);
        let social_neg = gen.social_negative(DEFAULT_EXTENT, cfg.queries, cfg.seed);

        let mut row_for = |label: &str, w: &gsr_datagen::workload::Workload| {
            let mut row = vec![ds.name.to_string(), label.to_string()];
            for idx in &built {
                row.push(fmt_micros(run_workload(idx.as_ref(), w).avg_micros));
            }
            t.row(row);
        };
        row_for("standard (mostly +)", &standard);
        if !spatial_neg.queries.is_empty() {
            row_for("spatial-negative", &spatial_neg);
        }
        match social_neg {
            Some(w) => row_for("social-negative", &w),
            None => t.row([
                ds.name.to_string(),
                "social-negative".to_string(),
                "n/a (all users reach venues)".to_string(),
            ]),
        }
    }
    t
}

/// **Extension**: the spatial index behind SpaReach's range query — the
/// paper picks the R-tree "as it is the most dominant structure"; this
/// sweep compares it against the space-oriented-partitioning alternatives
/// of Section 7.2 (uniform grid, kd-tree, quadtree).
pub fn spatial_backends(datasets: &[Dataset], cfg: &Config) -> TextTable {
    let mut t = TextTable::new([
        "dataset",
        "extent %",
        "R-tree",
        "uniform grid",
        "kd-tree",
        "quadtree",
    ]);
    let backends = [
        SpatialBackend::RTree,
        SpatialBackend::UniformGrid,
        SpatialBackend::KdTree,
        SpatialBackend::QuadTree,
    ];
    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    for ds in datasets {
        let built: Vec<_> = backends
            .iter()
            .map(|&b| {
                SpaReach::build_with_backend(
                    &ds.prep,
                    SccSpatialPolicy::Replicate,
                    b,
                    "SpaReach",
                    BflIndex::build,
                )
            })
            .collect();
        let gen = WorkloadGen::new(&ds.prep);
        for extent in [1.0, DEFAULT_EXTENT, 20.0] {
            let w = gen.extent_degree(extent, default_bucket, cfg.queries, cfg.seed);
            let mut row = vec![ds.name.to_string(), format!("{extent}")];
            for idx in &built {
                row.push(fmt_micros(run_workload(idx, &w).avg_micros));
            }
            t.row(row);
        }
    }
    t
}

/// **Extension**: DAG reduction (the related work's transitive reduction
/// followed by equivalence reduction, Section 7.1) applied to the
/// condensations of the datasets, and its effect on the interval labeling.
pub fn reduction(datasets: &[Dataset]) -> TextTable {
    use std::time::Instant;

    let mut t = TextTable::new([
        "dataset",
        "stage",
        "|V|",
        "|E|",
        "labels",
        "label build [ms]",
    ]);
    for ds in datasets {
        let dag = ds.prep.dag().clone();
        let mut stage = |name: &str, g: &gsr_graph::DiGraph| {
            let start = Instant::now();
            let labeling = IntervalLabeling::build(g);
            t.row([
                ds.name.to_string(),
                name.to_string(),
                g.num_vertices().to_string(),
                g.num_edges().to_string(),
                labeling.num_labels().to_string(),
                format!("{:.1}", start.elapsed().as_secs_f64() * 1e3),
            ]);
        };
        stage("condensation", &dag);
        let tr = transitive_reduction(&dag);
        stage("+ transitive reduction", &tr);
        let (eq, _) = equivalence_reduction(&tr);
        stage("+ equivalence reduction", &eq);
    }
    t
}

/// **Extension**: sensitivity of the GeoReach baseline to its three
/// construction parameters (Section 2.2.2: `MAX_REACH_GRIDS`,
/// `MERGE_COUNT`, plus the grid resolution). The paper sets them "as
/// suggested by the authors"; this sweep shows what the knobs trade.
pub fn georeach_params(datasets: &[Dataset], cfg: &Config) -> TextTable {
    use std::time::Instant;

    let mut t = TextTable::new([
        "dataset",
        "params (grids/merge/exp)",
        "B-vertices",
        "R-vertices",
        "G-vertices",
        "build [ms]",
        "index [MB]",
        "query [us]",
    ]);
    let sweeps = [
        GeoReachParams { max_reach_grids: 8, merge_count: 1, finest_exp: 5, ..GeoReachParams::default() },
        GeoReachParams::default(), // 64 / 3 / 7
        GeoReachParams { max_reach_grids: 256, merge_count: 6, finest_exp: 9, ..GeoReachParams::default() },
        GeoReachParams { max_reach_grids: 0, merge_count: 1, finest_exp: 5, max_rmbr_frac: 0.8 },
    ];
    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    for ds in datasets {
        let gen = WorkloadGen::new(&ds.prep);
        let w = gen.extent_degree(DEFAULT_EXTENT, default_bucket, cfg.queries, cfg.seed);
        for params in sweeps {
            let start = Instant::now();
            let idx = GeoReach::build_with(&ds.prep, params);
            let build = start.elapsed();
            let (b, r, g) = idx.class_counts();
            let result = run_workload(&idx, &w);
            t.row([
                ds.name.to_string(),
                format!("{}/{}/{}", params.max_reach_grids, params.merge_count, params.finest_exp),
                b.to_string(),
                r.to_string(),
                g.to_string(),
                format!("{:.1}", build.as_secs_f64() * 1e3),
                fmt_mb(idx.index_bytes()),
                fmt_micros(result.avg_micros),
            ]);
        }
    }
    t
}

/// **Extension**: the paper's Section 8 future work — how the spanning
/// forest's shape affects the interval labeling. Each strategy changes
/// which edges become tree edges; fewer/flatter trees mean more labels
/// from non-tree propagation.
pub fn forests(datasets: &[Dataset]) -> TextTable {
    use std::time::Instant;

    let mut t = TextTable::new([
        "dataset",
        "forest strategy",
        "labels (compressed)",
        "labels (uncompressed)",
        "build [ms]",
    ]);
    let strategies: [(&str, ForestStrategy); 4] = [
        ("vertex-order", ForestStrategy::VertexOrder),
        ("high-degree-first", ForestStrategy::HighDegreeFirst),
        ("low-degree-first", ForestStrategy::LowDegreeFirst),
        ("random", ForestStrategy::Random(7)),
    ];
    for ds in datasets {
        let dag = ds.prep.dag();
        for (name, forest) in strategies {
            let start = Instant::now();
            let compressed = IntervalLabeling::build_with(
                dag,
                BuildOptions { builder: Builder::BottomUp, compress: true, forest, ..BuildOptions::default() },
            );
            let elapsed = start.elapsed();
            let raw = IntervalLabeling::build_with(
                dag,
                BuildOptions { builder: Builder::BottomUp, compress: false, forest, ..BuildOptions::default() },
            );
            t.row([
                ds.name.to_string(),
                name.to_string(),
                compressed.num_labels().to_string(),
                raw.num_labels().to_string(),
                format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            ]);
        }
    }
    t
}

/// **Extension**: tail-latency percentiles per method at the default
/// workload — the paper reports averages; an online service also needs the
/// p99.
pub fn latency(datasets: &[Dataset], cfg: &Config) -> TextTable {
    let mut t = TextTable::new([
        "dataset",
        "method",
        "avg [us]",
        "p50 [us]",
        "p95 [us]",
        "p99 [us]",
        "max [us]",
    ]);
    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    for ds in datasets {
        let gen = WorkloadGen::new(&ds.prep);
        let w = gen.extent_degree(DEFAULT_EXTENT, default_bucket, cfg.queries, cfg.seed);
        for method in FINAL_METHODS {
            let idx = method.build(&ds.prep, SccSpatialPolicy::Replicate);
            let p = run_workload_latencies(idx.as_ref(), &w);
            t.row([
                ds.name.to_string(),
                method.name().to_string(),
                fmt_micros(p.avg_micros),
                fmt_micros(p.p50_micros),
                fmt_micros(p.p95_micros),
                fmt_micros(p.p99_micros),
                fmt_micros(p.max_micros),
            ]);
        }
    }
    t
}

/// **Extension**: multi-threaded query throughput over one shared 3DReach
/// index (indexes are immutable, so scaling should be near-linear until
/// memory bandwidth binds).
pub fn throughput(datasets: &[Dataset], cfg: &Config) -> TextTable {
    let mut t = TextTable::new(["dataset", "threads", "queries/s", "speedup"]);
    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    let threads = [1usize, 2, 4, 8];
    for ds in datasets {
        let gen = WorkloadGen::new(&ds.prep);
        // A larger batch smooths out thread startup costs.
        let w = gen.extent_degree(DEFAULT_EXTENT, default_bucket, cfg.queries * 8, cfg.seed);
        let idx = MethodKind::ThreeDReach.build(&ds.prep, SccSpatialPolicy::Replicate);
        let mut base = 0.0f64;
        for &n in &threads {
            let (qps, _) = run_workload_parallel(idx.as_ref(), &w, n);
            if n == 1 {
                base = qps;
            }
            t.row([
                ds.name.to_string(),
                n.to_string(),
                format!("{:.0}", qps),
                format!("{:.2}x", qps / base.max(1e-9)),
            ]);
        }
    }
    t
}

/// **Extension**: parallel index-construction scaling. Times the
/// interval-labeling build and the full 3DReach build at 1/2/4 threads
/// over each dataset's condensation, reporting measured wall-clock — the
/// reported speedup is whatever the host actually delivers (on a
/// single-core machine all thread counts cost about the same; the
/// determinism tests still guarantee the outputs are identical). Pass
/// `--scale 10` or more to reach the ≥100k-vertex networks where the
/// level-scheduled build has enough width per level to scale.
pub fn parallel_build(datasets: &[Dataset]) -> TextTable {
    let mut t =
        TextTable::new(["dataset", "vertices", "structure", "threads", "build [ms]", "speedup"]);
    let thread_counts = [1usize, 2, 4];
    for ds in datasets {
        let n = ds.prep.network().num_vertices();
        // Untimed warm-up builds: the first build pays one-time costs
        // (lazy PreparedNetwork caches, allocator growth, page faults)
        // that would otherwise inflate the speedup of whichever thread
        // count happens to run later.
        std::hint::black_box(IntervalLabeling::build_with(
            ds.prep.dag(),
            BuildOptions::default(),
        ));
        std::hint::black_box(MethodKind::ThreeDReach.build_threaded(
            &ds.prep,
            SccSpatialPolicy::Replicate,
            1,
        ));
        let mut base_label = 0.0f64;
        for &threads in &thread_counts {
            let start = std::time::Instant::now();
            let labeling = IntervalLabeling::build_with(
                ds.prep.dag(),
                BuildOptions { threads, ..BuildOptions::default() },
            );
            let ms = start.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(&labeling);
            if threads == 1 {
                base_label = ms;
            }
            t.row([
                ds.name.to_string(),
                n.to_string(),
                "interval labels".to_string(),
                threads.to_string(),
                format!("{ms:.2}"),
                format!("{:.2}x", base_label / ms.max(1e-9)),
            ]);
        }
        let mut base_full = 0.0f64;
        for &threads in &thread_counts {
            let start = std::time::Instant::now();
            let idx = MethodKind::ThreeDReach.build_threaded(
                &ds.prep,
                SccSpatialPolicy::Replicate,
                threads,
            );
            let ms = start.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(&idx);
            if threads == 1 {
                base_full = ms;
            }
            t.row([
                ds.name.to_string(),
                n.to_string(),
                "3DReach (full)".to_string(),
                threads.to_string(),
                format!("{ms:.2}"),
                format!("{:.2}x", base_full / ms.max(1e-9)),
            ]);
        }
    }
    t
}

/// Builds one method as a saveable snapshot (replicate policy, the same
/// configuration the CLI's `build --save` persists).
fn method_snapshot(
    kind: MethodKind,
    prep: &gsr_core::PreparedNetwork,
) -> gsr_store::SnapshotIndex {
    use gsr_store::SnapshotIndex as S;
    let p = SccSpatialPolicy::Replicate;
    match kind {
        MethodKind::SpaReachBfl => S::SpaReachBfl(SpaReachBfl::build(prep, p)),
        MethodKind::SpaReachInt => S::SpaReachInt(SpaReachInt::build(prep, p)),
        MethodKind::GeoReach => S::GeoReach(GeoReach::build(prep)),
        MethodKind::SocReach => S::SocReach(SocReach::build(prep)),
        MethodKind::ThreeDReach => S::ThreeDReach(gsr_core::methods::ThreeDReach::build(prep, p)),
        MethodKind::ThreeDReachRev => {
            S::ThreeDReachRev(gsr_core::methods::ThreeDReachRev::build(prep, p))
        }
    }
}

/// One measurement of the snapshot experiment.
#[derive(Debug, Clone)]
pub struct SnapshotPoint {
    /// Dataset display name.
    pub dataset: String,
    /// Method key ("3dreach", ...).
    pub method: String,
    /// Cold-start index construction, milliseconds.
    pub build_ms: f64,
    /// Snapshot serialization (current v3 format), milliseconds.
    pub save_ms: f64,
    /// v3 snapshot size in bytes.
    pub snapshot_bytes: usize,
    /// v3 load from a file (mmap + validation), milliseconds. Also kept
    /// under its historical name `load_ms` in the JSON trajectory.
    pub load_ms: f64,
    /// Legacy v2 load from a file (streaming decode), milliseconds.
    pub load_ms_v2: f64,
    /// v3 load throughput, `snapshot_bytes / load_ms`, in MB/s (decimal
    /// megabytes). On the mmap path this exceeds disk bandwidth because
    /// pages fault in lazily during queries.
    pub load_mb_per_s: f64,
    /// `build_ms / load_ms` — how much faster a replica starts from a v3
    /// snapshot than from a rebuild.
    pub load_speedup: f64,
    /// Whether both loaded copies (v2 and v3) answered the probe workload
    /// identically to the freshly built index.
    pub agree: bool,
}

/// **Extension (new subsystem)**: cold-start rebuild vs snapshot load.
///
/// For every dataset × method: time the cold index build, persist it as
/// both a v3 snapshot (`gsr_store::save`, the zero-copy format) and a
/// legacy v2 snapshot (`gsr_store::save_v2`, streaming decode), time
/// loading each back **from a file** — the v3 path memory-maps it — and
/// replay a probe workload on all copies to confirm bit-identical answers.
/// The point of the format change is the `load v3` column: a replica's
/// restart cost is the mmap + structural validation, not a decode of every
/// section.
pub fn snapshot(datasets: &[Dataset], cfg: &Config) -> (TextTable, Vec<SnapshotPoint>) {
    use std::time::Instant;

    let mut t = TextTable::new([
        "dataset",
        "method",
        "build [ms]",
        "save [ms]",
        "snapshot [MB]",
        "load v2 [ms]",
        "load v3 [ms]",
        "load speedup",
        "v3 [MB/s]",
        "answers",
    ]);
    let mut points = Vec::new();
    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    let dir = std::env::temp_dir().join(format!("gsr_bench_snapshot_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);

    for ds in datasets {
        let gen = WorkloadGen::new(&ds.prep);
        let w = gen.extent_degree(DEFAULT_EXTENT, default_bucket, cfg.queries, cfg.seed);

        for kind in ALL_METHODS {
            let start = Instant::now();
            let built = method_snapshot(kind, &ds.prep);
            let build_ms = start.elapsed().as_secs_f64() * 1e3;

            let v3_path = dir.join(format!("{}.v3.snap", built.method_key()));
            let v2_path = dir.join(format!("{}.v2.snap", built.method_key()));
            let start = Instant::now();
            let saved = gsr_store::save_to_path(&v3_path, &built).is_ok();
            let save_ms = start.elapsed().as_secs_f64() * 1e3;
            // The v2 copy exists only to measure the legacy decode.
            let mut v2_bytes = Vec::new();
            let saved = saved
                && gsr_store::save_v2(&mut v2_bytes, &built).is_ok()
                && std::fs::write(&v2_path, &v2_bytes).is_ok();
            drop(v2_bytes);
            if !saved {
                t.row([
                    ds.name.to_string(),
                    built.method_key().to_string(),
                    format!("{build_ms:.2}"),
                    "save failed".to_string(),
                ]);
                continue;
            }
            let snapshot_bytes =
                std::fs::metadata(&v3_path).map(|m| m.len() as usize).unwrap_or(0);

            let start = Instant::now();
            let loaded_v2 = gsr_store::load_from_path(&v2_path);
            let load_ms_v2 = start.elapsed().as_secs_f64() * 1e3;
            let start = Instant::now();
            let loaded_v3 = gsr_store::load_from_path(&v3_path);
            let load_ms = start.elapsed().as_secs_f64() * 1e3;
            let (Ok(loaded_v2), Ok(loaded_v3)) = (loaded_v2, loaded_v3) else {
                t.row([
                    ds.name.to_string(),
                    built.method_key().to_string(),
                    format!("{build_ms:.2}"),
                    format!("{save_ms:.2}"),
                    fmt_mb(snapshot_bytes),
                    "load failed".to_string(),
                ]);
                continue;
            };

            let agree = w.queries.iter().all(|(v, r)| {
                let want = built.query(*v, r);
                loaded_v3.query(*v, r) == want && loaded_v2.query(*v, r) == want
            });
            let load_speedup = build_ms / load_ms.max(1e-6);
            let load_mb_per_s = snapshot_bytes as f64 / 1e6 / (load_ms.max(1e-6) / 1e3);
            t.row([
                ds.name.to_string(),
                built.method_key().to_string(),
                format!("{build_ms:.2}"),
                format!("{save_ms:.2}"),
                fmt_mb(snapshot_bytes),
                format!("{load_ms_v2:.2}"),
                format!("{load_ms:.2}"),
                format!("{load_speedup:.1}x"),
                format!("{load_mb_per_s:.0}"),
                if agree { "identical".to_string() } else { "MISMATCH".to_string() },
            ]);
            points.push(SnapshotPoint {
                dataset: ds.name.to_string(),
                method: built.method_key().to_string(),
                build_ms,
                save_ms,
                snapshot_bytes,
                load_ms,
                load_ms_v2,
                load_mb_per_s,
                load_speedup,
                agree,
            });
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    (t, points)
}

/// Renders the snapshot experiment as the `BENCH_snapshot.json` trajectory
/// file (hand-written JSON; the harness is std-only).
pub fn snapshot_json(cfg: &Config, points: &[SnapshotPoint]) -> String {
    let mut s = String::from("{\n  \"experiment\": \"snapshot\",\n");
    s.push_str(&format!(
        "  \"scale\": {}, \"queries\": {}, \"seed\": {},\n  \"results\": [\n",
        cfg.scale, cfg.queries, cfg.seed
    ));
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"method\": \"{}\", \"build_ms\": {:.3}, \
             \"save_ms\": {:.3}, \"snapshot_bytes\": {}, \"load_ms\": {:.3}, \
             \"load_ms_v2\": {:.3}, \"load_ms_v3\": {:.3}, \"load_mb_per_s\": {:.1}, \
             \"load_speedup\": {:.2}, \"agree\": {}}}{}\n",
            p.dataset,
            p.method,
            p.build_ms,
            p.save_ms,
            p.snapshot_bytes,
            p.load_ms,
            p.load_ms_v2,
            p.load_ms,
            p.load_mb_per_s,
            p.load_speedup,
            p.agree,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One measured point of the [`hotpath`] experiment.
#[derive(Debug, Clone)]
pub struct HotpathPoint {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Median query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile query latency, microseconds.
    pub p99_us: f64,
    /// Batched query throughput, queries per second.
    pub qps: f64,
    /// Heap allocations per steady-state query (after one warm-up pass).
    pub allocs_per_query: f64,
}

/// **Extension**: the hot-path profile behind the zero-allocation query
/// kernels — per-method p50/p99 latency, batched throughput, and heap
/// allocations per steady-state query, counted by the crate's global
/// counting allocator ([`crate::alloc_track`]).
///
/// A warm-up pass runs first so the one-time thread-local scratch
/// allocation and index page faults are paid outside the measured window;
/// after it, every method is expected to report `allocs/query = 0`. The
/// allocation pass is single-threaded because the counter is
/// process-global.
pub fn hotpath(datasets: &[Dataset], cfg: &Config) -> (TextTable, Vec<HotpathPoint>) {
    let mut t = TextTable::new([
        "dataset",
        "method",
        "p50 [us]",
        "p99 [us]",
        "queries/s",
        "allocs/query",
    ]);
    let mut points = Vec::new();
    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    for ds in datasets {
        let gen = WorkloadGen::new(&ds.prep);
        let w = gen.extent_degree(DEFAULT_EXTENT, default_bucket, cfg.queries, cfg.seed);
        for method in ALL_METHODS {
            let idx = method.build(&ds.prep, SccSpatialPolicy::Replicate);
            // Warm-up: pays the per-thread scratch allocation once.
            std::hint::black_box(run_workload(idx.as_ref(), &w));
            let p = run_workload_latencies(idx.as_ref(), &w);
            let (qps, _) = run_workload_parallel(idx.as_ref(), &w, cfg.threads.max(1));
            let before = crate::alloc_track::allocation_count();
            for (v, region) in &w.queries {
                std::hint::black_box(idx.query(*v, region));
            }
            let allocs = crate::alloc_track::allocation_count().saturating_sub(before);
            let allocs_per_query = allocs as f64 / w.queries.len().max(1) as f64;
            t.row([
                ds.name.to_string(),
                method.name().to_string(),
                fmt_micros(p.p50_micros),
                fmt_micros(p.p99_micros),
                format!("{qps:.0}"),
                format!("{allocs_per_query:.3}"),
            ]);
            points.push(HotpathPoint {
                dataset: ds.name.to_string(),
                method: method.name().to_string(),
                p50_us: p.p50_micros,
                p99_us: p.p99_micros,
                qps,
                allocs_per_query,
            });
        }
    }
    (t, points)
}

/// Renders the hotpath experiment as the `BENCH_hotpath.json` trajectory
/// file (hand-written JSON; the harness is std-only).
pub fn hotpath_json(cfg: &Config, points: &[HotpathPoint]) -> String {
    let mut s = String::from("{\n  \"experiment\": \"hotpath\",\n");
    s.push_str(&format!(
        "  \"scale\": {}, \"queries\": {}, \"seed\": {}, \"threads\": {},\n  \"results\": [\n",
        cfg.scale, cfg.queries, cfg.seed, cfg.threads
    ));
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"method\": \"{}\", \"p50_us\": {:.3}, \
             \"p99_us\": {:.3}, \"qps\": {:.1}, \"allocs_per_query\": {:.4}}}{}\n",
            p.dataset,
            p.method,
            p.p50_us,
            p.p99_us,
            p.qps,
            p.allocs_per_query,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One measured point of the [`memory`] experiment.
#[derive(Debug, Clone)]
pub struct MemoryPoint {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Vertices in the network.
    pub num_vertices: usize,
    /// Heap footprint of the compact layout, bytes.
    pub heap_bytes: usize,
    /// Reconstructed footprint of the pre-compaction layout, bytes.
    pub legacy_bytes: usize,
    /// `100 * (1 - heap/legacy)`.
    pub reduction_pct: f64,
    /// Median query latency on the compact layout, microseconds.
    pub p50_us: f64,
    /// 99th-percentile query latency, microseconds.
    pub p99_us: f64,
}

/// Footprint of the retired pointer-node R-tree layout for a tree with the
/// same node and entry counts: one heap node per arena id (MBR + a 24-byte
/// `Vec` header + ~8 bytes of enum tag/padding), `(Aabb, payload)` tuples
/// in the leaves, and one 4-byte child id per non-root node. The same
/// formula anchors the `soa_arena_is_smaller_than_pointer_nodes` unit test
/// in `gsr-index`.
fn legacy_rtree_bytes<const N: usize>(num_nodes: usize, len: usize) -> usize {
    let node_header = std::mem::size_of::<gsr_geo::Aabb<N>>() + 32;
    num_nodes * node_header
        + len * std::mem::size_of::<(gsr_geo::Aabb<N>, usize)>()
        + num_nodes.saturating_sub(1) * 4
}

/// Heap bytes of a full [`IntervalLabeling`] over `n` posts holding
/// `num_labels` labels: the post permutation and its inverse, the label
/// CSR, and the 8-byte `(lo, hi)` interval array — what SocReach, 3DReach
/// and 3DReach-REV stored before delta compression.
fn legacy_labeling_bytes(n: usize, num_labels: usize) -> usize {
    4 * n + 4 * n + 4 * (n + 1) + 8 * num_labels
}

/// Legacy footprint of a SpaReach variant: only its 2-D spatial filter
/// changed layout; the reachability back-end is stored as before.
fn spareach_legacy_bytes<R>(current: usize, parts: Option<SpaReachParts<R>>) -> usize {
    match parts {
        Some(p) => {
            let tree = match &p.filter {
                SpaReachFilterParts::Points(t) => t,
                SpaReachFilterParts::CompBoxes(t) => t,
            };
            current - tree.heap_bytes()
                + legacy_rtree_bytes::<2>(tree.num_nodes(), tree.len())
        }
        None => current,
    }
}

/// **Extension**: the memory-footprint profile behind the compact index
/// layouts — per-method heap bytes (via the `HeapBytes` accounting every
/// index implements), bytes/vertex, and the reconstructed footprint of the
/// pre-compaction layout (pointer-node R-trees, uncompressed interval
/// labels, plain post-offset arrays) for a before/after comparison, plus
/// query p50/p99 on the compact layout to show the shrink is not paid for
/// in latency.
pub fn memory(datasets: &[Dataset], cfg: &Config) -> (TextTable, Vec<MemoryPoint>) {
    use gsr_graph::HeapBytes;
    let mut t = TextTable::new([
        "dataset",
        "method",
        "heap",
        "bytes/vertex",
        "legacy bytes/vertex",
        "reduction",
        "p50 [us]",
        "p99 [us]",
    ]);
    let mut points = Vec::new();
    let default_bucket = DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX];
    let policy = SccSpatialPolicy::Replicate;
    for ds in datasets {
        let gen = WorkloadGen::new(&ds.prep);
        let w = gen.extent_degree(DEFAULT_EXTENT, default_bucket, cfg.queries, cfg.seed);
        let nv = ds.prep.network().num_vertices().max(1);

        let mut push = |method: &str, idx: &dyn RangeReachIndex, legacy: usize| {
            let heap = idx.index_bytes();
            let p = run_workload_latencies(idx, &w);
            let reduction_pct =
                if legacy > 0 { 100.0 * (1.0 - heap as f64 / legacy as f64) } else { 0.0 };
            t.row([
                ds.name.to_string(),
                method.to_string(),
                fmt_mb(heap),
                format!("{:.1}", heap as f64 / nv as f64),
                format!("{:.1}", legacy as f64 / nv as f64),
                format!("{reduction_pct:.1}%"),
                fmt_micros(p.p50_micros),
                fmt_micros(p.p99_micros),
            ]);
            points.push(MemoryPoint {
                dataset: ds.name.to_string(),
                method: method.to_string(),
                num_vertices: nv,
                heap_bytes: heap,
                legacy_bytes: legacy,
                reduction_pct,
                p50_us: p.p50_micros,
                p99_us: p.p99_micros,
            });
        };

        let bfl = SpaReachBfl::build_threaded(&ds.prep, policy, cfg.threads);
        push("SpaReach-BFL", &bfl, spareach_legacy_bytes(bfl.index_bytes(), bfl.to_parts()));

        let int = SpaReachInt::build_threaded(&ds.prep, policy, cfg.threads);
        push("SpaReach-INT", &int, spareach_legacy_bytes(int.index_bytes(), int.to_parts()));

        // GeoReach carries no R-tree and no interval labels; its layout is
        // unchanged by the compaction, so legacy == current (0% reduction).
        let geo = GeoReach::build(&ds.prep);
        push("GeoReach", &geo, geo.index_bytes());

        let soc = SocReach::build(&ds.prep);
        let (comp_of, labels, _post_offsets, pts, _mode) = soc.parts();
        let nc = labels.num_vertices();
        let soc_legacy = comp_of.len() * 4
            + legacy_labeling_bytes(nc, labels.num_labels())
            + 4 * (nc + 1)
            + std::mem::size_of_val(pts);
        push("SocReach", &soc, soc_legacy);

        let fwd = ThreeDReach::build_threaded(&ds.prep, policy, cfg.threads);
        let parts = fwd.to_parts();
        let fwd_legacy = fwd.index_bytes() - parts.labels.heap_bytes()
            + legacy_labeling_bytes(parts.labels.num_vertices(), parts.labels.num_labels())
            - parts.tree.heap_bytes()
            + legacy_rtree_bytes::<3>(parts.tree.num_nodes(), parts.tree.len());
        push("3DReach", &fwd, fwd_legacy);

        let rev = ThreeDReachRev::build_threaded(&ds.prep, policy, cfg.threads);
        let parts = rev.to_parts();
        // The old layout kept the full reversed labeling; rebuild it to
        // count its labels (the built index only stores the post heights).
        let rev_labeling = IntervalLabeling::build(&ds.prep.dag().reversed());
        let nc = parts.rev_post.len();
        let rev_legacy = rev.index_bytes() - nc * 4
            + legacy_labeling_bytes(nc, rev_labeling.num_labels())
            - parts.tree.heap_bytes()
            + legacy_rtree_bytes::<3>(parts.tree.num_nodes(), parts.tree.len());
        push("3DReach-REV", &rev, rev_legacy);
    }
    (t, points)
}

/// Renders the memory experiment as the `BENCH_memory.json` trajectory
/// file (hand-written JSON; the harness is std-only).
pub fn memory_json(cfg: &Config, points: &[MemoryPoint]) -> String {
    let mut s = String::from("{\n  \"experiment\": \"memory\",\n");
    s.push_str(&format!(
        "  \"scale\": {}, \"queries\": {}, \"seed\": {}, \"threads\": {},\n  \"results\": [\n",
        cfg.scale, cfg.queries, cfg.seed, cfg.threads
    ));
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"method\": \"{}\", \"num_vertices\": {}, \
             \"heap_bytes\": {}, \"legacy_bytes\": {}, \
             \"bytes_per_vertex\": {:.2}, \"legacy_bytes_per_vertex\": {:.2}, \
             \"reduction_pct\": {:.2}, \"p50_us\": {:.3}, \"p99_us\": {:.3}}}{}\n",
            p.dataset,
            p.method,
            p.num_vertices,
            p.heap_bytes,
            p.legacy_bytes,
            p.heap_bytes as f64 / p.num_vertices.max(1) as f64,
            p.legacy_bytes as f64 / p.num_vertices.max(1) as f64,
            p.reduction_pct,
            p.p50_us,
            p.p99_us,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_datagen::NetworkSpec;

    fn tiny_datasets() -> Vec<Dataset> {
        vec![
            Dataset::from_spec(&NetworkSpec::weeplaces(0.03)),
            Dataset::from_spec(&NetworkSpec::yelp(0.01)),
        ]
    }

    #[test]
    fn memory_reports_shrink_for_label_backed_methods() {
        let ds = tiny_datasets();
        let cfg = Config { queries: 50, ..Config::default() };
        let (t, points) = memory(&ds, &cfg);
        assert_eq!(t.len(), 2 * 6, "six methods per dataset");
        assert_eq!(points.len(), 2 * 6);
        for p in &points {
            assert!(p.heap_bytes > 0, "{}: zero heap", p.method);
            assert!(
                p.heap_bytes <= p.legacy_bytes,
                "{}: compact layout {} larger than legacy {}",
                p.method,
                p.heap_bytes,
                p.legacy_bytes
            );
            // The delta-compressed methods must show a real reduction even
            // on tiny inputs (the acceptance gate at scale 3 is 30%).
            if matches!(p.method.as_str(), "SocReach" | "3DReach" | "3DReach-REV") {
                assert!(p.reduction_pct > 10.0, "{}: only {:.1}%", p.method, p.reduction_pct);
            }
        }
        let json = memory_json(&cfg, &points);
        assert!(json.contains("\"experiment\": \"memory\""));
        assert!(json.contains("\"reduction_pct\""));
    }

    #[test]
    fn table3_has_one_row_per_dataset() {
        let ds = tiny_datasets();
        let t = table3(&ds);
        assert_eq!(t.len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("WeePlaces"));
        assert!(rendered.contains("Yelp"));
    }

    #[test]
    fn tables_4_5_have_mbr_parens_only_where_supported() {
        let ds = tiny_datasets();
        let (sizes, times) = tables_4_and_5(&ds[..1]);
        let s = sizes.render();
        let lines: Vec<&str> = s.lines().collect();
        // Data row: SpaReach columns have parens; GeoReach/SocReach do not.
        let data = lines[2];
        assert_eq!(data.matches('(').count(), 4, "4 methods have MBR variants: {data}");
        assert_eq!(times.len(), 1);
    }

    #[test]
    fn table6_counts_are_ordered() {
        let ds = tiny_datasets();
        let t = table6(&ds[..1]);
        let csv = t.render_csv();
        let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        let fwd_unc: usize = row[1].parse().unwrap();
        let fwd_c: usize = row[2].parse().unwrap();
        assert!(fwd_c <= fwd_unc, "compression cannot add labels");
        assert!(fwd_c > 0);
    }

    #[test]
    fn polarity_table_renders() {
        let ds = tiny_datasets();
        let cfg = Config { scale: 0.03, queries: 6, seed: 1, threads: 1 };
        let t = polarity(&ds, &cfg);
        assert!(t.len() >= 4, "at least standard + one negative row per dataset");
    }

    #[test]
    fn spatial_backend_sweep_renders() {
        let ds = tiny_datasets();
        let cfg = Config { scale: 0.03, queries: 6, seed: 1, threads: 1 };
        let t = spatial_backends(&ds[..1], &cfg);
        assert_eq!(t.len(), 3, "one row per extent");
    }

    #[test]
    fn reduction_shrinks_or_keeps_the_graph() {
        let ds = tiny_datasets();
        let t = reduction(&ds[..1]);
        assert_eq!(t.len(), 3);
        let csv = t.render_csv();
        let rows: Vec<Vec<&str>> = csv.lines().skip(1).map(|l| l.split(',').collect()).collect();
        let edges: Vec<usize> = rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(edges[1] <= edges[0], "transitive reduction never adds edges");
        let vertices: Vec<usize> = rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(vertices[2] <= vertices[1], "equivalence reduction never adds vertices");
    }

    #[test]
    fn georeach_sweep_renders() {
        let ds = tiny_datasets();
        let cfg = Config { scale: 0.03, queries: 6, seed: 1, threads: 1 };
        let t = georeach_params(&ds[..1], &cfg);
        assert_eq!(t.len(), 4, "one row per parameterization");
    }

    #[test]
    fn forests_table_has_four_strategies_per_dataset() {
        let ds = tiny_datasets();
        let t = forests(&ds[..1]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn parallel_build_reports_every_thread_count() {
        let ds = tiny_datasets();
        let t = parallel_build(&ds[..1]);
        // Two structures x three thread counts.
        assert_eq!(t.len(), 6);
        let csv = t.render_csv();
        for threads in ["1", "2", "4"] {
            assert!(
                csv.lines().any(|l| l.split(',').nth(3) == Some(threads)),
                "missing thread count {threads}:\n{csv}"
            );
        }
    }

    #[test]
    fn latency_and_throughput_render() {
        let ds = tiny_datasets();
        let cfg = Config { scale: 0.03, queries: 10, seed: 2, threads: 1 };
        let lt = latency(&ds[..1], &cfg);
        assert_eq!(lt.len(), FINAL_METHODS.len());
        let tp = throughput(&ds[..1], &cfg);
        assert_eq!(tp.len(), 4, "one row per thread count");
    }

    #[test]
    fn analysis_counters_are_plausible() {
        let ds = tiny_datasets();
        let cfg = Config { scale: 0.03, queries: 10, seed: 2, threads: 1 };
        let t = analysis(&ds[..1], &cfg);
        // 5 methods x 2 extents.
        assert_eq!(t.len(), 10);
        let csv = t.render_csv();
        // GeoReach rows must show traversal work; 3DReach rows must show
        // range queries.
        assert!(csv.lines().any(|l| l.starts_with("WeePlaces,GeoReach")));
        assert!(csv.lines().any(|l| l.starts_with("WeePlaces,3DReach")));
    }

    #[test]
    fn backends_and_ablations_render() {
        let ds = tiny_datasets();
        let cfg = Config { scale: 0.03, queries: 8, seed: 5, threads: 1 };
        let b = backends(&ds[..1], &cfg);
        assert_eq!(b.len(), 5, "one row per back-end");
        let a = ablations(&ds[..1], &cfg);
        assert_eq!(a.len(), 3, "one row per extent");
    }

    #[test]
    fn snapshot_experiment_round_trips_every_method() {
        let ds = tiny_datasets();
        let cfg = Config { scale: 0.03, queries: 8, seed: 5, threads: 1 };
        let (t, points) = snapshot(&ds[..1], &cfg);
        assert_eq!(t.len(), ALL_METHODS.len(), "one row per method");
        assert_eq!(points.len(), ALL_METHODS.len(), "every save+load must succeed");
        for p in &points {
            assert!(p.agree, "{}/{} answers diverged after load", p.dataset, p.method);
            assert!(p.snapshot_bytes > 0);
            assert!(p.load_ms > 0.0 && p.load_ms_v2 > 0.0 && p.load_mb_per_s > 0.0);
        }
        let json = snapshot_json(&cfg, &points);
        assert!(json.contains("\"experiment\": \"snapshot\""));
        assert!(json.contains("\"method\": \"3dreach\""), "{json}");
        assert!(json.contains("\"load_ms_v2\""), "{json}");
        assert!(json.contains("\"load_ms_v3\""), "{json}");
        assert!(json.contains("\"load_mb_per_s\""), "{json}");
        assert_eq!(json.matches("\"agree\": true").count(), ALL_METHODS.len(), "{json}");
    }

    #[test]
    fn fig_sweeps_have_expected_shape() {
        let ds = tiny_datasets();
        let cfg = Config { scale: 0.03, queries: 8, seed: 5, threads: 1 };
        let (by_extent, by_degree) = fig6(&ds[..1], &cfg);
        assert_eq!(by_extent.len(), PAPER_EXTENTS_PCT.len());
        assert_eq!(by_degree.len(), DegreeBucket::PAPER_BUCKETS.len());
        let sel = fig7_selectivity(&ds[..1], &cfg);
        assert_eq!(sel.len(), PAPER_SELECTIVITIES_PCT.len());
    }
}
