//! Shared plumbing: datasets, method construction and timing.

use gsr_core::methods::{
    GeoReach, SocReach, SpaReachBfl, SpaReachInt, ThreeDReach, ThreeDReachRev,
};
use gsr_core::{BatchExecutor, PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::workload::Workload;
use gsr_datagen::NetworkSpec;
use std::time::{Duration, Instant};

/// Harness configuration (CLI-settable).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Dataset scale: 1.0 generates ~1% of the paper's network sizes
    /// (tens of thousands of vertices, ~10^5..10^6 edges).
    pub scale: f64,
    /// Queries per measurement point (the paper uses 1000).
    pub queries: usize,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads for index construction and batched query execution
    /// (`0` = machine parallelism, `1` = sequential).
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { scale: 1.0, queries: 1000, seed: 0xD0_5E_ED, threads: 1 }
    }
}

/// A generated, prepared dataset.
pub struct Dataset {
    /// Display name ("Foursquare", ...).
    pub name: &'static str,
    /// The condensed network all methods build on.
    pub prep: PreparedNetwork,
}

impl Dataset {
    /// Generates one dataset from a spec.
    pub fn from_spec(spec: &NetworkSpec) -> Dataset {
        Dataset { name: spec.name, prep: PreparedNetwork::new(spec.generate()) }
    }

    /// Generates all four paper datasets at the configured scale.
    pub fn load_all(cfg: &Config) -> Vec<Dataset> {
        NetworkSpec::paper_datasets(cfg.scale).iter().map(Dataset::from_spec).collect()
    }

    /// A single small dataset for quick Criterion benches.
    pub fn small() -> Dataset {
        Dataset::from_spec(&NetworkSpec::weeplaces(0.5))
    }
}

/// The evaluation methods of Section 6, in the paper's presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Spatial-first with BFL reachability.
    SpaReachBfl,
    /// Spatial-first with interval labeling.
    SpaReachInt,
    /// The prior state of the art.
    GeoReach,
    /// Social-first (Section 4.1).
    SocReach,
    /// 3-D transformation, forward labeling (Section 4.2).
    ThreeDReach,
    /// 3-D transformation, reversed labeling.
    ThreeDReachRev,
}

/// All methods in display order.
pub const ALL_METHODS: [MethodKind; 6] = [
    MethodKind::SpaReachBfl,
    MethodKind::SpaReachInt,
    MethodKind::GeoReach,
    MethodKind::SocReach,
    MethodKind::ThreeDReach,
    MethodKind::ThreeDReachRev,
];

/// The subset compared in the final evaluation (Figure 7): the best
/// spatial-first method plus GeoReach and the paper's contributions.
pub const FINAL_METHODS: [MethodKind; 5] = [
    MethodKind::SpaReachBfl,
    MethodKind::GeoReach,
    MethodKind::SocReach,
    MethodKind::ThreeDReach,
    MethodKind::ThreeDReachRev,
];

impl MethodKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::SpaReachBfl => "SpaReach-BFL",
            MethodKind::SpaReachInt => "SpaReach-INT",
            MethodKind::GeoReach => "GeoReach",
            MethodKind::SocReach => "SocReach",
            MethodKind::ThreeDReach => "3DReach",
            MethodKind::ThreeDReachRev => "3DReach-REV",
        }
    }

    /// Whether the method has an MBR-based SCC variant (Section 5 applies
    /// only to methods with spatial indexing; GeoReach is non-MBR by design
    /// and SocReach has no spatial index).
    pub fn supports_mbr(&self) -> bool {
        !matches!(self, MethodKind::GeoReach | MethodKind::SocReach)
    }

    /// Builds the method's index over a prepared network.
    pub fn build(
        &self,
        prep: &PreparedNetwork,
        policy: SccSpatialPolicy,
    ) -> Box<dyn RangeReachIndex> {
        match self {
            MethodKind::SpaReachBfl => Box::new(SpaReachBfl::build(prep, policy)),
            MethodKind::SpaReachInt => Box::new(SpaReachInt::build(prep, policy)),
            MethodKind::GeoReach => Box::new(GeoReach::build(prep)),
            MethodKind::SocReach => Box::new(SocReach::build(prep)),
            MethodKind::ThreeDReach => Box::new(ThreeDReach::build(prep, policy)),
            MethodKind::ThreeDReachRev => Box::new(ThreeDReachRev::build(prep, policy)),
        }
    }

    /// Builds the method's index with `threads` construction workers.
    /// Methods without a parallel build path (GeoReach, SocReach) fall back
    /// to their sequential constructors; the others produce indexes
    /// identical to [`MethodKind::build`] at any thread count.
    pub fn build_threaded(
        &self,
        prep: &PreparedNetwork,
        policy: SccSpatialPolicy,
        threads: usize,
    ) -> Box<dyn RangeReachIndex> {
        match self {
            MethodKind::SpaReachBfl => Box::new(SpaReachBfl::build_threaded(prep, policy, threads)),
            MethodKind::SpaReachInt => Box::new(SpaReachInt::build_threaded(prep, policy, threads)),
            MethodKind::GeoReach => Box::new(GeoReach::build(prep)),
            MethodKind::SocReach => Box::new(SocReach::build(prep)),
            MethodKind::ThreeDReach => Box::new(ThreeDReach::build_threaded(prep, policy, threads)),
            MethodKind::ThreeDReachRev => {
                Box::new(ThreeDReachRev::build_threaded(prep, policy, threads))
            }
        }
    }

    /// Builds and times the construction (the measurement of Table 5).
    pub fn timed_build(
        &self,
        prep: &PreparedNetwork,
        policy: SccSpatialPolicy,
    ) -> (Box<dyn RangeReachIndex>, Duration) {
        let start = Instant::now();
        let idx = self.build(prep, policy);
        (idx, start.elapsed())
    }
}

/// Result of running one workload against one index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Average per-query time in microseconds.
    pub avg_micros: f64,
    /// Number of queries that answered TRUE.
    pub positives: usize,
    /// Number of queries executed.
    pub total: usize,
}

/// Runs every query of `workload` against `idx`, measuring wall time.
pub fn run_workload(idx: &dyn RangeReachIndex, workload: &Workload) -> RunResult {
    let mut positives = 0usize;
    let start = Instant::now();
    for (v, region) in &workload.queries {
        if idx.query(*v, region) {
            positives += 1;
        }
    }
    let elapsed = start.elapsed();
    RunResult {
        avg_micros: elapsed.as_secs_f64() * 1e6 / workload.queries.len().max(1) as f64,
        positives,
        total: workload.queries.len(),
    }
}

/// Per-query latency distribution of one workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyProfile {
    /// Average latency in microseconds.
    pub avg_micros: f64,
    /// Median latency in microseconds.
    pub p50_micros: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_micros: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_micros: f64,
    /// Maximum observed latency in microseconds.
    pub max_micros: f64,
}

/// Runs the workload timing every query individually and reporting
/// latency percentiles — tail latency is what an online service cares
/// about, and the paper's averages can hide it.
pub fn run_workload_latencies(idx: &dyn RangeReachIndex, workload: &Workload) -> LatencyProfile {
    let mut micros: Vec<f64> = workload
        .queries
        .iter()
        .map(|(v, region)| {
            let start = Instant::now();
            std::hint::black_box(idx.query(*v, region));
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    micros.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pick = |q: f64| -> f64 {
        if micros.is_empty() {
            return 0.0;
        }
        let idx = ((micros.len() as f64 - 1.0) * q).round() as usize;
        micros[idx]
    };
    LatencyProfile {
        avg_micros: micros.iter().sum::<f64>() / micros.len().max(1) as f64,
        p50_micros: pick(0.50),
        p95_micros: pick(0.95),
        p99_micros: pick(0.99),
        max_micros: micros.last().copied().unwrap_or(0.0),
    }
}

/// Runs the workload through a [`BatchExecutor`] with `threads` workers
/// over one shared index (indexes are immutable, so a shared reference
/// suffices), and returns the aggregate throughput in queries/second.
pub fn run_workload_parallel(
    idx: &dyn RangeReachIndex,
    workload: &Workload,
    threads: usize,
) -> (f64, usize) {
    let start = Instant::now();
    let answers = BatchExecutor::new(threads.max(1)).run(idx, &workload.queries);
    let elapsed = start.elapsed().as_secs_f64();
    let positives = answers.into_iter().filter(|&hit| hit).count();
    (workload.queries.len() as f64 / elapsed.max(1e-12), positives)
}

/// Cross-checks that an index answers exactly like the BFS ground truth on
/// every query of a workload; returns the first mismatch, if any.
pub fn validate_against_bfs(
    prep: &PreparedNetwork,
    idx: &dyn RangeReachIndex,
    workload: &Workload,
) -> Option<(gsr_graph::VertexId, gsr_geo::Rect)> {
    workload
        .queries
        .iter()
        .find(|(v, r)| idx.query(*v, r) != prep.range_reach_bfs(*v, r))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_datagen::workload::WorkloadGen;
    use gsr_graph::stats::DegreeBucket;

    #[test]
    fn every_method_matches_bfs_on_a_generated_dataset() {
        let cfg = Config { scale: 0.05, queries: 40, seed: 11, threads: 1 };
        let ds = Dataset::from_spec(&NetworkSpec::yelp(cfg.scale));
        let gen = WorkloadGen::new(&ds.prep);
        let workload =
            gen.extent_degree(5.0, DegreeBucket::PAPER_BUCKETS[0], cfg.queries, cfg.seed);
        for method in ALL_METHODS {
            for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
                if policy == SccSpatialPolicy::Mbr && !method.supports_mbr() {
                    continue;
                }
                let idx = method.build(&ds.prep, policy);
                assert_eq!(
                    validate_against_bfs(&ds.prep, idx.as_ref(), &workload),
                    None,
                    "{} {:?} disagrees with BFS",
                    method.name(),
                    policy
                );
            }
        }
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let ds = Dataset::from_spec(&NetworkSpec::yelp(0.05));
        let gen = WorkloadGen::new(&ds.prep);
        let workload = gen.extent_degree(5.0, DegreeBucket::PAPER_BUCKETS[0], 64, 4);
        let idx = MethodKind::ThreeDReach.build(&ds.prep, SccSpatialPolicy::Replicate);
        let sequential = run_workload(idx.as_ref(), &workload);
        for threads in [1, 2, 4] {
            let (qps, positives) = run_workload_parallel(idx.as_ref(), &workload, threads);
            assert_eq!(positives, sequential.positives, "threads={threads}");
            assert!(qps > 0.0);
        }
    }

    #[test]
    fn latency_profile_is_ordered() {
        let ds = Dataset::from_spec(&NetworkSpec::weeplaces(0.05));
        let gen = WorkloadGen::new(&ds.prep);
        let workload = gen.extent_degree(5.0, DegreeBucket::PAPER_BUCKETS[0], 50, 4);
        let idx = MethodKind::SpaReachBfl.build(&ds.prep, SccSpatialPolicy::Replicate);
        let p = run_workload_latencies(idx.as_ref(), &workload);
        assert!(p.p50_micros <= p.p95_micros);
        assert!(p.p95_micros <= p.p99_micros);
        assert!(p.p99_micros <= p.max_micros);
        assert!(p.avg_micros > 0.0);
    }

    #[test]
    fn run_workload_counts_positives() {
        let ds = Dataset::from_spec(&NetworkSpec::weeplaces(0.05));
        let gen = WorkloadGen::new(&ds.prep);
        let workload = gen.extent_degree(20.0, DegreeBucket::PAPER_BUCKETS[0], 25, 3);
        let idx = MethodKind::ThreeDReach.build(&ds.prep, SccSpatialPolicy::Replicate);
        let result = run_workload(idx.as_ref(), &workload);
        assert_eq!(result.total, 25);
        let expected = workload
            .queries
            .iter()
            .filter(|(v, r)| ds.prep.range_reach_bfs(*v, r))
            .count();
        assert_eq!(result.positives, expected);
        assert!(result.avg_micros >= 0.0);
    }
}
