//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation (Section 6) on the synthetic dataset analogs.
//!
//! The `repro` binary is the entry point:
//!
//! ```text
//! cargo run --release -p gsr-bench --bin repro -- all
//! cargo run --release -p gsr-bench --bin repro -- table4 --scale 1.0 --queries 1000
//! ```
//!
//! Each experiment prints the same rows/series the paper reports; see
//! EXPERIMENTS.md for the paper-vs-measured comparison.

// `deny` rather than `forbid`: the `alloc_track` module implements
// `GlobalAlloc`, which is unavoidably unsafe, behind a scoped allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_track;
pub mod chaos;
pub mod experiments;
pub mod harness;
pub mod loadtest;
pub mod shard;
pub mod table;

pub use alloc_track::allocation_count;
pub use harness::{Config, Dataset, MethodKind, ALL_METHODS};
