//! **Extension**: an open-loop load generator for `gsr-server`.
//!
//! Every other measurement in this crate is *closed-loop*: one caller
//! issues a query, waits for the answer, then issues the next. Closed
//! loops famously understate tail latency through *coordinated omission* —
//! when the server stalls, the generator stops sending, so the stall is
//! recorded once instead of once per request that *would* have arrived.
//! An online service with millions of independent users has no such mercy:
//! load keeps arriving at its own rate regardless of how the server feels.
//!
//! This module replays Section 6.1-style `REACH` workloads against a real
//! TCP `gsr-server` at a **fixed offered rate** on a deterministic
//! schedule. Request `n` (of `total`, round-robined over `K` pipelined
//! clients) has the *intended* start time `start + n / rate`; the writer
//! sleeps until that instant and then sends, and recorded latency is
//! always `completion − intended start`. A stalled server therefore
//! inflates the recorded latency of every request scheduled during the
//! stall — queueing delay is charged to the server, never silently
//! absorbed by the generator.
//!
//! Correctness is first-class: every generated query is pre-answered by a
//! freshly built in-process oracle index via [`BatchExecutor`], and every
//! server reply is checked against it. A load test that returns wrong
//! answers fails loudly, not fast.
//!
//! The sweep driver steps the offered rate up a geometric schedule until
//! p99 blows past a threshold, `RESET`-ing the server's counters between
//! steps and reconciling its `STATS` tallies (queries, errors, cache
//! hits/misses) against the driver's own counts after each step.
//!
//! After the sweep, an **overload step** ([`run_overload`]) drives the
//! server past its `--max-conns` admission limit: while persistent
//! "holder" clients replay the trace at the base rate, a burst of one-shot
//! "flooder" connections arrives all at once. Admission control must turn
//! the excess away with `ERR 7 busy` at the door — and the driver proves
//! it did, reconciling its own count of busy replies against the server's
//! `shed=`/`rejected=` counters and checking that the held connections'
//! p99 stayed under the bound while the flood raged.

use crate::harness::{Config, Dataset, MethodKind};
use crate::table::TextTable;
use gsr_core::hist::LatencyHistogram;
use gsr_core::methods::ThreeDReach;
use gsr_core::{
    partition_tiles, tile_network, BatchExecutor, PreparedNetwork, RangeReachIndex,
    SccSpatialPolicy, ShardMember, ShardedIndex,
};
use gsr_datagen::workload::{Workload, WorkloadGen};
use gsr_datagen::NetworkSpec;
use gsr_graph::stats::DegreeBucket;
use gsr_server::{QueryServer, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a server reply relates to the oracle's expected answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyOutcome {
    /// `TRUE`/`FALSE`, agreeing with the oracle.
    Ok,
    /// An `ERR` (or otherwise unparseable) reply line.
    Err,
    /// `TRUE`/`FALSE`, *disagreeing* with the oracle — the worst outcome.
    Mismatch,
}

/// A thread-safe latency-and-outcome recorder: the workspace-shared
/// [`LatencyHistogram`] plus completion/error/mismatch tallies. One lives
/// in each client; merged recorders report step-level quantiles.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    hist: LatencyHistogram,
    completed: AtomicU64,
    errors: AtomicU64,
    mismatches: AtomicU64,
}

impl LatencyRecorder {
    /// Records one reply: its latency and how it compared to the oracle.
    pub fn record(&self, latency_us: u64, outcome: ReplyOutcome) {
        self.hist.record_us(latency_us);
        self.completed.fetch_add(1, Ordering::Relaxed);
        match outcome {
            ReplyOutcome::Ok => {}
            ReplyOutcome::Err => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            ReplyOutcome::Mismatch => {
                self.mismatches.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Folds another recorder's histogram and tallies into this one.
    pub fn merge_from(&self, other: &LatencyRecorder) {
        self.hist.merge_from(&other.hist);
        self.completed.fetch_add(other.completed(), Ordering::Relaxed);
        self.errors.fetch_add(other.errors(), Ordering::Relaxed);
        self.mismatches.fetch_add(other.mismatches(), Ordering::Relaxed);
    }

    /// Replies recorded (including errors and mismatches).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// `ERR` replies recorded.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Oracle disagreements recorded.
    pub fn mismatches(&self) -> u64 {
        self.mismatches.load(Ordering::Relaxed)
    }

    /// Latency quantile over everything recorded so far (microseconds,
    /// bucket upper bound).
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.hist.quantile_us(q)
    }
}

/// A replayable trace: pre-rendered request lines plus the oracle's answer
/// for each. Rendering once up front keeps the send path allocation-free
/// and — because `f64`'s `Display` round-trips through `parse` — every
/// replay of query `i` is byte-identical, so the server's result cache
/// sees one key per distinct query.
#[derive(Debug, Clone)]
pub struct ReplayPlan {
    /// `REACH ...\n` lines, one per workload query.
    pub lines: Vec<String>,
    /// The oracle's answer to each line, same order.
    pub expected: Vec<bool>,
}

impl ReplayPlan {
    /// Renders a workload and answers every query through `oracle` (a
    /// fresh, independently built index) with [`BatchExecutor`].
    pub fn from_workload(workload: &Workload, oracle: &dyn RangeReachIndex) -> ReplayPlan {
        let lines = workload
            .queries
            .iter()
            .map(|(v, r)| format!("REACH {v} {} {} {} {}\n", r.min_x, r.min_y, r.max_x, r.max_y))
            .collect();
        let expected = BatchExecutor::new(1).run(oracle, &workload.queries);
        ReplayPlan { lines, expected }
    }

    /// Number of distinct queries in the trace.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the trace holds no queries.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// The deterministic schedule: request `n`'s intended start time at
/// `rate_qps` offered queries per second.
pub fn intended_start(start: Instant, n: u64, rate_qps: f64) -> Instant {
    start + Duration::from_secs_f64(n as f64 / rate_qps.max(1e-9))
}

/// One client's reply tallies, for per-worker balance reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientTally {
    /// Replies received by this client.
    pub completed: u64,
    /// `ERR` replies among them.
    pub errors: u64,
    /// Oracle disagreements among them.
    pub mismatches: u64,
}

/// One measured generator run (open- or closed-loop): the pooled recorder,
/// per-client tallies, and the wall clock from the schedule origin to the
/// last reply.
#[derive(Debug)]
pub struct LoopMeasurement {
    /// All clients' samples, merged.
    pub recorder: LatencyRecorder,
    /// Per-client reply tallies, index = client id.
    pub per_client: Vec<ClientTally>,
    /// Requests written to the sockets.
    pub sent: u64,
    /// Schedule origin to last reply.
    pub elapsed: Duration,
}

/// Parameters of one generator run against an already-running server.
#[derive(Debug, Clone, Copy)]
pub struct LoopSpec<'a> {
    /// Server address.
    pub addr: SocketAddr,
    /// The trace to replay (cycled when `total` exceeds its length).
    pub plan: &'a ReplayPlan,
    /// Concurrent TCP clients; request `n` goes to client `n % clients`.
    /// The server's worker pool must be at least this large — each worker
    /// owns one connection until EOF.
    pub clients: usize,
    /// Offered rate, queries per second across all clients.
    pub rate_qps: f64,
    /// Total requests to send.
    pub total: u64,
}

pub(crate) fn classify(reply: &str, expected: bool) -> ReplyOutcome {
    match reply {
        "TRUE" if expected => ReplyOutcome::Ok,
        "FALSE" if !expected => ReplyOutcome::Ok,
        "TRUE" | "FALSE" => ReplyOutcome::Mismatch,
        _ => ReplyOutcome::Err,
    }
}

/// Socket read timeout: generously past any deliberate test stall, but
/// finite so a wedged server fails the run instead of hanging it.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(60);

fn connect(addr: SocketAddr, c: usize) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("client {c}: connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// The open-loop writer: sends each of the client's requests at its
/// intended start (sleeping ahead of schedule, never skipping behind it),
/// then half-closes so the server replies to everything and EOFs the
/// reader. A saturated server exerts TCP backpressure here — the writer
/// may block — but accounting uses intended starts, so that queueing
/// delay shows up as recorded latency rather than vanishing.
fn open_writer(
    mut stream: TcpStream,
    spec: &LoopSpec<'_>,
    c: usize,
    start: Instant,
) -> Result<u64, String> {
    let len = spec.plan.len() as u64;
    let mut sent = 0u64;
    let mut n = c as u64;
    while n < spec.total {
        let at = intended_start(start, n, spec.rate_qps);
        let now = Instant::now();
        if at > now {
            std::thread::sleep(at - now);
        }
        let line = &spec.plan.lines[(n % len) as usize];
        stream.write_all(line.as_bytes()).map_err(|e| format!("client {c}: write: {e}"))?;
        sent += 1;
        n += spec.clients as u64;
    }
    let _ = stream.shutdown(Shutdown::Write);
    Ok(sent)
}

/// The reader half: consumes reply lines until EOF. Reply `j` of client
/// `c` answers global request `j * clients + c` — the protocol is strictly
/// one reply per request, in order — which pins down both the expected
/// answer and the intended start to measure against.
fn open_reader(
    stream: TcpStream,
    spec: &LoopSpec<'_>,
    c: usize,
    start: Instant,
    rec: &LatencyRecorder,
) -> Result<(), String> {
    let _ = stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT));
    let len = spec.plan.len() as u64;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut j = 0u64;
    loop {
        line.clear();
        let n_read = reader.read_line(&mut line).map_err(|e| format!("client {c}: read: {e}"))?;
        if n_read == 0 {
            return Ok(());
        }
        let n = j * spec.clients as u64 + c as u64;
        let latency = Instant::now().saturating_duration_since(intended_start(start, n, spec.rate_qps));
        let latency_us = latency.as_micros().min(u64::MAX as u128) as u64;
        let expected = spec.plan.expected[(n % len) as usize];
        rec.record(latency_us, classify(line.trim_end(), expected));
        j += 1;
    }
}

/// Runs the open-loop generator: per client, a writer thread pacing the
/// deterministic schedule and a reader thread recording
/// `completion − intended start`. Returns the pooled measurement.
pub fn run_open_loop(spec: &LoopSpec<'_>) -> Result<LoopMeasurement, String> {
    if spec.clients == 0 {
        return Err("loadtest: need at least one client".into());
    }
    if spec.plan.is_empty() {
        return Err("loadtest: empty replay plan".into());
    }
    let recorders: Vec<LatencyRecorder> =
        (0..spec.clients).map(|_| LatencyRecorder::default()).collect();
    let mut streams = Vec::with_capacity(spec.clients);
    for c in 0..spec.clients {
        streams.push(connect(spec.addr, c)?);
    }
    // A small lead keeps request 0's intended start in the future, so the
    // schedule is not already late before the first write.
    let start = Instant::now() + Duration::from_millis(5);

    let sent = std::thread::scope(|s| -> Result<u64, String> {
        let mut writers = Vec::with_capacity(spec.clients);
        let mut readers = Vec::with_capacity(spec.clients);
        for (c, stream) in streams.iter().enumerate() {
            let w = stream.try_clone().map_err(|e| format!("client {c}: clone: {e}"))?;
            let r = stream.try_clone().map_err(|e| format!("client {c}: clone: {e}"))?;
            let rec = &recorders[c];
            writers.push(s.spawn(move || open_writer(w, spec, c, start)));
            readers.push(s.spawn(move || open_reader(r, spec, c, start, rec)));
        }
        let mut sent = 0u64;
        for h in writers {
            sent += h.join().map_err(|_| "loadtest: writer thread panicked".to_string())??;
        }
        for h in readers {
            h.join().map_err(|_| "loadtest: reader thread panicked".to_string())??;
        }
        Ok(sent)
    })?;
    let elapsed = start.elapsed();

    let pooled = LatencyRecorder::default();
    let mut per_client = Vec::with_capacity(spec.clients);
    for rec in &recorders {
        pooled.merge_from(rec);
        per_client.push(ClientTally {
            completed: rec.completed(),
            errors: rec.errors(),
            mismatches: rec.mismatches(),
        });
    }
    Ok(LoopMeasurement { recorder: pooled, per_client, sent, elapsed })
}

/// Runs the same trace *closed-loop* for comparison: each client sends a
/// request no earlier than its intended start but never before the
/// previous reply arrived, and latency is measured from the **actual**
/// send. This is the coordinated-omission-prone measurement the module
/// exists to replace — during a server stall the generator simply stops
/// sending, so the stall is recorded once instead of once per request the
/// schedule owed. Kept for the regression test that pins that gap.
pub fn run_closed_loop(spec: &LoopSpec<'_>) -> Result<LoopMeasurement, String> {
    if spec.clients == 0 {
        return Err("loadtest: need at least one client".into());
    }
    if spec.plan.is_empty() {
        return Err("loadtest: empty replay plan".into());
    }
    let recorders: Vec<LatencyRecorder> =
        (0..spec.clients).map(|_| LatencyRecorder::default()).collect();
    let start = Instant::now() + Duration::from_millis(5);

    let sent = std::thread::scope(|s| -> Result<u64, String> {
        let mut handles = Vec::with_capacity(spec.clients);
        for (c, rec) in recorders.iter().enumerate() {
            handles.push(s.spawn(move || -> Result<u64, String> {
                let mut stream = connect(spec.addr, c)?;
                let _ = stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT));
                let reader_half =
                    stream.try_clone().map_err(|e| format!("client {c}: clone: {e}"))?;
                let mut reader = BufReader::new(reader_half);
                let len = spec.plan.len() as u64;
                let mut line = String::new();
                let mut sent = 0u64;
                let mut n = c as u64;
                while n < spec.total {
                    let at = intended_start(start, n, spec.rate_qps);
                    let now = Instant::now();
                    if at > now {
                        std::thread::sleep(at - now);
                    }
                    let send_at = Instant::now();
                    let q = (n % len) as usize;
                    stream
                        .write_all(spec.plan.lines[q].as_bytes())
                        .map_err(|e| format!("client {c}: write: {e}"))?;
                    sent += 1;
                    line.clear();
                    let n_read =
                        reader.read_line(&mut line).map_err(|e| format!("client {c}: read: {e}"))?;
                    if n_read == 0 {
                        return Err(format!("client {c}: server closed mid-trace"));
                    }
                    let latency_us =
                        send_at.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    rec.record(latency_us, classify(line.trim_end(), spec.plan.expected[q]));
                    n += spec.clients as u64;
                }
                let _ = stream.shutdown(Shutdown::Write);
                Ok(sent)
            }));
        }
        let mut sent = 0u64;
        for h in handles {
            sent += h.join().map_err(|_| "loadtest: client thread panicked".to_string())??;
        }
        Ok(sent)
    })?;
    let elapsed = start.elapsed();

    let pooled = LatencyRecorder::default();
    let mut per_client = Vec::with_capacity(spec.clients);
    for rec in &recorders {
        pooled.merge_from(rec);
        per_client.push(ClientTally {
            completed: rec.completed(),
            errors: rec.errors(),
            mismatches: rec.mismatches(),
        });
    }
    Ok(LoopMeasurement { recorder: pooled, per_client, sent, elapsed })
}

/// Sends one control command (`RESET\n`, `STATS\n`) on its own short-lived
/// connection and returns the single reply line. Control connections are
/// strictly sequential with the load clients, so they never compete for
/// the server's one-worker-per-connection pool.
pub(crate) fn control_roundtrip(addr: SocketAddr, command: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("control connect: {e}"))?;
    let _ = stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT));
    stream.write_all(command.as_bytes()).map_err(|e| format!("control write: {e}"))?;
    let _ = stream.shutdown(Shutdown::Write);
    let mut reply = String::new();
    stream.read_to_string(&mut reply).map_err(|e| format!("control read: {e}"))?;
    Ok(reply.trim_end().to_string())
}

/// Extracts `key=value` from a `STATS` reply line.
pub(crate) fn stat_u64(reply: &str, key: &str) -> Result<u64, String> {
    reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
        .ok_or_else(|| format!("STATS reply missing {key}=: {reply:?}"))?
        .parse()
        .map_err(|_| format!("STATS {key} is not a number: {reply:?}"))
}

/// One rate step of a sweep: what was offered, what came back, and the
/// server's own view of the same interval.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Offered rate, queries per second.
    pub offered_qps: f64,
    /// Achieved rate: replies per second of wall clock.
    pub achieved_qps: f64,
    /// Requests sent.
    pub sent: u64,
    /// Replies received.
    pub completed: u64,
    /// `ERR` replies.
    pub errors: u64,
    /// Oracle disagreements.
    pub mismatches: u64,
    /// Median recorded latency (µs, intended-start accounting).
    pub p50_us: u64,
    /// 99th-percentile recorded latency (µs).
    pub p99_us: u64,
    /// 99.9th-percentile recorded latency (µs).
    pub p999_us: u64,
    /// Replies per client, index = client id (worker balance).
    pub per_client_completed: Vec<u64>,
    /// The server's `queries=` counter for this step.
    pub server_queries: u64,
    /// The server's `errors=` counter for this step.
    pub server_errors: u64,
    /// The server's `cache_hits=` counter for this step.
    pub cache_hits: u64,
    /// The server's `cache_misses=` counter for this step.
    pub cache_misses: u64,
    /// Result-cache hit rate over this step (0 when the cache is off).
    pub cache_hit_rate: f64,
    /// Wall clock of the step, milliseconds.
    pub elapsed_ms: f64,
}

impl StepResult {
    /// Cross-checks the driver's tallies against the server's counters:
    /// every request answered exactly once, the error counts agree, and —
    /// with the cache enabled — every query probed the cache exactly once.
    /// Any daylight between the two sides means lost or duplicated
    /// replies, so callers should fail loudly on `Err`.
    pub fn reconcile(&self, cache_enabled: bool) -> Result<(), String> {
        if self.mismatches > 0 {
            return Err(format!("{} replies disagree with the oracle", self.mismatches));
        }
        if self.sent != self.completed {
            return Err(format!("sent {} requests but got {} replies", self.sent, self.completed));
        }
        if self.server_queries != self.completed {
            return Err(format!(
                "server counted {} queries, driver received {} replies",
                self.server_queries, self.completed
            ));
        }
        if self.server_errors != self.errors {
            return Err(format!(
                "server counted {} errors, driver saw {}",
                self.server_errors, self.errors
            ));
        }
        if cache_enabled && self.cache_hits + self.cache_misses != self.server_queries {
            return Err(format!(
                "cache probes ({} hits + {} misses) != {} queries",
                self.cache_hits, self.cache_misses, self.server_queries
            ));
        }
        Ok(())
    }
}

/// Sweep configuration; see [`run_sweep`].
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Concurrent pipelined clients (default 4).
    pub clients: usize,
    /// Duration of each rate step, milliseconds (default 1000).
    pub duration_ms: u64,
    /// Offered rate of the first step, queries per second (default 1000).
    pub base_rate_qps: f64,
    /// Multiplier between steps (default 2.0).
    pub growth: f64,
    /// Hard cap on the number of steps (default 6).
    pub max_steps: usize,
    /// Minimum steps before the p99 stop-rule may end the sweep (default
    /// 4), so a sweep always maps out part of the curve.
    pub min_steps: usize,
    /// Stop once a step's p99 exceeds this, microseconds (default 100 ms).
    pub p99_stop_us: u64,
    /// Whether the server under test has its result cache enabled (drives
    /// the cache-probe reconciliation check).
    pub cache_enabled: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            clients: 4,
            duration_ms: 1000,
            base_rate_qps: 1000.0,
            growth: 2.0,
            max_steps: 6,
            min_steps: 4,
            p99_stop_us: 100_000,
            cache_enabled: true,
        }
    }
}

/// Runs one rate step: `RESET`s the server's counters, drives the
/// open-loop generator for the step's duration, then reconciles against a
/// fresh `STATS` snapshot.
pub fn run_step(
    addr: SocketAddr,
    plan: &ReplayPlan,
    rate_qps: f64,
    opts: &SweepOptions,
) -> Result<StepResult, String> {
    let reset = control_roundtrip(addr, "RESET\n")?;
    if reset != "OK reset" {
        return Err(format!("RESET failed: {reset:?}"));
    }
    let total = ((rate_qps * opts.duration_ms as f64 / 1000.0).round() as u64).max(1);
    let spec = LoopSpec { addr, plan, clients: opts.clients, rate_qps, total };
    let m = run_open_loop(&spec)?;
    let stats = control_roundtrip(addr, "STATS\n")?;

    let completed = m.recorder.completed();
    let elapsed_s = m.elapsed.as_secs_f64().max(1e-9);
    let cache_hits = stat_u64(&stats, "cache_hits")?;
    let cache_misses = stat_u64(&stats, "cache_misses")?;
    let probes = cache_hits + cache_misses;
    let step = StepResult {
        offered_qps: rate_qps,
        achieved_qps: completed as f64 / elapsed_s,
        sent: m.sent,
        completed,
        errors: m.recorder.errors(),
        mismatches: m.recorder.mismatches(),
        p50_us: m.recorder.quantile_us(0.50),
        p99_us: m.recorder.quantile_us(0.99),
        p999_us: m.recorder.quantile_us(0.999),
        per_client_completed: m.per_client.iter().map(|t| t.completed).collect(),
        server_queries: stat_u64(&stats, "queries")?,
        server_errors: stat_u64(&stats, "errors")?,
        cache_hits,
        cache_misses,
        cache_hit_rate: if probes == 0 { 0.0 } else { cache_hits as f64 / probes as f64 },
        elapsed_ms: m.elapsed.as_secs_f64() * 1000.0,
    };
    Ok(step)
}

/// Sweeps the offered rate up a geometric schedule
/// (`base_rate_qps * growth^i`), stopping early once p99 exceeds the
/// threshold — but never before `min_steps` steps, so the result always
/// shows the shape of the latency-under-throughput curve.
pub fn run_sweep(
    addr: SocketAddr,
    plan: &ReplayPlan,
    opts: &SweepOptions,
) -> Result<Vec<StepResult>, String> {
    let mut steps = Vec::new();
    for i in 0..opts.max_steps.max(1) {
        let rate = opts.base_rate_qps * opts.growth.powi(i as i32);
        let step = run_step(addr, plan, rate, opts)?;
        let saturated = step.p99_us > opts.p99_stop_us;
        steps.push(step);
        if saturated && steps.len() >= opts.min_steps {
            break;
        }
    }
    Ok(steps)
}

/// How one flooder connection ended: turned away at the door, or admitted
/// and eventually answered.
#[derive(Debug, Clone, Copy)]
enum FloodOutcome {
    /// First reply line was `ERR 7 busy ...` — admission control shed it.
    Busy,
    /// The server answered the query; how it compared to the oracle.
    Served(ReplyOutcome),
}

/// One flooder: connect, send a single query, half-close, and read the one
/// reply line that decides its fate. A generous read timeout lets a
/// flooder that was admitted-but-queued wait for a worker to free up, so
/// every flooder ends in exactly one tallied outcome and the request/reply
/// ledger still balances.
fn flood_once(
    addr: SocketAddr,
    f: usize,
    line: &str,
    expected: bool,
) -> Result<FloodOutcome, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("flooder {f}: connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT));
    stream.write_all(line.as_bytes()).map_err(|e| format!("flooder {f}: write: {e}"))?;
    let _ = stream.shutdown(Shutdown::Write);
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let n =
        reader.read_line(&mut reply).map_err(|e| format!("flooder {f}: read: {e}"))?;
    if n == 0 {
        return Err(format!("flooder {f}: connection closed with no reply at all"));
    }
    let reply = reply.trim_end();
    if reply.starts_with(&format!("ERR {} busy", gsr_server::proto::BUSY_ERR)) {
        Ok(FloodOutcome::Busy)
    } else {
        Ok(FloodOutcome::Served(classify(reply, expected)))
    }
}

/// The overload step's ledger: what the flood offered, what the server
/// turned away, and what happened to the traffic it kept serving.
#[derive(Debug, Clone)]
pub struct OverloadResult {
    /// Offered rate of the held (served) clients, queries per second.
    pub offered_qps: f64,
    /// Persistent connections replaying the trace through the flood.
    pub holders: usize,
    /// One-shot connections hurled at the server all at once.
    pub flooders: usize,
    /// Flooders answered `ERR 7 busy` and turned away at the door.
    pub busy: u64,
    /// Flooders admitted and answered (possibly after queueing).
    pub flooder_served: u64,
    /// Requests the holders sent.
    pub holder_sent: u64,
    /// Replies the holders received.
    pub holder_completed: u64,
    /// `ERR` replies that were not busy-shedding, across both populations.
    pub errors: u64,
    /// Oracle disagreements, across both populations.
    pub mismatches: u64,
    /// Holder median latency under flood (µs, intended-start accounting).
    pub served_p50_us: u64,
    /// Holder p99 under flood (µs).
    pub served_p99_us: u64,
    /// Holder p99.9 under flood (µs).
    pub served_p999_us: u64,
    /// Bound `served_p99_us` must stay under for the step to pass.
    pub served_p99_bound_us: u64,
    /// The server's `queries=` counter for the step.
    pub server_queries: u64,
    /// The server's `shed=` counter (pending queue full).
    pub server_shed: u64,
    /// The server's `rejected=` counter (`--max-conns` reached).
    pub server_rejected: u64,
    /// Wall clock of the step, milliseconds.
    pub elapsed_ms: f64,
}

impl OverloadResult {
    /// Fraction of flooders turned away at the door.
    pub fn shed_rate(&self) -> f64 {
        if self.flooders == 0 {
            0.0
        } else {
            self.busy as f64 / self.flooders as f64
        }
    }

    /// Cross-checks the overload ledger: every connection ended in exactly
    /// one outcome, the driver's busy tally equals the server's
    /// `shed + rejected`, the flood actually got shed (an absorbed flood
    /// means admission control never engaged), answers stayed
    /// oracle-correct, and the held clients' p99 stayed under the bound.
    pub fn reconcile(&self) -> Result<(), String> {
        if self.mismatches > 0 {
            return Err(format!("{} replies disagree with the oracle", self.mismatches));
        }
        if self.errors > 0 {
            return Err(format!("{} non-busy ERR replies under flood", self.errors));
        }
        if self.holder_sent != self.holder_completed {
            return Err(format!(
                "holders sent {} requests but got {} replies",
                self.holder_sent, self.holder_completed
            ));
        }
        if self.busy + self.flooder_served != self.flooders as u64 {
            return Err(format!(
                "{} flooders, but {} busy + {} served",
                self.flooders, self.busy, self.flooder_served
            ));
        }
        if self.busy != self.server_shed + self.server_rejected {
            return Err(format!(
                "driver saw {} busy replies, server counted shed={} + rejected={}",
                self.busy, self.server_shed, self.server_rejected
            ));
        }
        if self.busy == 0 {
            return Err("the flood was never shed — admission control did not engage".into());
        }
        if self.server_queries != self.holder_completed + self.flooder_served {
            return Err(format!(
                "server counted {} queries, driver received {} + {} replies",
                self.server_queries, self.holder_completed, self.flooder_served
            ));
        }
        if self.served_p99_us > self.served_p99_bound_us {
            return Err(format!(
                "served p99 {} µs exceeded the {} µs bound under flood",
                self.served_p99_us, self.served_p99_bound_us
            ));
        }
        Ok(())
    }
}

/// Runs the overload step against a server whose `--max-conns` admits the
/// holder clients with only a couple of slots to spare: `RESET`s the
/// counters, starts an open-loop holder run at the base rate, waits until
/// every holder connection is live (observed through the `STATS live=`
/// gauge — while the polling control connection is being served, `live`
/// counts the holders plus itself), then launches `4 * (clients + 2)`
/// concurrent flooders and reconciles the combined ledger against the
/// server's counters.
pub fn run_overload(
    addr: SocketAddr,
    plan: &ReplayPlan,
    opts: &SweepOptions,
) -> Result<OverloadResult, String> {
    if plan.is_empty() {
        return Err("overload: empty replay plan".into());
    }
    let reset = control_roundtrip(addr, "RESET\n")?;
    if reset != "OK reset" {
        return Err(format!("RESET failed: {reset:?}"));
    }
    let rate_qps = opts.base_rate_qps;
    let total = ((rate_qps * opts.duration_ms as f64 / 1000.0).round() as u64).max(1);
    let spec = LoopSpec { addr, plan, clients: opts.clients, rate_qps, total };
    let flooders = (opts.clients + 2) * 4;

    let t0 = Instant::now();
    let (m, flood) = std::thread::scope(
        |s| -> Result<(LoopMeasurement, Vec<FloodOutcome>), String> {
            let holders = s.spawn(|| run_open_loop(&spec));
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let stats = control_roundtrip(addr, "STATS\n")?;
                if stat_u64(&stats, "live")? > spec.clients as u64 {
                    break;
                }
                if Instant::now() > deadline {
                    return Err("overload: holder connections never became live".into());
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let mut handles = Vec::with_capacity(flooders);
            for f in 0..flooders {
                let q = f % plan.len();
                let line = &plan.lines[q];
                let expected = plan.expected[q];
                handles.push(s.spawn(move || flood_once(addr, f, line, expected)));
            }
            let mut flood = Vec::with_capacity(flooders);
            for h in handles {
                flood.push(
                    h.join().map_err(|_| "overload: flooder thread panicked".to_string())??,
                );
            }
            let m = holders
                .join()
                .map_err(|_| "overload: holder loop panicked".to_string())??;
            Ok((m, flood))
        },
    )?;
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let stats = control_roundtrip(addr, "STATS\n")?;
    let mut busy = 0u64;
    let mut flooder_served = 0u64;
    let mut errors = m.recorder.errors();
    let mut mismatches = m.recorder.mismatches();
    for outcome in &flood {
        match outcome {
            FloodOutcome::Busy => busy += 1,
            FloodOutcome::Served(ReplyOutcome::Ok) => flooder_served += 1,
            FloodOutcome::Served(ReplyOutcome::Err) => {
                flooder_served += 1;
                errors += 1;
            }
            FloodOutcome::Served(ReplyOutcome::Mismatch) => {
                flooder_served += 1;
                mismatches += 1;
            }
        }
    }
    Ok(OverloadResult {
        offered_qps: rate_qps,
        holders: opts.clients,
        flooders,
        busy,
        flooder_served,
        holder_sent: m.sent,
        holder_completed: m.recorder.completed(),
        errors,
        mismatches,
        served_p50_us: m.recorder.quantile_us(0.50),
        served_p99_us: m.recorder.quantile_us(0.99),
        served_p999_us: m.recorder.quantile_us(0.999),
        served_p99_bound_us: opts.p99_stop_us,
        server_queries: stat_u64(&stats, "queries")?,
        server_shed: stat_u64(&stats, "shed")?,
        server_rejected: stat_u64(&stats, "rejected")?,
        elapsed_ms,
    })
}

/// CLI-settable options of the `repro loadtest` experiment.
#[derive(Debug, Clone, Copy)]
pub struct LoadtestOptions {
    /// Concurrent pipelined clients.
    pub clients: usize,
    /// Per-step duration, milliseconds.
    pub duration_ms: u64,
    /// Offered rate (first step's rate when sweeping), queries per second.
    pub rate_qps: f64,
    /// Sweep the rate geometrically instead of measuring one step.
    pub sweep: bool,
    /// Server result-cache capacity (0 disables it).
    pub cache_entries: usize,
    /// Spatial shards for the side-by-side comparison run (`<= 1` = no
    /// comparison). With `N > 1` the sweep runs twice — once against the
    /// single index, once against an N-shard [`ShardedIndex`] over the same
    /// dataset — and both series land in `BENCH_loadtest.json`.
    pub shards: usize,
}

impl Default for LoadtestOptions {
    fn default() -> Self {
        LoadtestOptions {
            clients: 4,
            duration_ms: 1000,
            rate_qps: 1000.0,
            sweep: false,
            cache_entries: 4096,
            shards: 1,
        }
    }
}

/// The sharded half of a sharded-vs-unsharded comparison: the same sweep,
/// served by an N-shard [`ShardedIndex`] instead of the single index.
#[derive(Debug, Clone)]
pub struct ShardComparison {
    /// Shard count of the comparison index.
    pub shards: usize,
    /// The sharded server's sweep, same rate schedule as the baseline.
    pub steps: Vec<StepResult>,
}

/// Partitions the dataset into `shards` spatial tiles and builds one
/// 3DReach index per tile, assembled into a scatter-gather router.
fn build_sharded_index(
    prep: &PreparedNetwork,
    shards: usize,
    threads: usize,
) -> Result<ShardedIndex, String> {
    let tiles = partition_tiles(prep.network(), shards);
    let mut members = Vec::with_capacity(tiles.len());
    for tile in &tiles {
        let net = tile_network(prep.network(), tile)
            .map_err(|e| format!("loadtest: shard build: {e}"))?;
        let tile_prep = PreparedNetwork::new(net);
        members.push(ShardMember {
            index: Arc::new(ThreeDReach::build_threaded(
                &tile_prep,
                SccSpatialPolicy::Replicate,
                threads,
            )),
            mbr: tile.mbr,
        });
    }
    ShardedIndex::new(members).map_err(|e| format!("loadtest: shard build: {e}"))
}

/// Binds a fresh loopback server over `index`, drives the sweep (and the
/// overload step when asked), and tears the server down.
fn serve_and_sweep(
    index: Arc<dyn RangeReachIndex>,
    plan: &ReplayPlan,
    opts: &LoadtestOptions,
    sweep_opts: &SweepOptions,
    with_overload: bool,
) -> Result<(Vec<StepResult>, Option<OverloadResult>), String> {
    let server = QueryServer::bind(
        ("127.0.0.1", 0),
        index,
        ServerConfig {
            threads: opts.clients + 1,
            budget: None,
            cache_entries: opts.cache_entries,
            // Real admission headroom: the pipelined clients, one slot for
            // the sequential control connections, and one spare so a
            // just-closed connection's server-side teardown can straddle
            // the next step's connects without a spurious rejection.
            max_conns: opts.clients + 2,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("loadtest: bind: {e}"))?;
    let addr = server.local_addr();
    let token = server.cancel_token();
    let handle = std::thread::spawn(move || server.run());

    let outcome = run_sweep(addr, plan, sweep_opts).and_then(|steps| {
        if with_overload {
            run_overload(addr, plan, sweep_opts).map(|o| (steps, Some(o)))
        } else {
            Ok((steps, None))
        }
    });

    token.cancel();
    let _ = handle.join();
    outcome
}

/// **Extension**: the full open-loop saturation experiment.
///
/// Generates the Yelp-analog dataset at `cfg.scale`, builds one 3DReach
/// index for serving and a *second, independent* 3DReach build as the
/// oracle, starts a real TCP [`QueryServer`] on a loopback port (worker
/// pool sized `clients + 1` so every pipelined client owns a worker, with
/// `max_conns` two past the client count so admission control is real but
/// the sweep itself never sheds), and drives the sweep followed by the
/// overload step. Every step must reconcile; the caller decides how loudly
/// to fail on mismatches via [`StepResult::reconcile`] and
/// [`OverloadResult::reconcile`].
///
/// With `opts.shards > 1` the same sweep then runs a second time against a
/// fresh server holding an N-shard [`ShardedIndex`] over the same dataset
/// (replies still checked against the single-index oracle), returned as
/// the [`ShardComparison`].
pub fn run_experiment(
    cfg: &Config,
    opts: &LoadtestOptions,
) -> Result<(TextTable, Vec<StepResult>, OverloadResult, Option<ShardComparison>), String> {
    let ds = Dataset::from_spec(&NetworkSpec::yelp(cfg.scale));
    let gen = WorkloadGen::new(&ds.prep);
    let workload = gen.extent_degree(
        crate::experiments::DEFAULT_EXTENT,
        DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX],
        cfg.queries.max(1),
        cfg.seed,
    );
    let oracle =
        MethodKind::ThreeDReach.build(&ds.prep, SccSpatialPolicy::Replicate);
    let plan = ReplayPlan::from_workload(&workload, oracle.as_ref());

    let serve_index: Arc<dyn RangeReachIndex> = Arc::new(ThreeDReach::build_threaded(
        &ds.prep,
        SccSpatialPolicy::Replicate,
        cfg.threads,
    ));
    let sweep_opts = SweepOptions {
        clients: opts.clients,
        duration_ms: opts.duration_ms,
        base_rate_qps: opts.rate_qps,
        max_steps: if opts.sweep { SweepOptions::default().max_steps } else { 1 },
        min_steps: if opts.sweep { SweepOptions::default().min_steps } else { 1 },
        cache_enabled: opts.cache_entries > 0,
        ..SweepOptions::default()
    };
    let (steps, overload) = serve_and_sweep(serve_index, &plan, opts, &sweep_opts, true)?;
    let overload = overload.ok_or_else(|| "loadtest: overload step missing".to_string())?;

    let sharded = if opts.shards > 1 {
        let index = build_sharded_index(&ds.prep, opts.shards, cfg.threads)?;
        let (sharded_steps, _) =
            serve_and_sweep(Arc::new(index), &plan, opts, &sweep_opts, false)?;
        Some(ShardComparison { shards: opts.shards, steps: sharded_steps })
    } else {
        None
    };

    let mut table = TextTable::new([
        "index",
        "offered_qps",
        "achieved_qps",
        "p50_us",
        "p99_us",
        "p999_us",
        "errors",
        "mismatches",
        "hit_rate",
        "balance",
    ]);
    let mut emit_rows = |label: &str, steps: &[StepResult]| {
        for s in steps {
            let min = s.per_client_completed.iter().min().copied().unwrap_or(0);
            let max = s.per_client_completed.iter().max().copied().unwrap_or(0);
            table.row([
                label.to_string(),
                format!("{:.0}", s.offered_qps),
                format!("{:.0}", s.achieved_qps),
                s.p50_us.to_string(),
                s.p99_us.to_string(),
                s.p999_us.to_string(),
                s.errors.to_string(),
                s.mismatches.to_string(),
                format!("{:.3}", s.cache_hit_rate),
                format!("{min}/{max}"),
            ]);
        }
    };
    emit_rows("single", &steps);
    if let Some(sh) = &sharded {
        emit_rows(&format!("shard{}", sh.shards), &sh.steps);
    }
    Ok((table, steps, overload, sharded))
}

/// One step as a JSON object (no indent, no trailing comma).
fn step_json(p: &StepResult) -> String {
    let per_client: Vec<String> = p.per_client_completed.iter().map(u64::to_string).collect();
    format!(
        "{{\"offered_qps\": {:.1}, \"achieved_qps\": {:.1}, \"sent\": {}, \
         \"completed\": {}, \"errors\": {}, \"mismatches\": {}, \
         \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \
         \"per_client_completed\": [{}], \"elapsed_ms\": {:.1}}}",
        p.offered_qps,
        p.achieved_qps,
        p.sent,
        p.completed,
        p.errors,
        p.mismatches,
        p.p50_us,
        p.p99_us,
        p.p999_us,
        p.cache_hits,
        p.cache_misses,
        p.cache_hit_rate,
        per_client.join(", "),
        p.elapsed_ms,
    )
}

/// Renders the sweep (and, when present, the overload step and the
/// sharded-vs-unsharded comparison) as the `BENCH_loadtest.json` artifact.
pub fn loadtest_json(
    cfg: &Config,
    opts: &LoadtestOptions,
    steps: &[StepResult],
    overload: Option<&OverloadResult>,
    sharded: Option<&ShardComparison>,
) -> String {
    let mut s = String::from("{\n  \"experiment\": \"loadtest\",\n");
    s.push_str(&format!(
        "  \"scale\": {}, \"queries\": {}, \"seed\": {}, \"clients\": {}, \
         \"duration_ms\": {}, \"cache_entries\": {}, \"sweep\": {},\n  \"steps\": [\n",
        cfg.scale,
        cfg.queries,
        cfg.seed,
        opts.clients,
        opts.duration_ms,
        opts.cache_entries,
        opts.sweep,
    ));
    for (i, p) in steps.iter().enumerate() {
        s.push_str(&format!(
            "    {}{}\n",
            step_json(p),
            if i + 1 == steps.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]");
    if let Some(sh) = sharded {
        s.push_str(&format!(",\n  \"sharded\": {{\"shards\": {}, \"steps\": [\n", sh.shards));
        for (i, p) in sh.steps.iter().enumerate() {
            s.push_str(&format!(
                "    {}{}\n",
                step_json(p),
                if i + 1 == sh.steps.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]}");
    }
    if let Some(o) = overload {
        s.push_str(&format!(
            ",\n  \"overload\": {{\"offered_qps\": {:.1}, \"holders\": {}, \
             \"flooders\": {}, \"busy\": {}, \"flooder_served\": {}, \
             \"shed_rate\": {:.4}, \"holder_completed\": {}, \"errors\": {}, \
             \"mismatches\": {}, \"served_p50_us\": {}, \"served_p99_us\": {}, \
             \"served_p999_us\": {}, \"server_shed\": {}, \"server_rejected\": {}, \
             \"server_queries\": {}, \"elapsed_ms\": {:.1}}}\n}}\n",
            o.offered_qps,
            o.holders,
            o.flooders,
            o.busy,
            o.flooder_served,
            o.shed_rate(),
            o.holder_completed,
            o.errors,
            o.mismatches,
            o.served_p50_us,
            o.served_p99_us,
            o.served_p999_us,
            o.server_shed,
            o.server_rejected,
            o.server_queries,
            o.elapsed_ms,
        ));
    } else {
        s.push_str("\n}\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_monotone() {
        let start = Instant::now();
        // 1000 qps: request n starts exactly n ms after the origin.
        for n in 0..100u64 {
            let t = intended_start(start, n, 1000.0);
            assert_eq!(t - start, Duration::from_micros(n * 1000));
        }
        assert!(intended_start(start, 5, 100.0) < intended_start(start, 6, 100.0));
        // The schedule depends only on (n, rate), never on send times.
        assert_eq!(
            intended_start(start, 42, 250.0) - start,
            Duration::from_millis(168),
        );
    }

    #[test]
    fn round_robin_covers_every_request_exactly_once() {
        let total = 103u64;
        for clients in [1usize, 2, 4, 5] {
            let mut seen = vec![0u32; total as usize];
            for c in 0..clients {
                let mut n = c as u64;
                while n < total {
                    seen[n as usize] += 1;
                    n += clients as u64;
                }
            }
            assert!(seen.iter().all(|&k| k == 1), "clients={clients}");
        }
    }

    #[test]
    fn classify_checks_against_the_oracle() {
        assert_eq!(classify("TRUE", true), ReplyOutcome::Ok);
        assert_eq!(classify("FALSE", false), ReplyOutcome::Ok);
        assert_eq!(classify("TRUE", false), ReplyOutcome::Mismatch);
        assert_eq!(classify("FALSE", true), ReplyOutcome::Mismatch);
        assert_eq!(classify("ERR 4 invalid query", true), ReplyOutcome::Err);
        assert_eq!(classify("", false), ReplyOutcome::Err);
    }

    #[test]
    fn recorder_merge_pools_counts() {
        let a = LatencyRecorder::default();
        let b = LatencyRecorder::default();
        a.record(10, ReplyOutcome::Ok);
        a.record(20, ReplyOutcome::Err);
        b.record(1000, ReplyOutcome::Mismatch);
        let pooled = LatencyRecorder::default();
        pooled.merge_from(&a);
        pooled.merge_from(&b);
        assert_eq!(pooled.completed(), 3);
        assert_eq!(pooled.errors(), 1);
        assert_eq!(pooled.mismatches(), 1);
        assert_eq!(pooled.quantile_us(1.0), 1023);
    }

    #[test]
    fn stat_parsing_reads_the_stats_line() {
        let line = "STATS queries=12 errors=3 p50_us=7 p99_us=9 p999_us=11 \
                    index_bytes=100 cache_hits=4 cache_misses=8 cache_evictions=0";
        assert_eq!(stat_u64(line, "queries"), Ok(12));
        assert_eq!(stat_u64(line, "p999_us"), Ok(11));
        assert_eq!(stat_u64(line, "cache_hits"), Ok(4));
        assert!(stat_u64(line, "nope").is_err());
    }

    #[test]
    fn replay_plan_renders_round_trippable_lines() {
        use gsr_core::paper_example;
        let prep = paper_example::prepared();
        let r = paper_example::query_region();
        let workload = Workload {
            label: "t".into(),
            queries: vec![(paper_example::A, r), (paper_example::C, r)],
        };
        let oracle = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let plan = ReplayPlan::from_workload(&workload, &oracle);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.expected, vec![true, false]);
        for (line, (v, rect)) in plan.lines.iter().zip(&workload.queries) {
            assert!(line.ends_with('\n'));
            let parsed = gsr_server::proto::parse_line(line.trim_end());
            assert_eq!(
                parsed,
                Ok(Some(gsr_server::proto::Request::Reach(*v, *rect))),
                "rendered line must parse back to the exact query"
            );
        }
    }

    #[test]
    fn reconcile_rejects_daylight() {
        let ok = StepResult {
            offered_qps: 100.0,
            achieved_qps: 99.0,
            sent: 10,
            completed: 10,
            errors: 0,
            mismatches: 0,
            p50_us: 1,
            p99_us: 2,
            p999_us: 3,
            per_client_completed: vec![5, 5],
            server_queries: 10,
            server_errors: 0,
            cache_hits: 4,
            cache_misses: 6,
            cache_hit_rate: 0.4,
            elapsed_ms: 101.0,
        };
        assert_eq!(ok.reconcile(true), Ok(()));
        let mut bad = ok.clone();
        bad.mismatches = 1;
        assert!(bad.reconcile(true).is_err());
        let mut bad = ok.clone();
        bad.server_queries = 9;
        assert!(bad.reconcile(true).is_err());
        let mut bad = ok.clone();
        bad.cache_hits = 5;
        assert!(bad.reconcile(true).is_err());
        assert_eq!(bad.reconcile(false), Ok(()), "no cache, no probe invariant");
    }

    #[test]
    fn json_shape_is_stable() {
        let cfg = Config::default();
        let opts = LoadtestOptions::default();
        let step = StepResult {
            offered_qps: 1000.0,
            achieved_qps: 998.5,
            sent: 1000,
            completed: 1000,
            errors: 0,
            mismatches: 0,
            p50_us: 255,
            p99_us: 1023,
            p999_us: 2047,
            per_client_completed: vec![250, 250, 250, 250],
            server_queries: 1000,
            server_errors: 0,
            cache_hits: 900,
            cache_misses: 100,
            cache_hit_rate: 0.9,
            elapsed_ms: 1001.5,
        };
        let json = loadtest_json(&cfg, &opts, std::slice::from_ref(&step), None, None);
        assert!(json.contains("\"experiment\": \"loadtest\""));
        assert!(json.contains("\"p999_us\": 2047"));
        assert!(json.contains("\"per_client_completed\": [250, 250, 250, 250]"));
        assert!(json.ends_with("  ]\n}\n"));

        let json =
            loadtest_json(&cfg, &opts, std::slice::from_ref(&step), Some(&balanced_overload()), None);
        assert!(json.contains("\"overload\": {\"offered_qps\": 500.0"));
        assert!(json.contains("\"shed_rate\": 0.8750"));
        assert!(json.contains("\"server_rejected\": 14"));
        assert!(json.ends_with("}\n}\n"));

        // The sharded comparison nests between the baseline steps and the
        // overload ledger.
        let sharded = ShardComparison { shards: 4, steps: vec![step.clone()] };
        let json =
            loadtest_json(&cfg, &opts, &[step], Some(&balanced_overload()), Some(&sharded));
        assert!(json.contains("\"sharded\": {\"shards\": 4, \"steps\": ["));
        let shard_at = json.find("\"sharded\"").unwrap();
        let overload_at = json.find("\"overload\"").unwrap();
        assert!(shard_at < overload_at, "sharded block precedes overload");
        assert!(json.ends_with("}\n}\n"));
    }

    /// An overload ledger in which every cross-check balances.
    fn balanced_overload() -> OverloadResult {
        OverloadResult {
            offered_qps: 500.0,
            holders: 2,
            flooders: 16,
            busy: 14,
            flooder_served: 2,
            holder_sent: 100,
            holder_completed: 100,
            errors: 0,
            mismatches: 0,
            served_p50_us: 300,
            served_p99_us: 2000,
            served_p999_us: 4000,
            served_p99_bound_us: 100_000,
            server_queries: 102,
            server_shed: 0,
            server_rejected: 14,
            elapsed_ms: 250.0,
        }
    }

    #[test]
    fn overload_reconcile_rejects_daylight() {
        let ok = balanced_overload();
        assert_eq!(ok.reconcile(), Ok(()));
        assert!((ok.shed_rate() - 0.875).abs() < 1e-12);

        let mut bad = ok.clone();
        bad.mismatches = 1;
        assert!(bad.reconcile().is_err(), "oracle disagreement must fail");
        let mut bad = ok.clone();
        bad.errors = 1;
        assert!(bad.reconcile().is_err(), "non-busy ERR must fail");
        let mut bad = ok.clone();
        bad.flooder_served = 3;
        assert!(bad.reconcile().is_err(), "outcomes must partition the flooders");
        let mut bad = ok.clone();
        bad.server_rejected = 13;
        assert!(bad.reconcile().is_err(), "busy tally must match shed+rejected");
        let mut bad = ok.clone();
        bad.busy = 0;
        bad.flooder_served = 16;
        bad.server_rejected = 0;
        bad.server_queries = 116;
        assert!(bad.reconcile().is_err(), "an absorbed flood means no admission control");
        let mut bad = ok.clone();
        bad.server_queries = 103;
        assert!(bad.reconcile().is_err(), "server query count must match served replies");
        let mut bad = ok.clone();
        bad.served_p99_us = bad.served_p99_bound_us + 1;
        assert!(bad.reconcile().is_err(), "served p99 must stay under the bound");
    }
}
