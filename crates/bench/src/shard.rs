//! **Extension**: the sharded scatter-gather routing experiment behind
//! `repro shard`.
//!
//! Spatial-tile sharding only pays if the router can *skip* shards: a
//! query whose rectangle misses a shard's MBR needs no probe there, and a
//! probe that answers `TRUE` ends the query without touching the remaining
//! shards. This experiment proves both effects on the Yelp-analog dataset:
//! for each shard count it partitions the check-ins with
//! [`gsr_core::partition_tiles`], builds one independent 3DReach index per
//! tile, replays the Section 6.1-style workload through the
//! [`ShardedIndex`] scatter path, and cross-checks **every** answer
//! against a single-index oracle. The emitted `BENCH_shard.json` records,
//! per shard count, the probes executed, the probes pruned by MBR
//! disjointness, the average shards probed per query (the headline: it
//! must stay below the shard count), throughput against the unsharded
//! baseline, and a mismatch tally that any non-zero value fails.

use crate::harness::{Config, Dataset};
use crate::table::TextTable;
use gsr_core::methods::ThreeDReach;
use gsr_core::{
    partition_tiles, tile_network, BatchExecutor, PreparedNetwork, RangeReachIndex,
    SccSpatialPolicy, ShardMember, ShardedIndex,
};
use gsr_datagen::workload::WorkloadGen;
use gsr_datagen::NetworkSpec;
use gsr_graph::stats::DegreeBucket;
use std::sync::Arc;
use std::time::Instant;

/// Shard counts the experiment sweeps, smallest first. `1` is the
/// degenerate single-tile router, which pins the scatter-gather overhead
/// against the raw single-index baseline.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One shard count's measurements.
#[derive(Debug, Clone)]
pub struct ShardPoint {
    /// Shards the dataset was partitioned into.
    pub shards: usize,
    /// Wall-clock to partition and build all per-tile indexes, ms.
    pub build_ms: f64,
    /// Queries replayed.
    pub queries: u64,
    /// Replayed queries answered differently from the single-index oracle
    /// (must be 0).
    pub mismatches: u64,
    /// Shard probes executed (post MBR pruning, pre short-circuit).
    pub probes: u64,
    /// Shard probes skipped because the shard MBR missed the rectangle.
    pub pruned: u64,
    /// `probes / queries` — the pruning headline; `< shards` means the
    /// router is skipping work.
    pub avg_shards_probed: f64,
    /// Scatter-path throughput, queries per second.
    pub qps: f64,
    /// Per-shard p99 of sub-batch probe wall time, microseconds.
    pub probe_p99_us: Vec<u64>,
    /// Sum of the per-tile index heap footprints, bytes.
    pub index_bytes: u64,
}

/// Builds the N-shard router over `prep` (one 3DReach per spatial tile).
fn build_sharded(
    prep: &PreparedNetwork,
    shards: usize,
    threads: usize,
) -> Result<ShardedIndex, String> {
    let tiles = partition_tiles(prep.network(), shards);
    let mut members = Vec::with_capacity(tiles.len());
    for tile in &tiles {
        let net =
            tile_network(prep.network(), tile).map_err(|e| format!("shard: tile: {e}"))?;
        let tile_prep = PreparedNetwork::new(net);
        members.push(ShardMember {
            index: Arc::new(ThreeDReach::build_threaded(
                &tile_prep,
                SccSpatialPolicy::Replicate,
                threads,
            )),
            mbr: tile.mbr,
        });
    }
    ShardedIndex::new(members).map_err(|e| format!("shard: assemble: {e}"))
}

/// Runs the experiment: one [`ShardPoint`] per entry of [`SHARD_COUNTS`],
/// plus the unsharded baseline throughput all points are compared against.
/// Returns `(table, baseline_qps, points)`.
pub fn run_experiment(cfg: &Config) -> Result<(TextTable, f64, Vec<ShardPoint>), String> {
    let ds = Dataset::from_spec(&NetworkSpec::yelp(cfg.scale));
    let gen = WorkloadGen::new(&ds.prep);
    let workload = gen.extent_degree(
        crate::experiments::DEFAULT_EXTENT,
        DegreeBucket::PAPER_BUCKETS[DegreeBucket::DEFAULT_INDEX],
        cfg.queries.max(1),
        cfg.seed,
    );
    let exec = BatchExecutor::new(cfg.threads);

    // The oracle is also the unsharded baseline: same method, same policy,
    // same executor — so the qps comparison isolates the routing layer.
    let oracle = ThreeDReach::build_threaded(&ds.prep, SccSpatialPolicy::Replicate, cfg.threads);
    let t = Instant::now();
    let expected = exec.run(&oracle, &workload.queries);
    let baseline_qps = workload.queries.len() as f64 / t.elapsed().as_secs_f64().max(1e-9);

    let mut points = Vec::with_capacity(SHARD_COUNTS.len());
    for &n in &SHARD_COUNTS {
        let t = Instant::now();
        let sharded = build_sharded(&ds.prep, n, cfg.threads)?;
        let build_ms = t.elapsed().as_secs_f64() * 1000.0;

        sharded.reset_shard_stats();
        let t = Instant::now();
        let answers = sharded.scatter(&exec, &workload.queries);
        let qps = workload.queries.len() as f64 / t.elapsed().as_secs_f64().max(1e-9);

        let mismatches =
            answers.iter().zip(&expected).filter(|(got, want)| got != want).count() as u64;
        let stats = sharded
            .shard_stats()
            .ok_or_else(|| "shard: router reported no shard stats".to_string())?;
        points.push(ShardPoint {
            shards: n,
            build_ms,
            queries: workload.queries.len() as u64,
            mismatches,
            probes: stats.probes,
            pruned: stats.pruned,
            avg_shards_probed: stats.probes as f64 / workload.queries.len().max(1) as f64,
            qps,
            probe_p99_us: stats.probe_p99_us,
            index_bytes: sharded.index_bytes() as u64,
        });
    }

    let mut table = TextTable::new([
        "shards",
        "build_ms",
        "qps",
        "vs_single",
        "avg_probed",
        "probes",
        "pruned",
        "mismatches",
        "index_MB",
    ]);
    for p in &points {
        table.row([
            p.shards.to_string(),
            format!("{:.0}", p.build_ms),
            format!("{:.0}", p.qps),
            format!("{:.2}x", p.qps / baseline_qps.max(1e-9)),
            format!("{:.2}", p.avg_shards_probed),
            p.probes.to_string(),
            p.pruned.to_string(),
            p.mismatches.to_string(),
            format!("{:.2}", p.index_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    Ok((table, baseline_qps, points))
}

/// Renders the sweep as the `BENCH_shard.json` artifact. The
/// `"mismatches"` fields use the same spelling as `BENCH_loadtest.json`,
/// so the same `grep '"mismatches": [^0]'` smoke check covers both.
pub fn shard_json(cfg: &Config, baseline_qps: f64, points: &[ShardPoint]) -> String {
    let mut s = String::from("{\n  \"experiment\": \"shard\",\n");
    s.push_str(&format!(
        "  \"scale\": {}, \"queries\": {}, \"seed\": {}, \"threads\": {}, \
         \"single_index_qps\": {:.1},\n  \"results\": [\n",
        cfg.scale, cfg.queries, cfg.seed, cfg.threads, baseline_qps,
    ));
    for (i, p) in points.iter().enumerate() {
        let p99s: Vec<String> = p.probe_p99_us.iter().map(u64::to_string).collect();
        s.push_str(&format!(
            "    {{\"shards\": {}, \"build_ms\": {:.1}, \"queries\": {}, \
             \"mismatches\": {}, \"probes\": {}, \"pruned\": {}, \
             \"avg_shards_probed\": {:.3}, \"qps\": {:.1}, \
             \"probe_p99_us\": [{}], \"index_bytes\": {}}}{}\n",
            p.shards,
            p.build_ms,
            p.queries,
            p.mismatches,
            p.probes,
            p.pruned,
            p.avg_shards_probed,
            p.qps,
            p99s.join(", "),
            p.index_bytes,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let cfg = Config::default();
        let p = ShardPoint {
            shards: 4,
            build_ms: 12.5,
            queries: 1000,
            mismatches: 0,
            probes: 1800,
            pruned: 2200,
            avg_shards_probed: 1.8,
            qps: 52000.0,
            probe_p99_us: vec![15, 31, 31, 63],
            index_bytes: 4096,
        };
        let json = shard_json(&cfg, 48000.0, std::slice::from_ref(&p));
        assert!(json.contains("\"experiment\": \"shard\""));
        assert!(json.contains("\"single_index_qps\": 48000.0"));
        assert!(json.contains("\"avg_shards_probed\": 1.800"));
        assert!(json.contains("\"probe_p99_us\": [15, 31, 31, 63]"));
        assert!(json.contains("\"mismatches\": 0"));
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn tiny_run_agrees_with_the_oracle_and_prunes() {
        let cfg = Config { scale: 0.02, queries: 64, ..Config::default() };
        let (_table, baseline_qps, points) = run_experiment(&cfg).expect("shard experiment");
        assert!(baseline_qps > 0.0);
        assert_eq!(points.len(), SHARD_COUNTS.len());
        for p in &points {
            assert_eq!(p.mismatches, 0, "{} shards disagreed with the oracle", p.shards);
            assert!(
                p.avg_shards_probed <= p.shards as f64,
                "probed more shards than exist at {}",
                p.shards
            );
            assert_eq!(p.probe_p99_us.len(), p.shards);
        }
        // With real partitioning, MBR pruning must actually fire.
        let multi = points.iter().find(|p| p.shards > 1).expect("multi-shard point");
        assert!(
            multi.avg_shards_probed < multi.shards as f64,
            "no pruning at {} shards: avg {}",
            multi.shards,
            multi.avg_shards_probed
        );
    }
}
