//! Minimal aligned-text table rendering for the harness output.

/// A simple text table: a header row plus data rows, rendered with
/// per-column alignment. Numeric-looking cells are right-aligned.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one data row (padded or truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table; every line ends with `\n`.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let numeric: Vec<bool> = (0..cols)
            .map(|i| {
                !self.rows.is_empty()
                    && self.rows.iter().all(|r| {
                        let c = r[i].trim();
                        c.is_empty()
                            || c.chars().next().is_some_and(|ch| ch.is_ascii_digit() || ch == '-')
                    })
                    && i != 0
            })
            .collect();

        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if numeric[i] {
                    out.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
                    out.push_str(cell);
                } else {
                    out.push_str(cell);
                    if i + 1 < cells.len() {
                        out.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
                    }
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// Renders as CSV (comma-separated, quotes around commas-in-cells).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Formats a byte count as MB with three significant-ish digits, matching
/// the style of Table 4.
pub fn fmt_mb(bytes: usize) -> String {
    let mb = bytes as f64 / 1_000_000.0;
    if mb >= 100.0 {
        format!("{mb:.0}")
    } else if mb >= 10.0 {
        format!("{mb:.1}")
    } else {
        format!("{mb:.2}")
    }
}

/// Formats a duration in seconds (Table 5 style).
pub fn fmt_secs(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 10.0 {
        format!("{s:.1}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.3}")
    }
}

/// Formats an average per-query time in microseconds.
pub fn fmt_micros(micros: f64) -> String {
    if micros >= 1000.0 {
        format!("{micros:.0}")
    } else if micros >= 10.0 {
        format!("{micros:.1}")
    } else {
        format!("{micros:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["dataset", "value"]);
        t.row(["Foursquare", "123"]);
        t.row(["Yelp", "7"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[2].ends_with("123"));
        assert!(lines[3].ends_with("  7"), "numeric column right-aligned: {:?}", lines[3]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["x,y", "has \"quote\""]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"has \"\"quote\"\"\""));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only".to_string()]);
        assert_eq!(t.len(), 1);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_mb(28_600_000), "28.6");
        assert_eq!(fmt_mb(7_880_000), "7.88");
        assert_eq!(fmt_mb(240_000_000), "240");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1370)), "1.37");
        assert_eq!(fmt_micros(3.144), "3.14");
        assert_eq!(fmt_micros(1234.6), "1235");
    }
}
