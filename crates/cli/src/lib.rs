//! Implementation of the `gsr` command-line tool.
//!
//! ```text
//! gsr generate --preset foursquare --scale 0.5 --out network.gsr
//! gsr stats network.gsr
//! gsr query network.gsr --method 3dreach --vertex 12 --rect 10,10,50,50
//! gsr query network.gsr --method all < queries.txt
//! gsr report network.gsr --vertex 12 --rect 10,10,50,50
//! ```
//!
//! The `query` subcommand without `--vertex/--rect` reads one query per
//! stdin line: `<vertex> <min_x> <min_y> <max_x> <max_y>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gsr_core::methods::{
    GeoReach, SocReach, SpaReachBfl, SpaReachInt, ThreeDReach, ThreeDReachRev, ThreeDReporter,
};
use gsr_core::{PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
use gsr_datagen::{io, NetworkSpec};
use gsr_geo::Rect;
use std::io::BufRead;
use std::path::PathBuf;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `gsr generate --preset P --scale S --out FILE`
    Generate {
        /// Dataset preset name.
        preset: String,
        /// Scale factor (1.0 ≈ 1% of the paper's sizes).
        scale: f64,
        /// Output path.
        out: PathBuf,
    },
    /// `gsr stats FILE`
    Stats {
        /// Network file.
        file: PathBuf,
    },
    /// `gsr query FILE [--method M] [--threads T] [--vertex V --rect X0,Y0,X1,Y1]`
    Query {
        /// Network file.
        file: PathBuf,
        /// Method name or `all`.
        method: String,
        /// Worker threads for index construction (`0` = machine
        /// parallelism). The built indexes are identical at any count.
        threads: usize,
        /// One-shot query (otherwise stdin).
        one: Option<(u32, Rect)>,
    },
    /// `gsr report FILE --vertex V --rect X0,Y0,X1,Y1`
    Report {
        /// Network file.
        file: PathBuf,
        /// Query vertex.
        vertex: u32,
        /// Query region.
        rect: Rect,
    },
}

/// CLI errors with user-facing messages.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
usage:
  gsr generate --preset <foursquare|gowalla|weeplaces|yelp> [--scale S] --out FILE
  gsr stats FILE
  gsr query FILE [--method <3dreach|3dreach-rev|spareach-bfl|spareach-int|georeach|socreach|all>]
                 [--threads T]                     (build workers; 0 = all cores)
                 [--vertex V --rect X0,Y0,X1,Y1]   (otherwise queries from stdin)
  gsr report FILE --vertex V --rect X0,Y0,X1,Y1
";

/// Parses a `x0,y0,x1,y1` rectangle.
pub fn parse_rect(s: &str) -> Result<Rect, CliError> {
    let parts: Vec<f64> = s
        .split(',')
        .map(|p| p.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| err(format!("invalid rect {s:?}; expected X0,Y0,X1,Y1")))?;
    if parts.len() != 4 || parts[0] > parts[2] || parts[1] > parts[3] {
        return Err(err(format!("invalid rect {s:?}; expected X0,Y0,X1,Y1 with X0<=X1, Y0<=Y1")));
    }
    Ok(Rect::new(parts[0], parts[1], parts[2], parts[3]))
}

/// Parses the argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = it.next().ok_or_else(|| err(USAGE))?;

    // Collect positionals and --flags.
    let mut positional: Vec<&String> = Vec::new();
    let mut flags: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().ok_or_else(|| err(format!("--{name} needs a value")))?;
            flags.insert(name.to_string(), value.clone());
        } else {
            positional.push(a);
        }
    }
    let flag = |name: &str| flags.get(name).cloned();

    match sub.as_str() {
        "generate" => {
            let preset = flag("preset").ok_or_else(|| err("generate needs --preset"))?;
            let scale = flag("scale").map(|s| s.parse()).transpose()
                .map_err(|_| err("--scale must be a number"))?
                .unwrap_or(1.0);
            let out = flag("out").ok_or_else(|| err("generate needs --out"))?;
            Ok(Command::Generate { preset, scale, out: PathBuf::from(out) })
        }
        "stats" => {
            let file = positional.first().ok_or_else(|| err("stats needs a FILE"))?;
            Ok(Command::Stats { file: PathBuf::from(file) })
        }
        "query" => {
            let file = positional.first().ok_or_else(|| err("query needs a FILE"))?;
            let method = flag("method").unwrap_or_else(|| "3dreach".to_string());
            let threads = flag("threads")
                .map(|t| t.parse())
                .transpose()
                .map_err(|_| err("--threads must be a non-negative integer"))?
                .unwrap_or(1);
            let one = match (flag("vertex"), flag("rect")) {
                (Some(v), Some(r)) => Some((
                    v.parse().map_err(|_| err("--vertex must be an id"))?,
                    parse_rect(&r)?,
                )),
                (None, None) => None,
                _ => return Err(err("--vertex and --rect go together")),
            };
            Ok(Command::Query { file: PathBuf::from(file), method, threads, one })
        }
        "report" => {
            let file = positional.first().ok_or_else(|| err("report needs a FILE"))?;
            let vertex = flag("vertex")
                .ok_or_else(|| err("report needs --vertex"))?
                .parse()
                .map_err(|_| err("--vertex must be an id"))?;
            let rect = parse_rect(&flag("rect").ok_or_else(|| err("report needs --rect"))?)?;
            Ok(Command::Report { file: PathBuf::from(file), vertex, rect })
        }
        other => Err(err(format!("unknown subcommand {other:?}\n{USAGE}"))),
    }
}

fn spec_for(preset: &str, scale: f64) -> Result<NetworkSpec, CliError> {
    Ok(match preset.to_ascii_lowercase().as_str() {
        "foursquare" => NetworkSpec::foursquare(scale),
        "gowalla" => NetworkSpec::gowalla(scale),
        "weeplaces" => NetworkSpec::weeplaces(scale),
        "yelp" => NetworkSpec::yelp(scale),
        other => return Err(err(format!("unknown preset {other:?}"))),
    })
}

fn build_method(
    name: &str,
    prep: &PreparedNetwork,
    threads: usize,
) -> Result<Vec<Box<dyn RangeReachIndex>>, CliError> {
    // GeoReach and SocReach have no parallel build path; the others
    // construct identical indexes at any thread count.
    let policy = SccSpatialPolicy::Replicate;
    let one = |idx: Box<dyn RangeReachIndex>| Ok(vec![idx]);
    match name.to_ascii_lowercase().as_str() {
        "3dreach" => one(Box::new(ThreeDReach::build_threaded(prep, policy, threads))),
        "3dreach-rev" => one(Box::new(ThreeDReachRev::build_threaded(prep, policy, threads))),
        "spareach-bfl" => one(Box::new(SpaReachBfl::build_threaded(prep, policy, threads))),
        "spareach-int" => one(Box::new(SpaReachInt::build_threaded(prep, policy, threads))),
        "georeach" => one(Box::new(GeoReach::build(prep))),
        "socreach" => one(Box::new(SocReach::build(prep))),
        "all" => Ok(vec![
            Box::new(SpaReachBfl::build_threaded(prep, policy, threads)),
            Box::new(SpaReachInt::build_threaded(prep, policy, threads)),
            Box::new(GeoReach::build(prep)),
            Box::new(SocReach::build(prep)),
            Box::new(ThreeDReach::build_threaded(prep, policy, threads)),
            Box::new(ThreeDReachRev::build_threaded(prep, policy, threads)),
        ]),
        other => Err(err(format!("unknown method {other:?}"))),
    }
}

fn load_prepared(file: &PathBuf) -> Result<PreparedNetwork, CliError> {
    let net = io::load_network(file).map_err(|e| err(format!("cannot load {file:?}: {e}")))?;
    Ok(PreparedNetwork::new(net))
}

/// Executes a parsed command, writing human-readable output to `out`.
pub fn run(cmd: Command, out: &mut impl std::io::Write) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Generate { preset, scale, out: path } => {
            let spec = spec_for(&preset, scale)?;
            let net = spec.generate();
            io::save_network(&net, &path)?;
            writeln!(
                out,
                "wrote {} ({} vertices, {} edges, {} spatial) to {}",
                spec.name,
                net.num_vertices(),
                net.graph().num_edges(),
                net.num_spatial(),
                path.display()
            )?;
        }
        Command::Stats { file } => {
            let prep = load_prepared(&file)?;
            let s = prep.stats();
            writeln!(out, "vertices:     {}", s.vertices)?;
            writeln!(out, "edges:        {}", s.edges)?;
            writeln!(out, "users:        {}", s.users)?;
            writeln!(out, "venues:       {}", s.venues)?;
            writeln!(out, "SCCs:         {}", s.sccs)?;
            writeln!(out, "largest SCC:  {}", s.largest_scc)?;
            writeln!(out, "space:        {}", prep.space())?;
        }
        Command::Query { file, method, threads, one } => {
            let prep = load_prepared(&file)?;
            let indexes = build_method(&method, &prep, threads)?;
            fn run_one(
                prep: &PreparedNetwork,
                indexes: &[Box<dyn RangeReachIndex>],
                v: u32,
                r: &Rect,
                out: &mut impl std::io::Write,
            ) -> Result<(), Box<dyn std::error::Error>> {
                if v as usize >= prep.network().num_vertices() {
                    writeln!(out, "vertex {v} out of range")?;
                    return Ok(());
                }
                for idx in indexes {
                    let start = std::time::Instant::now();
                    let answer = idx.query(v, r);
                    writeln!(
                        out,
                        "{}\tRangeReach({v}, {r}) = {answer}\t[{:?}]",
                        idx.name(),
                        start.elapsed()
                    )?;
                }
                Ok(())
            }
            match one {
                Some((v, r)) => run_one(&prep, &indexes, v, &r, out)?,
                None => {
                    let stdin = std::io::stdin();
                    for line in stdin.lock().lines() {
                        let line = line?;
                        let fields: Vec<&str> = line.split_whitespace().collect();
                        if fields.len() != 5 {
                            writeln!(out, "skipping malformed line: {line:?}")?;
                            continue;
                        }
                        let v: u32 = fields[0].parse()?;
                        let r = Rect::new(
                            fields[1].parse()?,
                            fields[2].parse()?,
                            fields[3].parse()?,
                            fields[4].parse()?,
                        );
                        run_one(&prep, &indexes, v, &r, out)?;
                    }
                }
            }
        }
        Command::Report { file, vertex, rect } => {
            let prep = load_prepared(&file)?;
            let reporter = ThreeDReporter::build(&prep);
            let hits = reporter.report(vertex, &rect);
            writeln!(out, "{} reachable spatial vertices inside {rect}:", hits.len())?;
            for v in hits {
                let p = prep.network().point(v).expect("reported vertices are spatial");
                writeln!(out, "  vertex {v} at {p}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_generate() {
        let cmd = parse_args(&args(&[
            "generate", "--preset", "yelp", "--scale", "0.5", "--out", "x.gsr",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate { preset: "yelp".into(), scale: 0.5, out: "x.gsr".into() }
        );
    }

    #[test]
    fn parse_query_variants() {
        let cmd = parse_args(&args(&["query", "n.gsr"])).unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                file: "n.gsr".into(),
                method: "3dreach".into(),
                threads: 1,
                one: None
            }
        );
        let cmd = parse_args(&args(&["query", "n.gsr", "--threads", "4"])).unwrap();
        assert!(matches!(cmd, Command::Query { threads: 4, .. }));
        let cmd = parse_args(&args(&[
            "query", "n.gsr", "--method", "all", "--vertex", "7", "--rect", "1,2,3,4",
        ]))
        .unwrap();
        match cmd {
            Command::Query { method, one: Some((7, r)), .. } => {
                assert_eq!(method, "all");
                assert_eq!(r, Rect::new(1.0, 2.0, 3.0, 4.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args(&["nope"])).is_err());
        assert!(parse_args(&args(&["generate", "--preset", "yelp"])).is_err());
        assert!(parse_args(&args(&["query", "f", "--vertex", "1"])).is_err(), "rect missing");
        assert!(parse_rect("1,2,3").is_err());
        assert!(parse_rect("3,3,1,1").is_err(), "inverted");
        assert!(parse_rect("a,b,c,d").is_err());
        assert!(
            parse_args(&args(&["query", "f", "--threads", "-2"])).is_err(),
            "negative thread count"
        );
    }

    #[test]
    fn end_to_end_generate_stats_query_report() {
        let dir = std::env::temp_dir().join("gsr_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("net.gsr");
        let path = file.to_string_lossy().to_string();

        let mut out = Vec::new();
        run(
            parse_args(&args(&[
                "generate", "--preset", "weeplaces", "--scale", "0.02", "--out", &path,
            ]))
            .unwrap(),
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&out).contains("wrote WeePlaces"));

        let mut out = Vec::new();
        run(parse_args(&args(&["stats", &path])).unwrap(), &mut out).unwrap();
        let text = String::from_utf8_lossy(&out).to_string();
        assert!(text.contains("vertices:"), "{text}");
        assert!(text.contains("largest SCC:"));

        let mut out = Vec::new();
        run(
            parse_args(&args(&[
                "query", &path, "--method", "all", "--threads", "2", "--vertex", "0",
                "--rect", "-1000,-1000,2000,2000",
            ]))
            .unwrap(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out).to_string();
        assert_eq!(text.matches("RangeReach(0,").count(), 6, "{text}");
        // All six methods agree on the answer.
        let trues = text.matches("= true").count();
        let falses = text.matches("= false").count();
        assert!(trues == 6 || falses == 6, "methods disagree:\n{text}");

        let mut out = Vec::new();
        run(
            parse_args(&args(&[
                "report", &path, "--vertex", "0", "--rect", "-1000,-1000,2000,2000",
            ]))
            .unwrap(),
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&out).contains("reachable spatial vertices"));

        std::fs::remove_dir_all(&dir).ok();
    }
}
