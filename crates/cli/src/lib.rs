//! Implementation of the `gsr` command-line tool.
//!
//! ```text
//! gsr generate --preset foursquare --scale 0.5 --out network.gsr
//! gsr stats network.gsr
//! gsr query network.gsr --method 3dreach --vertex 12 --rect 10,10,50,50
//! gsr query network.gsr --method all < queries.txt
//! gsr report network.gsr --vertex 12 --rect 10,10,50,50
//! gsr build network.gsr --method 3dreach --save index.snap
//! gsr build network.gsr --method 3dreach --shards 4 --save index.shards
//! gsr serve --load index.snap --port 7070 --threads 4 --budget-ms 100
//! gsr serve --load yelp=yelp.snap --load gowalla=gowalla.shards
//! ```
//!
//! The `query` subcommand without `--vertex/--rect` reads one query per
//! stdin line: `<vertex> <min_x> <min_y> <max_x> <max_y>`.
//!
//! `build` persists one built index as a `gsr-store` snapshot — with
//! `--shards N` it spatially partitions the check-ins into N tiles and
//! writes a *directory* of per-tile snapshots plus a manifest; `serve`
//! loads snapshots (no rebuild) and answers `REACH` queries over TCP
//! using the `gsr-server` text protocol. `--load` repeats: each
//! `[name=]PATH` registers one dataset, selectable per connection with
//! `USE <name>` (an unnamed single `--load` is the dataset `default`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gsr_core::methods::{
    GeoReach, SocReach, SpaReachBfl, SpaReachInt, ThreeDReach, ThreeDReachRev, ThreeDReporter,
};
use gsr_core::{
    BatchExecutor, BatchOptions, GsrError, PreparedNetwork, RangeReachIndex, SccSpatialPolicy,
};
use gsr_datagen::{io, NetworkSpec};
use gsr_geo::Rect;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `gsr generate --preset P --scale S --out FILE`
    Generate {
        /// Dataset preset name.
        preset: String,
        /// Scale factor (1.0 ≈ 1% of the paper's sizes).
        scale: f64,
        /// Output path.
        out: PathBuf,
    },
    /// `gsr stats FILE`
    Stats {
        /// Network file.
        file: PathBuf,
    },
    /// `gsr query FILE [--method M] [--threads T] [--budget-ms B]
    /// [--vertex V --rect X0,Y0,X1,Y1]`
    Query {
        /// Network file.
        file: PathBuf,
        /// Method name or `all`.
        method: String,
        /// Worker threads for index construction (`0` = machine
        /// parallelism). The built indexes are identical at any count.
        threads: usize,
        /// One-shot query (otherwise stdin).
        one: Option<(u32, Rect)>,
        /// Wall-clock budget for the whole batch in milliseconds; partial
        /// answers are printed when it expires.
        budget_ms: Option<u64>,
    },
    /// `gsr report FILE --vertex V --rect X0,Y0,X1,Y1`
    Report {
        /// Network file.
        file: PathBuf,
        /// Query vertex.
        vertex: u32,
        /// Query region.
        rect: Rect,
    },
    /// `gsr build FILE --method M --save PATH [--threads T] [--shards N]`
    Build {
        /// Network file.
        file: PathBuf,
        /// Method name (one method per snapshot; `all` is rejected).
        method: String,
        /// Worker threads for index construction.
        threads: usize,
        /// Snapshot output path (a directory when `shards > 1`).
        save: PathBuf,
        /// Spatial tiles to partition into (`1` = single unsharded
        /// snapshot). With `N > 1` the save path becomes a directory of
        /// per-tile snapshots plus a `MANIFEST.gsrshard`.
        shards: usize,
    },
    /// `gsr serve --load [name=]PATH [--port P] [--threads T] [--budget-ms B]
    /// [--cache-entries N] [--trust-snapshot] [overload limit flags]`
    Serve {
        /// Datasets to serve, in registration order: `(name, path)` where
        /// the path is a snapshot file or a sharded snapshot directory
        /// (built with `gsr build --save [--shards N]`). Connections start
        /// on the first and switch with `USE <name>`.
        loads: Vec<(String, PathBuf)>,
        /// TCP port on 127.0.0.1 (`0` = OS-assigned; the chosen port is
        /// printed on the `listening on` line).
        port: u16,
        /// Connection-handler threads (`0` = machine parallelism).
        threads: usize,
        /// Per-request time budget in milliseconds (unlimited if absent).
        budget_ms: Option<u64>,
        /// Result-cache capacity in entries (`0` = caching disabled).
        cache_entries: usize,
        /// Skip the eager CRC pass on v3 snapshot loads (startup and
        /// `RELOAD`); structural validation still runs.
        trust: bool,
        /// Overload and connection-lifecycle limits.
        limits: ServeLimits,
    },
}

/// Overload and connection-lifecycle limits of `gsr serve`, mapped 1:1
/// onto [`gsr_server::ServerConfig`]. For every limit, `0` means
/// unlimited/disabled; defaults match the server's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeLimits {
    /// `--max-pending`: accept→worker queue bound (`0` = unbounded).
    pub max_pending: usize,
    /// `--max-conns`: admitted-connection bound (`0` = unlimited).
    pub max_conns: usize,
    /// `--max-line`: request-line byte cap (`0` = unlimited).
    pub max_line: usize,
    /// `--max-batch`: pipelined-batch split point (`0` = unlimited).
    pub max_batch: usize,
    /// `--idle-timeout-ms`: reap silent connections (`None` = never).
    pub idle_timeout_ms: Option<u64>,
    /// `--write-timeout-ms`: reply write deadline (`None` = unlimited).
    pub write_timeout_ms: Option<u64>,
}

impl Default for ServeLimits {
    fn default() -> Self {
        let d = gsr_server::ServerConfig::default();
        ServeLimits {
            max_pending: d.max_pending,
            max_conns: d.max_conns,
            max_line: d.max_line,
            max_batch: d.max_batch,
            idle_timeout_ms: d.idle_timeout.map(|t| t.as_millis() as u64),
            write_timeout_ms: d.write_timeout.map(|t| t.as_millis() as u64),
        }
    }
}

/// CLI errors with user-facing messages.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
usage:
  gsr generate --preset <foursquare|gowalla|weeplaces|yelp> [--scale S] --out FILE
  gsr stats FILE
  gsr query FILE [--method <3dreach|3dreach-rev|spareach-bfl|spareach-int|georeach|socreach|all>]
                 [--threads T]                     (build workers; 0 = all cores)
                 [--budget-ms B]                   (batch time budget; partial answers on expiry)
                 [--vertex V --rect X0,Y0,X1,Y1]   (otherwise queries from stdin)
  gsr report FILE --vertex V --rect X0,Y0,X1,Y1
  gsr build FILE --method <3dreach|3dreach-rev|spareach-bfl|spareach-int|georeach|socreach>
                 --save PATH [--threads T]          (persist a built index as a snapshot)
                 [--shards N]                       (N > 1: spatially partition into N
                                                     tiles and write PATH as a directory
                                                     of per-tile snapshots + manifest)
  gsr serve --load [name=]PATH [--port P] [--threads T] [--budget-ms B] [--cache-entries N]
                 (--load repeats: each registers one dataset — snapshot file
                  or sharded directory — switched per connection with USE <name>;
                  a lone unnamed --load is the dataset \"default\")
                 [--trust-snapshot]                 (skip the eager CRC pass on v3
                                                     loads; structural checks remain)
                 [--max-pending N] [--max-conns N]  (admission control; over-limit
                                                     connections get ERR 7 busy)
                 [--max-line BYTES] [--max-batch N] (request-line / pipeline caps)
                 [--idle-timeout-ms MS]             (reap silent connections)
                 [--write-timeout-ms MS]            (reply write deadline)
                 (serve REACH/STATS/RESET/RELOAD/SHUTDOWN lines over TCP from
                  a snapshot; N > 0 enables the sharded result cache; 0 for
                  any limit means unlimited/disabled)
";

/// Validates four raw coordinates as a query rectangle: all finite, minima
/// not exceeding maxima. The shared boundary for `--rect` and stdin lines.
fn validated_rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Result<Rect, CliError> {
    if [x0, y0, x1, y1].iter().any(|c| !c.is_finite()) {
        return Err(err(format!("rect ({x0}, {y0}, {x1}, {y1}) has a non-finite coordinate")));
    }
    if x0 > x1 || y0 > y1 {
        return Err(err(format!(
            "rect ({x0}, {y0}, {x1}, {y1}) is inverted; expected X0<=X1 and Y0<=Y1"
        )));
    }
    Ok(Rect::new(x0, y0, x1, y1))
}

/// Parses one stdin query line `<vertex> <x0> <y0> <x1> <y1>`. Blank
/// lines and `#` comments yield `Ok(None)`.
fn parse_query_line(line: &str) -> Result<Option<(u32, Rect)>, CliError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let fields: Vec<&str> = trimmed.split_whitespace().collect();
    if fields.len() != 5 {
        return Err(err(format!("expected `<vertex> <x0> <y0> <x1> <y1>`, got {line:?}")));
    }
    let v: u32 =
        fields[0].parse().map_err(|_| err(format!("bad vertex id {:?}", fields[0])))?;
    let mut coords = [0.0f64; 4];
    for (slot, field) in coords.iter_mut().zip(&fields[1..]) {
        *slot = field.parse().map_err(|_| err(format!("bad coordinate {field:?}")))?;
    }
    let rect = validated_rect(coords[0], coords[1], coords[2], coords[3])?;
    Ok(Some((v, rect)))
}

/// Parses a `x0,y0,x1,y1` rectangle, rejecting non-finite or inverted
/// extrema.
pub fn parse_rect(s: &str) -> Result<Rect, CliError> {
    let parts: Vec<f64> = s
        .split(',')
        .map(|p| p.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| err(format!("invalid rect {s:?}; expected X0,Y0,X1,Y1")))?;
    if parts.len() != 4 {
        return Err(err(format!("invalid rect {s:?}; expected X0,Y0,X1,Y1")));
    }
    validated_rect(parts[0], parts[1], parts[2], parts[3])
        .map_err(|e| err(format!("invalid rect {s:?}: {e}")))
}

/// Parses the argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = it.next().ok_or_else(|| err(USAGE))?;

    // Collect positionals and --flags. `--load` is repeatable (one dataset
    // per occurrence) so it accumulates in order instead of overwriting.
    let mut positional: Vec<&String> = Vec::new();
    let mut flags: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut load_specs: Vec<String> = Vec::new();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            // Boolean flags take no value; everything else consumes one.
            if name == "trust-snapshot" {
                flags.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| err(format!("--{name} needs a value")))?;
            if name == "load" {
                load_specs.push(value.clone());
            } else {
                flags.insert(name.to_string(), value.clone());
            }
        } else {
            positional.push(a);
        }
    }
    let flag = |name: &str| flags.get(name).cloned();

    match sub.as_str() {
        "generate" => {
            let preset = flag("preset").ok_or_else(|| err("generate needs --preset"))?;
            let scale = flag("scale").map(|s| s.parse()).transpose()
                .map_err(|_| err("--scale must be a number"))?
                .unwrap_or(1.0);
            let out = flag("out").ok_or_else(|| err("generate needs --out"))?;
            Ok(Command::Generate { preset, scale, out: PathBuf::from(out) })
        }
        "stats" => {
            let file = positional.first().ok_or_else(|| err("stats needs a FILE"))?;
            Ok(Command::Stats { file: PathBuf::from(file) })
        }
        "query" => {
            let file = positional.first().ok_or_else(|| err("query needs a FILE"))?;
            let method = flag("method").unwrap_or_else(|| "3dreach".to_string());
            let threads = flag("threads")
                .map(|t| t.parse())
                .transpose()
                .map_err(|_| err("--threads must be a non-negative integer"))?
                .unwrap_or(1);
            let one = match (flag("vertex"), flag("rect")) {
                (Some(v), Some(r)) => Some((
                    v.parse().map_err(|_| err("--vertex must be an id"))?,
                    parse_rect(&r)?,
                )),
                (None, None) => None,
                _ => return Err(err("--vertex and --rect go together")),
            };
            let budget_ms = flag("budget-ms")
                .map(|b| b.parse())
                .transpose()
                .map_err(|_| err("--budget-ms must be a non-negative integer"))?;
            Ok(Command::Query { file: PathBuf::from(file), method, threads, one, budget_ms })
        }
        "report" => {
            let file = positional.first().ok_or_else(|| err("report needs a FILE"))?;
            let vertex = flag("vertex")
                .ok_or_else(|| err("report needs --vertex"))?
                .parse()
                .map_err(|_| err("--vertex must be an id"))?;
            let rect = parse_rect(&flag("rect").ok_or_else(|| err("report needs --rect"))?)?;
            Ok(Command::Report { file: PathBuf::from(file), vertex, rect })
        }
        "build" => {
            let file = positional.first().ok_or_else(|| err("build needs a FILE"))?;
            let method = flag("method").ok_or_else(|| err("build needs --method"))?;
            let threads = flag("threads")
                .map(|t| t.parse())
                .transpose()
                .map_err(|_| err("--threads must be a non-negative integer"))?
                .unwrap_or(1);
            let save = flag("save").ok_or_else(|| err("build needs --save"))?;
            let shards = flag("shards")
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|_| err("--shards must be a positive integer"))?
                .unwrap_or(1);
            if shards == 0 {
                return Err(err("--shards must be at least 1"));
            }
            Ok(Command::Build {
                file: PathBuf::from(file),
                method,
                threads,
                save: PathBuf::from(save),
                shards,
            })
        }
        "serve" => {
            if load_specs.is_empty() {
                return Err(err("serve needs --load"));
            }
            let mut loads: Vec<(String, PathBuf)> = Vec::with_capacity(load_specs.len());
            for spec in &load_specs {
                // `name=path` registers a named dataset; a bare path is the
                // dataset "default" (so single-snapshot serving needs no
                // name).
                let (name, path) = match spec.split_once('=') {
                    Some((name, path)) if !name.is_empty() && !path.is_empty() => (name, path),
                    Some(_) => {
                        return Err(err(format!(
                            "--load {spec:?}: expected [name=]PATH with a non-empty name and path"
                        )))
                    }
                    None => ("default", spec.as_str()),
                };
                if loads.iter().any(|(have, _)| have == name) {
                    return Err(err(format!(
                        "--load {spec:?}: duplicate dataset name {name:?} (name datasets with \
                         --load name=PATH)"
                    )));
                }
                loads.push((name.to_string(), PathBuf::from(path)));
            }
            let port = flag("port")
                .map(|p| p.parse())
                .transpose()
                .map_err(|_| err("--port must be a port number"))?
                .unwrap_or(7070);
            let threads = flag("threads")
                .map(|t| t.parse())
                .transpose()
                .map_err(|_| err("--threads must be a non-negative integer"))?
                .unwrap_or(0);
            let budget_ms = flag("budget-ms")
                .map(|b| b.parse())
                .transpose()
                .map_err(|_| err("--budget-ms must be a non-negative integer"))?;
            let cache_entries = flag("cache-entries")
                .map(|c| c.parse())
                .transpose()
                .map_err(|_| err("--cache-entries must be a non-negative integer"))?
                .unwrap_or(0);
            let defaults = ServeLimits::default();
            let limit = |name: &str, default: usize| -> Result<usize, CliError> {
                flag(name)
                    .map(|v| v.parse())
                    .transpose()
                    .map_err(|_| err(format!("--{name} must be a non-negative integer")))
                    .map(|v| v.unwrap_or(default))
            };
            let max_pending = limit("max-pending", defaults.max_pending)?;
            let max_conns = limit("max-conns", defaults.max_conns)?;
            let max_line = limit("max-line", defaults.max_line)?;
            let max_batch = limit("max-batch", defaults.max_batch)?;
            // `0` for a timeout flag disables it, matching the other
            // limits' 0-means-unlimited convention.
            let timeout = |name: &str, default: Option<u64>| -> Result<Option<u64>, CliError> {
                flag(name)
                    .map(|v| v.parse::<u64>())
                    .transpose()
                    .map_err(|_| err(format!("--{name} must be a non-negative integer")))
                    .map(|v| match v {
                        None => default,
                        Some(0) => None,
                        Some(ms) => Some(ms),
                    })
            };
            let idle_timeout_ms = timeout("idle-timeout-ms", defaults.idle_timeout_ms)?;
            let write_timeout_ms = timeout("write-timeout-ms", defaults.write_timeout_ms)?;
            Ok(Command::Serve {
                loads,
                port,
                threads,
                budget_ms,
                cache_entries,
                trust: flags.contains_key("trust-snapshot"),
                limits: ServeLimits {
                    max_pending,
                    max_conns,
                    max_line,
                    max_batch,
                    idle_timeout_ms,
                    write_timeout_ms,
                },
            })
        }
        other => Err(err(format!("unknown subcommand {other:?}\n{USAGE}"))),
    }
}

fn spec_for(preset: &str, scale: f64) -> Result<NetworkSpec, CliError> {
    Ok(match preset.to_ascii_lowercase().as_str() {
        "foursquare" => NetworkSpec::foursquare(scale),
        "gowalla" => NetworkSpec::gowalla(scale),
        "weeplaces" => NetworkSpec::weeplaces(scale),
        "yelp" => NetworkSpec::yelp(scale),
        other => return Err(err(format!("unknown preset {other:?}"))),
    })
}

fn build_method(
    name: &str,
    prep: &PreparedNetwork,
    threads: usize,
) -> Result<Vec<Box<dyn RangeReachIndex>>, CliError> {
    // GeoReach and SocReach have no parallel build path; the others
    // construct identical indexes at any thread count.
    let policy = SccSpatialPolicy::Replicate;
    let one = |idx: Box<dyn RangeReachIndex>| Ok(vec![idx]);
    match name.to_ascii_lowercase().as_str() {
        "3dreach" => one(Box::new(ThreeDReach::build_threaded(prep, policy, threads))),
        "3dreach-rev" => one(Box::new(ThreeDReachRev::build_threaded(prep, policy, threads))),
        "spareach-bfl" => one(Box::new(SpaReachBfl::build_threaded(prep, policy, threads))),
        "spareach-int" => one(Box::new(SpaReachInt::build_threaded(prep, policy, threads))),
        "georeach" => one(Box::new(GeoReach::build(prep))),
        "socreach" => one(Box::new(SocReach::build(prep))),
        "all" => Ok(vec![
            Box::new(SpaReachBfl::build_threaded(prep, policy, threads)),
            Box::new(SpaReachInt::build_threaded(prep, policy, threads)),
            Box::new(GeoReach::build(prep)),
            Box::new(SocReach::build(prep)),
            Box::new(ThreeDReach::build_threaded(prep, policy, threads)),
            Box::new(ThreeDReachRev::build_threaded(prep, policy, threads)),
        ]),
        other => Err(err(format!("unknown method {other:?}"))),
    }
}

/// Builds one method as a saveable [`gsr_store::SnapshotIndex`].
fn build_snapshot(
    name: &str,
    prep: &PreparedNetwork,
    threads: usize,
) -> Result<gsr_store::SnapshotIndex, CliError> {
    use gsr_store::SnapshotIndex as S;
    let policy = SccSpatialPolicy::Replicate;
    Ok(match name.to_ascii_lowercase().as_str() {
        "3dreach" => S::ThreeDReach(ThreeDReach::build_threaded(prep, policy, threads)),
        "3dreach-rev" => S::ThreeDReachRev(ThreeDReachRev::build_threaded(prep, policy, threads)),
        "spareach-bfl" => S::SpaReachBfl(SpaReachBfl::build_threaded(prep, policy, threads)),
        "spareach-int" => S::SpaReachInt(SpaReachInt::build_threaded(prep, policy, threads)),
        "georeach" => S::GeoReach(GeoReach::build(prep)),
        "socreach" => S::SocReach(SocReach::build(prep)),
        other => {
            return Err(err(format!(
                "unknown method {other:?} (a snapshot holds one method; `all` is not supported)"
            )))
        }
    })
}

fn load_prepared(file: &Path) -> Result<PreparedNetwork, GsrError> {
    let net = io::load_network(file)
        .map_err(|e| GsrError::Load(format!("cannot load {}: {e}", file.display())))?;
    Ok(PreparedNetwork::new(net))
}

/// Maps an error from [`run`] to a process exit code:
///
/// | code | condition |
/// |---|---|
/// | 1 | internal or uncategorized error |
/// | 2 | bad command line ([`CliError`]) |
/// | 3 | dataset failed to load ([`GsrError::Load`]) |
/// | 4 | invalid query vertex or rectangle |
/// | 5 | time budget exceeded |
/// | 6 | cancelled |
pub fn exit_code(e: &(dyn std::error::Error + 'static)) -> i32 {
    if e.is::<CliError>() {
        return 2;
    }
    match e.downcast_ref::<GsrError>() {
        Some(GsrError::Load(_)) => 3,
        Some(GsrError::InvalidVertex { .. } | GsrError::InvalidRect { .. }) => 4,
        Some(GsrError::Timeout { .. }) => 5,
        Some(GsrError::Cancelled) => 6,
        Some(GsrError::Internal(_)) | None => 1,
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
pub fn run(cmd: Command, out: &mut impl std::io::Write) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Generate { preset, scale, out: path } => {
            let spec = spec_for(&preset, scale)?;
            let net = spec.generate();
            io::save_network(&net, &path)?;
            writeln!(
                out,
                "wrote {} ({} vertices, {} edges, {} spatial) to {}",
                spec.name,
                net.num_vertices(),
                net.graph().num_edges(),
                net.num_spatial(),
                path.display()
            )?;
        }
        Command::Stats { file } => {
            let prep = load_prepared(&file)?;
            let s = prep.stats();
            writeln!(out, "vertices:     {}", s.vertices)?;
            writeln!(out, "edges:        {}", s.edges)?;
            writeln!(out, "users:        {}", s.users)?;
            writeln!(out, "venues:       {}", s.venues)?;
            writeln!(out, "SCCs:         {}", s.sccs)?;
            writeln!(out, "largest SCC:  {}", s.largest_scc)?;
            writeln!(out, "space:        {}", prep.space())?;
        }
        Command::Query { file, method, threads, one, budget_ms } => {
            let prep = load_prepared(&file)?;
            let indexes = build_method(&method, &prep, threads)?;
            fn run_one(
                indexes: &[Box<dyn RangeReachIndex>],
                v: u32,
                r: &Rect,
                out: &mut impl std::io::Write,
            ) -> Result<(), Box<dyn std::error::Error>> {
                for idx in indexes {
                    let start = std::time::Instant::now();
                    let answer = idx.try_query(v, r)?;
                    writeln!(
                        out,
                        "{}\tRangeReach({v}, {r}) = {answer}\t[{:?}]",
                        idx.name(),
                        start.elapsed()
                    )?;
                }
                Ok(())
            }
            // Collect stdin queries (hardened: malformed lines are skipped
            // with their position, never aborting the session).
            let queries: Vec<(u32, Rect)> = match one {
                Some((v, r)) => vec![(v, r)],
                None => {
                    let stdin = std::io::stdin();
                    let mut queries = Vec::new();
                    for (idx, line) in stdin.lock().lines().enumerate() {
                        let line = line?;
                        let lineno = idx + 1;
                        match parse_query_line(&line) {
                            Ok(Some(q)) => queries.push(q),
                            Ok(None) => {}
                            Err(e) => writeln!(out, "line {lineno}: skipping: {e}")?,
                        }
                    }
                    queries
                }
            };
            match budget_ms {
                None => {
                    for (v, r) in &queries {
                        match run_one(&indexes, *v, r, out) {
                            Ok(()) => {}
                            // One-shot: surface the error (exit code 4);
                            // batch mode: report and keep going.
                            Err(e) if one.is_some() => return Err(e),
                            Err(e) => writeln!(out, "RangeReach({v}, {r}): error: {e}")?,
                        }
                    }
                }
                Some(budget_ms) => {
                    let options = BatchOptions::unlimited()
                        .with_budget(Duration::from_millis(budget_ms));
                    let exec = BatchExecutor::new(threads);
                    for idx in &indexes {
                        let outcome = exec.run_bounded(idx.as_ref(), &queries, &options);
                        for (i, answer) in outcome.answers.iter().enumerate() {
                            if let Some(answer) = answer {
                                let (v, r) = &queries[i];
                                writeln!(out, "{}\tRangeReach({v}, {r}) = {answer}", idx.name())?;
                            }
                        }
                        for (i, e) in &outcome.errors {
                            let (v, r) = &queries[*i];
                            writeln!(out, "{}\tRangeReach({v}, {r}): error: {e}", idx.name())?;
                        }
                        writeln!(
                            out,
                            "{}\tcompleted {}/{}{}",
                            idx.name(),
                            outcome.completed,
                            queries.len(),
                            if outcome.timed_out {
                                " (budget exceeded; partial answers above)"
                            } else {
                                ""
                            }
                        )?;
                    }
                }
            }
        }
        Command::Build { file, method, threads, save, shards } => {
            let prep = load_prepared(&file)?;
            if shards <= 1 {
                let start = std::time::Instant::now();
                let snapshot = build_snapshot(&method, &prep, threads)?;
                let build_time = start.elapsed();
                gsr_store::save_to_path(&save, &snapshot)?;
                let bytes = std::fs::metadata(&save).map(|m| m.len()).unwrap_or(0);
                let heap = snapshot.index_bytes();
                let nv = snapshot.num_vertices().max(1);
                writeln!(
                    out,
                    "built {} in {build_time:?}; index heap {heap} bytes ({:.1} bytes/vertex); \
                     wrote {bytes} byte snapshot to {}",
                    snapshot.method_key(),
                    heap as f64 / nv as f64,
                    save.display()
                )?;
            } else {
                // Sharded build: partition the check-in points into spatial
                // tiles, build one independent index per tile over the full
                // social graph, and persist the set as a directory.
                let start = std::time::Instant::now();
                let tiles = gsr_core::partition_tiles(prep.network(), shards);
                let mut built: Vec<(gsr_store::SnapshotIndex, Option<gsr_geo::Rect>)> =
                    Vec::with_capacity(tiles.len());
                for tile in &tiles {
                    let tile_net = gsr_core::tile_network(prep.network(), tile)
                        .map_err(|e| GsrError::Internal(format!("shard build: {e}")))?;
                    let tile_prep = PreparedNetwork::new(tile_net);
                    built.push((build_snapshot(&method, &tile_prep, threads)?, tile.mbr));
                }
                let build_time = start.elapsed();
                gsr_store::shard::save_sharded_to_path(&save, &built)?;
                let heap: usize = built.iter().map(|(s, _)| s.index_bytes()).sum();
                writeln!(
                    out,
                    "built {} x{} shards in {build_time:?}; index heap {heap} bytes; \
                     wrote sharded snapshot set to {}",
                    method.to_ascii_lowercase(),
                    built.len(),
                    save.display()
                )?;
                for (i, (tile, (_, mbr))) in tiles.iter().zip(&built).enumerate() {
                    match mbr {
                        Some(m) => writeln!(
                            out,
                            "  shard {i}: {} spatial vertices, mbr {m}",
                            tile.vertices.len()
                        )?,
                        None => writeln!(out, "  shard {i}: empty (no spatial vertices)")?,
                    }
                }
            }
        }
        Command::Serve { loads, port, threads, budget_ms, cache_entries, trust, limits } => {
            let started = std::time::Instant::now();
            let mut datasets: Vec<(String, std::sync::Arc<dyn RangeReachIndex>)> =
                Vec::with_capacity(loads.len());
            let mut load_lines: Vec<String> = Vec::with_capacity(loads.len());
            let mut first_format = 0u32;
            for (name, path) in &loads {
                let (index, info) =
                    gsr_store::load_served_index(path, gsr_store::LoadOptions { trust })?;
                if first_format == 0 {
                    first_format = info.format;
                }
                load_lines.push(format!(
                    "loaded {name}={} (format v{}, {} bytes, {})",
                    path.display(),
                    info.format,
                    info.file_bytes,
                    if info.mapped { "memory-mapped" } else { "heap-decoded" },
                ));
                datasets.push((name.clone(), index));
            }
            let load_ms = started.elapsed().as_millis().min(u64::MAX as u128) as u64;
            let config = gsr_server::ServerConfig {
                threads,
                budget: budget_ms.map(Duration::from_millis),
                cache_entries,
                max_pending: limits.max_pending,
                max_conns: limits.max_conns,
                max_line: limits.max_line,
                max_batch: limits.max_batch,
                idle_timeout: limits.idle_timeout_ms.map(Duration::from_millis),
                write_timeout: limits.write_timeout_ms.map(Duration::from_millis),
                trust_snapshot: trust,
            };
            let server = gsr_server::QueryServer::bind_many(("127.0.0.1", port), datasets, config)
                .map_err(|e| Box::new(e) as Box<dyn std::error::Error>)?;
            server.stats().record_load(load_ms, first_format);
            for line in &load_lines {
                writeln!(out, "{line} in {load_ms} ms")?;
            }
            // Printed (and flushed) before blocking so `--port 0` callers
            // can read the OS-assigned port. Everything above already
            // happened, so restart-to-serving is load_ms + bind, and the
            // ready line says so.
            writeln!(out, "listening on {}", server.local_addr())?;
            writeln!(
                out,
                "ready to serve in {} ms (snapshot load {load_ms} ms)",
                started.elapsed().as_millis()
            )?;
            out.flush()?;
            server.run()?;
            writeln!(out, "server stopped")?;
        }
        Command::Report { file, vertex, rect } => {
            let prep = load_prepared(&file)?;
            let reporter = ThreeDReporter::build(&prep);
            let hits = reporter.report(vertex, &rect);
            writeln!(out, "{} reachable spatial vertices inside {rect}:", hits.len())?;
            for v in hits {
                let Some(p) = prep.network().point(v) else { continue };
                writeln!(out, "  vertex {v} at {p}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_generate() {
        let cmd = parse_args(&args(&[
            "generate", "--preset", "yelp", "--scale", "0.5", "--out", "x.gsr",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate { preset: "yelp".into(), scale: 0.5, out: "x.gsr".into() }
        );
    }

    #[test]
    fn parse_query_variants() {
        let cmd = parse_args(&args(&["query", "n.gsr"])).unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                file: "n.gsr".into(),
                method: "3dreach".into(),
                threads: 1,
                one: None,
                budget_ms: None,
            }
        );
        let cmd = parse_args(&args(&["query", "n.gsr", "--threads", "4"])).unwrap();
        assert!(matches!(cmd, Command::Query { threads: 4, .. }));
        let cmd =
            parse_args(&args(&["query", "n.gsr", "--budget-ms", "250"])).unwrap();
        assert!(matches!(cmd, Command::Query { budget_ms: Some(250), .. }));
        assert!(parse_args(&args(&["query", "n.gsr", "--budget-ms", "soon"])).is_err());
        let cmd = parse_args(&args(&[
            "query", "n.gsr", "--method", "all", "--vertex", "7", "--rect", "1,2,3,4",
        ]))
        .unwrap();
        match cmd {
            Command::Query { method, one: Some((7, r)), .. } => {
                assert_eq!(method, "all");
                assert_eq!(r, Rect::new(1.0, 2.0, 3.0, 4.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args(&["nope"])).is_err());
        assert!(parse_args(&args(&["generate", "--preset", "yelp"])).is_err());
        assert!(parse_args(&args(&["query", "f", "--vertex", "1"])).is_err(), "rect missing");
        assert!(parse_rect("1,2,3").is_err());
        assert!(parse_rect("3,3,1,1").is_err(), "inverted");
        assert!(parse_rect("a,b,c,d").is_err());
        assert!(parse_rect("NaN,0,1,1").is_err(), "non-finite");
        assert!(parse_rect("0,0,inf,1").is_err(), "non-finite");
        assert!(parse_rect("0,0,1,1").is_ok());
        assert!(
            parse_args(&args(&["query", "f", "--threads", "-2"])).is_err(),
            "negative thread count"
        );
    }

    #[test]
    fn query_line_parsing() {
        assert_eq!(parse_query_line("").unwrap(), None);
        assert_eq!(parse_query_line("  # comment").unwrap(), None);
        assert_eq!(
            parse_query_line("3 0 0 2 2").unwrap(),
            Some((3, Rect::new(0.0, 0.0, 2.0, 2.0)))
        );
        assert!(parse_query_line("3 0 0 2").is_err(), "too few fields");
        assert!(parse_query_line("x 0 0 2 2").is_err(), "bad id");
        assert!(parse_query_line("3 0 0 nope 2").is_err(), "bad coordinate");
        assert!(parse_query_line("3 5 5 1 1").is_err(), "inverted rect");
        assert!(parse_query_line("3 NaN 0 2 2").is_err(), "non-finite rect");
    }

    #[test]
    fn parse_build_and_serve() {
        let cmd = parse_args(&args(&[
            "build", "n.gsr", "--method", "georeach", "--save", "idx.snap",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Build {
                file: "n.gsr".into(),
                method: "georeach".into(),
                threads: 1,
                save: "idx.snap".into(),
                shards: 1,
            }
        );
        let cmd = parse_args(&args(&[
            "build", "n.gsr", "--method", "georeach", "--save", "idx.shards", "--shards", "4",
        ]))
        .unwrap();
        assert!(matches!(cmd, Command::Build { shards: 4, .. }));
        assert!(parse_args(&args(&["build", "n.gsr", "--method", "georeach"])).is_err());
        assert!(parse_args(&args(&["build", "n.gsr", "--save", "x"])).is_err());
        assert!(
            parse_args(&args(&[
                "build", "n.gsr", "--method", "georeach", "--save", "x", "--shards", "0",
            ]))
            .is_err(),
            "0 shards"
        );

        let cmd = parse_args(&args(&[
            "serve", "--load", "idx.snap", "--port", "0", "--threads", "2",
            "--budget-ms", "50", "--cache-entries", "1024",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                loads: vec![("default".into(), "idx.snap".into())],
                port: 0,
                threads: 2,
                budget_ms: Some(50),
                cache_entries: 1024,
                trust: false,
                limits: ServeLimits::default(),
            }
        );
        let cmd = parse_args(&args(&["serve", "--load", "idx.snap"])).unwrap();
        assert!(matches!(
            cmd,
            Command::Serve { port: 7070, threads: 0, budget_ms: None, cache_entries: 0, .. }
        ));
        // --load repeats; name=path registers named datasets in order.
        let cmd = parse_args(&args(&[
            "serve", "--load", "yelp=a.snap", "--load", "gowalla=b.shards",
        ]))
        .unwrap();
        let Command::Serve { loads, .. } = cmd else { panic!("expected serve") };
        assert_eq!(
            loads,
            vec![
                ("yelp".to_string(), PathBuf::from("a.snap")),
                ("gowalla".to_string(), PathBuf::from("b.shards")),
            ]
        );
        assert!(
            parse_args(&args(&["serve", "--load", "a.snap", "--load", "b.snap"])).is_err(),
            "two unnamed loads collide on the name \"default\""
        );
        assert!(
            parse_args(&args(&["serve", "--load", "x=a.snap", "--load", "x=b.snap"])).is_err(),
            "duplicate dataset name"
        );
        assert!(parse_args(&args(&["serve", "--load", "=a.snap"])).is_err(), "empty name");
        assert!(parse_args(&args(&["serve", "--load", "x="])).is_err(), "empty path");
        // --trust-snapshot is boolean: it consumes no value, so flags
        // after it still parse.
        let cmd = parse_args(&args(&[
            "serve", "--load", "idx.snap", "--trust-snapshot", "--port", "9",
        ]))
        .unwrap();
        assert!(matches!(cmd, Command::Serve { trust: true, port: 9, .. }));
        assert!(parse_args(&args(&["serve"])).is_err(), "load missing");
        assert!(parse_args(&args(&["serve", "--load", "x", "--port", "high"])).is_err());
        assert!(parse_args(&args(&["serve", "--load", "x", "--cache-entries", "-1"])).is_err());
    }

    #[test]
    fn parse_serve_overload_limits() {
        let cmd = parse_args(&args(&[
            "serve", "--load", "idx.snap", "--max-pending", "8", "--max-conns", "4",
            "--max-line", "256", "--max-batch", "16", "--idle-timeout-ms", "500",
            "--write-timeout-ms", "2000",
        ]))
        .unwrap();
        let Command::Serve { limits, .. } = cmd else { panic!("expected serve") };
        assert_eq!(
            limits,
            ServeLimits {
                max_pending: 8,
                max_conns: 4,
                max_line: 256,
                max_batch: 16,
                idle_timeout_ms: Some(500),
                write_timeout_ms: Some(2000),
            }
        );

        // Defaults track the server's; 0 disables a timeout.
        let d = ServeLimits::default();
        assert_eq!(d.max_pending, 1024);
        assert_eq!(d.max_conns, 0);
        assert_eq!(d.max_line, 64 * 1024);
        assert_eq!(d.max_batch, 4096);
        assert_eq!(d.idle_timeout_ms, None);
        assert_eq!(d.write_timeout_ms, Some(10_000));
        let cmd = parse_args(&args(&[
            "serve", "--load", "idx.snap", "--write-timeout-ms", "0", "--idle-timeout-ms", "0",
        ]))
        .unwrap();
        let Command::Serve { limits, .. } = cmd else { panic!("expected serve") };
        assert_eq!(limits.write_timeout_ms, None, "0 disables the write deadline");
        assert_eq!(limits.idle_timeout_ms, None);

        assert!(parse_args(&args(&["serve", "--load", "x", "--max-pending", "lots"])).is_err());
        assert!(parse_args(&args(&["serve", "--load", "x", "--idle-timeout-ms", "-5"])).is_err());
    }

    #[test]
    fn build_saves_a_loadable_snapshot() {
        let dir = std::env::temp_dir().join("gsr_cli_build_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net = dir.join("net.gsr");
        let snap = dir.join("idx.snap");
        let net_path = net.to_string_lossy().to_string();
        let snap_path = snap.to_string_lossy().to_string();

        let mut out = Vec::new();
        run(
            parse_args(&args(&[
                "generate", "--preset", "yelp", "--scale", "0.01", "--out", &net_path,
            ]))
            .unwrap(),
            &mut out,
        )
        .unwrap();

        let mut out = Vec::new();
        run(
            parse_args(&args(&[
                "build", &net_path, "--method", "3dreach", "--save", &snap_path,
            ]))
            .unwrap(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out).to_string();
        assert!(text.contains("built 3dreach"), "{text}");

        // The saved snapshot answers exactly like a fresh build.
        let loaded = gsr_store::load_from_path(&snap).unwrap();
        let prep = load_prepared(&net).unwrap();
        let fresh = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let r = Rect::new(-1000.0, -1000.0, 2000.0, 2000.0);
        for v in 0..prep.network().num_vertices() as u32 {
            assert_eq!(loaded.query(v, &r), fresh.query(v, &r), "vertex {v}");
        }

        // `all` cannot be snapshotted.
        let e = run(
            parse_args(&args(&[
                "build", &net_path, "--method", "all", "--save", &snap_path,
            ]))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert_eq!(exit_code(e.as_ref()), 2, "{e}");

        // A missing snapshot is a load error (exit code 3).
        let e = run(
            parse_args(&args(&["serve", "--load", "/definitely/not/here.snap"])).unwrap(),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert_eq!(exit_code(e.as_ref()), 3, "{e}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_build_writes_a_directory_the_serve_loader_accepts() {
        let dir = std::env::temp_dir().join("gsr_cli_shard_build_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let net = dir.join("net.gsr");
        let shards = dir.join("idx.shards");
        let net_path = net.to_string_lossy().to_string();
        let shards_path = shards.to_string_lossy().to_string();

        run(
            parse_args(&args(&[
                "generate", "--preset", "yelp", "--scale", "0.01", "--out", &net_path,
            ]))
            .unwrap(),
            &mut Vec::new(),
        )
        .unwrap();

        let mut out = Vec::new();
        run(
            parse_args(&args(&[
                "build", &net_path, "--method", "3dreach", "--shards", "3",
                "--save", &shards_path,
            ]))
            .unwrap(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out).to_string();
        assert!(text.contains("built 3dreach x3 shards"), "{text}");
        assert!(shards.join("MANIFEST.gsrshard").is_file());

        // The directory loads through the serve-path loader and answers
        // exactly like a fresh unsharded build.
        let (loaded, info) =
            gsr_store::load_served_index(&shards, gsr_store::LoadOptions { trust: false })
                .unwrap();
        assert_eq!(info.format, 3);
        let prep = load_prepared(&net).unwrap();
        let fresh = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let r = Rect::new(-1000.0, -1000.0, 2000.0, 2000.0);
        for v in 0..prep.network().num_vertices() as u32 {
            assert_eq!(loaded.query(v, &r), fresh.query(v, &r), "vertex {v}");
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exit_codes_map_error_taxonomy() {
        assert_eq!(exit_code(&err("bad flag")), 2);
        assert_eq!(exit_code(&GsrError::Load("nope".into())), 3);
        assert_eq!(exit_code(&GsrError::InvalidVertex { vertex: 9, num_vertices: 2 }), 4);
        assert_eq!(exit_code(&GsrError::InvalidRect { reason: "nan".into() }), 4);
        assert_eq!(exit_code(&GsrError::Timeout { budget_ms: 5 }), 5);
        assert_eq!(exit_code(&GsrError::Cancelled), 6);
        assert_eq!(exit_code(&GsrError::Internal("boom".into())), 1);
        let boxed: Box<dyn std::error::Error> = Box::new(GsrError::Cancelled);
        assert_eq!(exit_code(boxed.as_ref()), 6);
    }

    #[test]
    fn missing_file_is_a_load_error() {
        let cmd = parse_args(&args(&["stats", "/definitely/not/here.gsr"])).unwrap();
        let mut out = Vec::new();
        let e = run(cmd, &mut out).unwrap_err();
        assert_eq!(exit_code(e.as_ref()), 3, "{e}");
    }

    #[test]
    fn out_of_range_one_shot_query_is_an_invalid_vertex_error() {
        let dir = std::env::temp_dir().join("gsr_cli_badvertex_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("net.gsr");
        let path = file.to_string_lossy().to_string();
        let mut out = Vec::new();
        run(
            parse_args(&args(&[
                "generate", "--preset", "yelp", "--scale", "0.01", "--out", &path,
            ]))
            .unwrap(),
            &mut out,
        )
        .unwrap();

        let cmd = parse_args(&args(&[
            "query", &path, "--vertex", "99999999", "--rect", "0,0,1,1",
        ]))
        .unwrap();
        let mut out = Vec::new();
        let e = run(cmd, &mut out).unwrap_err();
        assert_eq!(exit_code(e.as_ref()), 4, "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budgeted_one_shot_prints_summary() {
        let dir = std::env::temp_dir().join("gsr_cli_budget_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("net.gsr");
        let path = file.to_string_lossy().to_string();
        let mut out = Vec::new();
        run(
            parse_args(&args(&[
                "generate", "--preset", "yelp", "--scale", "0.01", "--out", &path,
            ]))
            .unwrap(),
            &mut out,
        )
        .unwrap();

        // A generous budget: the single query completes.
        let cmd = parse_args(&args(&[
            "query", &path, "--vertex", "0", "--rect", "-1000,-1000,2000,2000",
            "--budget-ms", "60000",
        ]))
        .unwrap();
        let mut out = Vec::new();
        run(cmd, &mut out).unwrap();
        let text = String::from_utf8_lossy(&out).to_string();
        assert!(text.contains("completed 1/1"), "{text}");
        assert!(!text.contains("budget exceeded"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_generate_stats_query_report() {
        let dir = std::env::temp_dir().join("gsr_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("net.gsr");
        let path = file.to_string_lossy().to_string();

        let mut out = Vec::new();
        run(
            parse_args(&args(&[
                "generate", "--preset", "weeplaces", "--scale", "0.02", "--out", &path,
            ]))
            .unwrap(),
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&out).contains("wrote WeePlaces"));

        let mut out = Vec::new();
        run(parse_args(&args(&["stats", &path])).unwrap(), &mut out).unwrap();
        let text = String::from_utf8_lossy(&out).to_string();
        assert!(text.contains("vertices:"), "{text}");
        assert!(text.contains("largest SCC:"));

        let mut out = Vec::new();
        run(
            parse_args(&args(&[
                "query", &path, "--method", "all", "--threads", "2", "--vertex", "0",
                "--rect", "-1000,-1000,2000,2000",
            ]))
            .unwrap(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out).to_string();
        assert_eq!(text.matches("RangeReach(0,").count(), 6, "{text}");
        // All six methods agree on the answer.
        let trues = text.matches("= true").count();
        let falses = text.matches("= false").count();
        assert!(trues == 6 || falses == 6, "methods disagree:\n{text}");

        let mut out = Vec::new();
        run(
            parse_args(&args(&[
                "report", &path, "--vertex", "0", "--rect", "-1000,-1000,2000,2000",
            ]))
            .unwrap(),
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&out).contains("reachable spatial vertices"));

        std::fs::remove_dir_all(&dir).ok();
    }
}
