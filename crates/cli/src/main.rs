//! Entry point of the `gsr` CLI; all logic lives in the library so it can
//! be tested.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match gsr_cli::parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = gsr_cli::run(cmd, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(gsr_cli::exit_code(e.as_ref()));
    }
}
