//! Batched evaluation of `RangeReach` queries across threads.
//!
//! Index structures are immutable after construction and
//! [`RangeReachIndex`] requires `Send + Sync`, so a shared reference can
//! serve queries from many threads at once. [`BatchExecutor`] packages
//! that pattern: a slice of `(vertex, region)` queries is split into
//! contiguous chunks, each chunk is evaluated by one worker accumulating
//! its own [`QueryCost`], and the per-worker costs are merged at the end.
//! Answers come back in input order, and both answers and accumulated
//! cost are identical to a sequential evaluation at any thread count
//! (every query is independent; cost counters are sums, which commute).
//!
//! This generalizes what used to live in the bench harness as
//! `run_workload_parallel` into a first-class API any caller (CLI, bench,
//! tests) can use.

use crate::{QueryCost, RangeReachIndex};
use gsr_geo::Rect;
use gsr_graph::VertexId;

/// One `RangeReach` query: the source vertex and the query region.
pub type BatchQuery = (VertexId, Rect);

/// Evaluates slices of queries against a [`RangeReachIndex`] across N
/// threads.
///
/// ```
/// use gsr_core::methods::ThreeDReach;
/// use gsr_core::{BatchExecutor, SccSpatialPolicy};
/// use gsr_core::paper_example;
///
/// let prep = paper_example::prepared();
/// let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
/// let queries = vec![
///     (paper_example::A, paper_example::query_region()),
///     (paper_example::C, paper_example::query_region()),
/// ];
/// let exec = BatchExecutor::new(2);
/// assert_eq!(exec.run(&index, &queries), vec![true, false]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    threads: usize,
}

impl Default for BatchExecutor {
    /// One worker per available core.
    fn default() -> Self {
        BatchExecutor::new(0)
    }
}

impl BatchExecutor {
    /// An executor with the given worker count: `0` means machine
    /// parallelism, `1` evaluates inline on the calling thread.
    pub fn new(threads: usize) -> Self {
        BatchExecutor { threads }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        gsr_graph::par::effective_threads(self.threads)
    }

    /// Evaluates every query, returning answers in input order.
    pub fn run<I>(&self, index: &I, queries: &[BatchQuery]) -> Vec<bool>
    where
        I: RangeReachIndex + ?Sized,
    {
        self.run_chunks(index, queries, |idx, v, region| idx.query(v, region), |_| {})
    }

    /// Evaluates every query, returning answers in input order plus the
    /// accumulated work counters of the whole batch. Each worker
    /// accumulates locally; the per-worker totals are merged afterwards,
    /// so the result equals the sum of per-query
    /// [`RangeReachIndex::query_with_cost`] counters.
    pub fn run_with_cost<I>(&self, index: &I, queries: &[BatchQuery]) -> (Vec<bool>, QueryCost)
    where
        I: RangeReachIndex + ?Sized,
    {
        let mut total = QueryCost::default();
        let answers = self.run_chunks(
            index,
            queries,
            |idx, v, region| idx.query_with_cost(v, region),
            |chunk_cost| total.accumulate(&chunk_cost),
        );
        (answers.into_iter().map(|(hit, _)| hit).collect(), total)
    }

    /// Shared driver: chunks `queries`, evaluates each chunk on a worker,
    /// and reassembles results in input order. `merge` observes one
    /// accumulated [`QueryCost`] per chunk (zero for cost-free paths).
    fn run_chunks<I, T, Q, M>(
        &self,
        index: &I,
        queries: &[BatchQuery],
        eval: Q,
        mut merge: M,
    ) -> Vec<T>
    where
        I: RangeReachIndex + ?Sized,
        T: Send + CostCarrier,
        Q: Fn(&I, VertexId, &Rect) -> T + Sync,
        M: FnMut(QueryCost),
    {
        let threads = self.threads().min(queries.len().max(1));
        let chunk_len = queries.len().div_ceil(threads.max(1)).max(1);
        let chunks: Vec<&[BatchQuery]> = queries.chunks(chunk_len).collect();
        let per_chunk = gsr_graph::par::map_indexed(threads, chunks.len(), |ci| {
            let mut local_cost = QueryCost::default();
            let answers: Vec<T> = chunks[ci]
                .iter()
                .map(|(v, region)| {
                    let out = eval(index, *v, region);
                    if let Some(cost) = out.cost() {
                        local_cost.accumulate(cost);
                    }
                    out
                })
                .collect();
            (answers, local_cost)
        });
        let mut out = Vec::with_capacity(queries.len());
        for (answers, cost) in per_chunk {
            out.extend(answers);
            merge(cost);
        }
        out
    }
}

/// Internal: lets [`BatchExecutor::run_chunks`] accumulate costs when the
/// evaluation result carries them.
trait CostCarrier {
    fn cost(&self) -> Option<&QueryCost>;
}

impl CostCarrier for bool {
    fn cost(&self) -> Option<&QueryCost> {
        None
    }
}

impl CostCarrier for (bool, QueryCost) {
    fn cost(&self) -> Option<&QueryCost> {
        Some(&self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{SpaReachBfl, ThreeDReach};
    use crate::{paper_example, SccSpatialPolicy};

    fn workload() -> Vec<BatchQuery> {
        let prep = paper_example::prepared();
        let mut queries = Vec::new();
        for v in prep.network().graph().vertices() {
            for r in paper_example::probe_regions() {
                queries.push((v, r));
            }
        }
        queries
    }

    #[test]
    fn batch_answers_match_single_queries_at_every_thread_count() {
        let prep = paper_example::prepared();
        let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let queries = workload();
        let expected: Vec<bool> =
            queries.iter().map(|(v, r)| index.query(*v, r)).collect();
        for threads in [1, 2, 3, 8] {
            let exec = BatchExecutor::new(threads);
            assert_eq!(exec.run(&index, &queries), expected, "threads = {threads}");
            let (answers, _) = exec.run_with_cost(&index, &queries);
            assert_eq!(answers, expected, "threads = {threads} (cost path)");
        }
    }

    #[test]
    fn batch_cost_equals_sum_of_per_query_costs() {
        let prep = paper_example::prepared();
        let index = SpaReachBfl::build(&prep, SccSpatialPolicy::Mbr);
        let queries = workload();
        let mut expected = QueryCost::default();
        for (v, r) in &queries {
            expected.accumulate(&index.query_with_cost(*v, r).1);
        }
        for threads in [1, 2, 4] {
            let (_, got) = BatchExecutor::new(threads).run_with_cost(&index, &queries);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let prep = paper_example::prepared();
        let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let exec = BatchExecutor::new(4);
        assert!(exec.run(&index, &[]).is_empty());
        let (answers, cost) = exec.run_with_cost(&index, &[]);
        assert!(answers.is_empty());
        assert_eq!(cost, QueryCost::default());
    }

    #[test]
    fn works_through_dyn_trait_objects() {
        let prep = paper_example::prepared();
        let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let dyn_index: &dyn crate::RangeReachIndex = &index;
        let queries = workload();
        let expected: Vec<bool> =
            queries.iter().map(|(v, r)| dyn_index.query(*v, r)).collect();
        assert_eq!(BatchExecutor::new(2).run(dyn_index, &queries), expected);
    }
}
