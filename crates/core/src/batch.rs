//! Batched evaluation of `RangeReach` queries across threads.
//!
//! Index structures are immutable after construction and
//! [`RangeReachIndex`] requires `Send + Sync`, so a shared reference can
//! serve queries from many threads at once. [`BatchExecutor`] packages
//! that pattern: a slice of `(vertex, region)` queries is split into
//! contiguous chunks, each chunk is evaluated by one worker accumulating
//! its own [`QueryCost`], and the per-worker costs are merged at the end.
//! Answers come back in input order, and both answers and accumulated
//! cost are identical to a sequential evaluation at any thread count
//! (every query is independent; cost counters are sums, which commute).
//!
//! This generalizes what used to live in the bench harness as
//! `run_workload_parallel` into a first-class API any caller (CLI, bench,
//! tests) can use.

use crate::error::{validate_query, GsrError};
use crate::{QueryCost, RangeReachIndex};
use gsr_geo::Rect;
use gsr_graph::VertexId;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One `RangeReach` query: the source vertex and the query region.
pub type BatchQuery = (VertexId, Rect);

/// A cooperative cancellation handle shared between the caller and a
/// running [`BatchExecutor::run_bounded`] batch.
///
/// Cloning produces another handle to the *same* flag. Workers check the
/// flag between queries, so cancellation stops the batch at the next
/// query boundary — an in-flight query is never interrupted.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Limits applied to a [`BatchExecutor::run_bounded`] run.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Wall-clock budget for the whole batch. Workers compare against the
    /// deadline between queries; `None` means unlimited.
    pub budget: Option<Duration>,
    /// Cooperative cancellation token; `None` means not cancellable.
    pub cancel: Option<CancelToken>,
}

impl BatchOptions {
    /// No budget, no cancellation — equivalent to [`BatchExecutor::run`]
    /// semantics but with per-query fault isolation.
    pub fn unlimited() -> Self {
        BatchOptions::default()
    }

    /// Sets the wall-clock budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// The result of a bounded batch run: per-query answers where available,
/// plus what stopped the run early (if anything).
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One slot per input query, in input order. `Some(answer)` for
    /// queries that completed, `None` for queries skipped due to
    /// timeout/cancellation or that failed (see [`BatchOutcome::errors`]).
    pub answers: Vec<Option<bool>>,
    /// Number of queries attempted (answered or errored) before the run
    /// stopped.
    pub completed: usize,
    /// Whether the time budget expired before every query ran.
    pub timed_out: bool,
    /// Whether the batch was cancelled via its [`CancelToken`].
    pub cancelled: bool,
    /// Per-query failures as `(query index, error)`, sorted by index.
    /// Validation failures and panics land here; the batch keeps going.
    pub errors: Vec<(usize, GsrError)>,
    /// Accumulated work counters over all completed queries.
    pub cost: QueryCost,
}

impl BatchOutcome {
    /// Whether every query produced an answer with no error.
    pub fn is_complete(&self) -> bool {
        !self.timed_out && !self.cancelled && self.errors.is_empty()
    }
}

/// Renders a panic payload into a `GsrError::Internal` message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "query panicked".to_string()
    }
}

/// How a batch's queries are distributed over workers.
///
/// Scheduling never changes *what* is computed — answers always come back
/// in input order and the accumulated [`QueryCost`] is the same commutative
/// sum — only which worker evaluates which query, and in what order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchSchedule {
    /// Contiguous input-order chunks, one per worker (the default).
    #[default]
    InputOrder,
    /// Locality scheduling: queries are grouped by query vertex, and
    /// within a vertex ordered by the Z-order (Morton) code of the query
    /// rectangle's center, before being chunked. Repeated-vertex queries
    /// share warmed labeling/cache lines and spatially adjacent rectangles
    /// touch overlapping R-tree subtrees, so a worker's chunk stays hot.
    /// Answers are scattered back to input order on return.
    Locality,
}

/// Spreads the low 16 bits of `x` so a second coordinate can interleave.
fn spread16(x: u32) -> u64 {
    let mut x = u64::from(x) & 0xFFFF;
    x = (x | (x << 8)) & 0x00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

/// 32-bit Morton code of a quantized rectangle center.
fn morton(x: u32, y: u32) -> u64 {
    spread16(x) | (spread16(y) << 1)
}

/// The evaluation order of [`BatchSchedule::Locality`]: a permutation of
/// `0..queries.len()` sorted by `(vertex, morton(center), input index)`.
/// The trailing input index makes the key total, so the permutation — and
/// therefore the whole execution — is deterministic.
fn locality_order(queries: &[BatchQuery]) -> Vec<usize> {
    let mut min = [f64::INFINITY; 2];
    let mut max = [f64::NEG_INFINITY; 2];
    for (_, r) in queries {
        let c = [(r.min_x + r.max_x) * 0.5, (r.min_y + r.max_y) * 0.5];
        for d in 0..2 {
            if c[d] < min[d] {
                min[d] = c[d];
            }
            if c[d] > max[d] {
                max[d] = c[d];
            }
        }
    }
    let quantize = |v: f64, d: usize| -> u32 {
        let span = max[d] - min[d];
        if span > 0.0 {
            let t = ((v - min[d]) / span).clamp(0.0, 1.0);
            // Non-finite centers (the query will fail validation anyway)
            // sort to cell 0 rather than poisoning the key.
            if t.is_finite() {
                (t * 65535.0) as u32
            } else {
                0
            }
        } else {
            0
        }
    };
    let mut keyed: Vec<(VertexId, u64, usize)> = queries
        .iter()
        .enumerate()
        .map(|(i, (v, r))| {
            let cx = quantize((r.min_x + r.max_x) * 0.5, 0);
            let cy = quantize((r.min_y + r.max_y) * 0.5, 1);
            (*v, morton(cx, cy), i)
        })
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, _, i)| i).collect()
}

/// Evaluates slices of queries against a [`RangeReachIndex`] across N
/// threads.
///
/// ```
/// use gsr_core::methods::ThreeDReach;
/// use gsr_core::{BatchExecutor, SccSpatialPolicy};
/// use gsr_core::paper_example;
///
/// let prep = paper_example::prepared();
/// let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
/// let queries = vec![
///     (paper_example::A, paper_example::query_region()),
///     (paper_example::C, paper_example::query_region()),
/// ];
/// let exec = BatchExecutor::new(2);
/// assert_eq!(exec.run(&index, &queries), vec![true, false]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    threads: usize,
    schedule: BatchSchedule,
}

impl Default for BatchExecutor {
    /// One worker per available core.
    fn default() -> Self {
        BatchExecutor::new(0)
    }
}

impl BatchExecutor {
    /// An executor with the given worker count: `0` means machine
    /// parallelism, `1` evaluates inline on the calling thread.
    pub fn new(threads: usize) -> Self {
        BatchExecutor { threads, schedule: BatchSchedule::default() }
    }

    /// Selects how queries are distributed over workers; see
    /// [`BatchSchedule`]. Applies to [`BatchExecutor::run`] and
    /// [`BatchExecutor::run_with_cost`]. [`BatchExecutor::run_bounded`]
    /// always evaluates in input order: its contract is that an early stop
    /// (budget, cancellation) retains a *prefix-like* completed set, which
    /// a reordered execution would scramble.
    pub fn with_schedule(mut self, schedule: BatchSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Shorthand for [`BatchSchedule::Locality`].
    pub fn with_locality_scheduling(self) -> Self {
        self.with_schedule(BatchSchedule::Locality)
    }

    /// The active schedule.
    pub fn schedule(&self) -> BatchSchedule {
        self.schedule
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        gsr_graph::par::effective_threads(self.threads)
    }

    /// Evaluates every query, returning answers in input order.
    pub fn run<I>(&self, index: &I, queries: &[BatchQuery]) -> Vec<bool>
    where
        I: RangeReachIndex + ?Sized,
    {
        self.run_chunks(index, queries, |idx, v, region| idx.query(v, region), |_| {})
    }

    /// Evaluates every query, returning answers in input order plus the
    /// accumulated work counters of the whole batch. Each worker
    /// accumulates locally; the per-worker totals are merged afterwards,
    /// so the result equals the sum of per-query
    /// [`RangeReachIndex::query_with_cost`] counters.
    pub fn run_with_cost<I>(&self, index: &I, queries: &[BatchQuery]) -> (Vec<bool>, QueryCost)
    where
        I: RangeReachIndex + ?Sized,
    {
        let mut total = QueryCost::default();
        let answers = self.run_chunks(
            index,
            queries,
            |idx, v, region| idx.query_with_cost(v, region),
            |chunk_cost| total.accumulate(&chunk_cost),
        );
        (answers.into_iter().map(|(hit, _)| hit).collect(), total)
    }

    /// Evaluates queries under a wall-clock budget and/or a cancellation
    /// token, with per-query fault isolation.
    ///
    /// Unlike [`BatchExecutor::run`], this never panics on bad input:
    /// out-of-range vertices and non-finite or inverted regions are
    /// reported per query in [`BatchOutcome::errors`], and a panic inside
    /// an index implementation is caught and surfaced as
    /// [`GsrError::Internal`] without poisoning the rest of the batch.
    ///
    /// Workers check the deadline and the token *between* queries
    /// (cooperatively), so an in-flight query always finishes; the
    /// granularity of enforcement is one query. On early stop the
    /// already-computed prefix of answers is retained — answers are
    /// identical to an unbounded run on the completed subset.
    ///
    /// ```
    /// use gsr_core::methods::ThreeDReach;
    /// use gsr_core::{BatchExecutor, BatchOptions, SccSpatialPolicy};
    /// use gsr_core::paper_example;
    /// use std::time::Duration;
    ///
    /// let prep = paper_example::prepared();
    /// let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
    /// let queries = vec![(paper_example::A, paper_example::query_region())];
    /// let exec = BatchExecutor::new(1);
    /// let outcome = exec.run_bounded(
    ///     &index,
    ///     &queries,
    ///     &BatchOptions::unlimited().with_budget(Duration::from_secs(60)),
    /// );
    /// assert!(outcome.is_complete());
    /// assert_eq!(outcome.answers, vec![Some(true)]);
    /// ```
    pub fn run_bounded<I>(
        &self,
        index: &I,
        queries: &[BatchQuery],
        options: &BatchOptions,
    ) -> BatchOutcome
    where
        I: RangeReachIndex + ?Sized,
    {
        let deadline = options.budget.map(|b| Instant::now() + b);
        let timed_out = AtomicBool::new(false);
        let cancelled = AtomicBool::new(false);
        let num_vertices = index.num_vertices();

        let threads = self.threads().min(queries.len().max(1));
        let chunk_len = queries.len().div_ceil(threads.max(1)).max(1);
        let chunks: Vec<&[BatchQuery]> = queries.chunks(chunk_len).collect();
        let per_chunk = gsr_graph::par::map_indexed(threads, chunks.len(), |ci| {
            let base = ci * chunk_len;
            let mut local_cost = QueryCost::default();
            let mut rows: Vec<(usize, Result<bool, GsrError>)> =
                Vec::with_capacity(chunks[ci].len());
            for (offset, (v, region)) in chunks[ci].iter().enumerate() {
                if let Some(token) = &options.cancel {
                    if token.is_cancelled() {
                        cancelled.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        timed_out.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                let result = match validate_query(num_vertices, *v, region) {
                    Err(e) => Err(e),
                    Ok(()) => {
                        // Index structures are immutable and queries take
                        // &self, so a caught panic cannot leave observable
                        // broken state behind.
                        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            index.query_with_cost_unchecked(*v, region)
                        }));
                        match caught {
                            Ok((hit, cost)) => {
                                local_cost.accumulate(&cost);
                                Ok(hit)
                            }
                            Err(payload) => Err(GsrError::Internal(panic_message(payload))),
                        }
                    }
                };
                rows.push((base + offset, result));
            }
            (rows, local_cost)
        });

        let mut answers = vec![None; queries.len()];
        let mut errors = Vec::new();
        let mut completed = 0usize;
        let mut cost = QueryCost::default();
        for (rows, chunk_cost) in per_chunk {
            cost.accumulate(&chunk_cost);
            for (i, result) in rows {
                completed += 1;
                match result {
                    Ok(hit) => answers[i] = Some(hit),
                    Err(e) => errors.push((i, e)),
                }
            }
        }
        errors.sort_by_key(|(i, _)| *i);
        BatchOutcome {
            answers,
            completed,
            timed_out: timed_out.load(Ordering::Relaxed),
            cancelled: cancelled.load(Ordering::Relaxed),
            errors,
            cost,
        }
    }

    /// Shared driver: applies the schedule, chunks the (possibly permuted)
    /// queries, evaluates each chunk on a worker, and reassembles results
    /// in input order. `merge` observes one accumulated [`QueryCost`] per
    /// chunk (zero for cost-free paths).
    fn run_chunks<I, T, Q, M>(&self, index: &I, queries: &[BatchQuery], eval: Q, merge: M) -> Vec<T>
    where
        I: RangeReachIndex + ?Sized,
        T: Send + CostCarrier,
        Q: Fn(&I, VertexId, &Rect) -> T + Sync,
        M: FnMut(QueryCost),
    {
        match self.schedule {
            BatchSchedule::InputOrder => self.run_chunks_ordered(index, queries, eval, merge),
            BatchSchedule::Locality => {
                let order = locality_order(queries);
                let permuted: Vec<BatchQuery> = order.iter().map(|&i| queries[i]).collect();
                let results = self.run_chunks_ordered(index, &permuted, eval, merge);
                // Scatter the permuted results back to input order. Every
                // query is independent and cost counters are commutative
                // sums, so answers and merged cost are bit-identical to an
                // InputOrder run.
                let mut pairs: Vec<(usize, T)> = order.into_iter().zip(results).collect();
                pairs.sort_unstable_by_key(|(slot, _)| *slot);
                pairs.into_iter().map(|(_, r)| r).collect()
            }
        }
    }

    /// Evaluates `queries` as-is in contiguous chunks, one per worker.
    fn run_chunks_ordered<I, T, Q, M>(
        &self,
        index: &I,
        queries: &[BatchQuery],
        eval: Q,
        mut merge: M,
    ) -> Vec<T>
    where
        I: RangeReachIndex + ?Sized,
        T: Send + CostCarrier,
        Q: Fn(&I, VertexId, &Rect) -> T + Sync,
        M: FnMut(QueryCost),
    {
        let threads = self.threads().min(queries.len().max(1));
        let chunk_len = queries.len().div_ceil(threads.max(1)).max(1);
        let chunks: Vec<&[BatchQuery]> = queries.chunks(chunk_len).collect();
        let per_chunk = gsr_graph::par::map_indexed(threads, chunks.len(), |ci| {
            let mut local_cost = QueryCost::default();
            let answers: Vec<T> = chunks[ci]
                .iter()
                .map(|(v, region)| {
                    let out = eval(index, *v, region);
                    if let Some(cost) = out.cost() {
                        local_cost.accumulate(cost);
                    }
                    out
                })
                .collect();
            (answers, local_cost)
        });
        let mut out = Vec::with_capacity(queries.len());
        for (answers, cost) in per_chunk {
            out.extend(answers);
            merge(cost);
        }
        out
    }
}

/// Internal: lets [`BatchExecutor::run_chunks`] accumulate costs when the
/// evaluation result carries them.
trait CostCarrier {
    fn cost(&self) -> Option<&QueryCost>;
}

impl CostCarrier for bool {
    fn cost(&self) -> Option<&QueryCost> {
        None
    }
}

impl CostCarrier for (bool, QueryCost) {
    fn cost(&self) -> Option<&QueryCost> {
        Some(&self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{SpaReachBfl, ThreeDReach};
    use crate::{paper_example, SccSpatialPolicy};

    fn workload() -> Vec<BatchQuery> {
        let prep = paper_example::prepared();
        let mut queries = Vec::new();
        for v in prep.network().graph().vertices() {
            for r in paper_example::probe_regions() {
                queries.push((v, r));
            }
        }
        queries
    }

    #[test]
    fn batch_answers_match_single_queries_at_every_thread_count() {
        let prep = paper_example::prepared();
        let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let queries = workload();
        let expected: Vec<bool> =
            queries.iter().map(|(v, r)| index.query(*v, r)).collect();
        for threads in [1, 2, 3, 8] {
            let exec = BatchExecutor::new(threads);
            assert_eq!(exec.run(&index, &queries), expected, "threads = {threads}");
            let (answers, _) = exec.run_with_cost(&index, &queries);
            assert_eq!(answers, expected, "threads = {threads} (cost path)");
        }
    }

    #[test]
    fn batch_cost_equals_sum_of_per_query_costs() {
        let prep = paper_example::prepared();
        let index = SpaReachBfl::build(&prep, SccSpatialPolicy::Mbr);
        let queries = workload();
        let mut expected = QueryCost::default();
        for (v, r) in &queries {
            expected.accumulate(&index.query_with_cost(*v, r).1);
        }
        for threads in [1, 2, 4] {
            let (_, got) = BatchExecutor::new(threads).run_with_cost(&index, &queries);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let prep = paper_example::prepared();
        let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let exec = BatchExecutor::new(4);
        assert!(exec.run(&index, &[]).is_empty());
        let (answers, cost) = exec.run_with_cost(&index, &[]);
        assert!(answers.is_empty());
        assert_eq!(cost, QueryCost::default());
    }

    #[test]
    fn bounded_unlimited_matches_unbounded_run() {
        let prep = paper_example::prepared();
        let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let queries = workload();
        let expected = BatchExecutor::new(1).run(&index, &queries);
        for threads in [1, 2, 4] {
            let outcome = BatchExecutor::new(threads).run_bounded(
                &index,
                &queries,
                &BatchOptions::unlimited(),
            );
            assert!(outcome.is_complete(), "threads = {threads}");
            assert!(!outcome.timed_out && !outcome.cancelled);
            assert_eq!(outcome.completed, queries.len());
            let answers: Vec<bool> = outcome.answers.iter().map(|a| a.unwrap()).collect();
            assert_eq!(answers, expected, "threads = {threads}");
        }
    }

    #[test]
    fn zero_budget_times_out_before_any_query() {
        let prep = paper_example::prepared();
        let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let queries = workload();
        let options = BatchOptions::unlimited().with_budget(std::time::Duration::ZERO);
        let outcome = BatchExecutor::new(2).run_bounded(&index, &queries, &options);
        assert!(outcome.timed_out);
        assert_eq!(outcome.completed, 0);
        assert!(outcome.answers.iter().all(Option::is_none));
    }

    #[test]
    fn pre_cancelled_token_stops_immediately() {
        let prep = paper_example::prepared();
        let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let queries = workload();
        let token = CancelToken::new();
        token.cancel();
        let options = BatchOptions::unlimited().with_cancel(token.clone());
        let outcome = BatchExecutor::new(2).run_bounded(&index, &queries, &options);
        assert!(outcome.cancelled);
        assert!(!outcome.timed_out);
        assert_eq!(outcome.completed, 0);
        assert!(token.is_cancelled());
    }

    #[test]
    fn invalid_queries_are_isolated_not_fatal() {
        let prep = paper_example::prepared();
        let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let good = paper_example::query_region();
        let bad_rect = gsr_geo::Rect { min_x: f64::NAN, min_y: 0.0, max_x: 1.0, max_y: 1.0 };
        let queries = vec![
            (paper_example::A, good),
            (9999, good),                // out-of-range vertex
            (paper_example::C, bad_rect), // non-finite region
            (paper_example::A, good),
        ];
        let outcome =
            BatchExecutor::new(1).run_bounded(&index, &queries, &BatchOptions::unlimited());
        assert_eq!(outcome.completed, 4, "bad queries still count as attempted");
        assert_eq!(outcome.answers[0], Some(true));
        assert_eq!(outcome.answers[1], None);
        assert_eq!(outcome.answers[2], None);
        assert_eq!(outcome.answers[3], Some(true));
        assert_eq!(outcome.errors.len(), 2);
        assert_eq!(outcome.errors[0].0, 1);
        assert!(matches!(outcome.errors[0].1, crate::GsrError::InvalidVertex { .. }));
        assert_eq!(outcome.errors[1].0, 2);
        assert!(matches!(outcome.errors[1].1, crate::GsrError::InvalidRect { .. }));
    }

    /// An index whose queries panic — exercises the catch_unwind fence.
    struct Panicky;

    impl crate::RangeReachIndex for Panicky {
        fn num_vertices(&self) -> usize {
            4
        }
        fn query_unchecked(&self, v: VertexId, _region: &Rect) -> bool {
            if v == 2 {
                panic!("injected fault at vertex {v}");
            }
            true
        }
        fn index_bytes(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "panicky"
        }
    }

    #[test]
    fn panicking_index_surfaces_internal_error() {
        let r = paper_example::query_region();
        let queries = vec![(0, r), (2, r), (3, r)];
        // Silence the default panic hook for the injected panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome =
            BatchExecutor::new(1).run_bounded(&Panicky, &queries, &BatchOptions::unlimited());
        std::panic::set_hook(prev);
        assert_eq!(outcome.answers, vec![Some(true), None, Some(true)]);
        assert_eq!(outcome.errors.len(), 1);
        let (idx, err) = &outcome.errors[0];
        assert_eq!(*idx, 1);
        match err {
            crate::GsrError::Internal(msg) => assert!(msg.contains("injected fault")),
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn locality_schedule_is_bit_identical_to_input_order() {
        let prep = paper_example::prepared();
        let index = SpaReachBfl::build(&prep, SccSpatialPolicy::Mbr);
        let queries = workload();
        let exec = BatchExecutor::new(1);
        let (expected_answers, expected_cost) = exec.run_with_cost(&index, &queries);
        for threads in [1, 2, 3, 8] {
            let sched = BatchExecutor::new(threads).with_locality_scheduling();
            assert_eq!(sched.schedule(), BatchSchedule::Locality);
            assert_eq!(sched.run(&index, &queries), expected_answers, "threads = {threads}");
            let (answers, cost) = sched.run_with_cost(&index, &queries);
            assert_eq!(answers, expected_answers, "threads = {threads} (cost path)");
            assert_eq!(cost, expected_cost, "threads = {threads} (cost sum)");
        }
    }

    #[test]
    fn locality_order_groups_vertices_and_is_a_permutation() {
        let r = |x: f64| Rect::new(x, 0.0, x + 1.0, 1.0);
        // Interleaved vertices with scattered rectangles.
        let queries = vec![
            (3, r(9.0)),
            (1, r(0.0)),
            (3, r(0.5)),
            (1, r(9.0)),
            (2, r(4.0)),
            (1, r(0.2)),
        ];
        let order = locality_order(&queries);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..queries.len()).collect::<Vec<_>>(), "must be a permutation");
        let vertices: Vec<VertexId> = order.iter().map(|&i| queries[i].0).collect();
        assert_eq!(vertices, vec![1, 1, 1, 2, 3, 3], "grouped by query vertex");
        // Within vertex 1, the two near-origin rectangles are adjacent.
        let v1: Vec<usize> = order.iter().copied().filter(|&i| queries[i].0 == 1).collect();
        assert_eq!(v1, vec![1, 5, 3], "Z-order places nearby centers together");
    }

    #[test]
    fn locality_schedule_handles_degenerate_batches() {
        let prep = paper_example::prepared();
        let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let exec = BatchExecutor::new(4).with_locality_scheduling();
        assert!(exec.run(&index, &[]).is_empty());
        let one = vec![(paper_example::A, paper_example::query_region())];
        assert_eq!(exec.run(&index, &one), vec![true]);
        // All-identical queries (zero-span center bounds) still work.
        let same = vec![one[0]; 7];
        assert_eq!(exec.run(&index, &same), vec![true; 7]);
    }

    #[test]
    fn works_through_dyn_trait_objects() {
        let prep = paper_example::prepared();
        let index = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let dyn_index: &dyn crate::RangeReachIndex = &index;
        let queries = workload();
        let expected: Vec<bool> =
            queries.iter().map(|(v, r)| dyn_index.query(*v, r)).collect();
        assert_eq!(BatchExecutor::new(2).run(dyn_index, &queries), expected);
    }
}
