//! The error taxonomy of the fallible query layer.
//!
//! Every entry point that consumes untrusted input — query vertices and
//! regions from the network, files from disk, batches from a service
//! frontend — reports failures through [`GsrError`] instead of panicking.
//! The variants mirror the ways a production geosocial service can be fed
//! bad input or run out of patience:
//!
//! * [`GsrError::InvalidVertex`] / [`GsrError::InvalidRect`] — the query
//!   itself is malformed (out-of-range id, NaN or inverted rectangle);
//! * [`GsrError::Load`] — a dataset failed to parse or validate;
//! * [`GsrError::Timeout`] / [`GsrError::Cancelled`] — a batch exceeded
//!   its time budget or was cooperatively cancelled (see
//!   [`crate::BatchExecutor::run_bounded`]);
//! * [`GsrError::Internal`] — a query panicked; the panic is caught at the
//!   batch boundary and converted, so one poisoned query cannot take down
//!   its whole batch.

use gsr_geo::Rect;
use gsr_graph::VertexId;

/// Errors surfaced by the fallible query layer.
#[derive(Debug, Clone, PartialEq)]
pub enum GsrError {
    /// The query vertex id is not a vertex of the indexed network.
    InvalidVertex {
        /// The offending id.
        vertex: VertexId,
        /// Number of vertices of the indexed network (valid ids are
        /// `0..num_vertices`).
        num_vertices: usize,
    },
    /// The query rectangle is malformed (non-finite or inverted extrema).
    InvalidRect {
        /// Human-readable description including the offending coordinates.
        reason: String,
    },
    /// A dataset could not be loaded (I/O, parse or validation failure).
    Load(String),
    /// A batch exceeded its time budget; partial results are available.
    Timeout {
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// A batch was cooperatively cancelled; partial results are available.
    Cancelled,
    /// A query panicked; the payload message is preserved.
    Internal(String),
}

impl std::fmt::Display for GsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GsrError::InvalidVertex { vertex, num_vertices } => {
                write!(f, "invalid query vertex {vertex}: network has {num_vertices} vertices")
            }
            GsrError::InvalidRect { reason } => write!(f, "invalid query rectangle: {reason}"),
            GsrError::Load(msg) => write!(f, "load error: {msg}"),
            GsrError::Timeout { budget_ms } => {
                write!(f, "time budget of {budget_ms} ms exceeded")
            }
            GsrError::Cancelled => write!(f, "cancelled"),
            GsrError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for GsrError {}

/// Validates a query vertex id against the indexed vertex count.
pub fn validate_vertex(num_vertices: usize, v: VertexId) -> Result<(), GsrError> {
    if (v as usize) < num_vertices {
        Ok(())
    } else {
        Err(GsrError::InvalidVertex { vertex: v, num_vertices })
    }
}

/// Validates a query rectangle: all four extrema must be finite and the
/// minima must not exceed the maxima. `Rect::new` only `debug_assert`s the
/// ordering, so release builds can be handed an inverted rectangle — this
/// is the checked boundary.
pub fn validate_rect(region: &Rect) -> Result<(), GsrError> {
    let coords = [region.min_x, region.min_y, region.max_x, region.max_y];
    if coords.iter().any(|c| !c.is_finite()) {
        return Err(GsrError::InvalidRect {
            reason: format!(
                "non-finite coordinate in [{}, {}] x [{}, {}]",
                region.min_x, region.max_x, region.min_y, region.max_y
            ),
        });
    }
    if region.min_x > region.max_x || region.min_y > region.max_y {
        return Err(GsrError::InvalidRect {
            reason: format!(
                "inverted extrema in [{}, {}] x [{}, {}]",
                region.min_x, region.max_x, region.min_y, region.max_y
            ),
        });
    }
    Ok(())
}

/// Validates a full `RangeReach` query (vertex + region).
pub fn validate_query(num_vertices: usize, v: VertexId, region: &Rect) -> Result<(), GsrError> {
    validate_vertex(num_vertices, v)?;
    validate_rect(region)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_bounds() {
        assert!(validate_vertex(3, 2).is_ok());
        assert!(matches!(
            validate_vertex(3, 3),
            Err(GsrError::InvalidVertex { vertex: 3, num_vertices: 3 })
        ));
        assert!(validate_vertex(0, 0).is_err(), "empty network has no valid vertex");
    }

    #[test]
    fn rect_validation() {
        assert!(validate_rect(&Rect::new(0.0, 0.0, 1.0, 1.0)).is_ok());
        assert!(validate_rect(&Rect::new(1.0, 1.0, 1.0, 1.0)).is_ok(), "degenerate is fine");
        let nan = Rect { min_x: f64::NAN, min_y: 0.0, max_x: 1.0, max_y: 1.0 };
        assert!(matches!(validate_rect(&nan), Err(GsrError::InvalidRect { .. })));
        let inf = Rect { min_x: 0.0, min_y: 0.0, max_x: f64::INFINITY, max_y: 1.0 };
        assert!(matches!(validate_rect(&inf), Err(GsrError::InvalidRect { .. })));
        let inverted = Rect { min_x: 2.0, min_y: 0.0, max_x: 1.0, max_y: 1.0 };
        assert!(matches!(validate_rect(&inverted), Err(GsrError::InvalidRect { .. })));
    }

    #[test]
    fn display_messages_are_descriptive() {
        let e = GsrError::InvalidVertex { vertex: 9, num_vertices: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
        assert!(GsrError::Timeout { budget_ms: 7 }.to_string().contains("7 ms"));
        assert_eq!(GsrError::Cancelled.to_string(), "cancelled");
    }
}
