//! Generalizations beyond the paper's point-vertex, 2-D setting — the
//! extensions its footnote 1 declares easy and Section 8 leaves for future
//! work, carried out on the same substrates.

pub mod regions;
pub mod volumetric;

pub use regions::{RegionNetwork, RegionReach};
pub use volumetric::{Box3d, Point3d, VolumetricReach};
