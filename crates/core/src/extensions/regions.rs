//! RangeReach over vertices with *extended* geometries.
//!
//! Footnote 1 of the paper: "we assume that the spatial vertices are
//! represented as points in the two-dimensional space. However, our
//! analysis and the proposed solutions can be easily extended to arbitrary
//! geometries". This module carries that extension out for axis-aligned
//! rectangle geometries (the MBRs of arbitrary shapes): a spatial vertex
//! covers a region, and `RangeReach` asks whether `v` reaches a vertex
//! whose region *intersects* the query rectangle — e.g. venues with
//! footprints, delivery areas, or cell-tower coverage.
//!
//! The 3DReach transformation carries over verbatim: a vertex's rectangle
//! extrudes to a flat box at height `post(comp)` in the third dimension,
//! and a query is one cuboid per label. Because the geometry itself is the
//! rectangle (not an approximation of finer data), a box intersection *is*
//! the exact answer — no refinement step is needed, unlike the MBR policy
//! for SCCs of point vertices.

use gsr_geo::{cuboid_from_rect, Aabb, Cuboid, Rect};
use gsr_graph::scc::{CompId, Condensation};
use gsr_graph::{DiGraph, VertexId};
use gsr_index::RTree;
use gsr_reach::interval::IntervalLabeling;

/// A geosocial network whose spatial vertices carry rectangles.
#[derive(Debug, Clone)]
pub struct RegionNetwork {
    graph: DiGraph,
    regions: Vec<Option<Rect>>,
}

impl RegionNetwork {
    /// Wraps a graph and one optional region per vertex. Point vertices are
    /// just degenerate rectangles.
    ///
    /// # Panics
    /// Panics when `regions` does not have one slot per vertex.
    pub fn new(graph: DiGraph, regions: Vec<Option<Rect>>) -> Self {
        assert_eq!(regions.len(), graph.num_vertices(), "one region slot per vertex");
        RegionNetwork { graph, regions }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The region of vertex `v`, if spatial.
    pub fn region(&self, v: VertexId) -> Option<Rect> {
        self.regions[v as usize]
    }
}

/// 3DReach over rectangle geometries.
#[derive(Debug, Clone)]
pub struct RegionReach {
    comp_of: Vec<CompId>,
    labeling: IntervalLabeling,
    tree: RTree<3, VertexId>,
}

impl RegionReach {
    /// Condenses the graph, builds the labeling and the 3-D box R-tree.
    pub fn build(net: &RegionNetwork) -> Self {
        let cond = Condensation::of(net.graph());
        let labeling = IntervalLabeling::build(&cond.dag);
        let entries: Vec<(Cuboid, VertexId)> = net
            .regions
            .iter()
            .enumerate()
            .filter_map(|(v, r)| r.map(|r| (v as VertexId, r)))
            .map(|(v, r)| {
                let z = labeling.post(cond.comp(v)) as f64;
                (Aabb::new([r.min_x, r.min_y, z], [r.max_x, r.max_y, z]), v)
            })
            .collect();
        RegionReach {
            comp_of: (0..net.graph.num_vertices() as VertexId)
                .map(|v| cond.comp(v))
                .collect(),
            labeling,
            tree: RTree::bulk_load(entries),
        }
    }

    /// Fallible [`RegionReach::query`]: validates the vertex id and the
    /// query rectangle (finite, non-inverted) before evaluating.
    pub fn try_query(&self, v: VertexId, query: &Rect) -> Result<bool, crate::GsrError> {
        crate::error::validate_query(self.comp_of.len(), v, query)?;
        Ok(self.query(v, query))
    }

    /// Whether `v` reaches a vertex whose region intersects `query`.
    pub fn query(&self, v: VertexId, query: &Rect) -> bool {
        let from = self.comp_of[v as usize];
        self.labeling.intervals(from).iter().any(|iv| {
            self.tree.query_exists(&cuboid_from_rect(query, iv.lo as f64, iv.hi as f64))
        })
    }

    /// All reachable vertices whose regions intersect `query`, ascending.
    pub fn report(&self, v: VertexId, query: &Rect) -> Vec<VertexId> {
        let from = self.comp_of[v as usize];
        let mut out = Vec::new();
        for iv in self.labeling.intervals(from) {
            let cuboid = cuboid_from_rect(query, iv.lo as f64, iv.hi as f64);
            out.extend(self.tree.query(&cuboid).map(|(_, &u)| u));
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_graph::graph_from_edges;
    use gsr_reach::bfs::reaches_bfs;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d)
    }

    /// Brute force over the original graph.
    fn naive(net: &RegionNetwork, v: VertexId, query: &Rect) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = net
            .graph()
            .vertices()
            .filter(|&u| {
                net.region(u).is_some_and(|g| g.intersects(query))
                    && reaches_bfs(net.graph(), v, u)
            })
            .collect();
        out.sort_unstable();
        out
    }

    fn example() -> RegionNetwork {
        // 0 -> 1 -> 2, 3 -> 2, 4 isolated; 1, 2, 4 carry regions.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (3, 2)]);
        let regions = vec![
            None,
            Some(r(0.0, 0.0, 10.0, 10.0)),   // a big footprint
            Some(r(20.0, 20.0, 22.0, 22.0)), // a small one
            None,
            Some(r(5.0, 5.0, 6.0, 6.0)),
        ];
        RegionNetwork::new(g, regions)
    }

    #[test]
    fn intersection_semantics() {
        let net = example();
        let idx = RegionReach::build(&net);
        // Query overlapping only the edge of vertex 1's footprint.
        let touch = r(10.0, 10.0, 12.0, 12.0);
        assert!(idx.query(0, &touch), "closed rectangles touch at (10,10)");
        // A hole between the footprints.
        let hole = r(12.0, 12.0, 19.0, 19.0);
        assert!(!idx.query(0, &hole));
        // 3 reaches only vertex 2's small footprint.
        assert!(idx.query(3, &r(21.0, 21.0, 30.0, 30.0)));
        assert!(!idx.query(3, &r(0.0, 0.0, 10.0, 10.0)));
        // 4 is isolated but spatial: reflexive hit.
        assert!(idx.query(4, &r(0.0, 0.0, 100.0, 100.0)));
    }

    #[test]
    fn matches_brute_force_on_random_inputs() {
        // Random graphs with random rectangles, cycles included.
        let mut state = 7u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _case in 0..20 {
            let n = 3 + (rnd() % 20) as usize;
            let m = (rnd() % 50) as usize;
            let edges: Vec<(u32, u32)> =
                (0..m).map(|_| ((rnd() % n as u64) as u32, (rnd() % n as u64) as u32)).collect();
            let regions: Vec<Option<Rect>> = (0..n)
                .map(|_| {
                    if rnd() % 2 == 0 {
                        let x = (rnd() % 100) as f64;
                        let y = (rnd() % 100) as f64;
                        let w = (rnd() % 20) as f64;
                        let h = (rnd() % 20) as f64;
                        Some(r(x, y, x + w, y + h))
                    } else {
                        None
                    }
                })
                .collect();
            let net = RegionNetwork::new(graph_from_edges(n, &edges), regions);
            let idx = RegionReach::build(&net);
            for _ in 0..6 {
                let x = (rnd() % 120) as f64 - 10.0;
                let y = (rnd() % 120) as f64 - 10.0;
                let query = r(x, y, x + (rnd() % 40) as f64, y + (rnd() % 40) as f64);
                for v in 0..n as u32 {
                    let expected = naive(&net, v, &query);
                    assert_eq!(idx.report(v, &query), expected, "v={v} query={query}");
                    assert_eq!(idx.query(v, &query), !expected.is_empty());
                }
            }
        }
    }
}
