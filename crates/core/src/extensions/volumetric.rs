//! RangeReach in three-dimensional space — the second generalization of
//! the paper's footnote 1 ("our analysis and the proposed solutions can be
//! easily extended to ... the three-dimensional space").
//!
//! Spatial vertices carry points in 3-D (e.g. venues with floor levels, or
//! drone/airspace way-points) and the query region is an axis-aligned box.
//! The 3DReach transformation simply gains one dimension: vertices become
//! 4-D points `(x, y, z, post)` in a 4-D R-tree — which the const-generic
//! [`RTree`] provides for free — and a query is one 4-D range query per
//! label.

use gsr_geo::Aabb;
use gsr_graph::scc::{CompId, Condensation};
use gsr_graph::{DiGraph, VertexId};
use gsr_index::RTree;
use gsr_reach::interval::IntervalLabeling;

/// A point in three-dimensional space.
pub type Point3d = [f64; 3];

/// An axis-aligned box in three-dimensional space.
pub type Box3d = Aabb<3>;

/// 3-D RangeReach through a 4-D transformation.
#[derive(Debug, Clone)]
pub struct VolumetricReach {
    comp_of: Vec<CompId>,
    labeling: IntervalLabeling,
    tree: RTree<4, VertexId>,
}

impl VolumetricReach {
    /// Condenses the graph and indexes every spatial vertex as the 4-D
    /// point `(x, y, z, post(comp))`. `points` holds one optional 3-D point
    /// per vertex.
    ///
    /// # Panics
    /// Panics when `points` does not have one slot per vertex.
    pub fn build(graph: &DiGraph, points: &[Option<Point3d>]) -> Self {
        assert_eq!(points.len(), graph.num_vertices(), "one point slot per vertex");
        let cond = Condensation::of(graph);
        let labeling = IntervalLabeling::build(&cond.dag);
        let entries: Vec<(Aabb<4>, VertexId)> = points
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|p| (v as VertexId, p)))
            .map(|(v, p)| {
                let post = labeling.post(cond.comp(v)) as f64;
                (Aabb::from_point([p[0], p[1], p[2], post]), v)
            })
            .collect();
        VolumetricReach {
            comp_of: (0..graph.num_vertices() as VertexId).map(|v| cond.comp(v)).collect(),
            labeling,
            tree: RTree::bulk_load(entries),
        }
    }

    /// Fallible [`VolumetricReach::query`]: validates the vertex id and
    /// the query box (finite, non-inverted in each dimension) before
    /// evaluating.
    pub fn try_query(&self, v: VertexId, query: &Box3d) -> Result<bool, crate::GsrError> {
        crate::error::validate_vertex(self.comp_of.len(), v)?;
        for d in 0..3 {
            let (lo, hi) = (query.min[d], query.max[d]);
            if !lo.is_finite() || !hi.is_finite() {
                return Err(crate::GsrError::InvalidRect {
                    reason: format!("non-finite bound in dimension {d}: [{lo}, {hi}]"),
                });
            }
            if lo > hi {
                return Err(crate::GsrError::InvalidRect {
                    reason: format!("inverted bounds in dimension {d}: [{lo}, {hi}]"),
                });
            }
        }
        Ok(self.query(v, query))
    }

    /// Whether `v` reaches a vertex whose 3-D point lies inside `query`.
    pub fn query(&self, v: VertexId, query: &Box3d) -> bool {
        let from = self.comp_of[v as usize];
        self.labeling.intervals(from).iter().any(|iv| {
            let hyper = Aabb::new(
                [query.min[0], query.min[1], query.min[2], iv.lo as f64],
                [query.max[0], query.max[1], query.max[2], iv.hi as f64],
            );
            self.tree.query_exists(&hyper)
        })
    }

    /// All reachable vertices with points inside `query`, ascending.
    pub fn report(&self, v: VertexId, query: &Box3d) -> Vec<VertexId> {
        let from = self.comp_of[v as usize];
        let mut out = Vec::new();
        for iv in self.labeling.intervals(from) {
            let hyper = Aabb::new(
                [query.min[0], query.min[1], query.min[2], iv.lo as f64],
                [query.max[0], query.max[1], query.max[2], iv.hi as f64],
            );
            out.extend(self.tree.query(&hyper).map(|(_, &u)| u));
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_graph::graph_from_edges;
    use gsr_reach::bfs::reaches_bfs;

    #[test]
    fn floors_of_a_building() {
        // Users 0 -> 1; venues on three floors of the same (x, y) spot.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (1, 3), (0, 4)]);
        let points = vec![
            None,
            None,
            Some([10.0, 10.0, 0.0]), // ground floor
            Some([10.0, 10.0, 5.0]), // second floor
            Some([10.0, 10.0, 9.0]), // roof bar
        ];
        let idx = VolumetricReach::build(&g, &points);

        let ground = Aabb::new([0.0, 0.0, -1.0], [20.0, 20.0, 1.0]);
        let upper = Aabb::new([0.0, 0.0, 4.0], [20.0, 20.0, 10.0]);
        assert!(idx.query(0, &ground));
        assert_eq!(idx.report(0, &upper), vec![3, 4]);
        // 1 reaches floors 0 and 5 but not the roof bar.
        assert_eq!(idx.report(1, &upper), vec![3]);
        assert!(!idx.query(2, &upper), "a venue only sees itself");
    }

    #[test]
    fn matches_brute_force_on_random_3d_inputs() {
        let mut state = 0xDEADBEEFu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _case in 0..15 {
            let n = 4 + (rnd() % 16) as usize;
            let m = (rnd() % 40) as usize;
            let edges: Vec<(u32, u32)> =
                (0..m).map(|_| ((rnd() % n as u64) as u32, (rnd() % n as u64) as u32)).collect();
            let g = graph_from_edges(n, &edges);
            let points: Vec<Option<Point3d>> = (0..n)
                .map(|_| {
                    (rnd() % 3 != 0).then(|| {
                        [(rnd() % 100) as f64, (rnd() % 100) as f64, (rnd() % 50) as f64]
                    })
                })
                .collect();
            let idx = VolumetricReach::build(&g, &points);
            for _ in 0..5 {
                let lo = [(rnd() % 100) as f64, (rnd() % 100) as f64, (rnd() % 50) as f64];
                let query = Aabb::new(
                    lo,
                    [
                        lo[0] + (rnd() % 40) as f64,
                        lo[1] + (rnd() % 40) as f64,
                        lo[2] + (rnd() % 20) as f64,
                    ],
                );
                for v in 0..n as u32 {
                    let mut expected: Vec<u32> = g
                        .vertices()
                        .filter(|&u| {
                            points[u as usize].is_some_and(|p| query.contains_point(&p))
                                && reaches_bfs(&g, v, u)
                        })
                        .collect();
                    expected.sort_unstable();
                    assert_eq!(idx.report(v, &query), expected, "v={v}");
                    assert_eq!(idx.query(v, &query), !expected.is_empty());
                }
            }
        }
    }
}
