//! Degraded-mode query answering when index construction cannot finish.
//!
//! Building a reachability index over a large network costs time and
//! memory; a robust service must still answer queries when the build is
//! cancelled (shutdown, rebalancing) or the finished index would blow a
//! memory cap. [`FallbackIndex`] packages that policy: it attempts a
//! primary index build under a [`CancelToken`] and an optional byte cap,
//! and on failure degrades to [`OnlineReach`] — an index-free evaluator
//! that answers every query by BFS over the SCC condensation
//! ([`PreparedNetwork::range_reach_bfs_with_cost`]). Degraded answers are
//! exact (the BFS is the ground truth the test suites validate against);
//! only latency degrades.

use crate::batch::CancelToken;
use crate::{PreparedNetwork, QueryCost, RangeReachIndex};
use gsr_geo::Rect;
use gsr_graph::VertexId;
use std::sync::Arc;

/// The index-free evaluator: answers `RangeReach` online by BFS over the
/// condensation DAG, testing member points against the region as
/// components are popped.
///
/// Costs O(components + edges + points) per query and zero index bytes —
/// the extreme point of the space/time trade-off every indexed method
/// improves on. Used directly as the degraded mode of [`FallbackIndex`]
/// and as a baseline in benchmarks.
///
/// ```
/// use gsr_core::{OnlineReach, RangeReachIndex, paper_example};
/// use std::sync::Arc;
///
/// let online = OnlineReach::new(Arc::new(paper_example::prepared()));
/// assert!(online.query(paper_example::A, &paper_example::query_region()));
/// assert_eq!(online.index_bytes(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineReach {
    prep: Arc<PreparedNetwork>,
}

impl OnlineReach {
    /// Wraps a prepared network; no further construction work happens.
    pub fn new(prep: Arc<PreparedNetwork>) -> Self {
        OnlineReach { prep }
    }

    /// The underlying prepared network.
    pub fn prepared(&self) -> &PreparedNetwork {
        &self.prep
    }
}

impl RangeReachIndex for OnlineReach {
    fn num_vertices(&self) -> usize {
        self.prep.network().num_vertices()
    }

    fn query_unchecked(&self, v: VertexId, region: &Rect) -> bool {
        self.prep.range_reach_bfs(v, region)
    }

    fn query_with_cost_unchecked(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        self.prep.range_reach_bfs_with_cost(v, region)
    }

    fn index_bytes(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "OnlineReach"
    }
}

/// Why a [`FallbackIndex`] is serving answers without its primary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradedReason {
    /// The build was cancelled through the supplied [`CancelToken`]
    /// (before or during construction).
    BuildCancelled,
    /// The finished index exceeded the configured memory cap.
    MemoryCapExceeded {
        /// The configured cap in bytes.
        cap_bytes: usize,
        /// What the built index would have occupied.
        index_bytes: usize,
    },
}

impl std::fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedReason::BuildCancelled => write!(f, "index build was cancelled"),
            DegradedReason::MemoryCapExceeded { cap_bytes, index_bytes } => write!(
                f,
                "index needs {index_bytes} bytes, over the {cap_bytes}-byte cap"
            ),
        }
    }
}

/// Constraints applied to a [`FallbackIndex::build`].
#[derive(Debug, Clone, Default)]
pub struct FallbackOptions {
    /// Reject the primary index if its [`RangeReachIndex::index_bytes`]
    /// exceeds this many bytes; `None` means uncapped.
    pub memory_cap_bytes: Option<usize>,
    /// Cooperative cancellation: checked before and after the build
    /// closure runs (builders may also poll it themselves). `None` means
    /// not cancellable.
    pub cancel: Option<CancelToken>,
}

impl FallbackOptions {
    /// No cap, no cancellation — the primary index is always accepted.
    pub fn unlimited() -> Self {
        FallbackOptions::default()
    }

    /// Sets the memory cap in bytes.
    pub fn with_memory_cap(mut self, cap_bytes: usize) -> Self {
        self.memory_cap_bytes = Some(cap_bytes);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// A query index that degrades gracefully: it serves a primary index when
/// construction succeeded within its constraints, and otherwise answers
/// exactly (but more slowly) via [`OnlineReach`].
///
/// ```
/// use gsr_core::methods::ThreeDReach;
/// use gsr_core::{FallbackIndex, FallbackOptions, RangeReachIndex, SccSpatialPolicy};
/// use gsr_core::paper_example;
/// use std::sync::Arc;
///
/// let prep = Arc::new(paper_example::prepared());
/// // A 1-byte cap forces degraded mode; answers stay exact.
/// let idx = FallbackIndex::build(prep.clone(), &FallbackOptions::unlimited().with_memory_cap(1), {
///     let prep = prep.clone();
///     move || ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)
/// });
/// assert!(idx.is_degraded());
/// assert!(idx.query(paper_example::A, &paper_example::query_region()));
/// ```
pub struct FallbackIndex {
    primary: Option<Box<dyn RangeReachIndex>>,
    online: OnlineReach,
    degraded: Option<DegradedReason>,
}

impl std::fmt::Debug for FallbackIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FallbackIndex")
            .field("primary", &self.primary.as_ref().map(|p| p.name()))
            .field("degraded", &self.degraded)
            .finish()
    }
}

impl FallbackIndex {
    /// Runs `build` under the constraints in `options`. If the token is
    /// cancelled (before or during the build) or the finished index is
    /// over the memory cap, the primary is dropped and the instance
    /// serves [`OnlineReach`] answers instead.
    pub fn build<F, I>(prep: Arc<PreparedNetwork>, options: &FallbackOptions, build: F) -> Self
    where
        F: FnOnce() -> I,
        I: RangeReachIndex + 'static,
    {
        let online = OnlineReach::new(prep);
        let cancelled =
            |opts: &FallbackOptions| opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled);
        if cancelled(options) {
            return FallbackIndex {
                primary: None,
                online,
                degraded: Some(DegradedReason::BuildCancelled),
            };
        }
        let built = build();
        if cancelled(options) {
            // The token flipped while the build ran; honor it even though
            // the work finished — the caller asked for the resources back.
            return FallbackIndex {
                primary: None,
                online,
                degraded: Some(DegradedReason::BuildCancelled),
            };
        }
        if let Some(cap) = options.memory_cap_bytes {
            let index_bytes = built.index_bytes();
            if index_bytes > cap {
                return FallbackIndex {
                    primary: None,
                    online,
                    degraded: Some(DegradedReason::MemoryCapExceeded {
                        cap_bytes: cap,
                        index_bytes,
                    }),
                };
            }
        }
        FallbackIndex { primary: Some(Box::new(built)), online, degraded: None }
    }

    /// Whether queries are served by the online BFS instead of the
    /// primary index.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// Why the instance is degraded, if it is.
    pub fn degraded_reason(&self) -> Option<&DegradedReason> {
        self.degraded.as_ref()
    }
}

impl RangeReachIndex for FallbackIndex {
    fn num_vertices(&self) -> usize {
        self.online.num_vertices()
    }

    fn query_unchecked(&self, v: VertexId, region: &Rect) -> bool {
        match &self.primary {
            Some(primary) => primary.query_unchecked(v, region),
            None => self.online.query_unchecked(v, region),
        }
    }

    fn query_with_cost_unchecked(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        match &self.primary {
            Some(primary) => primary.query_with_cost_unchecked(v, region),
            None => self.online.query_with_cost_unchecked(v, region),
        }
    }

    fn index_bytes(&self) -> usize {
        self.primary.as_ref().map_or(0, |p| p.index_bytes())
    }

    fn name(&self) -> &'static str {
        match &self.primary {
            Some(primary) => primary.name(),
            None => "OnlineReach",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::ThreeDReach;
    use crate::{paper_example, GsrError, SccSpatialPolicy};

    fn prep() -> Arc<PreparedNetwork> {
        Arc::new(paper_example::prepared())
    }

    #[test]
    fn online_reach_matches_ground_truth() {
        let prep = prep();
        let online = OnlineReach::new(prep.clone());
        for v in prep.network().graph().vertices() {
            for r in paper_example::probe_regions() {
                assert_eq!(online.query(v, &r), prep.range_reach_bfs(v, &r), "v={v} r={r}");
            }
        }
        assert_eq!(online.index_bytes(), 0);
    }

    #[test]
    fn online_reach_validates_inputs() {
        let online = OnlineReach::new(prep());
        let r = paper_example::query_region();
        assert!(matches!(
            online.try_query(9999, &r),
            Err(GsrError::InvalidVertex { vertex: 9999, .. })
        ));
        let bad = gsr_geo::Rect { min_x: 2.0, min_y: 0.0, max_x: 1.0, max_y: 1.0 };
        assert!(matches!(online.try_query(0, &bad), Err(GsrError::InvalidRect { .. })));
    }

    #[test]
    fn unconstrained_build_serves_primary() {
        let prep = prep();
        let idx = FallbackIndex::build(prep.clone(), &FallbackOptions::unlimited(), {
            let prep = prep.clone();
            move || ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)
        });
        assert!(!idx.is_degraded());
        assert_eq!(idx.name(), "3DReach");
        assert!(idx.index_bytes() > 0);
        for v in prep.network().graph().vertices() {
            for r in paper_example::probe_regions() {
                assert_eq!(idx.query(v, &r), prep.range_reach_bfs(v, &r));
            }
        }
    }

    #[test]
    fn memory_cap_degrades_to_online_with_exact_answers() {
        let prep = prep();
        let options = FallbackOptions::unlimited().with_memory_cap(1);
        let idx = FallbackIndex::build(prep.clone(), &options, {
            let prep = prep.clone();
            move || ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)
        });
        assert!(idx.is_degraded());
        assert_eq!(idx.name(), "OnlineReach");
        assert_eq!(idx.index_bytes(), 0);
        match idx.degraded_reason() {
            Some(DegradedReason::MemoryCapExceeded { cap_bytes: 1, index_bytes }) => {
                assert!(*index_bytes > 1);
            }
            other => panic!("expected MemoryCapExceeded, got {other:?}"),
        }
        for v in prep.network().graph().vertices() {
            for r in paper_example::probe_regions() {
                assert_eq!(idx.query(v, &r), prep.range_reach_bfs(v, &r));
            }
        }
    }

    #[test]
    fn cancelled_token_skips_the_build() {
        let prep = prep();
        let token = CancelToken::new();
        token.cancel();
        let options = FallbackOptions::unlimited().with_cancel(token);
        let ran = std::cell::Cell::new(false);
        let idx = FallbackIndex::build(prep.clone(), &options, {
            let prep = prep.clone();
            let ran = &ran;
            move || {
                ran.set(true);
                ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)
            }
        });
        assert!(!ran.get(), "build closure must not run after cancellation");
        assert_eq!(idx.degraded_reason(), Some(&DegradedReason::BuildCancelled));
        assert!(idx.query(paper_example::A, &paper_example::query_region()));
    }

    #[test]
    fn cancellation_during_build_is_honored() {
        let prep = prep();
        let token = CancelToken::new();
        let options = FallbackOptions::unlimited().with_cancel(token.clone());
        let idx = FallbackIndex::build(prep.clone(), &options, {
            let prep = prep.clone();
            move || {
                // Simulate a cancel request arriving mid-build.
                token.cancel();
                ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)
            }
        });
        assert_eq!(idx.degraded_reason(), Some(&DegradedReason::BuildCancelled));
    }
}
