//! A lock-free, fixed-bucket, power-of-two latency histogram.
//!
//! This is the one histogram implementation in the workspace: the query
//! server's `STATS` counters ([`gsr-server`]'s `ServerStats`) and the bench
//! crate's open-loop load recorder (`gsr_bench::loadtest`) both record into
//! it, so a latency number reported by either side is quantized the same
//! way and the two can be reconciled exactly.
//!
//! Recording is a single relaxed atomic increment — the hot path never
//! contends on a lock — at the price of quantiles quantized to bucket
//! upper bounds, which is plenty for service monitoring and for deciding
//! where a saturation sweep's p99 blows up.
//!
//! The bucket layout is a stable contract: bucket `i` counts samples in
//! `[2^i, 2^(i+1))` microseconds, bucket `0` also absorbs sub-microsecond
//! samples, and the last bucket absorbs everything at or past `2^39` µs
//! (~6.4 days). [`LatencyHistogram::bucket_index`] and
//! [`LatencyHistogram::bucket_bounds`] expose the mapping in both
//! directions so tests can pin that the boundaries round-trip.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets. 40 buckets cover up to ~12.7
/// days of recorded latency, far past any realistic request.
pub const BUCKETS: usize = 40;

/// A fixed-bucket, power-of-two latency histogram; see the module docs
/// for the bucket contract.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// The bucket a sample of `us` microseconds lands in.
    pub const fn bucket_index(us: u64) -> usize {
        let us = if us == 0 { 1 } else { us };
        let idx = (63 - us.leading_zeros()) as usize;
        if idx < BUCKETS - 1 {
            idx
        } else {
            BUCKETS - 1
        }
    }

    /// The inclusive `[lo, hi]` microsecond range of bucket `index`
    /// (clamped to the last bucket). Bucket 0 reports `[0, 1]` because it
    /// also absorbs sub-microsecond samples; the last bucket's `hi` is its
    /// nominal upper bound, although it absorbs every larger sample too.
    pub const fn bucket_bounds(index: usize) -> (u64, u64) {
        let index = if index < BUCKETS { index } else { BUCKETS - 1 };
        let lo = if index == 0 { 0 } else { 1u64 << index };
        (lo, (2u64 << index) - 1)
    }

    /// Records one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Adds every bucket count of `other` into `self`. Merging per-worker
    /// histograms is exactly equivalent to having recorded all samples
    /// into one histogram — the property the load generator's per-client
    /// recorders rely on.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Zeroes every bucket. Not a transaction: samples recorded
    /// concurrently may land before or after the wipe, which monitoring
    /// (and a sweep step boundary on an idle server) does not need.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding it, in microseconds; 0 when no samples were recorded.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bounds(i).1;
            }
        }
        Self::bucket_bounds(BUCKETS - 1).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.quantile_us(0.999), 0);
    }

    #[test]
    fn bucket_contract_examples() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_bounds(0), (0, 1));
        assert_eq!(LatencyHistogram::bucket_bounds(3), (8, 15));
    }

    #[test]
    fn reset_zeroes_counts() {
        let h = LatencyHistogram::default();
        for us in [0, 5, 100, 1_000_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 4);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.99), 0);
    }

    proptest! {
        /// Quantiles are monotone in the quantile: for any recorded sample
        /// set and any pair q1 <= q2, quantile(q1) <= quantile(q2).
        #[test]
        fn quantiles_are_monotone(
            samples in prop::collection::vec(0u64..5_000_000, 1..200),
            a in 0.0f64..1.0,
            b in 0.0f64..1.0,
        ) {
            let h = LatencyHistogram::default();
            for &s in &samples {
                h.record_us(s);
            }
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(h.quantile_us(lo) <= h.quantile_us(hi));
            prop_assert!(h.quantile_us(0.0) <= h.quantile_us(1.0));
        }

        /// Merging per-recorder histograms is exactly the histogram of the
        /// pooled samples: identical bucket counts, hence identical
        /// quantiles at every q.
        #[test]
        fn merge_equals_pooled_recording(
            xs in prop::collection::vec(0u64..10_000_000, 0..150),
            ys in prop::collection::vec(0u64..10_000_000, 0..150),
        ) {
            let (hx, hy, pooled) = (
                LatencyHistogram::default(),
                LatencyHistogram::default(),
                LatencyHistogram::default(),
            );
            for &s in &xs {
                hx.record_us(s);
                pooled.record_us(s);
            }
            for &s in &ys {
                hy.record_us(s);
                pooled.record_us(s);
            }
            let merged = LatencyHistogram::default();
            merged.merge_from(&hx);
            merged.merge_from(&hy);
            prop_assert_eq!(merged.bucket_counts(), pooled.bucket_counts());
            prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
            for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
                prop_assert_eq!(merged.quantile_us(q), pooled.quantile_us(q));
            }
        }

        /// Bucket boundaries round-trip: both bounds of every bucket map
        /// back to that bucket, and any sample lands inside the bounds of
        /// the bucket it maps to.
        #[test]
        fn bucket_bounds_round_trip(us in 0u64..u64::MAX, i in 0usize..BUCKETS) {
            let (lo, hi) = LatencyHistogram::bucket_bounds(i);
            prop_assert_eq!(LatencyHistogram::bucket_index(lo), i);
            prop_assert_eq!(LatencyHistogram::bucket_index(hi), i);
            prop_assert!(lo <= hi);

            let idx = LatencyHistogram::bucket_index(us);
            let (blo, bhi) = LatencyHistogram::bucket_bounds(idx);
            if idx < BUCKETS - 1 {
                prop_assert!(blo <= us.max(1) && us <= bhi, "us={} in [{}, {}]", us, blo, bhi);
            } else {
                prop_assert!(us.max(1) >= blo, "last bucket absorbs the tail");
            }
        }
    }
}
