//! # Fast Geosocial Reachability Queries
//!
//! A Rust implementation of the EDBT 2025 paper *"Fast Geosocial
//! Reachability Queries"* (Bouros, Chondrogiannis, Kowalski).
//!
//! Given a geosocial network `G = (V, E, P)` — a directed graph whose
//! vertices may carry points in the plane — a query vertex `v` and a
//! rectangular region `R`, the **geosocial reachability query**
//! `RangeReach(G, v, R)` asks whether `v` can reach *any* vertex whose point
//! lies inside `R` (Problem 1 of the paper).
//!
//! The crate provides six evaluation methods behind one trait,
//! [`RangeReachIndex`]:
//!
//! | Method | Strategy | Paper section |
//! |---|---|---|
//! | [`methods::SpaReachBfl`] | spatial-first; 2-D R-tree + BFL reachability | 2.2.1 |
//! | [`methods::SpaReachInt`] | spatial-first; 2-D R-tree + interval labeling | 2.2.1 |
//! | [`methods::GeoReach`]    | SPA-graph traversal (prior state of the art) | 2.2.2 |
//! | [`methods::SocReach`]    | social-first; interval labeling + point scan | 4.1 |
//! | [`methods::ThreeDReach`] | 3-D transformation; one cuboid query per label | 4.2 |
//! | [`methods::ThreeDReachRev`] | 3-D transformation; reversed labeling, one plane query | 4.2 |
//!
//! Arbitrary (cyclic) graphs are handled by SCC condensation with either of
//! the two spatial-SCC policies of Section 5 ([`SccSpatialPolicy`]).
//! Beyond the paper's headline, [`methods::ThreeDReporter`],
//! [`methods::NearestReach`] and [`methods::DynamicThreeDReach`] answer the
//! reporting, nearest-reachable and incremental-update variants, and
//! [`extensions`] generalizes to rectangle geometries and 3-D space
//! (footnote 1 of the paper).
//!
//! ## Quick start
//!
//! ```
//! use gsr_core::{GeosocialNetwork, PreparedNetwork, RangeReachIndex, SccSpatialPolicy};
//! use gsr_core::methods::ThreeDReach;
//! use gsr_geo::{Point, Rect};
//! use gsr_graph::GraphBuilder;
//!
//! // A tiny network: user 0 follows user 1, who checked in at venue 2.
//! let mut g = GraphBuilder::new(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! let points = vec![None, None, Some(Point::new(5.0, 5.0))];
//! let net = GeosocialNetwork::new(g.build(), points).unwrap();
//! let prepared = PreparedNetwork::new(net);
//!
//! let index = ThreeDReach::build(&prepared, SccSpatialPolicy::Replicate);
//! assert!(index.query(0, &Rect::new(0.0, 0.0, 10.0, 10.0)));
//! assert!(!index.query(2, &Rect::new(20.0, 20.0, 30.0, 30.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
pub mod extensions;
mod fallback;
pub mod hist;
pub mod methods;
mod network;
pub mod paper_example;
pub mod partition;
pub mod scratch;
mod traits;

pub use batch::{
    BatchExecutor, BatchOptions, BatchOutcome, BatchQuery, BatchSchedule, CancelToken,
};
pub use error::GsrError;
pub use fallback::{DegradedReason, FallbackIndex, FallbackOptions, OnlineReach};
pub use network::{GeosocialNetwork, NetworkError, NetworkStats, PreparedNetwork};
pub use partition::{partition_tiles, tile_network, ShardMember, ShardedIndex, Tile};
pub use traits::{QueryCost, RangeReachIndex, SccSpatialPolicy, ShardStats};
