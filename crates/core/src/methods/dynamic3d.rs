//! An incrementally updatable 3DReach index — the paper's Section 8 future
//! work ("how our approach can efficiently handle updates in the network")
//! carried through to the full query method.
//!
//! [`DynamicThreeDReach`] seeds itself from a [`PreparedNetwork`] and then
//! absorbs, without any rebuild:
//!
//! * **new vertices** (users or venues) — each becomes a fresh singleton
//!   component with the next free post-order number;
//! * **new venue points** — inserted into the 3-D R-tree at the owning
//!   component's post-order height;
//! * **new edges** that keep the condensation acyclic — new *check-ins*
//!   (user → venue, venues are sinks) can never create a cycle, which makes
//!   exactly the dominant update stream of a live geosocial network safe;
//!   a friendship edge closing a cycle is rejected with [`CycleError`] and
//!   signals that a full rebuild (SCC merge) is required.
//!
//! Queries run exactly like the static 3DReach: one cuboid range query per
//! label of `L(v)`. The incremental post-order numbering gradually loses
//! the compactness of a fresh DFS numbering (labels fragment), so
//! long-running deployments should rebuild periodically — the same
//! trade-off the paper anticipates for gap-based numberings (Section 4.1).

use crate::{PreparedNetwork, RangeReachIndex};
use gsr_geo::{cuboid_from_rect, point3, Point, Rect};
use gsr_graph::scc::CompId;
use gsr_graph::VertexId;
use gsr_index::DynRTree;
pub use gsr_reach::dynamic::CycleError;
use gsr_reach::dynamic::DynamicIntervalLabeling;
use gsr_reach::Reachability;

/// The updatable 3DReach evaluator.
///
/// ```
/// use gsr_core::methods::DynamicThreeDReach;
/// use gsr_core::{paper_example, RangeReachIndex};
/// use gsr_geo::{Point, Rect};
///
/// let mut idx = DynamicThreeDReach::build(&paper_example::prepared());
/// let venue = idx.add_venue(Point::new(1.0, 1.0));
/// idx.add_checkin(paper_example::C, venue).unwrap();
/// assert!(idx.query(paper_example::C, &Rect::new(0.0, 0.0, 2.0, 2.0)));
/// ```
#[derive(Debug, Clone)]
pub struct DynamicThreeDReach {
    /// Component of every original or added vertex.
    comp_of: Vec<CompId>,
    labeling: DynamicIntervalLabeling,
    tree: DynRTree<3, CompId>,
}

impl DynamicThreeDReach {
    /// Seeds the index from a prepared network (replicate layout: one 3-D
    /// point per spatial vertex).
    pub fn build(prep: &PreparedNetwork) -> Self {
        let labeling = DynamicIntervalLabeling::from_graph(prep.dag());
        let mut tree = DynRTree::new();
        for (v, p) in prep.network().spatial_vertices() {
            let comp = prep.comp(v);
            tree.insert(point3(p, labeling.post(comp) as f64), comp);
        }
        DynamicThreeDReach {
            comp_of: (0..prep.network().num_vertices() as VertexId)
                .map(|v| prep.comp(v))
                .collect(),
            labeling,
            tree,
        }
    }

    /// Number of vertices currently known (original + added).
    pub fn num_vertices(&self) -> usize {
        self.comp_of.len()
    }

    /// Adds a social vertex (a user) and returns its id.
    pub fn add_user(&mut self) -> VertexId {
        let comp = self.labeling.add_vertex();
        let v = self.comp_of.len() as VertexId;
        self.comp_of.push(comp);
        v
    }

    /// Adds a spatial vertex (a venue) at `point` and returns its id.
    pub fn add_venue(&mut self, point: Point) -> VertexId {
        let comp = self.labeling.add_vertex();
        let v = self.comp_of.len() as VertexId;
        self.comp_of.push(comp);
        self.tree.insert(point3(point, self.labeling.post(comp) as f64), comp);
        v
    }

    /// Adds a directed edge (check-in or follow). Edges that would merge
    /// two components (i.e. create a cycle in the condensation) are
    /// rejected; intra-component edges are no-ops.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) -> Result<(), CycleError> {
        let (cf, ct) = (self.comp_of[from as usize], self.comp_of[to as usize]);
        if cf == ct {
            return Ok(()); // already mutually reachable
        }
        self.labeling.add_edge(cf, ct)
    }

    /// Convenience: a check-in edge `user -> venue`. Venues have no
    /// outgoing edges, so this can never cycle; the `Result` is still
    /// surfaced in case the callee ids are misused.
    pub fn add_checkin(&mut self, user: VertexId, venue: VertexId) -> Result<(), CycleError> {
        self.add_edge(user, venue)
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.comp_of.len() * 4 + self.labeling.heap_bytes() + self.tree.heap_bytes()
    }
}

impl RangeReachIndex for DynamicThreeDReach {
    fn num_vertices(&self) -> usize {
        self.comp_of.len()
    }

    fn query_unchecked(&self, v: VertexId, region: &Rect) -> bool {
        let from = self.comp_of[v as usize];
        self.labeling.intervals(from).iter().any(|iv| {
            self.tree.query_exists(&cuboid_from_rect(region, iv.lo as f64, iv.hi as f64))
        })
    }

    fn index_bytes(&self) -> usize {
        self.bytes()
    }

    fn name(&self) -> &'static str {
        "3DReach-DYN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::ThreeDReach;
    use crate::{paper_example, GeosocialNetwork, SccSpatialPolicy};
    use gsr_graph::GraphBuilder;

    #[test]
    fn seeded_index_matches_static() {
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            let dynamic = DynamicThreeDReach::build(&prep);
            let static_idx = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
            for v in prep.network().graph().vertices() {
                for r in paper_example::probe_regions() {
                    assert_eq!(dynamic.query(v, &r), static_idx.query(v, &r), "v={v} r={r}");
                }
            }
        }
    }

    /// Applies the same updates incrementally and by rebuild, comparing.
    #[test]
    fn updates_match_full_rebuild() {
        let prep = paper_example::prepared();
        let mut dynamic = DynamicThreeDReach::build(&prep);

        // Mirror the updates in a growing edge/point list for the rebuild.
        let mut edges = paper_example::edges();
        let mut points = paper_example::points();

        // A new user follows a; a new venue opens; b checks in there; the
        // new user checks in at the old venue l.
        let user = dynamic.add_user();
        assert_eq!(user, 12);
        points.push(None);
        let venue = dynamic.add_venue(Point::new(3.0, 3.0));
        assert_eq!(venue, 13);
        points.push(Some(Point::new(3.0, 3.0)));

        dynamic.add_edge(user, paper_example::A).unwrap();
        edges.push((user, paper_example::A));
        dynamic.add_checkin(paper_example::B, venue).unwrap();
        edges.push((paper_example::B, venue));
        dynamic.add_checkin(user, paper_example::L).unwrap();
        edges.push((user, paper_example::L));

        let rebuilt = crate::PreparedNetwork::new(
            GeosocialNetwork::new(
                gsr_graph::graph_from_edges(14, &edges),
                points,
            )
            .unwrap(),
        );
        let static_idx = ThreeDReach::build(&rebuilt, SccSpatialPolicy::Replicate);

        for v in 0..14u32 {
            for r in paper_example::probe_regions() {
                assert_eq!(
                    dynamic.query(v, &r),
                    static_idx.query(v, &r),
                    "v={v} r={r} after updates"
                );
            }
            // Plus the region around the new venue.
            let around = Rect::square(Point::new(3.0, 3.0), 1.0);
            assert_eq!(dynamic.query(v, &around), static_idx.query(v, &around), "v={v}");
        }
    }

    #[test]
    fn cycle_creating_edges_are_rejected() {
        let prep = paper_example::prepared();
        let mut dynamic = DynamicThreeDReach::build(&prep);
        // a reaches d; d -> a would merge their components.
        assert!(dynamic.add_edge(paper_example::D, paper_example::A).is_err());
        // Within an existing SCC the edge is a no-op, not an error.
        let cyclic = paper_example::cyclic_prepared();
        let mut dyn2 = DynamicThreeDReach::build(&cyclic);
        assert!(dyn2.add_edge(paper_example::A, paper_example::B).is_ok());
    }

    #[test]
    fn checkin_stream_grows_reachability() {
        // Start from an empty network and stream users, venues, check-ins.
        let empty = crate::PreparedNetwork::new(
            GeosocialNetwork::new(GraphBuilder::new(0).build(), vec![]).unwrap(),
        );
        let mut dynamic = DynamicThreeDReach::build(&empty);
        let alice = dynamic.add_user();
        let bob = dynamic.add_user();
        let cafe = dynamic.add_venue(Point::new(10.0, 10.0));
        let park = dynamic.add_venue(Point::new(90.0, 90.0));

        dynamic.add_edge(alice, bob).unwrap();
        dynamic.add_checkin(bob, cafe).unwrap();

        let near_cafe = Rect::square(Point::new(10.0, 10.0), 4.0);
        let near_park = Rect::square(Point::new(90.0, 90.0), 4.0);
        assert!(dynamic.query(alice, &near_cafe), "alice -> bob -> cafe");
        assert!(!dynamic.query(alice, &near_park));
        assert!(dynamic.query(park, &near_park), "reflexive venue query");

        dynamic.add_checkin(alice, park).unwrap();
        assert!(dynamic.query(alice, &near_park));
        assert!(!dynamic.query(bob, &near_park), "bob still can't reach the park");
    }
}
