//! GeoReach (Sarwat & Sun), the prior state of the art (Section 2.2.2).
//!
//! GeoReach augments every vertex of the network with precomputed spatial
//! reachability information — the *SPA-graph* — and answers `RangeReach`
//! queries by a pruned breadth-first traversal. Each vertex is one of:
//!
//! * a **G-vertex** carrying `ReachGrid(v)`: the hierarchical-grid cells
//!   (potentially from several levels) containing every spatial vertex
//!   reachable from `v`;
//! * an **R-vertex** carrying `RMBR(v)`: the minimum bounding rectangle of
//!   those spatial vertices (used when the grid set grows past
//!   `MAX_REACH_GRIDS`);
//! * a **B-vertex** carrying only the bit `GeoB(v)`: whether *any* spatial
//!   vertex is reachable (used when the RMBR grows past `MAX_RMBR`).
//!
//! Unlike the paper's new methods, GeoReach exploits no reachability
//! labeling, so part of the network must still be traversed per query —
//! its key weakness (Section 2.2.3). Per Section 6.2, GeoReach "always
//! operates under a non-MBR principle, by design", so there is no SCC
//! spatial-policy knob here; the SPA-graph is built on the condensation and
//! member points are consulted exactly.

use crate::{PreparedNetwork, QueryCost, RangeReachIndex};
use gsr_geo::Rect;
use gsr_graph::scc::CompId;
use gsr_graph::{topo, Col, VertexId};
use gsr_index::grid::{CellId, HierarchicalGrid};

/// Construction parameters of the SPA-graph (Section 2.2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoReachParams {
    /// `MAX_RMBR`: the maximum allowed extent of an `RMBR(v)`, as a fraction
    /// of the whole space's area; vertices above it become B-vertices.
    /// Example 2.5 uses `0.8 * SPACE`.
    pub max_rmbr_frac: f64,
    /// `MAX_REACH_GRIDS`: the maximum cardinality of a `ReachGrid(v)`;
    /// vertices above it become R-vertices.
    pub max_reach_grids: usize,
    /// `MERGE_COUNT`: more than this many sibling quad-cells in a
    /// `ReachGrid` merge into their parent cell.
    pub merge_count: usize,
    /// Finest grid level exponent: `L0` has `2^finest_exp` cells per side.
    pub finest_exp: u8,
}

impl Default for GeoReachParams {
    fn default() -> Self {
        GeoReachParams {
            max_rmbr_frac: 0.8,
            max_reach_grids: 64,
            merge_count: 3,
            finest_exp: 7,
        }
    }
}

/// Per-component spatial reachability information of the SPA-graph.
#[derive(Debug, Clone)]
enum SpaInfo {
    /// `GeoB(v)`: whether any spatial vertex is reachable.
    B(bool),
    /// `RMBR(v)`.
    R(Rect),
    /// `ReachGrid(v)`, merged and deduplicated.
    G(Vec<CellId>),
}

/// Public mirror of the per-component SPA-graph information, for snapshot
/// encoding; see [`GeoReach::to_parts`] / [`GeoReach::from_parts`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpaInfoParts {
    /// `GeoB(v)`: whether any spatial vertex is reachable.
    B(bool),
    /// `RMBR(v)`.
    R(Rect),
    /// `ReachGrid(v)`, merged and deduplicated.
    G(Vec<CellId>),
}

/// Owned decomposition of a [`GeoReach`] index for snapshot encoding.
#[derive(Debug, Clone)]
pub struct GeoReachParts {
    /// Component of every original vertex.
    pub comp_of: Vec<CompId>,
    /// The condensation DAG the traversal runs on.
    pub dag: gsr_graph::DiGraph,
    /// The space covered by the hierarchical grid.
    pub space: Rect,
    /// The finest-level exponent of the hierarchical grid.
    pub finest_exp: u8,
    /// Per-component SPA-graph information.
    pub info: Vec<SpaInfoParts>,
    /// CSR offsets into `member_points`, one range per component.
    pub member_offsets: Vec<u32>,
    /// Flattened per-component spatial member points.
    pub member_points: Vec<gsr_geo::Point>,
}

/// The GeoReach evaluator: SPA-graph over the condensation DAG.
#[derive(Debug, Clone)]
pub struct GeoReach {
    comp_of: Col<CompId>,
    dag: gsr_graph::DiGraph,
    grid: HierarchicalGrid,
    info: Vec<SpaInfo>,
    /// Member points per component (CSR) for the exact checks during the
    /// traversal.
    member_offsets: Col<u32>,
    member_points: Col<gsr_geo::Point>,
}

impl GeoReach {
    /// Builds the SPA-graph with default parameters.
    pub fn build(prep: &PreparedNetwork) -> Self {
        Self::build_with(prep, GeoReachParams::default())
    }

    /// Builds the SPA-graph with explicit parameters.
    ///
    /// Vertex classification is computed in one reverse-topological pass:
    /// a component's candidate `ReachGrid` is its own members' cells plus
    /// its successors' grids; it is downgraded to an R-vertex when the set
    /// exceeds `MAX_REACH_GRIDS` (or when a successor has already lost its
    /// grid), and further to a B-vertex when the RMBR exceeds `MAX_RMBR`.
    pub fn build_with(prep: &PreparedNetwork, params: GeoReachParams) -> Self {
        let dag = prep.dag().clone();
        let ncomp = prep.num_components();
        let grid = HierarchicalGrid::new(prep.space(), params.finest_exp);
        let max_rmbr_area = params.max_rmbr_frac * prep.space().area();

        // Tight RMBRs and reach-bits for every component, bottom-up.
        // A condensation is acyclic by construction, so ordering it
        // cannot fail.
        #[allow(clippy::expect_used)]
        let order = topo::topological_order(&dag).expect("condensation is a DAG");
        let mut rmbr: Vec<Option<Rect>> = vec![None; ncomp];
        let mut info: Vec<SpaInfo> = Vec::with_capacity(ncomp);
        info.resize_with(ncomp, || SpaInfo::B(false));

        for &c in order.iter().rev() {
            let ci = c as usize;
            // Own spatial members.
            let mut my_rmbr = prep.comp_mbr(c);
            let mut my_cells: Option<Vec<CellId>> = Some(
                prep.spatial_member_points(c)
                    .map(|p| grid.cell_of(&p))
                    .collect(),
            );
            // Successors.
            for &s in dag.out_neighbors(c) {
                let si = s as usize;
                match (&mut my_rmbr, rmbr[si]) {
                    (_, None) => {
                        // Successor is B(false) (nothing spatial) or B(true)
                        // (unbounded). Distinguish via its info.
                        if matches!(info[si], SpaInfo::B(true)) {
                            my_rmbr = None; // unbounded propagates
                            my_cells = None;
                            break;
                        }
                        // B(false): contributes nothing.
                    }
                    (None, Some(sr)) => my_rmbr = Some(sr),
                    (Some(mr), Some(sr)) => mr.expand_to_rect(&sr),
                }
                // Grid set: only exact if the successor kept one.
                if let Some(ref mut mine) = my_cells {
                    match &info[si] {
                        SpaInfo::G(sc) => mine.extend_from_slice(sc),
                        SpaInfo::B(false) => {}
                        _ => my_cells = None,
                    }
                }
            }

            // Classify along the G >= R >= B lattice.
            let downgrade = |rm: Option<Rect>| match rm {
                Some(r) if r.area() <= max_rmbr_area => SpaInfo::R(r),
                // RMBR too large, or unbounded via a B(true) successor.
                _ => SpaInfo::B(true),
            };
            info[ci] = match my_cells.take() {
                Some(cs) if cs.is_empty() => SpaInfo::B(false),
                Some(mut cs) => {
                    grid.merge_cells(&mut cs, params.merge_count);
                    if cs.len() <= params.max_reach_grids {
                        SpaInfo::G(cs)
                    } else {
                        downgrade(my_rmbr)
                    }
                }
                None => downgrade(my_rmbr),
            };
            // A B-vertex exposes no geometry to its predecessors: the
            // SPA-graph stores only GeoB(v) for it, so its tight RMBR must
            // not leak upward (it would make our GeoReach stronger than the
            // paper's).
            rmbr[ci] = match info[ci] {
                SpaInfo::B(_) => None,
                _ => my_rmbr,
            };
        }

        // Flatten member points for the exact traversal checks.
        let mut member_offsets = Vec::with_capacity(ncomp + 1);
        let mut member_points = Vec::new();
        member_offsets.push(0u32);
        for c in 0..ncomp as CompId {
            member_points.extend(prep.spatial_member_points(c));
            member_offsets.push(member_points.len() as u32);
        }

        GeoReach {
            comp_of: (0..prep.network().num_vertices() as VertexId)
                .map(|v| prep.comp(v))
                .collect::<Vec<CompId>>()
                .into(),
            dag,
            grid,
            info,
            member_offsets: member_offsets.into(),
            member_points: member_points.into(),
        }
    }

    fn own_member_in(&self, c: CompId, region: &Rect, cost: &mut QueryCost) -> bool {
        let lo = self.member_offsets[c as usize] as usize;
        let hi = self.member_offsets[c as usize + 1] as usize;
        self.member_points[lo..hi].iter().any(|p| {
            cost.containment_tests += 1;
            region.contains_point(p)
        })
    }

    /// Decomposes the index for snapshot encoding.
    pub fn to_parts(&self) -> GeoReachParts {
        GeoReachParts {
            comp_of: self.comp_of.to_vec(),
            dag: self.dag.clone(),
            space: *self.grid.space(),
            finest_exp: self.grid.finest_exp(),
            info: self.spa_info().collect(),
            member_offsets: self.member_offsets.to_vec(),
            member_points: self.member_points.to_vec(),
        }
    }

    /// Streams the per-component SPA-graph information as public
    /// [`SpaInfoParts`] (for snapshot encoding without materializing a
    /// full [`GeoReachParts`]).
    pub fn spa_info(&self) -> impl Iterator<Item = SpaInfoParts> + '_ {
        self.info.iter().map(|i| match i {
            SpaInfo::B(b) => SpaInfoParts::B(*b),
            SpaInfo::R(r) => SpaInfoParts::R(*r),
            SpaInfo::G(cells) => SpaInfoParts::G(cells.clone()),
        })
    }

    /// Borrowed view of the flat columns for zero-copy snapshot encoding:
    /// `(comp_of, dag, space, finest_exp, member_offsets, member_points)`.
    /// The SPA-graph info itself is streamed via [`GeoReach::spa_info`].
    pub fn cols(&self) -> (&[CompId], &gsr_graph::DiGraph, Rect, u8, &[u32], &[gsr_geo::Point]) {
        (
            &self.comp_of,
            &self.dag,
            *self.grid.space(),
            self.grid.finest_exp(),
            &self.member_offsets,
            &self.member_points,
        )
    }

    /// Reassembles an index from untrusted [`GeoReachParts`].
    ///
    /// Every per-component table must match the DAG's vertex count and
    /// `comp_of` must reference DAG components, so that no traversal can
    /// index out of bounds. Violations are `Err(String)`, never panics.
    pub fn from_parts(parts: GeoReachParts) -> Result<Self, String> {
        let GeoReachParts {
            comp_of,
            dag,
            space,
            finest_exp,
            info,
            member_offsets,
            member_points,
        } = parts;
        Self::from_cols(
            comp_of.into(),
            dag,
            space,
            finest_exp,
            info,
            member_offsets.into(),
            member_points.into(),
        )
    }

    /// [`GeoReach::from_parts`] over already-assembled columns — the v3
    /// zero-copy load path (the DAG arrives via
    /// [`gsr_graph::DiGraph::from_csr_cols`]). Identical validation.
    #[allow(clippy::too_many_arguments)]
    pub fn from_cols(
        comp_of: Col<CompId>,
        dag: gsr_graph::DiGraph,
        space: Rect,
        finest_exp: u8,
        info: Vec<SpaInfoParts>,
        member_offsets: Col<u32>,
        member_points: Col<gsr_geo::Point>,
    ) -> Result<Self, String> {
        let ncomp = dag.num_vertices();
        if info.len() != ncomp {
            return Err(format!(
                "georeach: {} info entries for {ncomp} components",
                info.len()
            ));
        }
        if member_offsets.len() != ncomp + 1 {
            return Err(format!(
                "georeach: {} member offsets for {ncomp} components",
                member_offsets.len()
            ));
        }
        if member_offsets[0] != 0 || member_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("georeach: member offsets not monotone from 0".into());
        }
        if member_offsets[ncomp] as usize != member_points.len() {
            return Err(format!(
                "georeach: member offsets claim {} points but {} present",
                member_offsets[ncomp],
                member_points.len()
            ));
        }
        if let Some(&c) = comp_of.iter().find(|&&c| (c as usize) >= ncomp) {
            return Err(format!(
                "georeach: comp_of references component {c} >= {ncomp}"
            ));
        }
        let info = info
            .into_iter()
            .map(|i| match i {
                SpaInfoParts::B(b) => SpaInfo::B(b),
                SpaInfoParts::R(r) => SpaInfo::R(r),
                SpaInfoParts::G(cells) => SpaInfo::G(cells),
            })
            .collect();
        Ok(GeoReach {
            comp_of,
            dag,
            grid: HierarchicalGrid::new(space, finest_exp),
            info,
            member_offsets,
            member_points,
        })
    }

    /// Classification counts `(b, r, g)` — useful for inspecting how the
    /// construction parameters shape the SPA-graph.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for i in &self.info {
            match i {
                SpaInfo::B(_) => counts.0 += 1,
                SpaInfo::R(_) => counts.1 += 1,
                SpaInfo::G(_) => counts.2 += 1,
            }
        }
        counts
    }
}

impl RangeReachIndex for GeoReach {
    fn num_vertices(&self) -> usize {
        self.comp_of.len()
    }

    fn query_unchecked(&self, v: VertexId, region: &Rect) -> bool {
        self.query_with_cost_unchecked(v, region).0
    }

    fn query_with_cost_unchecked(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        let mut cost = QueryCost::default();
        let start = self.comp_of[v as usize];
        crate::scratch::with_scratch(|scratch| {
            scratch.begin_visit(self.dag.num_vertices());
            scratch.mark(start);
            scratch.queue.push_back(start);

            while let Some(c) = scratch.queue.pop_front() {
                cost.vertices_visited += 1;
                let expand = match &self.info[c as usize] {
                    // GeoB(v) = FALSE: nothing spatial downstream — prune.
                    SpaInfo::B(false) => false,
                    // GeoB(v) = TRUE: no geometry to prune with — expand, but
                    // first test the component's own points exactly.
                    SpaInfo::B(true) => {
                        if self.own_member_in(c, region, &mut cost) {
                            return (true, cost);
                        }
                        true
                    }
                    SpaInfo::R(rmbr) => {
                        if !rmbr.intersects(region) {
                            false // no reachable spatial vertex can be in R
                        } else if region.contains_rect(rmbr) {
                            // All reachable spatial vertices are inside R and at
                            // least one exists.
                            return (true, cost);
                        } else {
                            if self.own_member_in(c, region, &mut cost) {
                                return (true, cost);
                            }
                            true
                        }
                    }
                    SpaInfo::G(cells) => {
                        let mut any_overlap = false;
                        for cell in cells {
                            let r = self.grid.cell_rect(cell);
                            if region.contains_rect(&r) {
                                // A ReachGrid cell always holds >= 1 reachable
                                // spatial vertex: terminate with TRUE.
                                return (true, cost);
                            }
                            any_overlap |= r.intersects(region);
                        }
                        if !any_overlap {
                            false
                        } else {
                            if self.own_member_in(c, region, &mut cost) {
                                return (true, cost);
                            }
                            true
                        }
                    }
                };
                if expand {
                    for &w in self.dag.out_neighbors(c) {
                        if scratch.mark(w) {
                            scratch.queue.push_back(w);
                        }
                    }
                }
            }
            (false, cost)
        })
    }

    fn index_bytes(&self) -> usize {
        let info_bytes: usize = self
            .info
            .iter()
            .map(|i| match i {
                SpaInfo::B(_) => 1,
                SpaInfo::R(_) => std::mem::size_of::<Rect>(),
                SpaInfo::G(cells) => cells.len() * std::mem::size_of::<CellId>(),
            })
            .sum();
        // The SPA-graph also stores the (condensed) adjacency it traverses.
        info_bytes + self.dag.heap_bytes() + self.comp_of.len() * 4
    }

    fn name(&self) -> &'static str {
        "GeoReach"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn paper_example_2_6() {
        let prep = paper_example::prepared();
        let idx = GeoReach::build(&prep);
        let r = paper_example::query_region();
        assert!(idx.query(paper_example::A, &r));
        assert!(!idx.query(paper_example::C, &r));
    }

    #[test]
    fn matches_bfs_for_all_parameterizations() {
        let params = [
            GeoReachParams::default(),
            // Tiny budgets force R- and B-vertices everywhere.
            GeoReachParams {
                max_reach_grids: 1,
                max_rmbr_frac: 0.05,
                merge_count: 1,
                finest_exp: 3,
            },
            // Generous budgets keep everything a G-vertex.
            GeoReachParams {
                max_reach_grids: 1 << 20,
                max_rmbr_frac: 1.0,
                merge_count: 1000,
                finest_exp: 5,
            },
            // Degenerate grid: a single cell.
            GeoReachParams {
                max_reach_grids: 8,
                max_rmbr_frac: 0.5,
                merge_count: 2,
                finest_exp: 0,
            },
        ];
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            for p in params {
                let idx = GeoReach::build_with(&prep, p);
                for v in prep.network().graph().vertices() {
                    for r in paper_example::probe_regions() {
                        assert_eq!(
                            idx.query(v, &r),
                            prep.range_reach_bfs(v, &r),
                            "vertex {v}, region {r}, params {p:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn classification_reacts_to_parameters() {
        let prep = paper_example::prepared();
        let generous = GeoReach::build_with(
            &prep,
            GeoReachParams {
                max_reach_grids: 1 << 20,
                max_rmbr_frac: 1.0,
                merge_count: 1000,
                finest_exp: 5,
            },
        );
        let (_b, r, g) = generous.class_counts();
        assert_eq!(r, 0, "generous budgets never downgrade to R");
        assert!(g > 0);

        let stingy = GeoReach::build_with(
            &prep,
            GeoReachParams {
                max_reach_grids: 0,
                max_rmbr_frac: -1.0,
                merge_count: 1,
                finest_exp: 5,
            },
        );
        let (_b2, r2, g2) = stingy.class_counts();
        assert_eq!(g2, 0, "zero grid budget leaves no G-vertices");
        assert_eq!(r2, 0, "negative RMBR budget leaves no R-vertices");
        // Answers must still be exact.
        let reg = paper_example::query_region();
        assert!(stingy.query(paper_example::A, &reg));
        assert!(!stingy.query(paper_example::C, &reg));
    }

    #[test]
    fn vertices_with_no_spatial_reach_are_pruned() {
        let prep = paper_example::prepared();
        let idx = GeoReach::build(&prep);
        // d and k reach no spatial vertex: B(false) everywhere.
        for r in paper_example::probe_regions() {
            assert!(!idx.query(paper_example::D, &r));
            assert!(!idx.query(paper_example::K, &r));
        }
    }
}
