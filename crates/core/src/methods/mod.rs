//! The six `RangeReach` evaluation methods compared in the paper.

mod dynamic3d;
mod georeach;
mod nearest;
mod report;
mod socreach;
mod spareach;
mod threed;

pub use dynamic3d::{CycleError, DynamicThreeDReach};
pub use georeach::{GeoReach, GeoReachParams, GeoReachParts, SpaInfoParts};
pub use nearest::NearestReach;
pub use report::{report_bfs, ThreeDReporter};
pub use socreach::{ScanMode, SocReach};
pub use spareach::{
    CandidateMode, SpaReach, SpaReachBfl, SpaReachFeline, SpaReachFilterParts, SpaReachGrail,
    SpaReachInt, SpaReachParts, SpaReachPll, SpatialBackend,
};
pub use threed::{ThreeDParts, ThreeDReach, ThreeDReachRev, ThreeDRevParts};
