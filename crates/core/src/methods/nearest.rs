//! Nearest *reachable* spatial vertex — another member of the family of
//! geosocial queries the paper's conclusion anticipates (Section 8).
//!
//! `NearestReach(G, v, p)` returns the spatial vertex closest to the point
//! `p` among those reachable from `v`: "the closest restaurant my circle
//! has visited". It composes the same two ingredients as the paper's
//! methods — a best-first nearest-neighbour search on an R-tree whose
//! candidate stream is filtered by the interval labeling's `O(log)`
//! reachability test.

use crate::PreparedNetwork;
use gsr_geo::{Aabb, Point};
use gsr_graph::scc::CompId;
use gsr_graph::VertexId;
use gsr_index::RTree;
use gsr_reach::interval::IntervalLabeling;

/// Answers nearest-reachable queries.
///
/// ```
/// use gsr_core::methods::NearestReach;
/// use gsr_core::paper_example;
/// use gsr_geo::Point;
///
/// let prep = paper_example::prepared();
/// let idx = NearestReach::build(&prep);
/// // The venue nearest to (5, 9) is e itself, but c cannot reach it;
/// // the nearest venue c *can* reach is f at (2, 2).
/// let (venue, point, _dist) = idx.nearest(paper_example::C, &Point::new(5.0, 9.0)).unwrap();
/// assert_eq!(venue, paper_example::F);
/// assert_eq!(point, Point::new(2.0, 2.0));
/// ```
#[derive(Debug, Clone)]
pub struct NearestReach {
    comp_of: Vec<CompId>,
    labeling: IntervalLabeling,
    /// 2-D point index; payloads carry the vertex and its component's
    /// post-order number so the filter avoids a comp lookup.
    tree: RTree<2, (VertexId, u32)>,
}

impl NearestReach {
    /// Builds the labeling and the 2-D point index.
    pub fn build(prep: &PreparedNetwork) -> Self {
        let labeling = IntervalLabeling::build(prep.dag());
        let entries: Vec<(Aabb<2>, (VertexId, u32))> = prep
            .network()
            .spatial_vertices()
            .map(|(v, p)| {
                let post = labeling.post(prep.comp(v));
                (Aabb::from_point([p.x, p.y]), (v, post))
            })
            .collect();
        NearestReach {
            comp_of: (0..prep.network().num_vertices() as VertexId)
                .map(|v| prep.comp(v))
                .collect(),
            labeling,
            tree: RTree::bulk_load(entries),
        }
    }

    /// The spatial vertex reachable from `v` nearest to `target`, with its
    /// point and distance; `None` when `v` reaches no spatial vertex.
    pub fn nearest(&self, v: VertexId, target: &Point) -> Option<(VertexId, Point, f64)> {
        let from = self.comp_of[v as usize];
        let (b, &(u, _)) = self.tree.nearest_where(&[target.x, target.y], |_, &(_, post)| {
            self.labeling.covers_post(from, post)
        })?;
        let p = Point::new(b.min[0], b.min[1]);
        Some((u, p, p.distance(target)))
    }

    /// The `k` nearest reachable spatial vertices, ascending by distance.
    pub fn nearest_k(&self, v: VertexId, target: &Point, k: usize) -> Vec<(VertexId, Point, f64)> {
        let from = self.comp_of[v as usize];
        self.tree
            .nearest_k_where(&[target.x, target.y], k, |_, &(_, post)| {
                self.labeling.covers_post(from, post)
            })
            .into_iter()
            .map(|(b, &(u, _))| {
                let p = Point::new(b.min[0], b.min[1]);
                (u, p, p.distance(target))
            })
            .collect()
    }

    /// Approximate heap footprint in bytes.
    pub fn index_bytes(&self) -> usize {
        self.labeling.heap_bytes() + self.tree.heap_bytes() + self.comp_of.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    /// Brute-force reference.
    fn nearest_bfs(
        prep: &PreparedNetwork,
        v: VertexId,
        target: &Point,
    ) -> Option<(Point, f64)> {
        let mut best: Option<(Point, f64)> = None;
        let start = prep.comp(v);
        let mut visited = vec![false; prep.num_components()];
        let mut stack = vec![start];
        visited[start as usize] = true;
        while let Some(c) = stack.pop() {
            for p in prep.spatial_member_points(c) {
                let d = p.distance(target);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((p, d));
                }
            }
            for &w in prep.dag().out_neighbors(c) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_paper_example() {
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            let idx = NearestReach::build(&prep);
            let targets = [
                Point::new(0.0, 0.0),
                Point::new(8.0, 8.0),
                Point::new(16.0, 0.0),
                Point::new(5.0, 9.0), // exactly on e
            ];
            for v in prep.network().graph().vertices() {
                for t in &targets {
                    let got = idx.nearest(v, t).map(|(_, p, d)| (p, d));
                    let expected = nearest_bfs(&prep, v, t);
                    match (got, expected) {
                        (None, None) => {}
                        (Some((_, gd)), Some((_, ed))) => {
                            assert!(
                                (gd - ed).abs() < 1e-9,
                                "distance mismatch at v={v}, t={t}: {gd} vs {ed}"
                            );
                        }
                        other => panic!("presence mismatch at v={v}, t={t}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn unreachable_vertices_yield_none() {
        let prep = paper_example::prepared();
        let idx = NearestReach::build(&prep);
        // d and k reach no spatial vertex.
        assert!(idx.nearest(paper_example::D, &Point::new(0.0, 0.0)).is_none());
        assert!(idx.nearest(paper_example::K, &Point::new(0.0, 0.0)).is_none());
        // e reaches itself and f.
        let (u, _, d) = idx.nearest(paper_example::E, &Point::new(5.0, 9.0)).unwrap();
        assert_eq!(u, paper_example::E);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn nearest_k_is_sorted_and_reachable() {
        let prep = paper_example::prepared();
        let idx = NearestReach::build(&prep);
        let target = Point::new(8.0, 8.0);
        let top = idx.nearest_k(paper_example::A, &target, 10);
        // a reaches all five spatial vertices.
        assert_eq!(top.len(), 5);
        assert!(top.windows(2).all(|w| w[0].2 <= w[1].2), "ascending distances");
        // c reaches only f and i.
        let top_c = idx.nearest_k(paper_example::C, &target, 10);
        assert_eq!(top_c.len(), 2);
        // k reaches nothing spatial.
        assert!(idx.nearest_k(paper_example::K, &target, 3).is_empty());
    }

    #[test]
    fn filter_skips_closer_unreachable_venues() {
        let prep = paper_example::prepared();
        let idx = NearestReach::build(&prep);
        // From c, the closest venue to (5, 9) would be e (distance 0), but
        // c cannot reach e; the nearest *reachable* one is f or i.
        let (u, _, _) = idx.nearest(paper_example::C, &Point::new(5.0, 9.0)).unwrap();
        assert!(
            u == paper_example::F || u == paper_example::I,
            "c reaches only f and i, got {u}"
        );
    }
}
