//! Reporting and counting variants of the geosocial reachability query —
//! the "other types of geosocial queries" the paper's conclusion points to
//! (Section 8).
//!
//! * `RangeReport(G, v, R)` returns **every** spatial vertex inside `R`
//!   that `v` can reach (the full answer set, not just its existence);
//! * `RangeCount(G, v, R)` returns its cardinality.
//!
//! Both reuse the 3DReach transformation: the answer set is exactly the
//! union of the 3-D range-query results over the query cuboids, and since
//! the labels of `L(v)` are disjoint post-order ranges, every qualifying
//! vertex is reported exactly once — no deduplication pass is needed.

use crate::PreparedNetwork;
use gsr_geo::{cuboid_from_rect, point3, Cuboid, Rect};
use gsr_graph::scc::CompId;
use gsr_graph::VertexId;
use gsr_index::RTree;
use gsr_reach::interval::IntervalLabeling;

/// Answers `RangeReport` / `RangeCount` queries through the 3DReach
/// transformation.
///
/// ```
/// use gsr_core::methods::ThreeDReporter;
/// use gsr_core::paper_example;
///
/// let prep = paper_example::prepared();
/// let reporter = ThreeDReporter::build(&prep);
/// let region = paper_example::query_region();
/// // Vertex a reaches the spatial vertices e and h inside R.
/// assert_eq!(reporter.report(paper_example::A, &region),
///            vec![paper_example::E, paper_example::H]);
/// assert_eq!(reporter.count(paper_example::C, &region), 0);
/// ```
///
/// Reporting always needs the individual vertices, so the index is always
/// point-based (the `SccSpatialPolicy::Replicate` layout); the policy enum
/// is not a parameter here.
#[derive(Debug, Clone)]
pub struct ThreeDReporter {
    comp_of: Vec<CompId>,
    labeling: IntervalLabeling,
    tree: RTree<3, VertexId>,
}

impl ThreeDReporter {
    /// Builds the reporter: forward labeling plus a 3-D point R-tree whose
    /// payloads are the original spatial vertex ids.
    pub fn build(prep: &PreparedNetwork) -> Self {
        let labeling = IntervalLabeling::build(prep.dag());
        let entries: Vec<(Cuboid, VertexId)> = prep
            .network()
            .spatial_vertices()
            .map(|(v, p)| {
                let z = labeling.post(prep.comp(v)) as f64;
                (point3(p, z), v)
            })
            .collect();
        ThreeDReporter {
            comp_of: (0..prep.network().num_vertices() as VertexId)
                .map(|v| prep.comp(v))
                .collect(),
            labeling,
            tree: RTree::bulk_load(entries),
        }
    }

    /// All spatial vertices inside `region` reachable from `v`, in
    /// ascending vertex-id order.
    pub fn report(&self, v: VertexId, region: &Rect) -> Vec<VertexId> {
        let from = self.comp_of[v as usize];
        let mut out = Vec::new();
        for iv in self.labeling.intervals(from) {
            let cuboid = cuboid_from_rect(region, iv.lo as f64, iv.hi as f64);
            out.extend(self.tree.query(&cuboid).map(|(_, &u)| u));
        }
        out.sort_unstable();
        out
    }

    /// `|report(v, region)|` without materializing the ids.
    pub fn count(&self, v: VertexId, region: &Rect) -> usize {
        let from = self.comp_of[v as usize];
        self.labeling
            .intervals(from)
            .iter()
            .map(|iv| {
                self.tree.count_in(&cuboid_from_rect(region, iv.lo as f64, iv.hi as f64))
            })
            .sum()
    }

    /// The boolean `RangeReach` answer, for convenience and cross-checks.
    pub fn exists(&self, v: VertexId, region: &Rect) -> bool {
        let from = self.comp_of[v as usize];
        self.labeling.intervals(from).iter().any(|iv| {
            self.tree.query_exists(&cuboid_from_rect(region, iv.lo as f64, iv.hi as f64))
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn index_bytes(&self) -> usize {
        self.labeling.heap_bytes() + self.tree.heap_bytes() + self.comp_of.len() * 4
    }
}

/// Brute-force `RangeReport` over the condensation, for tests and
/// validation.
pub fn report_bfs(prep: &PreparedNetwork, v: VertexId, region: &Rect) -> Vec<VertexId> {
    let start = prep.comp(v);
    let mut visited = vec![false; prep.num_components()];
    let mut stack = vec![start];
    visited[start as usize] = true;
    let mut out = Vec::new();
    while let Some(c) = stack.pop() {
        for &u in prep.spatial_members(c) {
            let Some(p) = prep.network().point(u) else { continue };
            if region.contains_point(&p) {
                out.push(u);
            }
        }
        for &w in prep.dag().out_neighbors(c) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                stack.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn paper_example_report() {
        let prep = paper_example::prepared();
        let reporter = ThreeDReporter::build(&prep);
        let r = paper_example::query_region();
        // a reaches e and h inside R; c reaches nothing there.
        assert_eq!(
            reporter.report(paper_example::A, &r),
            vec![paper_example::E, paper_example::H]
        );
        assert_eq!(reporter.count(paper_example::A, &r), 2);
        assert!(reporter.exists(paper_example::A, &r));
        assert!(reporter.report(paper_example::C, &r).is_empty());
        assert_eq!(reporter.count(paper_example::C, &r), 0);
        assert!(!reporter.exists(paper_example::C, &r));
    }

    #[test]
    fn matches_bfs_everywhere() {
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            let reporter = ThreeDReporter::build(&prep);
            for v in prep.network().graph().vertices() {
                for r in paper_example::probe_regions() {
                    let expected = report_bfs(&prep, v, &r);
                    assert_eq!(reporter.report(v, &r), expected, "v={v} r={r}");
                    assert_eq!(reporter.count(v, &r), expected.len());
                    assert_eq!(reporter.exists(v, &r), !expected.is_empty());
                }
            }
        }
    }

    #[test]
    fn whole_space_reports_all_spatial_descendants() {
        let prep = paper_example::prepared();
        let reporter = ThreeDReporter::build(&prep);
        let everything = gsr_geo::Rect::new(-1e9, -1e9, 1e9, 1e9);
        // From Figure 1, a reaches b, d, j, e, l, f, g, h, i — of which
        // e, f, h, i, l are spatial.
        let got = reporter.report(paper_example::A, &everything);
        assert_eq!(
            got,
            vec![
                paper_example::E,
                paper_example::F,
                paper_example::H,
                paper_example::I,
                paper_example::L
            ]
        );
    }
}
