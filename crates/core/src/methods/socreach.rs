//! SocReach: the social-first approach (Section 4.1).
//!
//! SocReach prioritizes the graph predicate: the interval labels of the
//! query vertex `v` directly describe its descendant set `D(v)` as ranges
//! of post-order numbers, and each descendant with a point is tested for
//! containment in the query region until one hits.
//!
//! Following the paper, no spatial index accelerates the containment tests
//! ("as the set of descendant vertices D(v) is computed on-the-fly, the
//! spatial containment tests cannot be truly accelerated by any spatial
//! indexing"): the method scans a post-order-aligned point table, which is
//! what makes it uncompetitive for high-out-degree query vertices — the
//! second takeaway of Section 6.4.

use crate::{PreparedNetwork, QueryCost, RangeReachIndex};
use gsr_geo::{Point, Rect};
use gsr_graph::scc::CompId;
use gsr_graph::{Col, VertexId};
use gsr_reach::compact::{CompactLabels, DeltaArray};
use gsr_reach::interval::IntervalLabeling;

/// How SocReach enumerates the descendant set `D(v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Faithful to the paper (Section 4.1): each label `[l, h]` is "a
    /// simple for loop on the array storing the network vertices" — every
    /// post-order number in the range is visited, spatial or not. This is
    /// what makes SocReach uncompetitive on networks whose vertices are
    /// mostly social (users).
    #[default]
    PerPost,
    /// An engineering improvement over the paper: the point table is
    /// compacted so each label scans only the *spatial* descendants,
    /// skipping user vertices entirely. Benched as an ablation.
    Compacted,
}

/// The social-first evaluator.
///
/// ```
/// use gsr_core::methods::SocReach;
/// use gsr_core::{paper_example, RangeReachIndex};
///
/// let prep = paper_example::prepared();
/// let idx = SocReach::build(&prep);
/// assert!(idx.query(paper_example::A, &paper_example::query_region()));
/// assert!(!idx.query(paper_example::C, &paper_example::query_region()));
/// ```
#[derive(Debug, Clone)]
pub struct SocReach {
    comp_of: Col<CompId>,
    /// Delta-compressed interval labels: the per-label scans walk the
    /// labels strictly sequentially, so the random-access arrays of the
    /// full [`IntervalLabeling`] are construction scaffolding only.
    labels: CompactLabels,
    /// Spatial member points grouped by the post-order number of their
    /// component: points of the component with post `p` are
    /// `points[post_offsets[p - 1] .. post_offsets[p]]`. Stored
    /// delta-compressed — the per-post scan decodes them as a cursor.
    post_offsets: DeltaArray,
    points: Col<Point>,
    mode: ScanMode,
}

impl SocReach {
    /// Builds the interval labeling over the condensation DAG and the
    /// post-order-aligned point table.
    ///
    /// SocReach has no MBR variant: it "does not involve any spatial
    /// indexing" (Section 6.2), so the SCC policy does not apply.
    pub fn build(prep: &PreparedNetwork) -> Self {
        Self::build_with(prep, ScanMode::PerPost)
    }

    /// Builds the evaluator with an explicit descendant-scan mode.
    pub fn build_with(prep: &PreparedNetwork, mode: ScanMode) -> Self {
        let labeling = IntervalLabeling::build(prep.dag());
        let ncomp = prep.num_components();

        let mut post_offsets = Vec::with_capacity(ncomp + 1);
        let mut points = Vec::with_capacity(prep.network().num_spatial());
        post_offsets.push(0u32);
        for p in 1..=ncomp as u32 {
            let comp = labeling.vertex_of_post(p);
            points.extend(prep.spatial_member_points(comp));
            post_offsets.push(points.len() as u32);
        }

        let comp_of: Vec<CompId> = (0..prep.network().num_vertices() as VertexId)
            .map(|v| prep.comp(v))
            .collect();

        SocReach {
            comp_of: comp_of.into(),
            labels: CompactLabels::from_labeling(&labeling),
            // The freshly built CSR is monotone by construction, so the
            // fallback is unreachable; it keeps the build panic-free.
            post_offsets: DeltaArray::from_sorted(&post_offsets).unwrap_or_default(),
            points: points.into(),
            mode,
        }
    }

    /// The points of the component with post-order number `p` — the unit of
    /// the per-label scans performed by [`RangeReachIndex::query`].
    #[inline]
    pub fn points_of_post(&self, p: u32) -> &[Point] {
        let lo = self.post_offsets.get((p - 1) as usize) as usize;
        let hi = self.post_offsets.get(p as usize) as usize;
        &self.points[lo..hi]
    }

    /// The compacted interval labels (exposed for stats and tests).
    pub fn labels(&self) -> &CompactLabels {
        &self.labels
    }

    /// Number of descendants (components) the method would enumerate for a
    /// query from `v` — useful for analyzing query cost.
    pub fn descendant_count(&self, v: VertexId) -> usize {
        self.labels.num_descendants(self.comp_of[v as usize])
    }

    /// Decomposes the evaluator for snapshot encoding:
    /// `(comp_of, labels, post_offsets, points, mode)`.
    /// [`SocReach::from_parts`] inverts it.
    pub fn parts(&self) -> (&[CompId], &CompactLabels, &DeltaArray, &[Point], ScanMode) {
        (&self.comp_of, &self.labels, &self.post_offsets, &self.points, self.mode)
    }

    /// Reassembles an evaluator from the pieces of [`SocReach::parts`]
    /// (the post offsets as the plain sorted values of
    /// [`DeltaArray::to_vec`]).
    ///
    /// Untrusted input: the post-aligned point CSR must have exactly one
    /// range per post-order number and `comp_of` must reference labeled
    /// components, so that no per-label scan can index out of bounds.
    /// Violations are `Err(String)`, never panics.
    pub fn from_parts(
        comp_of: Vec<CompId>,
        labels: CompactLabels,
        post_offsets: Vec<u32>,
        points: Vec<Point>,
        mode: ScanMode,
    ) -> Result<Self, String> {
        let ncomp = labels.num_vertices();
        if post_offsets.len() != ncomp + 1 {
            return Err(format!(
                "socreach: {} post offsets for {ncomp} components",
                post_offsets.len()
            ));
        }
        if labels.max_post() as usize > ncomp {
            return Err(format!(
                "socreach: labels cover post {} but only {ncomp} components exist",
                labels.max_post()
            ));
        }
        if post_offsets[0] != 0 {
            return Err("socreach: post offsets not monotone from 0".into());
        }
        if post_offsets[ncomp] as usize != points.len() {
            return Err(format!(
                "socreach: post offsets claim {} points but {} present",
                post_offsets[ncomp],
                points.len()
            ));
        }
        // from_sorted rejects decreasing runs, completing the CSR check.
        let post_offsets = DeltaArray::from_sorted(&post_offsets)
            .map_err(|e| format!("socreach: {e}"))?;
        if let Some(&c) = comp_of.iter().find(|&&c| (c as usize) >= ncomp) {
            return Err(format!("socreach: comp_of references component {c} >= {ncomp}"));
        }
        Ok(SocReach {
            comp_of: comp_of.into(),
            labels,
            post_offsets,
            points: points.into(),
            mode,
        })
    }

    /// Reassembles an evaluator from already-validated columns — the v3
    /// zero-copy load path, where `post_offsets` arrives as a
    /// [`DeltaArray`] rebuilt via [`DeltaArray::from_cols`] instead of
    /// being re-derived from plain offsets.
    ///
    /// The same structural invariants as [`SocReach::from_parts`] are
    /// checked (the delta stream itself was validated by
    /// `DeltaArray::from_cols`); violations are `Err(String)`.
    pub fn from_cols(
        comp_of: impl Into<Col<CompId>>,
        labels: CompactLabels,
        post_offsets: DeltaArray,
        points: impl Into<Col<Point>>,
        mode: ScanMode,
    ) -> Result<Self, String> {
        let comp_of = comp_of.into();
        let points = points.into();
        let ncomp = labels.num_vertices();
        if post_offsets.len() != ncomp + 1 {
            return Err(format!(
                "socreach: {} post offsets for {ncomp} components",
                post_offsets.len()
            ));
        }
        if labels.max_post() as usize > ncomp {
            return Err(format!(
                "socreach: labels cover post {} but only {ncomp} components exist",
                labels.max_post()
            ));
        }
        if post_offsets.get(0) != 0 {
            return Err("socreach: post offsets not monotone from 0".into());
        }
        if post_offsets.get(ncomp) as usize != points.len() {
            return Err(format!(
                "socreach: post offsets claim {} points but {} present",
                post_offsets.get(ncomp),
                points.len()
            ));
        }
        if let Some(&c) = comp_of.iter().find(|&&c| (c as usize) >= ncomp) {
            return Err(format!("socreach: comp_of references component {c} >= {ncomp}"));
        }
        Ok(SocReach { comp_of, labels, post_offsets, points, mode })
    }
}

impl RangeReachIndex for SocReach {
    fn num_vertices(&self) -> usize {
        self.comp_of.len()
    }

    fn query_unchecked(&self, v: VertexId, region: &Rect) -> bool {
        self.query_with_cost_unchecked(v, region).0
    }

    fn query_with_cost_unchecked(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        let from = self.comp_of[v as usize];
        let mut cost = QueryCost::default();
        // Every label [l, h] of L(v) is a range query over the post-order
        // numbers (Equation of Section 4.1).
        let answer = match self.mode {
            ScanMode::PerPost => {
                // Faithful: walk every descendant post, spatial or not, and
                // test the points of the spatial ones until one hits. The
                // posts of a label are consecutive, so the delta-compressed
                // CSR is decoded with a forward cursor — one varint per
                // visited post, never a random-access block decode.
                'outer: {
                    for iv in self.labels.intervals(from) {
                        let mut offs = self.post_offsets.iter_from((iv.lo - 1) as usize);
                        let mut prev = offs.next().unwrap_or(0) as usize;
                        for _p in iv.lo..=iv.hi {
                            cost.vertices_visited += 1;
                            let cur = offs.next().unwrap_or(prev as u32) as usize;
                            let hit = self.points[prev..cur].iter().any(|pt| {
                                cost.containment_tests += 1;
                                region.contains_point(pt)
                            });
                            prev = cur;
                            if hit {
                                break 'outer true;
                            }
                        }
                    }
                    false
                }
            }
            ScanMode::Compacted => {
                // Optimized: the point table is post-order-aligned, so each
                // label is one contiguous scan over spatial descendants.
                'outer: {
                    for iv in self.labels.intervals(from) {
                        let lo = self.post_offsets.get((iv.lo - 1) as usize) as usize;
                        let hi = self.post_offsets.get(iv.hi as usize) as usize;
                        let hit = self.points[lo..hi].iter().any(|p| {
                            cost.containment_tests += 1;
                            region.contains_point(p)
                        });
                        if hit {
                            break 'outer true;
                        }
                    }
                    false
                }
            }
        };
        (answer, cost)
    }

    fn index_bytes(&self) -> usize {
        use gsr_graph::HeapBytes;
        self.labels.heap_bytes()
            + self.post_offsets.heap_bytes()
            + self.points.len() * std::mem::size_of::<Point>()
            + self.comp_of.len() * 4
    }

    fn name(&self) -> &'static str {
        "SocReach"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn paper_example_4_1() {
        let prep = paper_example::prepared();
        let idx = SocReach::build(&prep);
        let r = paper_example::query_region();
        // Example 4.1: D(a) contains e whose point is in R -> TRUE;
        // D(c) = {f, d, i, k, c} with no point in R -> FALSE.
        assert!(idx.query(paper_example::A, &r));
        assert!(!idx.query(paper_example::C, &r));
        assert_eq!(idx.descendant_count(paper_example::A), 10);
        assert_eq!(idx.descendant_count(paper_example::C), 5);
    }

    #[test]
    fn matches_bfs_on_probe_regions() {
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            let idx = SocReach::build(&prep);
            for v in prep.network().graph().vertices() {
                for r in paper_example::probe_regions() {
                    assert_eq!(
                        idx.query(v, &r),
                        prep.range_reach_bfs(v, &r),
                        "vertex {v}, region {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn scan_modes_agree() {
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            let faithful = SocReach::build_with(&prep, ScanMode::PerPost);
            let compacted = SocReach::build_with(&prep, ScanMode::Compacted);
            for v in prep.network().graph().vertices() {
                for r in paper_example::probe_regions() {
                    assert_eq!(faithful.query(v, &r), compacted.query(v, &r), "v={v} r={r}");
                }
            }
        }
    }

    #[test]
    fn point_table_is_consistent() {
        let prep = paper_example::prepared();
        let idx = SocReach::build(&prep);
        // Every post's slice holds exactly the points of that component.
        let total: usize = (1..=prep.num_components() as u32)
            .map(|p| idx.points_of_post(p).len())
            .sum();
        assert_eq!(total, prep.network().num_spatial());
    }
}
