//! SpaReach: the spatial-first approach (Section 2.2.1).
//!
//! A `RangeReach(G, v, R)` query is answered in two steps: a spatial range
//! query over a 2-D R-tree identifies every spatial vertex inside `R`, and
//! a graph-reachability query is issued per candidate until one succeeds.
//! The method is sensitive to the selectivity of the spatial predicate —
//! for negative answers *every* candidate must be tested — which is the
//! weakness the paper's SocReach/3DReach methods address.
//!
//! The reachability back-end is pluggable: the paper evaluates
//! [`SpaReachBfl`] (Bloom-filter labeling, the overall best `GReach` scheme)
//! and [`SpaReachInt`] (interval-based labeling).

use crate::{PreparedNetwork, QueryCost, RangeReachIndex, SccSpatialPolicy};
use gsr_geo::{Aabb, Rect};
use gsr_graph::par;
use gsr_graph::scc::CompId;
use gsr_graph::{Col, DiGraph, VertexId};
use gsr_geo::Point;
use gsr_index::{KdTree, QuadTree, RTree, RTreeParams, UniformGrid};
use gsr_reach::bfl::{BflIndex, BflParams};
use gsr_reach::feline::FelineIndex;
use gsr_reach::grail::{GrailIndex, GrailParams};
use gsr_reach::interval::{BuildOptions, IntervalLabeling};
use gsr_reach::pll::PllIndex;
use gsr_reach::Reachability;

/// How SpaReach consumes the spatial range query's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateMode {
    /// Faithful to the paper (Section 2.2.1): the spatial range query is
    /// evaluated *first*, materializing every spatial vertex inside `R`;
    /// only then are `GReach` queries issued one by one until a positive.
    /// This is what makes SpaReach sensitive to the spatial selectivity.
    #[default]
    Materialize,
    /// An engineering improvement over the paper: candidates stream out of
    /// the R-tree and the reachability test runs per candidate, so a
    /// positive answer can stop the range query early. Benched as an
    /// ablation.
    Streaming,
}

/// Which spatial index evaluates the range query of SpaReach's first
/// phase. The paper uses an R-tree "as it is the most dominant structure
/// for spatial data" (Section 7.2); the space-oriented-partitioning
/// alternatives it cites are available for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpatialBackend {
    /// Guttman R-tree (the paper's choice; supports both SCC policies).
    #[default]
    RTree,
    /// Single-level uniform grid (replicate policy only).
    UniformGrid,
    /// Static kd-tree (replicate policy only).
    KdTree,
    /// Point-region quadtree (replicate policy only).
    QuadTree,
}

/// The spatial filter structure, depending on backend and SCC policy.
#[derive(Debug, Clone)]
enum SpatialFilter {
    /// One point entry per spatial vertex, tagged with its component.
    Points(RTree<2, CompId>),
    /// One rectangle entry per spatial *component* (its member MBR).
    CompBoxes(RTree<2, CompId>),
    /// Uniform-grid over points.
    Grid(UniformGrid<CompId>),
    /// kd-tree over points.
    Kd(KdTree<CompId>),
    /// Quadtree over points.
    Quad(QuadTree<CompId>),
}

/// The spatial-filter half of a [`SpaReachParts`] decomposition. Only the
/// paper's R-tree backend is persisted — the space-oriented-partitioning
/// backends are ablation-only and are rebuilt from scratch when needed.
#[derive(Debug, Clone)]
pub enum SpaReachFilterParts {
    /// One point entry per spatial vertex (the replicate policy).
    Points(RTree<2, CompId>),
    /// One rectangle entry per spatial component (the MBR policy).
    CompBoxes(RTree<2, CompId>),
}

/// Owned decomposition of a [`SpaReach`] index for snapshot encoding;
/// produced by [`SpaReach::to_parts`], inverted by [`SpaReach::from_parts`].
#[derive(Debug, Clone)]
pub struct SpaReachParts<R> {
    /// Component of every original vertex.
    pub comp_of: Vec<CompId>,
    /// The spatial filter structure.
    pub filter: SpaReachFilterParts,
    /// The reachability back-end over the condensation.
    pub reach: R,
    /// CSR offsets into `member_points`, one range per component.
    pub member_offsets: Vec<u32>,
    /// Flattened per-component spatial member points.
    pub member_points: Vec<gsr_geo::Point>,
}

/// Generic spatial-first evaluator over any [`Reachability`] back-end.
#[derive(Debug, Clone)]
pub struct SpaReach<R> {
    /// Snapshot of per-component spatial membership for MBR refinement.
    comp_of: Col<CompId>,
    filter: SpatialFilter,
    reach: R,
    name: &'static str,
    mode: CandidateMode,
    /// Per-component spatial member points (flattened CSR), used to refine
    /// partially overlapping MBR candidates.
    member_offsets: Col<u32>,
    member_points: Col<gsr_geo::Point>,
}

/// SpaReach with the BFL reachability index (the paper's best spatial-first
/// variant, kept for the main comparison of Section 6.4).
pub type SpaReachBfl = SpaReach<BflIndex>;

/// SpaReach with the interval-based labeling (Section 6.3 shows BFL wins,
/// matching the graph-reachability literature).
pub type SpaReachInt = SpaReach<IntervalLabeling>;

/// SpaReach with pruned landmark labeling — the "SpaReach-PLL" variant of
/// the original GeoReach paper (Section 2.2.1).
pub type SpaReachPll = SpaReach<PllIndex>;

/// SpaReach with the FELINE index — the "SpaReach-Feline" variant of the
/// original GeoReach paper (Section 2.2.1).
pub type SpaReachFeline = SpaReach<FelineIndex>;

/// SpaReach with the GRAIL index (Section 7.1 of the paper's related work).
pub type SpaReachGrail = SpaReach<GrailIndex>;

impl SpaReachBfl {
    /// Builds the 2-D R-tree and the BFL index over the condensation.
    pub fn build(prep: &PreparedNetwork, policy: SccSpatialPolicy) -> Self {
        SpaReach::build_with(prep, policy, "SpaReach-BFL", BflIndex::build)
    }

    /// Like [`SpaReachBfl::build`], constructing both the spatial filter
    /// and the BFL filters with `threads` workers (`0` = machine
    /// parallelism). The result is identical to the sequential build.
    pub fn build_threaded(prep: &PreparedNetwork, policy: SccSpatialPolicy, threads: usize) -> Self {
        SpaReach::build_threaded_with(prep, policy, "SpaReach-BFL", threads, move |g| {
            BflIndex::build_with(g, BflParams { threads, ..BflParams::default() })
        })
    }
}

impl<R: Reachability> SpaReach<R> {
    /// Switches the candidate-consumption mode (see [`CandidateMode`]).
    pub fn with_candidate_mode(mut self, mode: CandidateMode) -> Self {
        self.mode = mode;
        self
    }
}

impl SpaReachInt {
    /// Builds the 2-D R-tree and the interval labeling over the condensation.
    pub fn build(prep: &PreparedNetwork, policy: SccSpatialPolicy) -> Self {
        SpaReach::build_with(prep, policy, "SpaReach-INT", IntervalLabeling::build)
    }

    /// Like [`SpaReachInt::build`], constructing both the spatial filter
    /// and the interval labeling with `threads` workers (`0` = machine
    /// parallelism). The result is identical to the sequential build.
    pub fn build_threaded(prep: &PreparedNetwork, policy: SccSpatialPolicy, threads: usize) -> Self {
        SpaReach::build_threaded_with(prep, policy, "SpaReach-INT", threads, move |g| {
            IntervalLabeling::build_with(g, BuildOptions { threads, ..BuildOptions::default() })
        })
    }
}

impl SpaReachPll {
    /// Builds the 2-D R-tree and the PLL index over the condensation.
    pub fn build(prep: &PreparedNetwork, policy: SccSpatialPolicy) -> Self {
        SpaReach::build_with(prep, policy, "SpaReach-PLL", PllIndex::build)
    }
}

impl SpaReachFeline {
    /// Builds the 2-D R-tree and the FELINE index over the condensation.
    pub fn build(prep: &PreparedNetwork, policy: SccSpatialPolicy) -> Self {
        SpaReach::build_with(prep, policy, "SpaReach-Feline", FelineIndex::build)
    }
}

impl SpaReachGrail {
    /// Builds the 2-D R-tree and the GRAIL index over the condensation.
    pub fn build(prep: &PreparedNetwork, policy: SccSpatialPolicy) -> Self {
        SpaReach::build_with(prep, policy, "SpaReach-GRAIL", GrailIndex::build)
    }

    /// Like [`SpaReachGrail::build`], constructing both the spatial filter
    /// and the GRAIL traversals with `threads` workers (`0` = machine
    /// parallelism). The result is identical to the sequential build.
    pub fn build_threaded(prep: &PreparedNetwork, policy: SccSpatialPolicy, threads: usize) -> Self {
        SpaReach::build_threaded_with(prep, policy, "SpaReach-GRAIL", threads, move |g| {
            GrailIndex::build_with(g, GrailParams { threads, ..GrailParams::default() })
        })
    }
}

impl<R: Reachability> SpaReach<R> {
    /// Builds a spatial-first evaluator with a custom reachability back-end.
    pub fn build_with(
        prep: &PreparedNetwork,
        policy: SccSpatialPolicy,
        name: &'static str,
        build_reach: impl FnOnce(&DiGraph) -> R,
    ) -> Self {
        Self::build_with_backend(prep, policy, SpatialBackend::RTree, name, build_reach)
    }

    /// Builds a spatial-first evaluator with a custom reachability back-end,
    /// running the spatial-member replication pass and the R-tree packing
    /// across `threads` workers (`0` = machine parallelism). Every pass
    /// preserves the sequential order of its output, so the built index is
    /// identical to [`SpaReach::build_with`] at any thread count. The
    /// reachability back-end is handed the caller's `build_reach`, which may
    /// itself parallelize (see the `build_threaded` constructors on the
    /// typed aliases).
    pub fn build_threaded_with(
        prep: &PreparedNetwork,
        policy: SccSpatialPolicy,
        name: &'static str,
        threads: usize,
        build_reach: impl FnOnce(&DiGraph) -> R,
    ) -> Self {
        Self::build_impl(prep, policy, SpatialBackend::RTree, name, threads, build_reach)
    }

    /// Builds a spatial-first evaluator with explicit spatial and
    /// reachability back-ends.
    ///
    /// # Panics
    /// Panics when a space-oriented-partitioning backend is combined with
    /// the MBR policy (those structures index points, not rectangles).
    pub fn build_with_backend(
        prep: &PreparedNetwork,
        policy: SccSpatialPolicy,
        backend: SpatialBackend,
        name: &'static str,
        build_reach: impl FnOnce(&DiGraph) -> R,
    ) -> Self {
        Self::build_impl(prep, policy, backend, name, 1, build_reach)
    }

    fn build_impl(
        prep: &PreparedNetwork,
        policy: SccSpatialPolicy,
        backend: SpatialBackend,
        name: &'static str,
        threads: usize,
        build_reach: impl FnOnce(&DiGraph) -> R,
    ) -> Self {
        assert!(
            backend == SpatialBackend::RTree || policy == SccSpatialPolicy::Replicate,
            "only the R-tree backend supports the MBR policy"
        );
        let point_entries = || -> Vec<(Point, CompId)> {
            prep.network().spatial_vertices().map(|(v, p)| (p, prep.comp(v))).collect()
        };
        let filter = match (backend, policy) {
            (SpatialBackend::RTree, SccSpatialPolicy::Replicate) => {
                // The replication pass: one point entry per spatial vertex,
                // tagged with its component. Mapping by index keeps the
                // entry order identical to the sequential scan.
                let spatial: Vec<(VertexId, Point)> =
                    prep.network().spatial_vertices().collect();
                let entries: Vec<(Aabb<2>, CompId)> =
                    par::map_indexed(threads, spatial.len(), |i| {
                        let (v, p) = spatial[i];
                        (Aabb::from_point([p.x, p.y]), prep.comp(v))
                    });
                SpatialFilter::Points(RTree::bulk_load_parallel(
                    entries,
                    RTreeParams::default(),
                    threads,
                ))
            }
            (SpatialBackend::RTree, SccSpatialPolicy::Mbr) => {
                let ncomp = prep.num_components();
                let entries: Vec<(Aabb<2>, CompId)> =
                    par::map_indexed(threads, ncomp, |c| {
                        let c = c as CompId;
                        prep.comp_mbr(c).map(|m| (m.into(), c))
                    })
                    .into_iter()
                    .flatten()
                    .collect();
                SpatialFilter::CompBoxes(RTree::bulk_load_parallel(
                    entries,
                    RTreeParams::default(),
                    threads,
                ))
            }
            (SpatialBackend::UniformGrid, _) => {
                SpatialFilter::Grid(UniformGrid::bulk_load(prep.space(), point_entries(), 16))
            }
            (SpatialBackend::KdTree, _) => SpatialFilter::Kd(KdTree::bulk_load(point_entries())),
            (SpatialBackend::QuadTree, _) => {
                SpatialFilter::Quad(QuadTree::bulk_load(prep.space(), point_entries()))
            }
        };

        // Flatten per-component member points for MBR refinement. The
        // per-component gathers run concurrently; the flatten walks them in
        // component order, so offsets and points match the sequential pass.
        let ncomp = prep.num_components();
        let per_comp: Vec<Vec<Point>> = par::map_indexed(threads, ncomp, |c| {
            prep.spatial_member_points(c as CompId).collect::<Vec<Point>>()
        });
        let mut member_offsets = Vec::with_capacity(ncomp + 1);
        let mut member_points = Vec::new();
        member_offsets.push(0u32);
        for points in per_comp {
            member_points.extend(points);
            member_offsets.push(member_points.len() as u32);
        }

        let n = prep.network().num_vertices();
        let comp_of = par::map_indexed(threads, n, |v| prep.comp(v as VertexId));

        SpaReach {
            comp_of: comp_of.into(),
            filter,
            reach: build_reach(prep.dag()),
            name,
            mode: CandidateMode::Materialize,
            member_offsets: member_offsets.into(),
            member_points: member_points.into(),
        }
    }

    /// Access to the reachability back-end (for tests and stats).
    pub fn reachability(&self) -> &R {
        &self.reach
    }

    /// Decomposes the index for snapshot encoding. Returns `None` when the
    /// spatial filter uses an ablation-only space-oriented-partitioning
    /// backend (those are never persisted) or the streaming candidate mode.
    pub fn to_parts(&self) -> Option<SpaReachParts<R>>
    where
        R: Clone,
    {
        if self.mode != CandidateMode::Materialize {
            return None;
        }
        let filter = match &self.filter {
            SpatialFilter::Points(t) => SpaReachFilterParts::Points(t.clone()),
            SpatialFilter::CompBoxes(t) => SpaReachFilterParts::CompBoxes(t.clone()),
            _ => return None,
        };
        Some(SpaReachParts {
            comp_of: self.comp_of.to_vec(),
            filter,
            reach: self.reach.clone(),
            member_offsets: self.member_offsets.to_vec(),
            member_points: self.member_points.to_vec(),
        })
    }

    /// Borrowed view of the persisted columns for zero-copy snapshot
    /// encoding: `(comp_of, filter_tree, filter_is_mbr, reach,
    /// member_offsets, member_points)`. `None` for ablation-only
    /// backends or the streaming candidate mode (mirrors
    /// [`SpaReach::to_parts`]).
    #[allow(clippy::type_complexity)]
    pub fn cols(&self) -> Option<(&[CompId], &RTree<2, CompId>, bool, &R, &[u32], &[Point])> {
        if self.mode != CandidateMode::Materialize {
            return None;
        }
        let (tree, is_mbr) = match &self.filter {
            SpatialFilter::Points(t) => (t, false),
            SpatialFilter::CompBoxes(t) => (t, true),
            _ => return None,
        };
        Some((
            &self.comp_of,
            tree,
            is_mbr,
            &self.reach,
            &self.member_offsets,
            &self.member_points,
        ))
    }

    /// Reassembles an index from a [`SpaReachParts`] decomposition.
    ///
    /// The parts are untrusted (they come from disk): the member CSR must be
    /// well-formed and every component id — in `comp_of` and in the filter
    /// tree's payloads — must index a member range, so that no query can
    /// panic. The caller additionally checks that the reachability back-end
    /// covers the same number of components (the [`Reachability`] trait does
    /// not expose a vertex count). Violations are `Err(String)`.
    pub fn from_parts(parts: SpaReachParts<R>, name: &'static str) -> Result<Self, String> {
        let SpaReachParts { comp_of, filter, reach, member_offsets, member_points } = parts;
        Self::from_cols(comp_of, filter, reach, member_offsets, member_points, name)
    }

    /// [`SpaReach::from_parts`] over already-assembled columns — the v3
    /// zero-copy load path (the filter tree arrives via
    /// [`RTree::from_cols`]). Identical validation, no copies.
    pub fn from_cols(
        comp_of: impl Into<Col<CompId>>,
        filter: SpaReachFilterParts,
        reach: R,
        member_offsets: impl Into<Col<u32>>,
        member_points: impl Into<Col<Point>>,
        name: &'static str,
    ) -> Result<Self, String> {
        let comp_of = comp_of.into();
        let member_offsets = member_offsets.into();
        let member_points = member_points.into();
        if member_offsets.is_empty() {
            return Err("spareach: empty member offsets".into());
        }
        if member_offsets[0] != 0 || member_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("spareach: member offsets not monotone from 0".into());
        }
        let ncomp = member_offsets.len() - 1;
        if member_offsets[ncomp] as usize != member_points.len() {
            return Err(format!(
                "spareach: member offsets claim {} points but {} present",
                member_offsets[ncomp],
                member_points.len()
            ));
        }
        if let Some(&c) = comp_of.iter().find(|&&c| (c as usize) >= ncomp) {
            return Err(format!("spareach: comp_of references component {c} >= {ncomp}"));
        }
        let tree = match &filter {
            SpaReachFilterParts::Points(t) | SpaReachFilterParts::CompBoxes(t) => t,
        };
        if let Some((_, &c)) = tree.iter().find(|(_, &c)| (c as usize) >= ncomp) {
            return Err(format!("spareach: filter references component {c} >= {ncomp}"));
        }
        let filter = match filter {
            SpaReachFilterParts::Points(t) => SpatialFilter::Points(t),
            SpaReachFilterParts::CompBoxes(t) => SpatialFilter::CompBoxes(t),
        };
        Ok(SpaReach {
            comp_of,
            filter,
            reach,
            name,
            mode: CandidateMode::Materialize,
            member_offsets,
            member_points,
        })
    }

    fn member_points(&self, c: CompId) -> &[gsr_geo::Point] {
        let lo = self.member_offsets[c as usize] as usize;
        let hi = self.member_offsets[c as usize + 1] as usize;
        &self.member_points[lo..hi]
    }
}

impl<R: Reachability> RangeReachIndex for SpaReach<R> {
    fn num_vertices(&self) -> usize {
        self.comp_of.len()
    }

    fn query_unchecked(&self, v: VertexId, region: &Rect) -> bool {
        self.query_with_cost_unchecked(v, region).0
    }

    fn query_with_cost_unchecked(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        let from = self.comp_of[v as usize];
        let window: Aabb<2> = (*region).into();
        let mut cost = QueryCost::default();
        let answer = match &self.filter {
            SpatialFilter::Grid(grid) => {
                let mut candidates: Vec<CompId> = Vec::new();
                grid.query_until(region, |_, &comp| {
                    candidates.push(comp);
                    false
                });
                cost.spatial_candidates = candidates.len();
                candidates.into_iter().any(|comp| {
                    cost.reach_tests += 1;
                    self.reach.reaches(from, comp)
                })
            }
            SpatialFilter::Kd(tree) => {
                let candidates: Vec<CompId> =
                    tree.query(region).into_iter().map(|(_, &c)| c).collect();
                cost.spatial_candidates = candidates.len();
                candidates.into_iter().any(|comp| {
                    cost.reach_tests += 1;
                    self.reach.reaches(from, comp)
                })
            }
            SpatialFilter::Quad(tree) => {
                let candidates: Vec<CompId> =
                    tree.query(region).into_iter().map(|(_, &c)| c).collect();
                cost.spatial_candidates = candidates.len();
                candidates.into_iter().any(|comp| {
                    cost.reach_tests += 1;
                    self.reach.reaches(from, comp)
                })
            }
            SpatialFilter::Points(tree) => crate::scratch::with_scratch(|scratch| {
                let crate::scratch::QueryScratch { stack, comps, .. } = scratch;
                match self.mode {
                    CandidateMode::Materialize => {
                        // Step 1 (Example 2.4): evaluate SRange(P, R) in full,
                        // materializing into the reusable candidate buffer.
                        comps.clear();
                        comps.extend(tree.query_with(&window, stack).map(|(_, &comp)| comp));
                        cost.spatial_candidates = comps.len();
                        // Step 2: one GReach per candidate until a positive.
                        comps.iter().any(|&comp| {
                            cost.reach_tests += 1;
                            self.reach.reaches(from, comp)
                        })
                    }
                    CandidateMode::Streaming => {
                        tree.query_with(&window, stack).any(|(_, &comp)| {
                            cost.spatial_candidates += 1;
                            cost.reach_tests += 1;
                            self.reach.reaches(from, comp)
                        })
                    }
                }
            }),
            SpatialFilter::CompBoxes(tree) => crate::scratch::with_scratch(|scratch| {
                let crate::scratch::QueryScratch { stack, boxes, .. } = scratch;
                let test = |mbr: &Aabb<2>, comp: CompId, cost: &mut QueryCost| {
                    cost.reach_tests += 1;
                    if !self.reach.reaches(from, comp) {
                        return false;
                    }
                    // A fully contained MBR guarantees a member inside R;
                    // partial overlap is refined against the member points.
                    let mbr_rect: Rect = (*mbr).into();
                    region.contains_rect(&mbr_rect) || {
                        self.member_points(comp).iter().any(|p| {
                            cost.containment_tests += 1;
                            region.contains_point(p)
                        })
                    }
                };
                match self.mode {
                    CandidateMode::Materialize => {
                        boxes.clear();
                        boxes.extend(tree.query_with(&window, stack).map(|(b, &c)| (b, c)));
                        cost.spatial_candidates = boxes.len();
                        boxes.iter().any(|&(b, c)| test(&b, c, &mut cost))
                    }
                    CandidateMode::Streaming => tree.query_with(&window, stack).any(|(b, &c)| {
                        cost.spatial_candidates += 1;
                        test(&b, c, &mut cost)
                    }),
                }
            }),
        };
        (answer, cost)
    }

    fn index_bytes(&self) -> usize {
        let tree = match &self.filter {
            SpatialFilter::Points(t) => t.heap_bytes(),
            SpatialFilter::CompBoxes(t) => t.heap_bytes(),
            SpatialFilter::Grid(g) => g.heap_bytes(),
            SpatialFilter::Kd(t) => t.heap_bytes(),
            SpatialFilter::Quad(t) => t.heap_bytes(),
        };
        tree + self.reach.heap_bytes()
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn paper_example_queries() {
        let prep = paper_example::prepared();
        let r = paper_example::query_region();
        for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
            let bfl = SpaReachBfl::build(&prep, policy);
            let int = SpaReachInt::build(&prep, policy);
            // RangeReach(G, a, R) = TRUE and RangeReach(G, c, R) = FALSE
            // (Examples 2.3 / 2.4).
            assert!(bfl.query(paper_example::A, &r), "a reaches R ({policy:?})");
            assert!(int.query(paper_example::A, &r));
            assert!(!bfl.query(paper_example::C, &r), "c cannot reach R ({policy:?})");
            assert!(!int.query(paper_example::C, &r));
        }
    }

    #[test]
    fn matches_bfs_on_paper_example_everywhere() {
        let prep = paper_example::prepared();
        let idx = SpaReachBfl::build(&prep, SccSpatialPolicy::Replicate);
        let regions = paper_example::probe_regions();
        for v in prep.network().graph().vertices() {
            for r in &regions {
                assert_eq!(
                    idx.query(v, r),
                    prep.range_reach_bfs(v, r),
                    "vertex {v}, region {r}"
                );
            }
        }
    }

    #[test]
    fn all_spatial_backends_agree() {
        use gsr_reach::bfl::BflIndex;
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            let backends = [
                SpatialBackend::RTree,
                SpatialBackend::UniformGrid,
                SpatialBackend::KdTree,
                SpatialBackend::QuadTree,
            ];
            let indexes: Vec<_> = backends
                .iter()
                .map(|&b| {
                    SpaReach::build_with_backend(
                        &prep,
                        SccSpatialPolicy::Replicate,
                        b,
                        "SpaReach-ablate",
                        BflIndex::build,
                    )
                })
                .collect();
            for v in prep.network().graph().vertices() {
                for r in paper_example::probe_regions() {
                    let expected = prep.range_reach_bfs(v, &r);
                    for (idx, b) in indexes.iter().zip(backends) {
                        assert_eq!(idx.query(v, &r), expected, "{b:?} at v={v} r={r}");
                    }
                }
            }
        }
    }

    #[test]
    fn pll_and_feline_backends_match_bfs() {
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            let pll = SpaReachPll::build(&prep, SccSpatialPolicy::Replicate);
            let feline = SpaReachFeline::build(&prep, SccSpatialPolicy::Replicate);
            for v in prep.network().graph().vertices() {
                for r in paper_example::probe_regions() {
                    let expected = prep.range_reach_bfs(v, &r);
                    assert_eq!(pll.query(v, &r), expected, "PLL v={v} r={r}");
                    assert_eq!(feline.query(v, &r), expected, "FELINE v={v} r={r}");
                }
            }
        }
    }

    #[test]
    fn candidate_modes_agree() {
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
                let faithful = SpaReachBfl::build(&prep, policy);
                let streaming =
                    SpaReachBfl::build(&prep, policy).with_candidate_mode(CandidateMode::Streaming);
                for v in prep.network().graph().vertices() {
                    for r in paper_example::probe_regions() {
                        assert_eq!(
                            faithful.query(v, &r),
                            streaming.query(v, &r),
                            "v={v} r={r} {policy:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn threaded_build_is_identical_to_sequential() {
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
                let seq = SpaReachBfl::build(&prep, policy);
                for threads in [2, 4, 8] {
                    let par = SpaReachBfl::build_threaded(&prep, policy, threads);
                    assert_eq!(par.comp_of, seq.comp_of, "{policy:?} t={threads}");
                    assert_eq!(par.member_offsets, seq.member_offsets);
                    assert_eq!(par.member_points, seq.member_points);
                    match (&par.filter, &seq.filter) {
                        (SpatialFilter::Points(a), SpatialFilter::Points(b)) => {
                            assert_eq!(a, b, "{policy:?} t={threads}")
                        }
                        (SpatialFilter::CompBoxes(a), SpatialFilter::CompBoxes(b)) => {
                            assert_eq!(a, b, "{policy:?} t={threads}")
                        }
                        _ => panic!("filter kind changed between builds"),
                    }
                    for v in prep.network().graph().vertices() {
                        for r in paper_example::probe_regions() {
                            assert_eq!(par.query(v, &r), seq.query(v, &r), "v={v} r={r}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn index_bytes_include_both_structures() {
        let prep = paper_example::prepared();
        let idx = SpaReachInt::build(&prep, SccSpatialPolicy::Replicate);
        assert!(idx.index_bytes() > 0);
        assert!(idx.index_bytes() >= idx.reachability().heap_bytes());
        assert_eq!(idx.name(), "SpaReach-INT");
    }
}
