//! 3DReach and 3DReach-REV: the three-dimensional transformation
//! (Section 4.2) — the paper's headline contribution.
//!
//! **3DReach** models every spatial vertex `u` as the 3-D point
//! `(u.point, post(u))` and rewrites `RangeReach(G, v, R)` as one 3-D range
//! query per label `[l, h] ∈ L(v)`: the cuboid with base `R` spanning
//! `[l, h]` in the third dimension. A point inside a cuboid certifies both
//! predicates at once — `u.point ∈ R` *and* `l ≤ post(u) ≤ h`, i.e.
//! `GReach(v, u)`.
//!
//! **3DReach-REV** instead builds the *reversed* labeling (run Algorithm 1
//! on the edge-reversed graph): each label of `L_rev(u)` covers the
//! reversed-post-order numbers of `u`'s ancestors, so a spatial vertex
//! becomes a set of *vertical line segments* and a query becomes a single
//! plane at `post_rev(v)`. One range query per query instead of `|L(v)|`,
//! at the cost of indexing segments instead of points.

use crate::{PreparedNetwork, QueryCost, RangeReachIndex, SccSpatialPolicy};
use gsr_geo::{cuboid_from_rect, Aabb, Cuboid, Point, Rect};
use gsr_graph::par;
use gsr_graph::scc::CompId;
use gsr_graph::{Col, HeapBytes, VertexId};
use gsr_index::{RTree, RTreeParams};
use gsr_reach::compact::CompactLabels;
use gsr_reach::interval::{BuildOptions, IntervalLabeling};
use std::sync::Arc;

/// Payload of a 3-D entry: which component it certifies, so MBR-policy
/// candidates can be refined against actual member points.
type Entry = CompId;

/// Shared plumbing of the two 3-D methods. Everything is immutable after
/// construction, so the heavy sections are shared on clone: the R-tree is
/// `Arc`-shared and the flat columns are [`Col`]s (O(1) clone whether they
/// own their buffer or borrow a mapped snapshot) — cloning an index, e.g.
/// fanning a snapshot-loaded index out to worker threads, never duplicates
/// the structures.
#[derive(Debug, Clone)]
struct ThreeDCommon {
    comp_of: Col<CompId>,
    tree: Arc<RTree<3, Entry>>,
    policy: SccSpatialPolicy,
    /// Member points per component for MBR refinement (CSR).
    member_offsets: Col<u32>,
    member_points: Col<Point>,
}

impl ThreeDCommon {
    /// Per-component member gathers run across `threads` workers; the
    /// flatten walks them in component order, so the CSR is identical to
    /// the sequential pass at any thread count.
    fn collect_members(prep: &PreparedNetwork, threads: usize) -> (Vec<u32>, Vec<Point>) {
        let ncomp = prep.num_components();
        let per_comp: Vec<Vec<Point>> = par::map_indexed(threads, ncomp, |c| {
            prep.spatial_member_points(c as CompId).collect()
        });
        let mut offsets = Vec::with_capacity(ncomp + 1);
        let mut points = Vec::new();
        offsets.push(0u32);
        for comp_points in per_comp {
            points.extend(comp_points);
            offsets.push(points.len() as u32);
        }
        (offsets, points)
    }

    fn comp_of(prep: &PreparedNetwork, threads: usize) -> Vec<CompId> {
        let n = prep.network().num_vertices();
        par::map_indexed(threads, n, |v| prep.comp(v as VertexId))
    }

    fn member_points(&self, c: CompId) -> &[Point] {
        let lo = self.member_offsets[c as usize] as usize;
        let hi = self.member_offsets[c as usize + 1] as usize;
        &self.member_points[lo..hi]
    }

    /// Whether a candidate entry inside the query cuboid certifies the
    /// answer: point entries always do; MBR entries only after refinement.
    fn candidate_hits(
        &self,
        entry_box: &Cuboid,
        comp: CompId,
        region: &Rect,
        cost: &mut QueryCost,
    ) -> bool {
        cost.spatial_candidates += 1;
        match self.policy {
            SccSpatialPolicy::Replicate => true,
            SccSpatialPolicy::Mbr => {
                let mbr = Rect::new(entry_box.min[0], entry_box.min[1], entry_box.max[0], entry_box.max[1]);
                region.contains_rect(&mbr)
                    || self.member_points(comp).iter().any(|p| {
                        cost.containment_tests += 1;
                        region.contains_point(p)
                    })
            }
        }
    }

    fn bytes(&self) -> usize {
        self.tree.heap_bytes()
            + self.comp_of.len() * 4
            + match self.policy {
                SccSpatialPolicy::Replicate => 0,
                SccSpatialPolicy::Mbr => {
                    self.member_offsets.len() * 4
                        + self.member_points.len() * std::mem::size_of::<Point>()
                }
            }
    }
}

/// Owned decomposition of [`ThreeDReach`] for snapshot encoding; produced
/// by [`ThreeDReach::to_parts`], inverted by [`ThreeDReach::from_parts`].
#[derive(Debug, Clone)]
pub struct ThreeDParts {
    /// Component of every original vertex.
    pub comp_of: Vec<CompId>,
    /// Delta-compressed forward interval labels over the condensation.
    pub labels: CompactLabels,
    /// The 3-D R-tree of points.
    pub tree: RTree<3, CompId>,
    /// Which SCC spatial policy the entries were generated under.
    pub policy: SccSpatialPolicy,
    /// CSR offsets into `member_points`, one range per component.
    pub member_offsets: Vec<u32>,
    /// Flattened per-component spatial member points.
    pub member_points: Vec<Point>,
}

/// Owned decomposition of [`ThreeDReachRev`] for snapshot encoding.
///
/// REV's query only ever reads the per-component plane height
/// `post_rev(v)` — the full reversed labeling is construction scaffolding
/// (its labels are baked into the segment R-tree) and is not persisted.
#[derive(Debug, Clone)]
pub struct ThreeDRevParts {
    /// Component of every original vertex.
    pub comp_of: Vec<CompId>,
    /// Reversed post-order number (plane height) of every component.
    pub rev_post: Vec<u32>,
    /// The 3-D R-tree of vertical segments.
    pub tree: RTree<3, CompId>,
    /// Which SCC spatial policy the entries were generated under.
    pub policy: SccSpatialPolicy,
    /// CSR offsets into `member_points`, one range per component.
    pub member_offsets: Vec<u32>,
    /// Flattened per-component spatial member points.
    pub member_points: Vec<Point>,
}

type CommonParts = (Vec<CompId>, RTree<3, CompId>, SccSpatialPolicy, Vec<u32>, Vec<Point>);

impl ThreeDCommon {
    fn to_parts(&self) -> CommonParts {
        (
            self.comp_of.to_vec(),
            (*self.tree).clone(),
            self.policy,
            self.member_offsets.to_vec(),
            self.member_points.to_vec(),
        )
    }

    /// Validates untrusted parts and reassembles the shared state. Every
    /// index a query dereferences — component ids in `comp_of` and in tree
    /// payloads, the member CSR — is bounds-checked against `ncomp` (the
    /// component count of the accompanying label structure) so queries
    /// cannot panic.
    fn from_parts(ncomp: usize, parts: CommonParts) -> Result<Self, String> {
        let (comp_of, tree, policy, member_offsets, member_points) = parts;
        Self::from_cols(ncomp, comp_of.into(), tree, policy, member_offsets.into(), member_points.into())
    }

    /// [`ThreeDCommon::from_parts`] over already-assembled columns — the v3
    /// zero-copy load path. Identical validation, no copies.
    fn from_cols(
        ncomp: usize,
        comp_of: Col<CompId>,
        tree: RTree<3, Entry>,
        policy: SccSpatialPolicy,
        member_offsets: Col<u32>,
        member_points: Col<Point>,
    ) -> Result<Self, String> {
        if member_offsets.len() != ncomp + 1 {
            return Err(format!(
                "3dreach: {} member offsets for {ncomp} components",
                member_offsets.len()
            ));
        }
        if member_offsets[0] != 0 || member_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("3dreach: member offsets not monotone from 0".into());
        }
        if member_offsets[ncomp] as usize != member_points.len() {
            return Err(format!(
                "3dreach: member offsets claim {} points but {} present",
                member_offsets[ncomp],
                member_points.len()
            ));
        }
        if let Some(&c) = comp_of.iter().find(|&&c| (c as usize) >= ncomp) {
            return Err(format!("3dreach: comp_of references component {c} >= {ncomp}"));
        }
        if let Some((_, &c)) = tree.iter().find(|(_, &c)| (c as usize) >= ncomp) {
            return Err(format!("3dreach: tree references component {c} >= {ncomp}"));
        }
        Ok(ThreeDCommon {
            comp_of,
            tree: Arc::new(tree),
            policy,
            member_offsets,
            member_points,
        })
    }
}

/// Borrowed column view returned by [`ThreeDReach::cols`]:
/// `(comp_of, labels, tree, policy, member_offsets, member_points)`.
pub type ThreeDReachCols<'a> = (
    &'a [CompId],
    &'a CompactLabels,
    &'a RTree<3, CompId>,
    SccSpatialPolicy,
    &'a [u32],
    &'a [Point],
);

/// Borrowed column view returned by [`ThreeDReachRev::cols`]:
/// `(comp_of, rev_post, tree, policy, member_offsets, member_points)`.
pub type ThreeDReachRevCols<'a> = (
    &'a [CompId],
    &'a [u32],
    &'a RTree<3, CompId>,
    SccSpatialPolicy,
    &'a [u32],
    &'a [Point],
);

/// The forward 3DReach method: 3-D points, one cuboid query per label.
#[derive(Debug, Clone)]
pub struct ThreeDReach {
    common: ThreeDCommon,
    /// Delta-compressed forward labels: the query's per-label loop is a
    /// strictly sequential decode, so the random-access arrays of the full
    /// [`IntervalLabeling`] are never needed after construction.
    labels: Arc<CompactLabels>,
}

impl ThreeDReach {
    /// Builds the forward labeling and the 3-D R-tree of spatial entries.
    pub fn build(prep: &PreparedNetwork, policy: SccSpatialPolicy) -> Self {
        Self::build_threaded(prep, policy, 1)
    }

    /// Like [`ThreeDReach::build`], running the interval labeling, the
    /// spatial-entry replication pass and the R-tree packing across
    /// `threads` workers (`0` = machine parallelism). The built index is
    /// identical to the sequential one at any thread count.
    pub fn build_threaded(prep: &PreparedNetwork, policy: SccSpatialPolicy, threads: usize) -> Self {
        let labeling = IntervalLabeling::build_with(
            prep.dag(),
            BuildOptions { threads, ..BuildOptions::default() },
        );

        let entries: Vec<(Cuboid, Entry)> = match policy {
            SccSpatialPolicy::Replicate => {
                let spatial: Vec<(VertexId, Point)> =
                    prep.network().spatial_vertices().collect();
                par::map_indexed(threads, spatial.len(), |i| {
                    let (v, p) = spatial[i];
                    let comp = prep.comp(v);
                    let z = labeling.post(comp) as f64;
                    (gsr_geo::point3(p, z), comp)
                })
            }
            SccSpatialPolicy::Mbr => {
                par::map_indexed(threads, prep.num_components(), |c| {
                    let c = c as CompId;
                    prep.comp_mbr(c).map(|m| {
                        let z = labeling.post(c) as f64;
                        (Aabb::new([m.min_x, m.min_y, z], [m.max_x, m.max_y, z]), c)
                    })
                })
                .into_iter()
                .flatten()
                .collect()
            }
        };
        let (member_offsets, member_points) = ThreeDCommon::collect_members(prep, threads);

        ThreeDReach {
            common: ThreeDCommon {
                comp_of: ThreeDCommon::comp_of(prep, threads).into(),
                tree: Arc::new(RTree::bulk_load_parallel(entries, RTreeParams::default(), threads)),
                policy,
                member_offsets: member_offsets.into(),
                member_points: member_points.into(),
            },
            labels: Arc::new(CompactLabels::from_labeling(&labeling)),
        }
    }

    /// The compacted forward labels (for stats).
    pub fn labels(&self) -> &CompactLabels {
        &self.labels
    }

    /// Decomposes the index for snapshot encoding.
    pub fn to_parts(&self) -> ThreeDParts {
        let (comp_of, tree, policy, member_offsets, member_points) = self.common.to_parts();
        ThreeDParts {
            comp_of,
            labels: (*self.labels).clone(),
            tree,
            policy,
            member_offsets,
            member_points,
        }
    }

    /// Reassembles an index from untrusted [`ThreeDParts`]; violations of
    /// the structural invariants are `Err(String)`, never panics.
    pub fn from_parts(parts: ThreeDParts) -> Result<Self, String> {
        let ThreeDParts { comp_of, labels, tree, policy, member_offsets, member_points } = parts;
        let common = ThreeDCommon::from_parts(
            labels.num_vertices(),
            (comp_of, tree, policy, member_offsets, member_points),
        )?;
        Ok(ThreeDReach { common, labels: Arc::new(labels) })
    }

    /// Reassembles an index from already-validated columns — the v3
    /// zero-copy load path. Same structural checks as
    /// [`ThreeDReach::from_parts`], no copies.
    pub fn from_cols(
        comp_of: Col<CompId>,
        labels: CompactLabels,
        tree: RTree<3, CompId>,
        policy: SccSpatialPolicy,
        member_offsets: Col<u32>,
        member_points: Col<Point>,
    ) -> Result<Self, String> {
        let common = ThreeDCommon::from_cols(
            labels.num_vertices(),
            comp_of,
            tree,
            policy,
            member_offsets,
            member_points,
        )?;
        Ok(ThreeDReach { common, labels: Arc::new(labels) })
    }

    /// Borrowed view of the index columns for zero-copy snapshot encoding:
    /// `(comp_of, labels, tree, policy, member_offsets, member_points)`.
    pub fn cols(&self) -> ThreeDReachCols<'_> {
        (
            &self.common.comp_of,
            &self.labels,
            &self.common.tree,
            self.common.policy,
            &self.common.member_offsets,
            &self.common.member_points,
        )
    }
}

impl RangeReachIndex for ThreeDReach {
    fn num_vertices(&self) -> usize {
        self.common.comp_of.len()
    }

    fn query_unchecked(&self, v: VertexId, region: &Rect) -> bool {
        self.query_with_cost_unchecked(v, region).0
    }

    fn query_with_cost_unchecked(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        let mut cost = QueryCost::default();
        let from = self.common.comp_of[v as usize];
        crate::scratch::with_scratch(|scratch| {
            // One rectangular cuboid per label of L(v) (Example 4.2); stop
            // at the first certified hit.
            for iv in self.labels.intervals(from) {
                cost.range_queries += 1;
                let cuboid = cuboid_from_rect(region, iv.lo as f64, iv.hi as f64);
                let mut hits = self.common.tree.query_with(&cuboid, &mut scratch.stack);
                if hits.any(|(b, &comp)| self.common.candidate_hits(&b, comp, region, &mut cost)) {
                    return (true, cost);
                }
            }
            (false, cost)
        })
    }

    fn index_bytes(&self) -> usize {
        self.common.bytes() + self.labels.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "3DReach"
    }
}

/// The line-based 3DReach-REV variant: reversed labeling, vertical
/// segments, a single plane query per `RangeReach`.
///
/// The reversed labeling exists only during construction — its labels are
/// baked into the segment R-tree, so the index keeps just the
/// per-component plane heights (`rev_post`), 4 bytes per component.
#[derive(Debug, Clone)]
pub struct ThreeDReachRev {
    common: ThreeDCommon,
    /// `post_rev` of every component (the plane height of a query).
    rev_post: Col<u32>,
}

impl ThreeDReachRev {
    /// Builds the reversed labeling and the 3-D segment R-tree.
    pub fn build(prep: &PreparedNetwork, policy: SccSpatialPolicy) -> Self {
        Self::build_threaded(prep, policy, 1)
    }

    /// Like [`ThreeDReachRev::build`], running the reversed labeling, the
    /// per-vertex segment replication pass and the R-tree packing across
    /// `threads` workers (`0` = machine parallelism). The built index is
    /// identical to the sequential one at any thread count: the per-vertex
    /// (or per-component) segment groups are produced independently and
    /// flattened in the sequential scan order.
    pub fn build_threaded(prep: &PreparedNetwork, policy: SccSpatialPolicy, threads: usize) -> Self {
        let reversed_dag = prep.dag().reversed();
        let labeling = IntervalLabeling::build_with(
            &reversed_dag,
            BuildOptions { threads, ..BuildOptions::default() },
        );
        let rev_post: Vec<u32> =
            (0..prep.num_components() as CompId).map(|c| labeling.post(c)).collect();

        // Every spatial vertex u contributes one vertical segment per label
        // of L_rev(comp(u)): the segment covers exactly the plane heights of
        // the vertices that can reach u.
        let groups: Vec<Vec<(Cuboid, Entry)>> = match policy {
            SccSpatialPolicy::Replicate => {
                let spatial: Vec<(VertexId, Point)> =
                    prep.network().spatial_vertices().collect();
                par::map_indexed(threads, spatial.len(), |i| {
                    let (v, p) = spatial[i];
                    let comp = prep.comp(v);
                    labeling
                        .intervals(comp)
                        .iter()
                        .map(|iv| (gsr_geo::segment_at(p, iv.lo as f64, iv.hi as f64), comp))
                        .collect()
                })
            }
            SccSpatialPolicy::Mbr => par::map_indexed(threads, prep.num_components(), |c| {
                let c = c as CompId;
                // A component without spatial members (no MBR) contributes
                // an empty iterator — no sentinel early-return.
                prep.comp_mbr(c)
                    .into_iter()
                    .flat_map(|m| {
                        labeling.intervals(c).iter().map(move |iv| {
                            (
                                Aabb::new(
                                    [m.min_x, m.min_y, iv.lo as f64],
                                    [m.max_x, m.max_y, iv.hi as f64],
                                ),
                                c,
                            )
                        })
                    })
                    .collect()
            }),
        };
        let entries: Vec<(Cuboid, Entry)> = groups.into_iter().flatten().collect();
        let (member_offsets, member_points) = ThreeDCommon::collect_members(prep, threads);

        ThreeDReachRev {
            common: ThreeDCommon {
                comp_of: ThreeDCommon::comp_of(prep, threads).into(),
                tree: Arc::new(RTree::bulk_load_parallel(entries, RTreeParams::default(), threads)),
                policy,
                member_offsets: member_offsets.into(),
                member_points: member_points.into(),
            },
            rev_post: rev_post.into(),
        }
    }

    /// The per-component plane heights (for stats).
    pub fn rev_post(&self) -> &[u32] {
        &self.rev_post
    }

    /// Decomposes the index for snapshot encoding.
    pub fn to_parts(&self) -> ThreeDRevParts {
        let (comp_of, tree, policy, member_offsets, member_points) = self.common.to_parts();
        ThreeDRevParts {
            comp_of,
            rev_post: self.rev_post.to_vec(),
            tree,
            policy,
            member_offsets,
            member_points,
        }
    }

    /// Reassembles an index from untrusted [`ThreeDRevParts`]. Violations
    /// of the structural invariants are `Err(String)`, never panics.
    pub fn from_parts(parts: ThreeDRevParts) -> Result<Self, String> {
        let ThreeDRevParts { comp_of, rev_post, tree, policy, member_offsets, member_points } =
            parts;
        let common = ThreeDCommon::from_parts(
            rev_post.len(),
            (comp_of, tree, policy, member_offsets, member_points),
        )?;
        Ok(ThreeDReachRev { common, rev_post: rev_post.into() })
    }

    /// Reassembles an index from already-validated columns — the v3
    /// zero-copy load path. Same structural checks as
    /// [`ThreeDReachRev::from_parts`], no copies.
    pub fn from_cols(
        comp_of: Col<CompId>,
        rev_post: Col<u32>,
        tree: RTree<3, CompId>,
        policy: SccSpatialPolicy,
        member_offsets: Col<u32>,
        member_points: Col<Point>,
    ) -> Result<Self, String> {
        let common = ThreeDCommon::from_cols(
            rev_post.len(),
            comp_of,
            tree,
            policy,
            member_offsets,
            member_points,
        )?;
        Ok(ThreeDReachRev { common, rev_post })
    }

    /// Borrowed view of the index columns for zero-copy snapshot encoding:
    /// `(comp_of, rev_post, tree, policy, member_offsets, member_points)`.
    pub fn cols(&self) -> ThreeDReachRevCols<'_> {
        (
            &self.common.comp_of,
            &self.rev_post,
            &self.common.tree,
            self.common.policy,
            &self.common.member_offsets,
            &self.common.member_points,
        )
    }
}

impl RangeReachIndex for ThreeDReachRev {
    fn num_vertices(&self) -> usize {
        self.common.comp_of.len()
    }

    fn query_unchecked(&self, v: VertexId, region: &Rect) -> bool {
        self.query_with_cost_unchecked(v, region).0
    }

    fn query_with_cost_unchecked(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        let mut cost = QueryCost { range_queries: 1, ..QueryCost::default() };
        let from = self.common.comp_of[v as usize];
        // A single plane parallel to the spatial dimensions, positioned at
        // post_rev(v) (Example 4.3): the answer is TRUE iff the plane cuts a
        // vertical segment whose base point lies inside R.
        let z = self.rev_post[from as usize] as f64;
        let plane = cuboid_from_rect(region, z, z);
        let answer = crate::scratch::with_scratch(|scratch| {
            let mut hits = self.common.tree.query_with(&plane, &mut scratch.stack);
            hits.any(|(b, &comp)| self.common.candidate_hits(&b, comp, region, &mut cost))
        });
        (answer, cost)
    }

    fn index_bytes(&self) -> usize {
        self.common.bytes() + self.rev_post.len() * 4
    }

    fn name(&self) -> &'static str {
        "3DReach-REV"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;

    #[test]
    fn paper_examples_4_2_and_4_3() {
        let prep = paper_example::prepared();
        let r = paper_example::query_region();
        for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
            let fwd = ThreeDReach::build(&prep, policy);
            let rev = ThreeDReachRev::build(&prep, policy);
            assert!(fwd.query(paper_example::A, &r), "{policy:?}");
            assert!(!fwd.query(paper_example::C, &r), "{policy:?}");
            assert!(rev.query(paper_example::A, &r), "{policy:?}");
            assert!(!rev.query(paper_example::C, &r), "{policy:?}");
        }
    }

    #[test]
    fn forward_uses_one_cuboid_per_label_of_a() {
        // L(a) compresses to a single interval (Table 1), so the query for a
        // is one 3-D range query; c has three labels.
        let prep = paper_example::prepared();
        let fwd = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        assert_eq!(fwd.labels().num_intervals(prep.comp(paper_example::A)), 1);
        assert_eq!(fwd.labels().num_intervals(prep.comp(paper_example::C)), 3);
    }

    #[test]
    fn both_match_bfs_everywhere() {
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
                let fwd = ThreeDReach::build(&prep, policy);
                let rev = ThreeDReachRev::build(&prep, policy);
                for v in prep.network().graph().vertices() {
                    for r in paper_example::probe_regions() {
                        let expected = prep.range_reach_bfs(v, &r);
                        assert_eq!(fwd.query(v, &r), expected, "3DReach v={v} r={r} {policy:?}");
                        assert_eq!(
                            rev.query(v, &r),
                            expected,
                            "3DReach-REV v={v} r={r} {policy:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn threaded_builds_are_identical_to_sequential() {
        for prep in [paper_example::prepared(), paper_example::cyclic_prepared()] {
            for policy in [SccSpatialPolicy::Replicate, SccSpatialPolicy::Mbr] {
                let fwd_seq = ThreeDReach::build(&prep, policy);
                let rev_seq = ThreeDReachRev::build(&prep, policy);
                for threads in [2, 4, 8] {
                    let fwd = ThreeDReach::build_threaded(&prep, policy, threads);
                    let rev = ThreeDReachRev::build_threaded(&prep, policy, threads);
                    assert_eq!(fwd.labels, fwd_seq.labels);
                    assert_eq!(fwd.common.tree, fwd_seq.common.tree, "{policy:?} t={threads}");
                    assert_eq!(fwd.common.comp_of, fwd_seq.common.comp_of);
                    assert_eq!(fwd.common.member_offsets, fwd_seq.common.member_offsets);
                    assert_eq!(fwd.common.member_points, fwd_seq.common.member_points);
                    assert_eq!(rev.common.tree, rev_seq.common.tree, "{policy:?} t={threads}");
                    assert_eq!(rev.rev_post, rev_seq.rev_post);
                }
            }
        }
    }

    #[test]
    fn clone_shares_immutable_sections() {
        let prep = paper_example::prepared();
        let fwd = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let fc = fwd.clone();
        assert!(Arc::ptr_eq(&fwd.common.tree, &fc.common.tree));
        assert!(Arc::ptr_eq(&fwd.labels, &fc.labels));
        assert!(Col::ptr_eq(&fwd.common.member_points, &fc.common.member_points));
        let rev = ThreeDReachRev::build(&prep, SccSpatialPolicy::Replicate);
        let rc = rev.clone();
        assert!(Arc::ptr_eq(&rev.common.tree, &rc.common.tree));
        assert!(Col::ptr_eq(&rev.rev_post, &rc.rev_post));
        // A clone answers exactly like the original.
        for v in prep.network().graph().vertices() {
            for r in paper_example::probe_regions() {
                assert_eq!(fwd.query(v, &r), fc.query(v, &r));
            }
        }
    }

    #[test]
    fn rev_indexes_segments_not_points() {
        let prep = paper_example::prepared();
        let fwd = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let rev = ThreeDReachRev::build(&prep, SccSpatialPolicy::Replicate);
        // Forward: one entry per spatial vertex. Reverse: one per (vertex,
        // reversed label) pair, which is at least as many.
        assert!(rev.index_bytes() >= fwd.index_bytes() / 2);
        assert_eq!(fwd.name(), "3DReach");
        assert_eq!(rev.name(), "3DReach-REV");
    }
}
