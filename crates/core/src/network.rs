//! Geosocial networks and their condensed (DAG) form.

use crate::QueryCost;
use gsr_geo::{Point, Rect};
use gsr_graph::scc::{CompId, Condensation};
use gsr_graph::{DiGraph, VertexId};

/// Errors raised when constructing a [`GeosocialNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// `points` must have exactly one slot per vertex.
    PointCountMismatch {
        /// Number of graph vertices.
        vertices: usize,
        /// Number of point slots supplied.
        points: usize,
    },
    /// A spatial vertex carried a NaN or infinite coordinate.
    NonFinitePoint {
        /// The offending vertex.
        vertex: VertexId,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::PointCountMismatch { vertices, points } => {
                write!(f, "graph has {vertices} vertices but {points} point slots")
            }
            NetworkError::NonFinitePoint { vertex } => {
                write!(f, "vertex {vertex} has a non-finite coordinate")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A geosocial network `G = (V, E, P)` (Section 2.1 of the paper): a
/// directed graph whose vertices optionally carry a point in the plane.
/// Vertices with a point are *spatial vertices* (venues); vertices without
/// are social vertices (users).
#[derive(Debug, Clone)]
pub struct GeosocialNetwork {
    graph: DiGraph,
    points: Vec<Option<Point>>,
}

impl GeosocialNetwork {
    /// Wraps a graph and one optional point per vertex.
    pub fn new(graph: DiGraph, points: Vec<Option<Point>>) -> Result<Self, NetworkError> {
        if points.len() != graph.num_vertices() {
            return Err(NetworkError::PointCountMismatch {
                vertices: graph.num_vertices(),
                points: points.len(),
            });
        }
        for (v, p) in points.iter().enumerate() {
            if let Some(p) = p {
                if !p.is_finite() {
                    return Err(NetworkError::NonFinitePoint { vertex: v as VertexId });
                }
            }
        }
        Ok(GeosocialNetwork { graph, points })
    }

    /// The underlying directed graph.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// The point of vertex `v`, if it is spatial.
    #[inline]
    pub fn point(&self, v: VertexId) -> Option<Point> {
        self.points[v as usize]
    }

    /// Whether `v` is a spatial vertex.
    #[inline]
    pub fn is_spatial(&self, v: VertexId) -> bool {
        self.points[v as usize].is_some()
    }

    /// Iterator over `(vertex, point)` for all spatial vertices.
    pub fn spatial_vertices(&self) -> impl Iterator<Item = (VertexId, Point)> + '_ {
        self.points
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|p| (v as VertexId, p)))
    }

    /// Number of spatial vertices (`|P|`).
    pub fn num_spatial(&self) -> usize {
        self.points.iter().filter(|p| p.is_some()).count()
    }

    /// The MBR of all points — the `SPACE` of the paper's GeoReach
    /// parameters. `None` when the network has no spatial vertex.
    pub fn space(&self) -> Option<Rect> {
        Rect::mbr_of(self.points.iter().filter_map(|p| *p))
    }
}

/// Summary characteristics of a network — the columns of Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Social (non-spatial) vertices, "# users".
    pub users: usize,
    /// Spatial vertices, "# venues".
    pub venues: usize,
    /// `|V|`.
    pub vertices: usize,
    /// `|E|`.
    pub edges: usize,
    /// `|P|` (equals `venues`).
    pub points: usize,
    /// Number of strongly connected components.
    pub sccs: usize,
    /// Number of vertices in the largest SCC.
    pub largest_scc: usize,
}

/// A geosocial network condensed into its SCC DAG, with per-component
/// spatial information precomputed — the common preprocessing shared by all
/// evaluation methods ("following the typical practice, we converted them
/// into DAGs", Section 6.2).
#[derive(Debug, Clone)]
pub struct PreparedNetwork {
    net: GeosocialNetwork,
    cond: Condensation,
    /// Per component: flattened spatial members (vertex ids), CSR layout.
    spatial_offsets: Vec<u32>,
    spatial_members: Vec<VertexId>,
    /// Per component: MBR of member points (`None` if no spatial member).
    comp_mbr: Vec<Option<Rect>>,
    space: Rect,
}

impl PreparedNetwork {
    /// Condenses `net` and precomputes the spatial side of each component.
    pub fn new(net: GeosocialNetwork) -> Self {
        let cond = Condensation::of(net.graph());
        let ncomp = cond.num_components();

        let mut spatial_offsets = vec![0u32; ncomp + 1];
        for (v, p) in net.points.iter().enumerate() {
            if p.is_some() {
                spatial_offsets[cond.comp(v as VertexId) as usize + 1] += 1;
            }
        }
        for i in 0..ncomp {
            spatial_offsets[i + 1] += spatial_offsets[i];
        }
        let mut cursor = spatial_offsets.clone();
        let mut spatial_members = vec![0 as VertexId; spatial_offsets[ncomp] as usize];
        for (v, p) in net.points.iter().enumerate() {
            if p.is_some() {
                let c = cond.comp(v as VertexId) as usize;
                spatial_members[cursor[c] as usize] = v as VertexId;
                cursor[c] += 1;
            }
        }

        let mut comp_mbr: Vec<Option<Rect>> = vec![None; ncomp];
        for (c, slot) in comp_mbr.iter_mut().enumerate() {
            let lo = spatial_offsets[c] as usize;
            let hi = spatial_offsets[c + 1] as usize;
            *slot = Rect::mbr_of(
                spatial_members[lo..hi].iter().filter_map(|&v| net.points[v as usize]),
            );
        }

        let space = net.space().unwrap_or(Rect::new(0.0, 0.0, 1.0, 1.0));
        PreparedNetwork { net, cond, spatial_offsets, spatial_members, comp_mbr, space }
    }

    /// The original network.
    #[inline]
    pub fn network(&self) -> &GeosocialNetwork {
        &self.net
    }

    /// The condensation DAG (one vertex per SCC).
    #[inline]
    pub fn dag(&self) -> &DiGraph {
        &self.cond.dag
    }

    /// Number of components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.cond.num_components()
    }

    /// The component of original vertex `v`.
    #[inline]
    pub fn comp(&self, v: VertexId) -> CompId {
        self.cond.comp(v)
    }

    /// All original members of component `c`.
    #[inline]
    pub fn members(&self, c: CompId) -> &[VertexId] {
        self.cond.members(c)
    }

    /// The spatial members of component `c` (original vertex ids).
    #[inline]
    pub fn spatial_members(&self, c: CompId) -> &[VertexId] {
        let lo = self.spatial_offsets[c as usize] as usize;
        let hi = self.spatial_offsets[c as usize + 1] as usize;
        &self.spatial_members[lo..hi]
    }

    /// Iterator over the member points of component `c`.
    pub fn spatial_member_points(&self, c: CompId) -> impl Iterator<Item = Point> + '_ {
        // Spatial members are collected from vertices with points, so the
        // filter never actually drops anything; it just avoids unwrap.
        self.spatial_members(c).iter().filter_map(|&v| self.net.points[v as usize])
    }

    /// Whether any member point of `c` lies inside `region`.
    pub fn any_member_in(&self, c: CompId, region: &Rect) -> bool {
        self.spatial_member_points(c).any(|p| region.contains_point(&p))
    }

    /// The MBR of component `c`'s member points.
    #[inline]
    pub fn comp_mbr(&self, c: CompId) -> Option<Rect> {
        self.comp_mbr[c as usize]
    }

    /// Whether component `c` contains at least one spatial vertex.
    #[inline]
    pub fn comp_is_spatial(&self, c: CompId) -> bool {
        self.comp_mbr[c as usize].is_some()
    }

    /// The MBR of all points of the network (the paper's `SPACE`).
    #[inline]
    pub fn space(&self) -> Rect {
        self.space
    }

    /// Table 3 statistics of the underlying network.
    pub fn stats(&self) -> NetworkStats {
        let venues = self.net.num_spatial();
        NetworkStats {
            users: self.net.num_vertices() - venues,
            venues,
            vertices: self.net.num_vertices(),
            edges: self.net.graph().num_edges(),
            points: venues,
            sccs: self.cond.num_components(),
            largest_scc: self.cond.largest_component_size(),
        }
    }

    /// Ground-truth `RangeReach` evaluation by BFS over the condensation —
    /// used by the test suites to validate every index.
    pub fn range_reach_bfs(&self, v: VertexId, region: &Rect) -> bool {
        self.range_reach_bfs_with_cost(v, region).0
    }

    /// [`PreparedNetwork::range_reach_bfs`] plus work counters: one
    /// `vertices_visited` per popped component, one `containment_tests`
    /// per member point tested. Powers the index-free degraded mode
    /// ([`crate::OnlineReach`]).
    pub fn range_reach_bfs_with_cost(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        let mut cost = QueryCost::default();
        let start = self.comp(v);
        // The traversal runs over this thread's reusable scratch buffers
        // (the frontier deque used LIFO), so steady-state evaluation is
        // allocation-free; the visit order matches the old Vec stack.
        crate::scratch::with_scratch(|scratch| {
            scratch.begin_visit(self.num_components());
            scratch.mark(start);
            scratch.queue.push_back(start);
            while let Some(c) = scratch.queue.pop_back() {
                cost.vertices_visited += 1;
                let hit = self.spatial_member_points(c).any(|p| {
                    cost.containment_tests += 1;
                    region.contains_point(&p)
                });
                if hit {
                    return (true, cost);
                }
                for &w in self.dag().out_neighbors(c) {
                    if scratch.mark(w) {
                        scratch.queue.push_back(w);
                    }
                }
            }
            (false, cost)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_graph::graph_from_edges;

    fn p(x: f64, y: f64) -> Option<Point> {
        Some(Point::new(x, y))
    }

    #[test]
    fn construction_validation() {
        let g = graph_from_edges(2, &[(0, 1)]);
        assert!(matches!(
            GeosocialNetwork::new(g.clone(), vec![None]),
            Err(NetworkError::PointCountMismatch { vertices: 2, points: 1 })
        ));
        assert!(matches!(
            GeosocialNetwork::new(g.clone(), vec![None, p(f64::NAN, 0.0)]),
            Err(NetworkError::NonFinitePoint { vertex: 1 })
        ));
        assert!(GeosocialNetwork::new(g, vec![None, p(1.0, 2.0)]).is_ok());
    }

    #[test]
    fn spatial_accessors() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let net = GeosocialNetwork::new(g, vec![None, p(1.0, 2.0), p(3.0, 4.0)]).unwrap();
        assert_eq!(net.num_spatial(), 2);
        assert!(!net.is_spatial(0));
        assert!(net.is_spatial(1));
        assert_eq!(net.point(2), Some(Point::new(3.0, 4.0)));
        assert_eq!(net.space(), Some(Rect::new(1.0, 2.0, 3.0, 4.0)));
        let spatial: Vec<_> = net.spatial_vertices().collect();
        assert_eq!(spatial.len(), 2);
        assert_eq!(spatial[0].0, 1);
    }

    #[test]
    fn prepared_network_component_spatial_info() {
        // 0 <-> 1 form an SCC with one spatial member; 2 is spatial alone.
        let g = graph_from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let net = GeosocialNetwork::new(g, vec![None, p(1.0, 1.0), p(5.0, 5.0)]).unwrap();
        let prep = PreparedNetwork::new(net);
        assert_eq!(prep.num_components(), 2);
        let c01 = prep.comp(0);
        let c2 = prep.comp(2);
        assert_eq!(prep.comp(1), c01);
        assert_ne!(c01, c2);
        assert_eq!(prep.spatial_members(c01), &[1]);
        assert_eq!(prep.spatial_members(c2), &[2]);
        assert_eq!(prep.comp_mbr(c01), Some(Rect::new(1.0, 1.0, 1.0, 1.0)));
        assert!(prep.comp_is_spatial(c2));
        assert!(prep.any_member_in(c01, &Rect::new(0.0, 0.0, 2.0, 2.0)));
        assert!(!prep.any_member_in(c01, &Rect::new(4.0, 4.0, 6.0, 6.0)));
    }

    #[test]
    fn stats_match_table3_columns() {
        let g = graph_from_edges(4, &[(0, 1), (1, 0), (0, 2), (1, 3)]);
        let net =
            GeosocialNetwork::new(g, vec![None, None, p(0.0, 0.0), p(1.0, 1.0)]).unwrap();
        let prep = PreparedNetwork::new(net);
        let s = prep.stats();
        assert_eq!(s.users, 2);
        assert_eq!(s.venues, 2);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.points, 2);
        assert_eq!(s.sccs, 3);
        assert_eq!(s.largest_scc, 2);
    }

    #[test]
    fn bfs_ground_truth() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (3, 2)]);
        let net =
            GeosocialNetwork::new(g, vec![None, None, p(5.0, 5.0), p(0.0, 0.0)]).unwrap();
        let prep = PreparedNetwork::new(net);
        let near_venue = Rect::new(4.0, 4.0, 6.0, 6.0);
        assert!(prep.range_reach_bfs(0, &near_venue));
        assert!(prep.range_reach_bfs(2, &near_venue), "reflexive");
        let near_three = Rect::new(-1.0, -1.0, 1.0, 1.0);
        assert!(!prep.range_reach_bfs(0, &near_three), "3 is not reachable from 0");
        assert!(prep.range_reach_bfs(3, &near_three));
    }

    #[test]
    fn network_without_points_gets_default_space() {
        let g = graph_from_edges(2, &[(0, 1)]);
        let net = GeosocialNetwork::new(g, vec![None, None]).unwrap();
        let prep = PreparedNetwork::new(net);
        assert_eq!(prep.network().num_spatial(), 0);
        assert!(!prep.range_reach_bfs(0, &prep.space()));
    }
}
