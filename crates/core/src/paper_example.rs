//! The paper's running example (Figures 1–4, Table 1) as a ready-made
//! network, used across the test suites and the quickstart example.
//!
//! The 12 vertices `a..l` map to ids 0..11. The spatial vertices are
//! `e, f, h, i, l`; the canonical query region [`query_region`] contains
//! the points of `e` and `h`, so `RangeReach(G, a, R) = TRUE` while
//! `RangeReach(G, c, R) = FALSE` (Example 2.3).

use crate::{GeosocialNetwork, PreparedNetwork};
use gsr_geo::{Point, Rect};
use gsr_graph::{graph_from_edges, VertexId};

/// Vertex `a` of Figure 1.
pub const A: VertexId = 0;
/// Vertex `b` of Figure 1.
pub const B: VertexId = 1;
/// Vertex `c` of Figure 1.
pub const C: VertexId = 2;
/// Vertex `d` of Figure 1.
pub const D: VertexId = 3;
/// Vertex `e` of Figure 1 (spatial, inside the query region).
pub const E: VertexId = 4;
/// Vertex `f` of Figure 1 (spatial).
pub const F: VertexId = 5;
/// Vertex `g` of Figure 1.
pub const G: VertexId = 6;
/// Vertex `h` of Figure 1 (spatial, inside the query region).
pub const H: VertexId = 7;
/// Vertex `i` of Figure 1 (spatial).
pub const I: VertexId = 8;
/// Vertex `j` of Figure 1.
pub const J: VertexId = 9;
/// Vertex `k` of Figure 1.
pub const K: VertexId = 10;
/// Vertex `l` of Figure 1 (spatial).
pub const L: VertexId = 11;

/// The edge list of Figure 1 (spanning-tree edges of Figure 3 first, then
/// the non-spanning edges).
pub fn edges() -> Vec<(VertexId, VertexId)> {
    vec![
        (A, B), (A, D), (A, J), (B, E), (B, L), (E, F), (J, G), (J, H),
        (C, I), (C, K),
        (L, H), (B, D), (G, I), (I, F), (C, D),
    ]
}

/// Points of the spatial vertices, inside a `[0, 16] × [0, 16]` space.
pub fn points() -> Vec<Option<Point>> {
    let mut pts = vec![None; 12];
    pts[E as usize] = Some(Point::new(5.0, 9.0));
    pts[H as usize] = Some(Point::new(6.5, 10.5));
    pts[F as usize] = Some(Point::new(2.0, 2.0));
    pts[I as usize] = Some(Point::new(13.0, 3.0));
    pts[L as usize] = Some(Point::new(10.0, 14.0));
    pts
}

/// The query region `R` of Figure 1: contains `e.point` and `h.point`.
pub fn query_region() -> Rect {
    Rect::new(4.0, 8.0, 8.0, 12.0)
}

/// The running-example network.
pub fn network() -> GeosocialNetwork {
    // Static data from Figure 1; validation cannot fail.
    #[allow(clippy::expect_used)]
    GeosocialNetwork::new(graph_from_edges(12, &edges()), points()).expect("valid example")
}

/// The running-example network, condensed (it is already a DAG).
pub fn prepared() -> PreparedNetwork {
    PreparedNetwork::new(network())
}

/// A cyclic variant of the running example for the SCC handling of
/// Section 5: back edges create the components `{a, b, d}`, `{c, k}`,
/// `{h, j}` (one spatial member) and `{f, i}` (two spatial members).
pub fn cyclic_prepared() -> PreparedNetwork {
    let mut e = edges();
    e.extend_from_slice(&[(D, A), (K, C), (H, J), (F, I)]);
    // Static data from Figure 1; validation cannot fail.
    #[allow(clippy::expect_used)]
    let net =
        GeosocialNetwork::new(graph_from_edges(12, &e), points()).expect("valid example");
    PreparedNetwork::new(net)
}

/// A spread of probe regions exercising positive, negative, degenerate and
/// whole-space queries; used to cross-check every method against BFS.
pub fn probe_regions() -> Vec<Rect> {
    vec![
        query_region(),
        Rect::new(0.0, 0.0, 16.0, 16.0),            // whole space
        Rect::new(1.0, 1.0, 3.0, 3.0),              // around f only
        Rect::new(12.0, 2.0, 14.0, 4.0),            // around i only
        Rect::new(9.0, 13.0, 11.0, 15.0),           // around l only
        Rect::new(15.0, 15.0, 16.0, 16.0),          // empty corner
        Rect::from_point(Point::new(5.0, 9.0)),     // exactly e
        Rect::new(0.0, 8.0, 16.0, 12.0),            // horizontal band: e, h
        Rect::new(4.9, 0.0, 5.1, 16.0),             // vertical sliver: e
        Rect::new(-10.0, -10.0, -5.0, -5.0),        // fully outside space
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_matches_paper_claims() {
        let prep = prepared();
        let r = query_region();
        // Example 2.3: a can geosocially reach R, c cannot.
        assert!(prep.range_reach_bfs(A, &r));
        assert!(!prep.range_reach_bfs(C, &r));
        // e and h are the spatial vertices inside R.
        let net = prep.network();
        let inside: Vec<VertexId> = net
            .spatial_vertices()
            .filter(|(_, p)| r.contains_point(p))
            .map(|(v, _)| v)
            .collect();
        assert_eq!(inside, vec![E, H]);
    }

    #[test]
    fn acyclic_example_has_twelve_singletons() {
        let prep = prepared();
        assert_eq!(prep.num_components(), 12);
    }

    #[test]
    fn cyclic_example_component_structure() {
        let prep = cyclic_prepared();
        assert_eq!(prep.comp(A), prep.comp(B));
        assert_eq!(prep.comp(A), prep.comp(D));
        assert_eq!(prep.comp(C), prep.comp(K));
        assert_eq!(prep.comp(H), prep.comp(J));
        assert_eq!(prep.comp(F), prep.comp(I));
        // 9 vertices collapse into 4 components; e, g, l stay singletons.
        assert_eq!(prep.num_components(), 7);
        // {f, i} has two spatial members with a non-degenerate MBR.
        let mbr = prep.comp_mbr(prep.comp(F)).unwrap();
        assert!(mbr.width() > 0.0 && mbr.height() > 0.0);
        // Queries still behave: a reaches R, and k now reaches d's component.
        assert!(prep.range_reach_bfs(A, &query_region()));
        assert!(prep.range_reach_bfs(K, &Rect::new(1.0, 1.0, 3.0, 3.0)), "k -> c -> d/i -> f");
    }
}
