//! Spatial-tile partitioning and the sharded scatter-gather index.
//!
//! A [`GeosocialNetwork`] is split into `N` tiles by STR-style recursive
//! cuts: at every level the current point set's bounding rectangle is cut
//! across its *longest* dimension at the point-count median, so tiles are
//! balanced by check-in count rather than by area. Every tile keeps the
//! **full graph topology** but only its own tile's points, and an
//! independent [`RangeReachIndex`] (any of the six methods) is built per
//! tile. [`ShardedIndex`] then routes `RangeReach(G, v, R)` to the shards
//! whose MBR intersects `R` and short-circuits on the first `TRUE`.
//!
//! ## Soundness of MBR pruning
//!
//! `RangeReach(G, v, R)` is true iff `v` reaches some vertex whose point
//! lies in `R`. The tiles partition the spatial vertices, so
//!
//! ```text
//! RangeReach(G, v, R)  ==  OR over shards s of RangeReach(G_s, v, R)
//! ```
//!
//! where `G_s` is the full graph with only shard `s`'s points. A shard
//! whose MBR does not intersect `R` contains no point inside `R`, hence
//! contributes `false` and can be skipped without being consulted; and
//! because `OR` is commutative, stopping at the first `true` (cooperative
//! cancellation of the remaining siblings) cannot change the answer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gsr_geo::{Point, Rect};
use gsr_graph::VertexId;

use crate::error::GsrError;
use crate::hist::LatencyHistogram;
use crate::network::{GeosocialNetwork, NetworkError};
use crate::traits::{QueryCost, RangeReachIndex, ShardStats};
use crate::{BatchExecutor, BatchQuery};

/// One spatial tile of a partitioned network: the spatial vertices assigned
/// to it and their minimum bounding rectangle (`None` for an empty tile).
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    /// Spatial vertices assigned to this tile.
    pub vertices: Vec<VertexId>,
    /// MBR of the assigned points; `None` when the tile is empty.
    pub mbr: Option<Rect>,
}

/// Splits the spatial vertices of `net` into `shards` tiles balanced by
/// point count (STR-style longest-dimension median cuts).
///
/// The result is deterministic: ties on a coordinate are broken by vertex
/// id, and the recursion shape depends only on the point multiset. Tiles
/// may be empty when the network has fewer spatial vertices than `shards`.
pub fn partition_tiles(net: &GeosocialNetwork, shards: usize) -> Vec<Tile> {
    let shards = shards.max(1);
    let mut items: Vec<(VertexId, Point)> = net.spatial_vertices().collect();
    items.sort_unstable_by_key(|&(v, _)| v);
    let mut tiles = Vec::with_capacity(shards);
    split(&mut items, shards, &mut tiles);
    tiles
}

fn split(items: &mut [(VertexId, Point)], k: usize, out: &mut Vec<Tile>) {
    if k <= 1 {
        out.push(Tile {
            mbr: Rect::mbr_of(items.iter().map(|&(_, p)| p)),
            vertices: items.iter().map(|&(v, _)| v).collect(),
        });
        return;
    }
    // Cut the longest dimension of the current MBR at the point-count
    // median so both halves carry (k_left : k_right)-proportional shares.
    let cut_x = match Rect::mbr_of(items.iter().map(|&(_, p)| p)) {
        Some(r) => r.width() >= r.height(),
        None => true,
    };
    if cut_x {
        items.sort_unstable_by(|a, b| a.1.x.total_cmp(&b.1.x).then(a.0.cmp(&b.0)));
    } else {
        items.sort_unstable_by(|a, b| a.1.y.total_cmp(&b.1.y).then(a.0.cmp(&b.0)));
    }
    let k_left = k / 2;
    let cut = items.len() * k_left / k;
    let (left, right) = items.split_at_mut(cut);
    split(left, k_left, out);
    split(right, k - k_left, out);
}

/// Builds the shard network for one tile: the **full** graph topology of
/// `net` with only the tile's points attached. Reachability over the whole
/// graph is preserved; only the spatial targets are restricted to the tile.
pub fn tile_network(net: &GeosocialNetwork, tile: &Tile) -> Result<GeosocialNetwork, NetworkError> {
    let mut points: Vec<Option<Point>> = vec![None; net.num_vertices()];
    for &v in &tile.vertices {
        points[v as usize] = net.point(v);
    }
    GeosocialNetwork::new(net.graph().clone(), points)
}

/// One member of a [`ShardedIndex`]: an independently built index over one
/// tile plus the tile's MBR used for routing.
#[derive(Clone)]
pub struct ShardMember {
    /// The per-tile index (any of the six methods).
    pub index: Arc<dyn RangeReachIndex>,
    /// MBR of the tile's points; `None` for an empty tile, which is never
    /// probed.
    pub mbr: Option<Rect>,
}

/// A router over `N` per-tile indexes with MBR-pruned scatter-gather
/// routing.
///
/// Queries fan out **only** to shards whose MBR intersects the query
/// rectangle, in shard-id order, and stop at the first `TRUE`
/// (short-circuit). The router keeps lock-free routing counters —
/// probes issued, shards pruned — and a per-shard probe-latency
/// histogram, surfaced through [`RangeReachIndex::shard_stats`].
pub struct ShardedIndex {
    shards: Vec<ShardMember>,
    num_vertices: usize,
    probes: AtomicU64,
    pruned: AtomicU64,
    probe_hists: Vec<LatencyHistogram>,
}

impl std::fmt::Debug for ShardMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardMember")
            .field("index", &self.index.name())
            .field("mbr", &self.mbr)
            .finish()
    }
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("shards", &self.shards)
            .field("num_vertices", &self.num_vertices)
            .field("probes", &self.probes)
            .field("pruned", &self.pruned)
            .finish()
    }
}

impl ShardedIndex {
    /// Assembles a router over `shards`. Fails with [`GsrError::Load`] when
    /// the set is empty or the members disagree on the vertex-id space.
    pub fn new(shards: Vec<ShardMember>) -> Result<Self, GsrError> {
        let first = shards
            .first()
            .ok_or_else(|| GsrError::Load("sharded index: empty shard set".into()))?;
        let num_vertices = first.index.num_vertices();
        for (i, s) in shards.iter().enumerate() {
            if s.index.num_vertices() != num_vertices {
                return Err(GsrError::Load(format!(
                    "sharded index: shard {i} has {} vertices, shard 0 has {num_vertices}",
                    s.index.num_vertices()
                )));
            }
        }
        let probe_hists = shards.iter().map(|_| LatencyHistogram::default()).collect();
        Ok(ShardedIndex {
            shards,
            num_vertices,
            probes: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            probe_hists,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard members, in routing order.
    pub fn members(&self) -> &[ShardMember] {
        &self.shards
    }

    /// Probes issued so far (shards actually consulted).
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Shards skipped by the MBR intersection test so far.
    pub fn pruned(&self) -> u64 {
        self.pruned.load(Ordering::Relaxed)
    }

    /// Routes a whole batch through the shard set on `exec`, returning
    /// answers in input order.
    ///
    /// The batch is scattered shard-major: for each shard in id order, the
    /// still-unanswered queries whose rectangle intersects the shard's MBR
    /// form a sub-batch executed on `exec`'s worker pool. A query answered
    /// `TRUE` at shard `k` is dropped from every later sub-batch — that
    /// drop *is* the cooperative cancellation of its in-flight siblings —
    /// and `OR`'s commutativity keeps the result identical to probing all
    /// shards. Queries that intersect no MBR answer `FALSE` without a
    /// single probe.
    pub fn scatter(&self, exec: &BatchExecutor, queries: &[BatchQuery]) -> Vec<bool> {
        let mut answers = vec![false; queries.len()];
        let mut open: Vec<usize> = (0..queries.len()).collect();
        for (s, shard) in self.shards.iter().enumerate() {
            if open.is_empty() {
                break;
            }
            let mut sub: Vec<BatchQuery> = Vec::new();
            let mut sub_ids: Vec<usize> = Vec::new();
            let mut still_open: Vec<usize> = Vec::new();
            for &qi in &open {
                if shard.mbr.is_some_and(|m| m.intersects(&queries[qi].1)) {
                    sub.push(queries[qi]);
                    sub_ids.push(qi);
                } else {
                    self.pruned.fetch_add(1, Ordering::Relaxed);
                    still_open.push(qi);
                }
            }
            if !sub.is_empty() {
                self.probes.fetch_add(sub.len() as u64, Ordering::Relaxed);
                let start = Instant::now();
                let hits = exec.run(shard.index.as_ref(), &sub);
                self.probe_hists[s].record_us(elapsed_us(start));
                for (j, &qi) in sub_ids.iter().enumerate() {
                    if hits[j] {
                        answers[qi] = true;
                    } else {
                        still_open.push(qi);
                    }
                }
                still_open.sort_unstable();
            }
            open = still_open;
        }
        answers
    }

    fn route(&self, region: &Rect, mut probe: impl FnMut(usize, &ShardMember) -> bool) -> bool {
        for (i, shard) in self.shards.iter().enumerate() {
            if !shard.mbr.is_some_and(|m| m.intersects(region)) {
                self.pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.probes.fetch_add(1, Ordering::Relaxed);
            let start = Instant::now();
            let hit = probe(i, shard);
            self.probe_hists[i].record_us(elapsed_us(start));
            if hit {
                return true;
            }
        }
        false
    }
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

impl RangeReachIndex for ShardedIndex {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn query_unchecked(&self, v: VertexId, region: &Rect) -> bool {
        self.route(region, |_, shard| shard.index.query_unchecked(v, region))
    }

    fn query_with_cost_unchecked(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        let mut total = QueryCost::default();
        let hit = self.route(region, |_, shard| {
            let (hit, cost) = shard.index.query_with_cost_unchecked(v, region);
            total.accumulate(&cost);
            hit
        });
        (hit, total)
    }

    fn index_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.index.index_bytes()).sum()
    }

    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn shard_stats(&self) -> Option<ShardStats> {
        Some(ShardStats {
            shards: self.shards.len() as u64,
            probes: self.probes.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            probe_p99_us: self.probe_hists.iter().map(|h| h.quantile_us(0.99)).collect(),
        })
    }

    fn reset_shard_stats(&self) {
        self.probes.store(0, Ordering::Relaxed);
        self.pruned.store(0, Ordering::Relaxed);
        for h in &self.probe_hists {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::ThreeDReach;
    use crate::{PreparedNetwork, SccSpatialPolicy};
    use gsr_graph::GraphBuilder;

    fn grid_network(n: usize) -> GeosocialNetwork {
        // n*n spatial vertices on an integer grid, a chain of edges so
        // vertex 0 reaches everything.
        let mut g = GraphBuilder::new(n * n);
        for v in 1..n * n {
            g.add_edge((v - 1) as VertexId, v as VertexId);
        }
        let points = (0..n * n)
            .map(|v| Some(Point::new((v % n) as f64, (v / n) as f64)))
            .collect();
        GeosocialNetwork::new(g.build(), points).expect("grid network is valid")
    }

    fn build_sharded(net: &GeosocialNetwork, shards: usize) -> ShardedIndex {
        let members = partition_tiles(net, shards)
            .iter()
            .map(|tile| {
                let sub = tile_network(net, tile).expect("tile network is valid");
                let prep = PreparedNetwork::new(sub);
                ShardMember {
                    index: Arc::new(ThreeDReach::build(&prep, SccSpatialPolicy::Replicate)),
                    mbr: tile.mbr,
                }
            })
            .collect();
        ShardedIndex::new(members).expect("shard set is valid")
    }

    #[test]
    fn tiles_partition_the_spatial_vertices_and_balance_counts() {
        let net = grid_network(8); // 64 points
        for shards in [1, 2, 3, 4, 8] {
            let tiles = partition_tiles(&net, shards);
            assert_eq!(tiles.len(), shards);
            let mut seen: Vec<VertexId> = tiles.iter().flat_map(|t| t.vertices.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..64).collect::<Vec<_>>(), "tiles must partition");
            let max = tiles.iter().map(|t| t.vertices.len()).max().unwrap();
            let min = tiles.iter().map(|t| t.vertices.len()).min().unwrap();
            assert!(max - min <= 1, "{shards} shards: sizes {min}..{max} not balanced");
            for t in &tiles {
                let mbr = t.mbr.expect("non-empty tile has an MBR");
                for &v in &t.vertices {
                    assert!(mbr.contains_point(&net.point(v).unwrap()));
                }
            }
        }
    }

    #[test]
    fn partitioning_is_deterministic() {
        let net = grid_network(6);
        assert_eq!(partition_tiles(&net, 4), partition_tiles(&net, 4));
    }

    #[test]
    fn sharded_matches_single_index_and_prunes() {
        let net = grid_network(6);
        let prep = PreparedNetwork::new(net.clone());
        let oracle = ThreeDReach::build(&prep, SccSpatialPolicy::Replicate);
        let sharded = build_sharded(&net, 4);
        let rects = [
            Rect::new(0.0, 0.0, 5.0, 5.0),
            Rect::new(2.0, 2.0, 3.0, 3.0),
            Rect::new(0.0, 0.0, 0.5, 0.5),
            Rect::new(4.5, 4.5, 5.0, 5.0),
        ];
        for v in 0..36 {
            for r in &rects {
                assert_eq!(sharded.query(v, r), oracle.query(v, r), "v={v} r={r:?}");
            }
        }
        let stats = sharded.shard_stats().expect("router reports shard stats");
        assert_eq!(stats.shards, 4);
        assert!(stats.probes > 0);
        assert!(stats.pruned > 0, "small rects must prune some shards");
    }

    #[test]
    fn rect_outside_every_mbr_answers_false_with_zero_probes() {
        let net = grid_network(4);
        let sharded = build_sharded(&net, 4);
        let far = Rect::new(100.0, 100.0, 101.0, 101.0);
        assert!(!sharded.query(0, &far));
        let stats = sharded.shard_stats().expect("router reports shard stats");
        assert_eq!(stats.probes, 0, "no shard may be consulted");
        assert_eq!(stats.pruned, 4, "all shards must be pruned");
    }

    #[test]
    fn scatter_agrees_with_per_query_routing_and_reset_zeroes_counters() {
        let net = grid_network(6);
        let sharded = build_sharded(&net, 4);
        let queries: Vec<BatchQuery> = (0..36)
            .map(|v| (v, Rect::new((v % 6) as f64, 0.0, (v % 6) as f64 + 1.5, 5.0)))
            .collect();
        let exec = BatchExecutor::new(1);
        let batch = sharded.scatter(&exec, &queries);
        let single: Vec<bool> = queries.iter().map(|(v, r)| sharded.query(*v, r)).collect();
        assert_eq!(batch, single);
        sharded.reset_shard_stats();
        let stats = sharded.shard_stats().expect("router reports shard stats");
        assert_eq!((stats.probes, stats.pruned), (0, 0));
        assert!(stats.probe_p99_us.iter().all(|&p| p == 0));
    }
}
