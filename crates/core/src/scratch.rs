//! Reusable per-thread query buffers — the zero-allocation kernel support.
//!
//! Every `RangeReach` method needs a handful of transient buffers while
//! answering a query: an R-tree traversal stack, a candidate list, a
//! visited set for graph traversal. Allocating them per query dominates
//! the allocator profile of the hot path (the paper's queries run in
//! microseconds, so even a single `malloc` is measurable). This module
//! owns those buffers in one [`QueryScratch`] value stored in a
//! thread-local slot: a query *takes* the scratch, runs with exclusive
//! access, and *puts it back* grown — so in steady state every buffer has
//! reached its high-water capacity and queries allocate nothing.
//!
//! ## Ownership model
//!
//! [`with_scratch`] moves the boxed scratch out of the thread-local
//! `Cell` for the duration of the closure and restores it afterwards.
//! Compared to a `RefCell`, the take/put protocol makes *re-entrancy*
//! safe instead of a panic: if a query kernel somehow calls back into
//! another kernel (e.g. `FallbackIndex` degrading to `OnlineReach`), the
//! inner call finds the slot empty and falls back to a fresh scratch —
//! correct, merely not allocation-free. Kernels therefore acquire the
//! scratch exactly once, at the outermost `query_*_unchecked` entry
//! point; wrapper indexes (fallback, caches) never acquire it themselves.
//!
//! The visited set is an epoch-stamped `Vec<u32>` rather than a
//! `Vec<bool>`: clearing it between queries is a single epoch increment,
//! not an `O(n)` memset. On epoch wrap-around (once per `u32::MAX`
//! queries) the array is re-zeroed.

use gsr_geo::Aabb;
use gsr_graph::scc::CompId;
use gsr_graph::VertexId;
use std::cell::Cell;
use std::collections::VecDeque;

/// Reusable buffers for one in-flight `RangeReach` query.
///
/// Obtain one through [`with_scratch`]; the struct is public so that
/// kernels can borrow-split disjoint fields (`let QueryScratch { stack,
/// comps, .. } = scratch;`).
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// R-tree traversal stack (node ids), lent to
    /// `RTree::query_with`/`query_exists_with`.
    pub stack: Vec<u32>,
    /// Spatial candidate components (SpaReach point filter).
    pub comps: Vec<CompId>,
    /// Spatial candidate boxes (SpaReach MBR filter).
    pub boxes: Vec<(Aabb<2>, CompId)>,
    /// BFS frontier (GeoReach, online BFS fallback).
    pub queue: VecDeque<VertexId>,
    /// Epoch-stamped visited set; use via [`QueryScratch::begin_visit`],
    /// [`QueryScratch::mark`], [`QueryScratch::is_marked`].
    visited: Vec<u32>,
    epoch: u32,
}

impl QueryScratch {
    /// Prepares the visited set for a traversal over `n` vertices and
    /// clears the frontier buffers. Candidate buffers (`comps`, `boxes`)
    /// are left to the kernel to clear, since not every kernel uses them.
    pub fn begin_visit(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visited.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Marks `v` visited; returns `true` if it was not already marked
    /// this traversal.
    #[inline]
    pub fn mark(&mut self, v: VertexId) -> bool {
        let slot = &mut self.visited[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether `v` has been marked during the current traversal.
    #[inline]
    pub fn is_marked(&self, v: VertexId) -> bool {
        self.visited[v as usize] == self.epoch
    }
}

thread_local! {
    static SCRATCH: Cell<Option<Box<QueryScratch>>> = const { Cell::new(None) };
}

/// Runs `f` with this thread's [`QueryScratch`], creating it on first
/// use. Re-entrant calls receive a fresh (allocating) scratch instead of
/// panicking; see the module docs for the ownership model.
pub fn with_scratch<R>(f: impl FnOnce(&mut QueryScratch) -> R) -> R {
    SCRATCH.with(|slot| {
        let mut scratch = slot.take().unwrap_or_default();
        let out = f(&mut scratch);
        slot.set(Some(scratch));
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_visit_cycle() {
        let mut s = QueryScratch::default();
        s.begin_visit(4);
        assert!(s.mark(2));
        assert!(!s.mark(2));
        assert!(s.is_marked(2));
        assert!(!s.is_marked(3));
        // A new traversal forgets everything without touching memory.
        s.begin_visit(4);
        assert!(!s.is_marked(2));
        assert!(s.mark(2));
    }

    #[test]
    fn visited_grows_to_largest_request() {
        let mut s = QueryScratch::default();
        s.begin_visit(2);
        s.mark(1);
        s.begin_visit(10);
        assert!(!s.is_marked(1));
        assert!(s.mark(9));
    }

    #[test]
    fn epoch_wraparound_rezeros() {
        let mut s = QueryScratch::default();
        s.begin_visit(3);
        s.mark(0);
        s.epoch = u32::MAX; // pretend u32::MAX - 1 traversals happened
        s.begin_visit(3);
        assert_eq!(s.epoch, 1);
        assert!(!s.is_marked(0));
        assert!(s.mark(0));
    }

    #[test]
    fn thread_local_reuses_one_allocation() {
        let first = with_scratch(|s| {
            s.stack.reserve(64);
            s.stack.as_ptr() as usize
        });
        let second = with_scratch(|s| s.stack.as_ptr() as usize);
        assert_eq!(first, second, "scratch must be reused across calls");
    }

    #[test]
    fn reentrant_use_is_safe() {
        with_scratch(|outer| {
            outer.begin_visit(8);
            outer.mark(1);
            // A nested acquisition gets an independent scratch.
            with_scratch(|inner| {
                inner.begin_visit(8);
                assert!(!inner.is_marked(1));
            });
            assert!(outer.is_marked(1));
        });
    }
}
