//! The common interface of all RangeReach evaluation methods.

use crate::error::{validate_query, GsrError};
use gsr_geo::Rect;
use gsr_graph::VertexId;

/// How the spatial information of a strongly connected component with
/// spatial members is modeled (Section 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SccSpatialPolicy {
    /// Replace the super-vertex by its spatial members, replicating the
    /// component's reachability information onto each member point. Indexes
    /// stay point-based. This is the non-MBR variant, which the paper's
    /// Figure 5 finds uniformly faster; it is the default.
    #[default]
    Replicate,
    /// Give the super-vertex the minimum bounding rectangle of its members'
    /// points as its spatial geometry. Indexes store one rectangle/box per
    /// spatial component; answers stay exact because partially overlapping
    /// candidates are refined against the actual member points.
    Mbr,
}

impl SccSpatialPolicy {
    /// Short label used in tables ("" for the default, "(MBR)" otherwise).
    pub fn suffix(&self) -> &'static str {
        match self {
            SccSpatialPolicy::Replicate => "",
            SccSpatialPolicy::Mbr => " (MBR)",
        }
    }
}

/// Work counters collected by [`RangeReachIndex::query_with_cost`]. Each
/// method fills the counters that describe *its* work, so the numbers
/// explain the performance trends of Section 6.4 (e.g. SpaReach's candidate
/// count grows with the region extent, GeoReach's traversal shrinks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCost {
    /// Spatial candidates produced by the first phase (SpaReach: range
    /// query results; 3DReach: entries inside the query cuboids).
    pub spatial_candidates: usize,
    /// Graph-reachability (`GReach`) tests issued (SpaReach).
    pub reach_tests: usize,
    /// Graph/DAG vertices visited by a traversal or descendant scan
    /// (GeoReach: BFS pops; SocReach: post-order numbers scanned).
    pub vertices_visited: usize,
    /// Point-in-rectangle containment tests performed.
    pub containment_tests: usize,
    /// Multidimensional range queries issued (3DReach: one per label;
    /// 3DReach-REV: always one).
    pub range_queries: usize,
}

impl QueryCost {
    /// Accumulates another cost into `self` (used to average workloads).
    pub fn accumulate(&mut self, other: &QueryCost) {
        self.spatial_candidates += other.spatial_candidates;
        self.reach_tests += other.reach_tests;
        self.vertices_visited += other.vertices_visited;
        self.containment_tests += other.containment_tests;
        self.range_queries += other.range_queries;
    }
}

/// Point-in-time routing counters of a sharded scatter-gather index
/// ([`crate::partition::ShardedIndex`]), surfaced through
/// [`RangeReachIndex::shard_stats`] so callers holding a
/// `dyn RangeReachIndex` (e.g. the query server's `STATS` handler) can
/// report routing effectiveness without downcasting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Number of shards behind the router.
    pub shards: u64,
    /// Shard probes actually executed (post MBR pruning, pre
    /// short-circuit).
    pub probes: u64,
    /// Shard probes skipped because the shard MBR missed the query rect.
    pub pruned: u64,
    /// Per-shard 99th-percentile probe latency in microseconds, in shard
    /// order.
    pub probe_p99_us: Vec<u64>,
}

/// An evaluation method for `RangeReach(G, v, R)` queries (Problem 1).
///
/// Implementations are built once from a [`crate::PreparedNetwork`] and then
/// answer arbitrarily many queries. Reachability is reflexive: a query
/// vertex whose own point lies inside `R` yields `true`.
///
/// Indexes are immutable after construction, so the trait requires
/// `Send + Sync` and a shared reference can serve queries from many
/// threads concurrently (see the harness's parallel driver).
///
/// ## Checked and unchecked entry points
///
/// Implementors provide the *raw* evaluation,
/// [`RangeReachIndex::query_unchecked`], whose contract assumes validated
/// input (`v < num_vertices`, finite non-inverted `region`) and may panic
/// or index out of bounds otherwise. Callers holding untrusted input use
/// the provided [`RangeReachIndex::try_query`] /
/// [`RangeReachIndex::try_query_with_cost`], which validate first and
/// surface [`GsrError::InvalidVertex`] / [`GsrError::InvalidRect`] instead
/// of panicking. The infallible [`RangeReachIndex::query`] is a validated
/// wrapper that panics with a descriptive message on invalid input —
/// never with a raw index-out-of-bounds.
pub trait RangeReachIndex: Send + Sync {
    /// Number of vertices of the indexed network; valid query ids are
    /// `0..num_vertices`.
    fn num_vertices(&self) -> usize;

    /// Evaluates `RangeReach(G, v, region)` without validating the input:
    /// can `v` reach a vertex whose point lies inside `region`?
    ///
    /// The caller must guarantee `v < self.num_vertices()` and a finite,
    /// non-inverted `region`; violations may panic.
    fn query_unchecked(&self, v: VertexId, region: &Rect) -> bool;

    /// Like [`RangeReachIndex::query_unchecked`], additionally returning
    /// the work counters of this query. The default implementation reports
    /// empty counters.
    fn query_with_cost_unchecked(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        (self.query_unchecked(v, region), QueryCost::default())
    }

    /// Validated evaluation: rejects out-of-range vertices and non-finite
    /// or inverted rectangles with a typed error instead of panicking.
    fn try_query(&self, v: VertexId, region: &Rect) -> Result<bool, GsrError> {
        validate_query(self.num_vertices(), v, region)?;
        Ok(self.query_unchecked(v, region))
    }

    /// Validated evaluation with work counters.
    fn try_query_with_cost(&self, v: VertexId, region: &Rect) -> Result<(bool, QueryCost), GsrError> {
        validate_query(self.num_vertices(), v, region)?;
        Ok(self.query_with_cost_unchecked(v, region))
    }

    /// Evaluates `RangeReach(G, v, region)`, panicking with a descriptive
    /// message when the input is invalid. Prefer
    /// [`RangeReachIndex::try_query`] on untrusted input.
    fn query(&self, v: VertexId, region: &Rect) -> bool {
        match self.try_query(v, region) {
            Ok(answer) => answer,
            Err(e) => panic!("{}: {e}", self.name()),
        }
    }

    /// Like [`RangeReachIndex::query`], additionally returning the work
    /// counters of this query.
    fn query_with_cost(&self, v: VertexId, region: &Rect) -> (bool, QueryCost) {
        match self.try_query_with_cost(v, region) {
            Ok(result) => result,
            Err(e) => panic!("{}: {e}", self.name()),
        }
    }

    /// Approximate heap footprint of the index structures in bytes —
    /// the "index size" column of Table 4.
    fn index_bytes(&self) -> usize;

    /// Display name, e.g. `"3DReach"` or `"SpaReach-BFL"`.
    fn name(&self) -> &'static str;

    /// Routing counters when `self` is a sharded scatter-gather router;
    /// `None` (the default) for ordinary single indexes.
    fn shard_stats(&self) -> Option<ShardStats> {
        None
    }

    /// Zeroes the routing counters reported by
    /// [`RangeReachIndex::shard_stats`]; a no-op (the default) for
    /// ordinary single indexes. Wired to the server's `RESET` verb.
    fn reset_shard_stats(&self) {}
}
