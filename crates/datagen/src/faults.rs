//! Fault injection for the loader: a reader that fails mid-stream, a
//! writer that fails mid-save, and a corpus of malformed network files.
//!
//! Robust loading is a testable property: every entry in
//! [`malformed_corpus`] must come back from [`crate::io::read_network`] as a
//! typed [`LoadError`](crate::io::LoadError) — never a panic, never a bogus
//! network — and [`FailingReader`] checks that I/O failures surfacing
//! mid-parse map to [`LoadError::Io`](crate::io::LoadError) at any cut point.
//! [`FailingWriter`] is the mirror image for persistence paths: a snapshot
//! save interrupted at a byte-exact position must surface a typed error
//! and leave any previously saved file intact. The corpus is used by the
//! integration suite and by the CI fault job.

use std::io::{self, Read, Write};

/// Wraps a reader and injects an [`io::Error`] once `budget` bytes have
/// been served — simulating a connection dropped or a file truncated
/// mid-transfer at a byte-exact position.
///
/// End-of-input inside the budget is reported normally; the fault fires
/// only when the consumer asks for bytes *past* the budget.
#[derive(Debug)]
pub struct FailingReader<R> {
    inner: R,
    remaining: usize,
}

impl<R: Read> FailingReader<R> {
    /// Serves at most `budget` bytes from `inner`, then fails.
    pub fn new(inner: R, budget: usize) -> Self {
        FailingReader { inner, remaining: budget }
    }
}

impl<R: Read> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected i/o fault"));
        }
        let want = buf.len().min(self.remaining);
        let got = self.inner.read(&mut buf[..want])?;
        self.remaining -= got;
        Ok(got)
    }
}

/// Wraps a writer and injects an [`io::Error`] once `budget` bytes have
/// been accepted — simulating a disk filling up or a process killed
/// mid-save at a byte-exact position.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    remaining: usize,
}

impl<W: Write> FailingWriter<W> {
    /// Accepts at most `budget` bytes into `inner`, then fails.
    pub fn new(inner: W, budget: usize) -> Self {
        FailingWriter { inner, remaining: budget }
    }

    /// The wrapped writer (to inspect what made it through).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::new(io::ErrorKind::WriteZero, "injected i/o fault"));
        }
        let want = buf.len().min(self.remaining);
        let accepted = self.inner.write(&buf[..want])?;
        self.remaining -= accepted;
        Ok(accepted)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Which [`LoadError`](crate::io::LoadError) variant a malformed input must
/// produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedFailure {
    /// A structural error: `LoadError::Parse` with a line number.
    Parse,
    /// Parses structurally but fails network validation:
    /// `LoadError::Network`.
    Network,
}

/// One malformed input and the failure it must produce.
#[derive(Debug, Clone, Copy)]
pub struct MalformedCase {
    /// Short identifier, printed on failure.
    pub name: &'static str,
    /// The file content.
    pub text: &'static str,
    /// The required loader reaction.
    pub expected: ExpectedFailure,
}

/// The corpus of malformed network files. Every case must be rejected by
/// [`crate::io::read_network`] with the expected [`LoadError`](crate::io::LoadError)
/// variant; none may panic or load.
pub fn malformed_corpus() -> Vec<MalformedCase> {
    use ExpectedFailure::{Network, Parse};
    let case = |name, text, expected| MalformedCase { name, text, expected };
    vec![
        case("truncated-edge", "V 3\nE 0\n", Parse),
        case("truncated-point", "V 3\nP 1 2.0\n", Parse),
        case("duplicate-point", "V 3\nP 1 0 0\nP 1 1 1\n", Parse),
        case("edge-id-over-declared", "V 2\nE 0 5\n", Parse),
        case("point-id-over-declared", "V 2\nP 7 0 0\n", Parse),
        case("nan-coordinate", "V 2\nP 1 NaN 0\n", Network),
        case("inf-coordinate", "V 2\nP 1 inf 0\n", Network),
        case("edge-id-over-limit", "E 4000000000 0\n", Parse),
        case("declared-count-over-limit", "V 99999999999\n", Parse),
        case("non-numeric-count", "V lots\n", Parse),
        case("duplicate-v", "V 2\nV 2\n", Parse),
        case("late-v-underdeclared", "E 0 9\nV 3\n", Parse),
        case("unknown-tag", "Q 1 2\n", Parse),
        case("negative-id", "E -1 0\n", Parse),
        case("trailing-fields", "E 0 1 junk\n", Parse),
        case("non-numeric-coordinate", "V 2\nP 1 here there\n", Parse),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_network, write_network, LoadError};
    use crate::NetworkSpec;

    #[test]
    fn corpus_cases_are_rejected_with_the_expected_variant() {
        for case in malformed_corpus() {
            match (read_network(case.text.as_bytes()), case.expected) {
                (Err(LoadError::Parse { .. }), ExpectedFailure::Parse) => {}
                (Err(LoadError::Network(_)), ExpectedFailure::Network) => {}
                (outcome, expected) => panic!(
                    "case {:?}: expected {:?}, got {:?}",
                    case.name,
                    expected,
                    outcome.map(|n| n.num_vertices())
                ),
            }
        }
    }

    #[test]
    fn failing_reader_maps_to_io_error_at_any_cut_point() {
        let mut text = Vec::new();
        write_network(&NetworkSpec::weeplaces(0.02).generate(), &mut text).unwrap();
        // Cut the stream at a spread of byte positions, including ones
        // that land mid-line; the loader must report Io every time.
        for budget in [0, 1, 7, text.len() / 2, text.len() - 1] {
            let reader = FailingReader::new(text.as_slice(), budget);
            match read_network(reader) {
                Err(LoadError::Io(_)) => {}
                other => panic!(
                    "budget {budget}: expected Io, got {:?}",
                    other.map(|n| n.num_vertices())
                ),
            }
        }
    }

    #[test]
    fn failing_writer_fails_exactly_past_its_budget() {
        let mut w = FailingWriter::new(Vec::new(), 5);
        assert_eq!(w.write(b"abc").unwrap(), 3);
        assert_eq!(w.write(b"defg").unwrap(), 2, "clipped to the remaining budget");
        let e = w.write(b"h").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::WriteZero);
        assert_eq!(w.into_inner(), b"abcde");

        // write_all surfaces the injected fault as an error, never a hang.
        let mut w = FailingWriter::new(Vec::new(), 4);
        assert!(w.write_all(b"0123456789").is_err());
    }

    #[test]
    fn failing_reader_with_full_budget_is_transparent() {
        let mut text = Vec::new();
        let net = NetworkSpec::weeplaces(0.02).generate();
        write_network(&net, &mut text).unwrap();
        // One spare byte so the final EOF probe stays inside the budget.
        let reader = FailingReader::new(text.as_slice(), text.len() + 1);
        let loaded = read_network(reader).unwrap();
        assert_eq!(loaded.num_vertices(), net.num_vertices());
        assert_eq!(loaded.graph().num_edges(), net.graph().num_edges());
    }
}
