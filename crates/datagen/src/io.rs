//! A simple text format for geosocial networks, so the synthetic analogs
//! can be swapped for real datasets (Foursquare/Gowalla/WeePlaces/Yelp
//! dumps) without code changes.
//!
//! ```text
//! # comments and blank lines are ignored
//! V <num_vertices>
//! P <vertex> <x> <y>     # one per spatial vertex
//! E <source> <target>    # one per directed edge
//! ```

use gsr_core::{GeosocialNetwork, NetworkError};
use gsr_geo::Point;
use gsr_graph::GraphBuilder;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised while reading a network file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        content: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The parsed data failed network validation.
    Network(NetworkError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, content, reason } => {
                write!(f, "malformed line {line} ({reason}): {content:?}")
            }
            LoadError::Network(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Writes `net` in the text format.
pub fn write_network<W: Write>(net: &GeosocialNetwork, out: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "# gsr geosocial network v1")?;
    writeln!(w, "V {}", net.num_vertices())?;
    for (v, p) in net.spatial_vertices() {
        writeln!(w, "P {} {} {}", v, p.x, p.y)?;
    }
    for (u, v) in net.graph().edges() {
        writeln!(w, "E {u} {v}")?;
    }
    w.flush()
}

/// Saves `net` to a file.
pub fn save_network(net: &GeosocialNetwork, path: &Path) -> std::io::Result<()> {
    write_network(net, std::fs::File::create(path)?)
}

/// Default hard cap on vertex ids when the file declares no `V` line:
/// 2^26 vertices (≈ 67 M), comfortably above the paper's largest dataset
/// yet small enough that a corrupt id cannot ask for terabytes of memory.
pub const DEFAULT_MAX_VERTICES: u32 = 1 << 26;

/// Limits applied while parsing a network file — the defense against a
/// corrupt or hostile input allocating unbounded memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadLimits {
    /// Hard cap on the declared vertex count and on every vertex id.
    /// When the file declares `V n`, ids must additionally be `< n`.
    pub max_vertices: u32,
}

impl Default for LoadLimits {
    fn default() -> Self {
        LoadLimits { max_vertices: DEFAULT_MAX_VERTICES }
    }
}

/// Reads a network from the text format with [`LoadLimits::default`].
pub fn read_network<R: Read>(input: R) -> Result<GeosocialNetwork, LoadError> {
    read_network_with(input, LoadLimits::default())
}

/// Parses one whitespace-separated field as a vertex id under `cap`.
fn parse_id(field: Option<&str>, cap: u32) -> Result<u32, String> {
    let s = field.ok_or_else(|| "missing vertex id".to_string())?;
    let n: u64 = s.parse().map_err(|_| format!("expected an integer id, got {s:?}"))?;
    if n >= cap as u64 {
        return Err(format!("vertex id {n} out of range (must be < {cap})"));
    }
    Ok(n as u32)
}

/// Parses one whitespace-separated field as a coordinate.
fn parse_coord(field: Option<&str>) -> Result<f64, String> {
    let s = field.ok_or_else(|| "missing coordinate".to_string())?;
    s.parse().map_err(|_| format!("expected a coordinate, got {s:?}"))
}

/// Reads a network from the text format under explicit [`LoadLimits`].
///
/// The parser is hardened against malformed input: every failure is a
/// typed [`LoadError`] carrying the 1-based line number — it never panics
/// and never allocates proportionally to a corrupt id. Rejected inputs
/// include ids at or above the cap (the declared `V` count when present,
/// [`LoadLimits::max_vertices`] otherwise), duplicate `V` lines,
/// duplicate `P` lines for the same vertex, unknown tags, trailing
/// fields, and a late `V` declaration smaller than an already-seen id.
/// Non-finite coordinates parse but fail network validation
/// ([`LoadError::Network`]).
pub fn read_network_with<R: Read>(
    input: R,
    limits: LoadLimits,
) -> Result<GeosocialNetwork, LoadError> {
    let reader = BufReader::new(input);
    let mut builder = GraphBuilder::new(0);
    let mut points: Vec<Option<Point>> = Vec::new();
    let mut declared: Option<u32> = None;
    let mut max_seen: Option<u32> = None;

    let malformed = |line: usize, content: &str, reason: String| LoadError::Parse {
        line,
        content: content.to_string(),
        reason,
    };

    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let cap = declared.unwrap_or(limits.max_vertices);
        let mut fields = trimmed.split_whitespace();
        match fields.next() {
            Some("V") => {
                if declared.is_some() {
                    return Err(malformed(lineno, trimmed, "duplicate V line".to_string()));
                }
                let s = fields
                    .next()
                    .ok_or_else(|| malformed(lineno, trimmed, "missing vertex count".to_string()))?;
                let n: u64 = s.parse().map_err(|_| {
                    malformed(lineno, trimmed, format!("expected a vertex count, got {s:?}"))
                })?;
                if n > gsr_graph::MAX_VERTICES as u64 {
                    return Err(malformed(
                        lineno,
                        trimmed,
                        format!(
                            "declared vertex count {n} exceeds the u32 id width \
                             (max {} vertices); ids are never truncated",
                            gsr_graph::MAX_VERTICES
                        ),
                    ));
                }
                if n > limits.max_vertices as u64 {
                    return Err(malformed(
                        lineno,
                        trimmed,
                        format!(
                            "declared vertex count {n} exceeds the limit of {}",
                            limits.max_vertices
                        ),
                    ));
                }
                let n = n as u32;
                if let Some(m) = max_seen {
                    if m >= n {
                        return Err(malformed(
                            lineno,
                            trimmed,
                            format!("vertex id {m} already seen is out of range for V {n}"),
                        ));
                    }
                }
                declared = Some(n);
            }
            Some("P") => {
                let v = parse_id(fields.next(), cap)
                    .map_err(|reason| malformed(lineno, trimmed, reason))?;
                let x = parse_coord(fields.next())
                    .map_err(|reason| malformed(lineno, trimmed, reason))?;
                let y = parse_coord(fields.next())
                    .map_err(|reason| malformed(lineno, trimmed, reason))?;
                if points.len() <= v as usize {
                    points.resize(v as usize + 1, None);
                }
                if points[v as usize].is_some() {
                    return Err(malformed(
                        lineno,
                        trimmed,
                        format!("duplicate point for vertex {v}"),
                    ));
                }
                points[v as usize] = Some(Point::new(x, y));
                builder.ensure_vertex(v);
                max_seen = Some(max_seen.map_or(v, |m| m.max(v)));
            }
            Some("E") => {
                let u = parse_id(fields.next(), cap)
                    .map_err(|reason| malformed(lineno, trimmed, reason))?;
                let v = parse_id(fields.next(), cap)
                    .map_err(|reason| malformed(lineno, trimmed, reason))?;
                builder.add_edge(u, v);
                max_seen = Some(max_seen.map_or(u.max(v), |m| m.max(u).max(v)));
            }
            Some(tag) => {
                return Err(malformed(lineno, trimmed, format!("unknown tag {tag:?}")));
            }
            None => unreachable!("split_whitespace of a non-empty trimmed line yields a field"),
        }
        if let Some(extra) = fields.next() {
            return Err(malformed(lineno, trimmed, format!("trailing field {extra:?}")));
        }
    }

    let n = declared.unwrap_or(0) as usize;
    let n = n.max(builder.num_vertices()).max(points.len());
    for v in 0..n {
        builder.ensure_vertex(v as u32);
    }
    points.resize(n, None);
    GeosocialNetwork::new(builder.build(), points).map_err(LoadError::Network)
}

/// Loads a network from a file.
pub fn load_network(path: &Path) -> Result<GeosocialNetwork, LoadError> {
    read_network(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkSpec;

    #[test]
    fn round_trip_preserves_everything() {
        let net = NetworkSpec::weeplaces(0.05).generate();
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let loaded = read_network(buf.as_slice()).unwrap();

        assert_eq!(loaded.num_vertices(), net.num_vertices());
        assert_eq!(loaded.graph().num_edges(), net.graph().num_edges());
        assert_eq!(loaded.num_spatial(), net.num_spatial());
        for v in net.graph().vertices() {
            assert_eq!(loaded.point(v), net.point(v), "point of {v}");
            assert_eq!(loaded.graph().out_neighbors(v), net.graph().out_neighbors(v));
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\nV 3\nP 2 1.5 2.5\n  # indented comment\nE 0 1\nE 1 2\n";
        let net = read_network(text.as_bytes()).unwrap();
        assert_eq!(net.num_vertices(), 3);
        assert_eq!(net.graph().num_edges(), 2);
        assert_eq!(net.point(2), Some(Point::new(1.5, 2.5)));
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let text = "V 2\nE 0\n";
        match read_network(text.as_bytes()) {
            Err(LoadError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
        let text2 = "X what\n";
        assert!(matches!(read_network(text2.as_bytes()), Err(LoadError::Parse { line: 1, .. })));
    }

    #[test]
    fn declared_count_caps_ids() {
        // V declares 1 vertex; ids 5 and 9 are out of range.
        let text = "V 1\nP 5 0 0\nE 0 9\n";
        assert!(matches!(read_network(text.as_bytes()), Err(LoadError::Parse { line: 2, .. })));
    }

    #[test]
    fn undeclared_count_grows_to_fit_ids() {
        // Without a V line, ids grow the network (up to the limit).
        let text = "P 5 0 0\nE 0 9\n";
        let net = read_network(text.as_bytes()).unwrap();
        assert_eq!(net.num_vertices(), 10);
        assert!(net.is_spatial(5));
    }

    #[test]
    fn late_v_line_must_cover_seen_ids() {
        let ok = "P 2 0 0\nV 3\n";
        assert_eq!(read_network(ok.as_bytes()).unwrap().num_vertices(), 3);
        let bad = "P 5 0 0\nV 3\n";
        assert!(matches!(read_network(bad.as_bytes()), Err(LoadError::Parse { line: 2, .. })));
    }

    #[test]
    fn custom_limits_cap_undeclared_ids() {
        let text = "E 0 1000\n";
        let tight = LoadLimits { max_vertices: 100 };
        assert!(matches!(
            read_network_with(text.as_bytes(), tight),
            Err(LoadError::Parse { line: 1, .. })
        ));
        assert!(read_network(text.as_bytes()).is_ok(), "default limit admits id 1000");
    }

    #[test]
    fn huge_declared_count_is_rejected_not_allocated() {
        let text = format!("V {}\n", u64::from(DEFAULT_MAX_VERTICES) + 1);
        assert!(matches!(read_network(text.as_bytes()), Err(LoadError::Parse { line: 1, .. })));
    }

    #[test]
    fn over_u32_declared_count_is_a_typed_id_width_error() {
        // A synthetic header declaring V = 2^32 must be rejected with a
        // typed error naming the u32 id width — never silently truncated
        // to 0 vertices. Even an explicitly permissive limit cannot widen
        // the id space past u32.
        for v in [1u64 << 32, (1u64 << 32) + 7, u64::MAX] {
            let text = format!("V {v}\n");
            let permissive = LoadLimits { max_vertices: u32::MAX };
            match read_network_with(text.as_bytes(), permissive) {
                Err(LoadError::Parse { line: 1, reason, .. }) => {
                    assert!(reason.contains("u32 id width"), "reason = {reason:?}");
                }
                other => panic!("expected typed id-width error for V {v}, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_v_and_p_lines_are_rejected() {
        let dup_v = "V 2\nV 3\n";
        assert!(matches!(read_network(dup_v.as_bytes()), Err(LoadError::Parse { line: 2, .. })));
        let dup_p = "V 3\nP 1 0 0\nP 1 2 2\n";
        assert!(matches!(read_network(dup_p.as_bytes()), Err(LoadError::Parse { line: 3, .. })));
    }

    #[test]
    fn trailing_fields_are_rejected() {
        let text = "V 2\nE 0 1 extra\n";
        assert!(matches!(read_network(text.as_bytes()), Err(LoadError::Parse { line: 2, .. })));
    }

    #[test]
    fn non_finite_coordinates_fail_validation() {
        let text = "V 2\nP 1 NaN 0\n";
        assert!(matches!(read_network(text.as_bytes()), Err(LoadError::Network(_))));
        let inf = "V 2\nP 1 inf 0\n";
        assert!(matches!(read_network(inf.as_bytes()), Err(LoadError::Network(_))));
    }

    #[test]
    fn parse_errors_carry_reasons() {
        let text = "V 1\nP 5 0 0\n";
        match read_network(text.as_bytes()) {
            Err(LoadError::Parse { line: 2, reason, .. }) => {
                assert!(reason.contains("out of range"), "reason = {reason:?}");
            }
            other => panic!("expected a parse error with reason, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gsr_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.gsr");
        let net = NetworkSpec::yelp(0.01).generate();
        save_network(&net, &path).unwrap();
        let loaded = load_network(&path).unwrap();
        assert_eq!(loaded.num_vertices(), net.num_vertices());
        assert_eq!(loaded.graph().num_edges(), net.graph().num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }
}
