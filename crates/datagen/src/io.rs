//! A simple text format for geosocial networks, so the synthetic analogs
//! can be swapped for real datasets (Foursquare/Gowalla/WeePlaces/Yelp
//! dumps) without code changes.
//!
//! ```text
//! # comments and blank lines are ignored
//! V <num_vertices>
//! P <vertex> <x> <y>     # one per spatial vertex
//! E <source> <target>    # one per directed edge
//! ```

use gsr_core::{GeosocialNetwork, NetworkError};
use gsr_geo::Point;
use gsr_graph::GraphBuilder;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised while reading a network file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        content: String,
    },
    /// The parsed data failed network validation.
    Network(NetworkError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "malformed line {line}: {content:?}")
            }
            LoadError::Network(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Writes `net` in the text format.
pub fn write_network<W: Write>(net: &GeosocialNetwork, out: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "# gsr geosocial network v1")?;
    writeln!(w, "V {}", net.num_vertices())?;
    for (v, p) in net.spatial_vertices() {
        writeln!(w, "P {} {} {}", v, p.x, p.y)?;
    }
    for (u, v) in net.graph().edges() {
        writeln!(w, "E {u} {v}")?;
    }
    w.flush()
}

/// Saves `net` to a file.
pub fn save_network(net: &GeosocialNetwork, path: &Path) -> std::io::Result<()> {
    write_network(net, std::fs::File::create(path)?)
}

/// Reads a network from the text format.
pub fn read_network<R: Read>(input: R) -> Result<GeosocialNetwork, LoadError> {
    let reader = BufReader::new(input);
    let mut builder = GraphBuilder::new(0);
    let mut points: Vec<Option<Point>> = Vec::new();
    let mut declared = 0usize;

    let malformed = |line: usize, content: &str| LoadError::Parse {
        line,
        content: content.to_string(),
    };

    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        match fields.next() {
            Some("V") => {
                declared = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, trimmed))?;
            }
            Some("P") => {
                let v: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, trimmed))?;
                let x: f64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, trimmed))?;
                let y: f64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, trimmed))?;
                if points.len() <= v as usize {
                    points.resize(v as usize + 1, None);
                }
                points[v as usize] = Some(Point::new(x, y));
                builder.ensure_vertex(v);
            }
            Some("E") => {
                let u: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, trimmed))?;
                let v: u32 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(lineno, trimmed))?;
                builder.add_edge(u, v);
            }
            _ => return Err(malformed(lineno, trimmed)),
        }
    }

    let n = declared.max(builder.num_vertices()).max(points.len());
    for v in 0..n {
        builder.ensure_vertex(v as u32);
    }
    points.resize(n, None);
    GeosocialNetwork::new(builder.build(), points).map_err(LoadError::Network)
}

/// Loads a network from a file.
pub fn load_network(path: &Path) -> Result<GeosocialNetwork, LoadError> {
    read_network(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkSpec;

    #[test]
    fn round_trip_preserves_everything() {
        let net = NetworkSpec::weeplaces(0.05).generate();
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let loaded = read_network(buf.as_slice()).unwrap();

        assert_eq!(loaded.num_vertices(), net.num_vertices());
        assert_eq!(loaded.graph().num_edges(), net.graph().num_edges());
        assert_eq!(loaded.num_spatial(), net.num_spatial());
        for v in net.graph().vertices() {
            assert_eq!(loaded.point(v), net.point(v), "point of {v}");
            assert_eq!(loaded.graph().out_neighbors(v), net.graph().out_neighbors(v));
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\nV 3\nP 2 1.5 2.5\n  # indented comment\nE 0 1\nE 1 2\n";
        let net = read_network(text.as_bytes()).unwrap();
        assert_eq!(net.num_vertices(), 3);
        assert_eq!(net.graph().num_edges(), 2);
        assert_eq!(net.point(2), Some(Point::new(1.5, 2.5)));
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let text = "V 2\nE 0\n";
        match read_network(text.as_bytes()) {
            Err(LoadError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
        let text2 = "X what\n";
        assert!(matches!(read_network(text2.as_bytes()), Err(LoadError::Parse { line: 1, .. })));
    }

    #[test]
    fn vertex_count_grows_to_fit_ids() {
        // V undercounts; ids in P/E lines win.
        let text = "V 1\nP 5 0 0\nE 0 9\n";
        let net = read_network(text.as_bytes()).unwrap();
        assert_eq!(net.num_vertices(), 10);
        assert!(net.is_spatial(5));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gsr_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.gsr");
        let net = NetworkSpec::yelp(0.01).generate();
        save_network(&net, &path).unwrap();
        let loaded = load_network(&path).unwrap();
        assert_eq!(loaded.num_vertices(), net.num_vertices());
        assert_eq!(loaded.graph().num_edges(), net.graph().num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }
}
