//! Synthetic geosocial networks and query workloads.
//!
//! The paper evaluates on four real geosocial networks (Foursquare, Gowalla,
//! WeePlaces, Yelp — Table 3). Those datasets are not redistributable, so
//! this crate synthesizes scaled-down analogs that preserve the properties
//! the evaluation depends on (see DESIGN.md, "Data substitution"):
//!
//! * the **two SCC regimes** — symmetric friendships collapse all users
//!   into one giant SCC (Gowalla/WeePlaces), while directed follows with
//!   partial reciprocation yield many SCCs (Foursquare/Yelp);
//! * the **user/venue/edge ratios** of Table 3 at a configurable scale;
//! * a **clustered spatial distribution** of venues (Gaussian mixture over
//!   "cities") and Zipf-skewed user activity, so both degree buckets and
//!   spatial selectivities span the ranges the paper sweeps.
//!
//! [`workload`] generates the query sets of Section 6.1: query regions by
//! extent, query vertices by out-degree bucket, and regions by spatial
//! selectivity. [`io`] round-trips networks through a simple text format so
//! real datasets can be dropped in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod io;
pub mod networks;
pub mod workload;

pub use networks::{FriendshipStyle, NetworkSpec};
