//! Synthetic geosocial network generation.

use gsr_core::GeosocialNetwork;
use gsr_geo::{Point, Rect};
use gsr_graph::{GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How friendship (user–user) edges are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FriendshipStyle {
    /// Every friendship is bidirectional and the friendship graph is
    /// connected by construction, so *all users form one giant SCC* — the
    /// Gowalla/WeePlaces regime of Table 3, where the RangeReach cost is
    /// dominated by the spatial predicate.
    Symmetric,
    /// Directed "follows"; each edge is reciprocated independently with the
    /// given probability, producing many SCCs of varying size — the
    /// Foursquare/Yelp regime, where the cost is split between predicates.
    Directed {
        /// Probability that a follow edge is reciprocated.
        reciprocation: f64,
    },
}

/// A recipe for one synthetic geosocial network.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// Display name ("Foursquare", ...).
    pub name: &'static str,
    /// Number of social vertices (users).
    pub users: usize,
    /// Number of spatial vertices (venues).
    pub venues: usize,
    /// Number of friendship *pairs* to draw among users.
    pub friendships: usize,
    /// Number of check-in edges (user -> venue) to draw; duplicates
    /// collapse, mirroring how repeated real check-ins dedup into one edge.
    pub checkins: usize,
    /// Friendship regime.
    pub style: FriendshipStyle,
    /// Number of Gaussian "cities" venues cluster around.
    pub cities: usize,
    /// City standard deviation as a fraction of the space side length.
    pub city_sigma: f64,
    /// Zipf skew of user activity and venue popularity (0 = uniform).
    pub skew: f64,
    /// The embedding space.
    pub space: Rect,
    /// RNG seed; the same spec always generates the same network.
    pub seed: u64,
}

impl NetworkSpec {
    /// Scaled analog of **Foursquare** (Table 3: 2.12M users, 1.13M venues,
    /// 19.7M edges, 1.4M SCCs with a 1.85M-vertex giant SCC). `scale = 1.0`
    /// corresponds to ~1% of the original.
    pub fn foursquare(scale: f64) -> NetworkSpec {
        NetworkSpec {
            name: "Foursquare",
            users: scaled(21_200, scale),
            venues: scaled(11_300, scale),
            friendships: scaled(149_000, scale),
            checkins: scaled(48_000, scale),
            style: FriendshipStyle::Directed { reciprocation: 0.5 },
            cities: 40,
            city_sigma: 0.02,
            skew: 1.0,
            space: default_space(),
            seed: 0xF0F0_0001,
        }
    }

    /// Scaled analog of **Gowalla** (407K users, 2.72M venues, 23.8M edges;
    /// all users in one SCC).
    pub fn gowalla(scale: f64) -> NetworkSpec {
        NetworkSpec {
            name: "Gowalla",
            users: scaled(4_100, scale),
            venues: scaled(27_200, scale),
            friendships: scaled(24_000, scale),
            checkins: scaled(214_000, scale),
            style: FriendshipStyle::Symmetric,
            cities: 60,
            city_sigma: 0.02,
            skew: 0.8,
            space: default_space(),
            seed: 0xF0F0_0002,
        }
    }

    /// Scaled analog of **WeePlaces** (16K users, 971K venues, 2.76M edges;
    /// all users in one SCC). Scaled a bit above 1% so it stays non-trivial.
    pub fn weeplaces(scale: f64) -> NetworkSpec {
        NetworkSpec {
            name: "WeePlaces",
            users: scaled(800, scale),
            venues: scaled(19_400, scale),
            friendships: scaled(4_500, scale),
            checkins: scaled(51_000, scale),
            style: FriendshipStyle::Symmetric,
            cities: 50,
            city_sigma: 0.025,
            skew: 0.8,
            space: default_space(),
            seed: 0xF0F0_0003,
        }
    }

    /// Scaled analog of **Yelp** (1.99M users, 150K venues, 21.4M edges,
    /// 1.24M SCCs with a 0.89M-vertex giant SCC).
    pub fn yelp(scale: f64) -> NetworkSpec {
        NetworkSpec {
            name: "Yelp",
            users: scaled(19_900, scale),
            venues: scaled(1_500, scale),
            friendships: scaled(144_000, scale),
            checkins: scaled(70_000, scale),
            style: FriendshipStyle::Directed { reciprocation: 0.2 },
            cities: 12,
            city_sigma: 0.03,
            skew: 1.2,
            space: default_space(),
            seed: 0xF0F0_0004,
        }
    }

    /// All four dataset analogs at the given scale, in Table 3 order.
    pub fn paper_datasets(scale: f64) -> Vec<NetworkSpec> {
        vec![
            NetworkSpec::foursquare(scale),
            NetworkSpec::gowalla(scale),
            NetworkSpec::weeplaces(scale),
            NetworkSpec::yelp(scale),
        ]
    }

    /// Total number of vertices the generated network will have.
    pub fn num_vertices(&self) -> usize {
        self.users + self.venues
    }

    /// Generates the network. Deterministic in the spec (including seed).
    pub fn generate(&self) -> GeosocialNetwork {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_users = self.users.max(2);
        let n_venues = self.venues.max(1);
        let n = n_users + n_venues;

        // City centres, padded away from the space border.
        let w = self.space.width();
        let h = self.space.height();
        let centers: Vec<Point> = (0..self.cities.max(1))
            .map(|_| {
                Point::new(
                    self.space.min_x + w * rng.gen_range(0.1..0.9),
                    self.space.min_y + h * rng.gen_range(0.1..0.9),
                )
            })
            .collect();
        let city_sampler = ZipfSampler::new(centers.len(), self.skew);

        // Venue points: Gaussian around a Zipf-popular city, clamped into
        // the space.
        let sigma = self.city_sigma * w.min(h);
        let mut venue_city = Vec::with_capacity(n_venues);
        let mut points: Vec<Option<Point>> = vec![None; n];
        for venue in 0..n_venues {
            let city = city_sampler.sample(&mut rng);
            venue_city.push(city);
            let c = centers[city];
            let p = Point::new(
                (c.x + gaussian(&mut rng) * sigma).clamp(self.space.min_x, self.space.max_x),
                (c.y + gaussian(&mut rng) * sigma).clamp(self.space.min_y, self.space.max_y),
            );
            points[n_users + venue] = Some(p);
        }

        // Per-city venue lists for locality-biased check-ins.
        let mut city_venues: Vec<Vec<u32>> = vec![Vec::new(); centers.len()];
        for (venue, &city) in venue_city.iter().enumerate() {
            city_venues[city].push(venue as u32);
        }

        // Users: a home city and a Zipf activity weight.
        let user_city: Vec<usize> =
            (0..n_users).map(|_| city_sampler.sample(&mut rng)).collect();
        let user_sampler = ZipfSampler::new(n_users, self.skew);
        let venue_sampler = ZipfSampler::new(n_venues, self.skew);

        let mut builder = GraphBuilder::with_capacity(n, self.friendships * 2 + self.checkins);
        for v in 0..n as VertexId {
            builder.ensure_vertex(v);
        }

        // Friendships.
        match self.style {
            FriendshipStyle::Symmetric => {
                // A random spanning chain guarantees one giant user SCC,
                // exactly reproducing the "# vertices in largest SCC =
                // # users" rows of Table 3.
                let mut perm: Vec<u32> = (0..n_users as u32).collect();
                for i in (1..perm.len()).rev() {
                    perm.swap(i, rng.gen_range(0..=i));
                }
                for pair in perm.windows(2) {
                    builder.add_undirected_edge(pair[0], pair[1]);
                }
                for _ in 0..self.friendships.saturating_sub(n_users - 1) {
                    let a = user_sampler.sample(&mut rng) as u32;
                    let b = user_sampler.sample(&mut rng) as u32;
                    if a != b {
                        builder.add_undirected_edge(a, b);
                    }
                }
            }
            FriendshipStyle::Directed { reciprocation } => {
                for _ in 0..self.friendships {
                    let a = user_sampler.sample(&mut rng) as u32;
                    let b = user_sampler.sample(&mut rng) as u32;
                    if a == b {
                        continue;
                    }
                    builder.add_edge(a, b);
                    if rng.gen_bool(reciprocation.clamp(0.0, 1.0)) {
                        builder.add_edge(b, a);
                    }
                }
            }
        }

        // Check-ins: user -> venue, 80% biased to the user's home city.
        for _ in 0..self.checkins {
            let user = user_sampler.sample(&mut rng) as u32;
            let city = user_city[user as usize];
            let venue = if !city_venues[city].is_empty() && rng.gen_bool(0.8) {
                let local = &city_venues[city];
                local[rng.gen_range(0..local.len())]
            } else {
                venue_sampler.sample(&mut rng) as u32
            };
            builder.add_edge(user, n_users as u32 + venue);
        }

        // Generated coordinates come from bounded uniform/normal draws,
        // so validation cannot fail.
        #[allow(clippy::expect_used)]
        GeosocialNetwork::new(builder.build(), points).expect("generated points are finite")
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(2)
}

fn default_space() -> Rect {
    Rect::new(0.0, 0.0, 1000.0, 1000.0)
}

/// A standard normal sample via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Exact Zipf sampling over `0..n` by inverse CDF on precomputed cumulative
/// weights (`weight(i) ∝ (i + 1)^-skew`).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n` with the given skew (0 = uniform).
    pub fn new(n: usize, skew: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for i in 0..n.max(1) {
            total += ((i + 1) as f64).powf(-skew);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    /// Draws one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        // `new` always pushes at least one entry (`n.max(1)` iterations).
        #[allow(clippy::expect_used)]
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_core::PreparedNetwork;

    #[test]
    fn generation_is_deterministic() {
        let spec = NetworkSpec::yelp(0.05);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.graph().num_edges(), b.graph().num_edges());
        let ea: Vec<_> = a.graph().edges().collect();
        let eb: Vec<_> = b.graph().edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn symmetric_style_gives_one_giant_user_scc() {
        let spec = NetworkSpec::gowalla(0.05);
        let net = spec.generate();
        let users = spec.users;
        let prep = PreparedNetwork::new(net);
        let stats = prep.stats();
        assert_eq!(stats.largest_scc, users, "all users in one SCC (Table 3 regime)");
        assert_eq!(stats.sccs, stats.vertices - users + 1, "venues are singleton SCCs");
    }

    #[test]
    fn directed_style_gives_many_sccs() {
        let spec = NetworkSpec::foursquare(0.05);
        let net = spec.generate();
        let prep = PreparedNetwork::new(net);
        let stats = prep.stats();
        assert!(stats.sccs > spec.venues, "more components than venues");
        assert!(
            stats.largest_scc > spec.users / 10 && stats.largest_scc < spec.users,
            "a large but partial social core, got {} of {} users",
            stats.largest_scc,
            spec.users
        );
    }

    #[test]
    fn venues_are_spatial_sinks() {
        let spec = NetworkSpec::weeplaces(0.1);
        let n_users = spec.users;
        let net = spec.generate();
        for (v, _) in net.spatial_vertices() {
            assert!(v as usize >= n_users, "spatial vertices are venues");
            assert_eq!(net.graph().out_degree(v), 0, "venues have no outgoing edges");
        }
        assert_eq!(net.num_spatial(), spec.venues);
        // All venue points inside the declared space.
        let space = spec.space;
        for (_, p) in net.spatial_vertices() {
            assert!(space.contains_point(&p));
        }
    }

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let sampler = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            let i = sampler.sample(&mut rng);
            counts[i] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "head much heavier than tail");
        assert!(counts.iter().sum::<usize>() == 20_000);
    }

    #[test]
    fn zipf_uniform_when_skew_zero() {
        let sampler = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "roughly uniform, got {c}");
        }
    }

    #[test]
    fn degree_buckets_are_populated_at_default_scale() {
        // The workload sweeps out-degree buckets up to 200+; the generator
        // must produce such heavy users.
        let net = NetworkSpec::foursquare(1.0).generate();
        let g = net.graph();
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_deg >= 200, "need 200+ degree vertices, got {max_deg}");
    }
}
