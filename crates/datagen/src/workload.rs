//! Query workloads mirroring Section 6.1 of the paper.
//!
//! Each experiment measures the average runtime over a batch of
//! `RangeReach` queries while varying one parameter:
//!
//! * the **extent** of the query region `R` in `{1, 2, 5, 10, 20}%` of the
//!   space (default **5%**),
//! * the **out-degree of the query vertex** in the buckets `[1-49]`,
//!   `[50-99]`, `[100-149]` (default), `[150-199]`, `[200-..]`,
//! * the **spatial selectivity** of `R` in `{0.001, 0.01, 0.1, 1}%` of the
//!   network's vertices.

use gsr_core::PreparedNetwork;
use gsr_geo::{Aabb, Point, Rect};
use gsr_graph::stats::{vertices_in_bucket, DegreeBucket};
use gsr_graph::VertexId;
use gsr_index::RTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The extent sweep of the paper, in percent of the space area; the bold
/// default is 5%.
pub const PAPER_EXTENTS_PCT: [f64; 5] = [1.0, 2.0, 5.0, 10.0, 20.0];

/// Index of the default extent (5%) in [`PAPER_EXTENTS_PCT`].
pub const DEFAULT_EXTENT_INDEX: usize = 2;

/// The selectivity sweep of the paper, in percent of `|V|`.
pub const PAPER_SELECTIVITIES_PCT: [f64; 4] = [0.001, 0.01, 0.1, 1.0];

/// A batch of `RangeReach` queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable description, e.g. `"extent=5% degree=100-149"`.
    pub label: String,
    /// The `(query vertex, query region)` pairs.
    pub queries: Vec<(VertexId, Rect)>,
}

/// Generates query workloads for one prepared network.
#[derive(Debug)]
pub struct WorkloadGen<'a> {
    prep: &'a PreparedNetwork,
    /// Point index used to steer selectivity-targeted regions.
    points: RTree<2, ()>,
}

impl<'a> WorkloadGen<'a> {
    /// Prepares the generator (builds a throw-away point index).
    pub fn new(prep: &'a PreparedNetwork) -> Self {
        let entries: Vec<(Aabb<2>, ())> = prep
            .network()
            .spatial_vertices()
            .map(|(_, p)| (Aabb::from_point([p.x, p.y]), ()))
            .collect();
        WorkloadGen { prep, points: RTree::bulk_load(entries) }
    }

    /// Query vertices with out-degree inside `bucket`, falling back to the
    /// nearest non-empty bucket when the network has none (small scaled
    /// networks may lack 200+-degree vertices).
    fn vertex_pool(&self, bucket: DegreeBucket) -> Vec<VertexId> {
        let g = self.prep.network().graph();
        let pool = vertices_in_bucket(g, bucket);
        if !pool.is_empty() {
            return pool;
        }
        // Fallback: widen downwards, then to any positive out-degree.
        let widened = DegreeBucket { lo: bucket.lo.saturating_sub(bucket.lo / 2).max(1), hi: u32::MAX };
        let pool = vertices_in_bucket(g, widened);
        if !pool.is_empty() {
            return pool;
        }
        vertices_in_bucket(g, DegreeBucket { lo: 1, hi: u32::MAX })
    }

    /// A square region of the given area percentage, centred uniformly at
    /// random and clamped into the space.
    fn random_region<R: Rng>(&self, rng: &mut R, extent_pct: f64) -> Rect {
        let space = self.prep.space();
        let side = (space.area() * extent_pct / 100.0).sqrt();
        let cx = rng.gen_range(space.min_x..=space.max_x);
        let cy = rng.gen_range(space.min_y..=space.max_y);
        Rect::square(Point::new(cx, cy), side).clamp_within(&space)
    }

    /// The workload of the extent/degree sweeps: `count` queries with the
    /// given region extent (% of space area) and query-vertex bucket.
    pub fn extent_degree(
        &self,
        extent_pct: f64,
        bucket: DegreeBucket,
        count: usize,
        seed: u64,
    ) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE47E_17D0);
        let pool = self.vertex_pool(bucket);
        let queries = (0..count)
            .map(|_| {
                let v = pool[rng.gen_range(0..pool.len())];
                (v, self.random_region(&mut rng, extent_pct))
            })
            .collect();
        Workload {
            label: format!("extent={extent_pct}% degree={}", bucket.label()),
            queries,
        }
    }

    /// The selectivity sweep: regions sized so that the number of contained
    /// spatial vertices is close to `selectivity_pct` percent of `|V|`.
    ///
    /// Each region is centred on a random venue (so low selectivities don't
    /// degenerate to empty regions) and its side is binary-searched until
    /// the contained-point count is within 25% of the target (or the search
    /// exhausts 40 iterations).
    pub fn selectivity(
        &self,
        selectivity_pct: f64,
        bucket: DegreeBucket,
        count: usize,
        seed: u64,
    ) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E1E_C71F);
        let pool = self.vertex_pool(bucket);
        let venues: Vec<Point> =
            self.prep.network().spatial_vertices().map(|(_, p)| p).collect();
        let space = self.prep.space();
        let target =
            ((self.prep.network().num_vertices() as f64) * selectivity_pct / 100.0).max(1.0);

        let queries = (0..count)
            .map(|_| {
                let v = pool[rng.gen_range(0..pool.len())];
                let center = venues[rng.gen_range(0..venues.len())];
                let region = self.search_region(center, target, &space);
                (v, region)
            })
            .collect();
        Workload { label: format!("selectivity={selectivity_pct}%"), queries }
    }

    /// Binary search on the square side length for the target point count.
    fn search_region(&self, center: Point, target: f64, space: &Rect) -> Rect {
        let mut lo = 0.0f64;
        let mut hi = space.width().max(space.height()) * 2.0;
        let mut best = Rect::square(center, hi).clamp_within(space);
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            let candidate = Rect::square(center, mid).clamp_within(space);
            let count = self.points.count_in(&candidate.into()) as f64;
            if (count - target).abs() / target <= 0.25 {
                return candidate;
            }
            if count < target {
                lo = mid;
            } else {
                hi = mid;
                best = candidate;
            }
        }
        best
    }

    /// A workload of *spatially negative* queries: every region contains
    /// zero spatial vertices, so every method must exhaust its search —
    /// the adversarial case Section 2.2.3 calls out ("both methods may
    /// perform poorly for RangeReach queries with a negative answer").
    /// Regions are rejection-sampled at the given extent; when the space is
    /// too dense for empty regions of that size, the extent shrinks
    /// geometrically until sampling succeeds.
    pub fn spatial_negative(
        &self,
        extent_pct: f64,
        bucket: DegreeBucket,
        count: usize,
        seed: u64,
    ) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x000F_F5E7);
        let pool = self.vertex_pool(bucket);
        let mut queries = Vec::with_capacity(count);
        let mut extent = extent_pct;
        let mut attempts = 0usize;
        while queries.len() < count {
            let region = self.random_region(&mut rng, extent);
            if self.points.count_in(&region.into()) == 0 {
                let v = pool[rng.gen_range(0..pool.len())];
                queries.push((v, region));
            }
            attempts += 1;
            if attempts > 200 && queries.is_empty() {
                extent /= 2.0; // too dense: shrink until empty regions exist
                attempts = 0;
                if extent < 1e-6 {
                    break;
                }
            }
        }
        Workload { label: format!("spatial-negative extent<={extent_pct}%"), queries }
    }

    /// Query vertices that reach **no** spatial vertex at all (their
    /// queries are FALSE for every region): the social side of the
    /// negative-answer case. Returns `None` when the network has no such
    /// vertex with outgoing edges — e.g. the giant-SCC datasets, where
    /// every user reaches the whole venue set.
    pub fn social_negative(&self, extent_pct: f64, count: usize, seed: u64) -> Option<Workload> {
        // reaches_spatial per component, in reverse topological order.
        let dag = self.prep.dag();
        let order = gsr_graph::topo::topological_order(dag)?;
        let mut reaches_spatial = vec![false; self.prep.num_components()];
        for &c in order.iter().rev() {
            reaches_spatial[c as usize] = self.prep.comp_is_spatial(c)
                || dag.out_neighbors(c).iter().any(|&s| reaches_spatial[s as usize]);
        }
        let g = self.prep.network().graph();
        let pool: Vec<VertexId> = g
            .vertices()
            .filter(|&v| {
                g.out_degree(v) >= 1 && !reaches_spatial[self.prep.comp(v) as usize]
            })
            .collect();
        if pool.is_empty() {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0050_C1A7);
        let queries = (0..count)
            .map(|_| {
                let v = pool[rng.gen_range(0..pool.len())];
                (v, self.random_region(&mut rng, extent_pct))
            })
            .collect();
        Some(Workload { label: "social-negative".to_string(), queries })
    }

    /// Measured selectivity of a region: contained spatial vertices over
    /// `|V|`, in percent. Exposed for tests and harness diagnostics.
    pub fn measured_selectivity_pct(&self, region: &Rect) -> f64 {
        let contained = self.points.count_in(&(*region).into()) as f64;
        contained / self.prep.network().num_vertices() as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_core::PreparedNetwork;
    use gsr_graph::GraphBuilder;

    fn toy_prep() -> PreparedNetwork {
        // 20 users in a chain + 900 venues on a 30x30 grid, every user
        // checks in at a few venues. The dense grid keeps point counts
        // nearly continuous in the region side, which the selectivity
        // search relies on.
        let mut b = GraphBuilder::new(920);
        for u in 0..19u32 {
            b.add_edge(u, u + 1);
        }
        for u in 0..20u32 {
            for k in 0..5u32 {
                b.add_edge(u, 20 + (u * 45 + k * 7) % 900);
            }
        }
        let mut points = vec![None; 920];
        for i in 0..900usize {
            points[20 + i] =
                Some(Point::new((i % 30) as f64 * 10.0 / 3.0 + 1.0, (i / 30) as f64 * 10.0 / 3.0 + 1.0));
        }
        PreparedNetwork::new(
            gsr_core::GeosocialNetwork::new(b.build(), points).unwrap(),
        )
    }

    #[test]
    fn extent_workload_shape() {
        let prep = toy_prep();
        let gen = WorkloadGen::new(&prep);
        let w = gen.extent_degree(5.0, DegreeBucket { lo: 1, hi: 49 }, 50, 42);
        assert_eq!(w.queries.len(), 50);
        let space = prep.space();
        for (v, r) in &w.queries {
            assert!(prep.network().graph().out_degree(*v) >= 1);
            assert!(space.contains_rect(r), "region inside space");
            // Area is at most the requested extent (clamping can shrink).
            assert!(r.area() <= space.area() * 0.05 + 1e-6);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let prep = toy_prep();
        let gen = WorkloadGen::new(&prep);
        let a = gen.extent_degree(5.0, DegreeBucket { lo: 1, hi: 49 }, 20, 7);
        let b = gen.extent_degree(5.0, DegreeBucket { lo: 1, hi: 49 }, 20, 7);
        assert_eq!(a.queries, b.queries);
        let c = gen.extent_degree(5.0, DegreeBucket { lo: 1, hi: 49 }, 20, 8);
        assert_ne!(a.queries, c.queries, "different seeds differ");
    }

    #[test]
    fn degree_bucket_fallback() {
        let prep = toy_prep();
        let gen = WorkloadGen::new(&prep);
        // No vertex has out-degree 200+ here; the fallback must still
        // produce a workload.
        let w = gen.extent_degree(5.0, DegreeBucket { lo: 200, hi: u32::MAX }, 10, 1);
        assert_eq!(w.queries.len(), 10);
    }

    #[test]
    fn spatial_negative_regions_are_empty() {
        let prep = toy_prep();
        let gen = WorkloadGen::new(&prep);
        let w = gen.spatial_negative(1.0, DegreeBucket { lo: 1, hi: u32::MAX }, 20, 5);
        assert!(!w.queries.is_empty());
        for (_, r) in &w.queries {
            assert_eq!(gen.measured_selectivity_pct(r), 0.0, "region {r} must be empty");
        }
    }

    #[test]
    fn social_negative_vertices_reach_nothing_spatial() {
        // Add a user chain disconnected from all venues.
        let mut b = GraphBuilder::new(923);
        for u in 0..19u32 {
            b.add_edge(u, u + 1);
        }
        for u in 0..20u32 {
            b.add_edge(u, 20 + u); // checkins
        }
        b.add_edge(920, 921);
        b.add_edge(921, 922);
        let mut points = vec![None; 923];
        for i in 0..900usize {
            points[20 + i] = Some(Point::new(
                (i % 30) as f64 * 10.0 / 3.0 + 1.0,
                (i / 30) as f64 * 10.0 / 3.0 + 1.0,
            ));
        }
        let prep = PreparedNetwork::new(
            gsr_core::GeosocialNetwork::new(b.build(), points).unwrap(),
        );
        let gen = WorkloadGen::new(&prep);
        let w = gen.social_negative(5.0, 15, 3).expect("disconnected users exist");
        for (v, r) in &w.queries {
            assert!(!prep.range_reach_bfs(*v, r), "v={v} must be a guaranteed negative");
        }
    }

    #[test]
    fn selectivity_targets_are_hit() {
        let prep = toy_prep();
        let gen = WorkloadGen::new(&prep);
        // Target 5% of 920 vertices = 46 points.
        let w = gen.selectivity(5.0, DegreeBucket { lo: 1, hi: u32::MAX }, 30, 3);
        let mut ok = 0;
        for (_, r) in &w.queries {
            let sel = gen.measured_selectivity_pct(r);
            if (sel - 5.0).abs() / 5.0 <= 0.4 {
                ok += 1;
            }
        }
        assert!(ok >= 20, "most regions near the target selectivity, got {ok}/30");
    }
}
