//! Property-based tests for the generators and workloads.

use gsr_core::PreparedNetwork;
use gsr_datagen::networks::ZipfSampler;
use gsr_datagen::workload::WorkloadGen;
use gsr_datagen::NetworkSpec;
use gsr_graph::stats::DegreeBucket;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn zipf_always_in_range(n in 1usize..500, skew in 0.0..2.0f64, seed in any::<u64>()) {
        let sampler = ZipfSampler::new(n, skew);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(sampler.sample(&mut rng) < n);
        }
    }

    #[test]
    fn generated_networks_are_structurally_sound(
        scale in 0.005..0.05f64,
        which in 0usize..4,
    ) {
        let spec = NetworkSpec::paper_datasets(scale).swap_remove(which);
        let net = spec.generate();
        // Spatial vertices are exactly the venues and are all sinks.
        prop_assert_eq!(net.num_spatial(), spec.venues.max(1));
        for (v, p) in net.spatial_vertices() {
            prop_assert_eq!(net.graph().out_degree(v), 0);
            prop_assert!(spec.space.contains_point(&p));
        }
        // No dangling edges.
        for (u, v) in net.graph().edges() {
            prop_assert!((u as usize) < net.num_vertices());
            prop_assert!((v as usize) < net.num_vertices());
        }
    }

    #[test]
    fn workload_regions_always_inside_space(
        extent in 0.5..25.0f64,
        seed in any::<u64>(),
    ) {
        let spec = NetworkSpec::weeplaces(0.02);
        let prep = PreparedNetwork::new(spec.generate());
        let gen = WorkloadGen::new(&prep);
        let w = gen.extent_degree(extent, DegreeBucket::PAPER_BUCKETS[0], 25, seed);
        let space = prep.space();
        for (v, r) in &w.queries {
            prop_assert!(space.contains_rect(r), "region {} escapes the space", r);
            prop_assert!((*v as usize) < prep.network().num_vertices());
            prop_assert!(prep.network().graph().out_degree(*v) >= 1);
        }
    }
}
