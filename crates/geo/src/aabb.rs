//! Const-generic axis-aligned bounding boxes.

/// An `N`-dimensional axis-aligned bounding box (closed on all sides).
///
/// This is the geometry shared by the 2-D and 3-D R-trees of `gsr-index`.
/// Points are degenerate boxes (`min == max`); the vertical line segments of
/// 3DReach-REV are boxes degenerate in the first two dimensions.
/// `#[repr(C)]` is part of the snapshot contract: v3 sections store box
/// columns as raw `2N`-tuples of `f64` and remap them zero-copy.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct Aabb<const N: usize> {
    /// Per-dimension lower bounds.
    pub min: [f64; N],
    /// Per-dimension upper bounds.
    pub max: [f64; N],
}

impl<const N: usize> Aabb<N> {
    /// Creates a box from its per-dimension extrema. Panics in debug builds
    /// when any dimension is inverted.
    #[inline]
    pub fn new(min: [f64; N], max: [f64; N]) -> Self {
        debug_assert!((0..N).all(|d| min[d] <= max[d]), "inverted box");
        Aabb { min, max }
    }

    /// The degenerate box covering exactly one point.
    #[inline]
    pub fn from_point(p: [f64; N]) -> Self {
        Aabb { min: p, max: p }
    }

    /// An "empty" box that acts as the identity for [`Aabb::expand`]: every
    /// dimension spans `[+inf, -inf]`, so the first expansion snaps to the
    /// expanded geometry.
    #[inline]
    pub fn empty() -> Self {
        Aabb { min: [f64::INFINITY; N], max: [f64::NEG_INFINITY; N] }
    }

    /// Whether this is the identity box produced by [`Aabb::empty`] (or any
    /// box that has been inverted by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..N).any(|d| self.min[d] > self.max[d])
    }

    /// Extent along dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> f64 {
        self.max[d] - self.min[d]
    }

    /// N-dimensional volume (area for `N = 2`). Zero for degenerate boxes,
    /// and zero for empty boxes.
    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..N).map(|d| self.extent(d)).product()
    }

    /// Sum of the extents over all dimensions — the "margin" used as a
    /// tie-breaker by R-tree split heuristics.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..N).map(|d| self.extent(d)).sum()
    }

    /// The centre of the box.
    #[inline]
    pub fn center(&self) -> [f64; N] {
        let mut c = [0.0; N];
        for (d, slot) in c.iter_mut().enumerate() {
            *slot = (self.min[d] + self.max[d]) / 2.0;
        }
        c
    }

    /// Whether the two (closed) boxes share at least one point. Empty boxes
    /// intersect nothing.
    #[inline]
    pub fn intersects(&self, other: &Aabb<N>) -> bool {
        (0..N).all(|d| self.min[d] <= other.max[d] && other.min[d] <= self.max[d])
    }

    /// Whether `other` is fully contained in `self`.
    #[inline]
    pub fn contains(&self, other: &Aabb<N>) -> bool {
        (0..N).all(|d| other.min[d] >= self.min[d] && other.max[d] <= self.max[d])
    }

    /// Whether the point `p` lies inside the box.
    #[inline]
    pub fn contains_point(&self, p: &[f64; N]) -> bool {
        (0..N).all(|d| p[d] >= self.min[d] && p[d] <= self.max[d])
    }

    /// Grows the box in place to contain `other`.
    #[inline]
    pub fn expand(&mut self, other: &Aabb<N>) {
        for d in 0..N {
            self.min[d] = self.min[d].min(other.min[d]);
            self.max[d] = self.max[d].max(other.max[d]);
        }
    }

    /// The smallest box containing both inputs.
    #[inline]
    pub fn union(&self, other: &Aabb<N>) -> Aabb<N> {
        let mut u = *self;
        u.expand(other);
        u
    }

    /// The volume increase that would result from growing `self` to contain
    /// `other` — the R-tree insertion heuristic ("least enlargement").
    #[inline]
    pub fn enlargement(&self, other: &Aabb<N>) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// The MBR of a non-empty iterator of boxes, or `None` when empty.
    pub fn mbr_of<I: IntoIterator<Item = Aabb<N>>>(boxes: I) -> Option<Self> {
        let mut iter = boxes.into_iter();
        let first = iter.next()?;
        let mut acc = first;
        for b in iter {
            acc.expand(&b);
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type B3 = Aabb<3>;

    fn b(min: [f64; 3], max: [f64; 3]) -> B3 {
        B3::new(min, max)
    }

    #[test]
    fn empty_is_identity_for_expand() {
        let mut e = B3::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        assert_eq!(e.margin(), 0.0);
        let x = b([0.0; 3], [1.0; 3]);
        e.expand(&x);
        assert_eq!(e, x);
    }

    #[test]
    fn volume_and_margin() {
        let x = b([0.0, 0.0, 0.0], [2.0, 3.0, 4.0]);
        assert_eq!(x.volume(), 24.0);
        assert_eq!(x.margin(), 9.0);
        assert_eq!(x.center(), [1.0, 1.5, 2.0]);
    }

    #[test]
    fn intersection_and_containment() {
        let a = b([0.0; 3], [2.0; 3]);
        let inner = b([0.5; 3], [1.5; 3]);
        let cross = b([1.0; 3], [3.0; 3]);
        let far = b([5.0; 3], [6.0; 3]);
        assert!(a.intersects(&inner) && a.contains(&inner));
        assert!(a.intersects(&cross) && !a.contains(&cross));
        assert!(!a.intersects(&far));
        assert!(a.contains_point(&[2.0, 2.0, 2.0]));
        assert!(!a.contains_point(&[2.0, 2.0, 2.1]));
        // Empty boxes intersect nothing, not even themselves.
        assert!(!B3::empty().intersects(&a));
        assert!(!B3::empty().intersects(&B3::empty()));
    }

    #[test]
    fn enlargement_measures_added_volume() {
        let a = b([0.0; 3], [1.0; 3]);
        assert_eq!(a.enlargement(&a), 0.0);
        let shifted = b([1.0, 0.0, 0.0], [2.0, 1.0, 1.0]);
        assert_eq!(a.enlargement(&shifted), 1.0);
    }

    #[test]
    fn mbr_of_boxes() {
        let a = b([0.0; 3], [1.0; 3]);
        let c = b([2.0; 3], [3.0; 3]);
        assert_eq!(B3::mbr_of([a, c]), Some(b([0.0; 3], [3.0; 3])));
        assert_eq!(B3::mbr_of(std::iter::empty()), None);
    }

    #[test]
    fn degenerate_point_box() {
        let p = B3::from_point([1.0, 2.0, 3.0]);
        assert_eq!(p.volume(), 0.0);
        assert!(!p.is_empty());
        assert!(p.contains_point(&[1.0, 2.0, 3.0]));
    }
}
