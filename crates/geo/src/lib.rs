//! Geometry primitives for the geosocial reachability library.
//!
//! This crate provides the small set of computational-geometry types the rest
//! of the workspace builds on:
//!
//! * [`Point`] — a point in the two-dimensional plane (a vertex's
//!   `v.point` in the paper's notation),
//! * [`Rect`] — an axis-aligned rectangle, used both as the query region `R`
//!   of a `RangeReach` query and as the minimum bounding rectangle (MBR) of a
//!   set of points,
//! * [`Aabb`] — a const-generic axis-aligned bounding box used as the common
//!   geometry of the 2-D and 3-D R-trees in `gsr-index`. The 3-D
//!   transformation of the 3DReach method (Section 4.2 of the paper) stores
//!   points, vertical line segments and boxes, all of which are represented
//!   as (possibly degenerate) [`Aabb<3>`] values.
//!
//! All coordinates are `f64`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod pod;
mod point;
mod rect;

pub use aabb::Aabb;
pub use point::Point;
pub use rect::Rect;

/// A three-dimensional axis-aligned box: the geometry of the 3DReach
/// transformation (query cuboids, indexed points and vertical segments).
pub type Cuboid = Aabb<3>;

/// Builds the query cuboid of the 3DReach method: the base is the spatial
/// query region `r` and the third dimension spans the (inclusive) post-order
/// interval `[lo, hi]` of one label of the query vertex.
///
/// See Section 4.2 of the paper: "the base of every cuboid corresponds to the
/// query region R [..] the cuboid is positioned in-between values l and h in
/// the third dimension".
pub fn cuboid_from_rect(r: &Rect, lo: f64, hi: f64) -> Cuboid {
    Aabb::new([r.min_x, r.min_y, lo], [r.max_x, r.max_y, hi])
}

/// Builds the vertical line segment that models a spatial vertex under the
/// reversed labeling of 3DReach-REV: the segment sits at the vertex's point
/// `(x, y)` and spans one label `[lo, hi]` of the reversed scheme.
pub fn segment_at(p: Point, lo: f64, hi: f64) -> Cuboid {
    Aabb::new([p.x, p.y, lo], [p.x, p.y, hi])
}

/// Builds the degenerate cuboid for a 3-D point `(p.x, p.y, z)`, the
/// representation of a spatial vertex under the forward 3DReach scheme.
pub fn point3(p: Point, z: f64) -> Cuboid {
    Aabb::new([p.x, p.y, z], [p.x, p.y, z])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuboid_from_rect_spans_label_interval() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        let c = cuboid_from_rect(&r, 5.0, 9.0);
        assert_eq!(c.min, [1.0, 2.0, 5.0]);
        assert_eq!(c.max, [3.0, 4.0, 9.0]);
    }

    #[test]
    fn segment_is_degenerate_in_xy() {
        let s = segment_at(Point::new(1.0, 2.0), 3.0, 7.0);
        assert_eq!(s.extent(0), 0.0);
        assert_eq!(s.extent(1), 0.0);
        assert_eq!(s.extent(2), 4.0);
    }

    #[test]
    fn point3_is_fully_degenerate() {
        let p = point3(Point::new(1.0, 2.0), 3.0);
        assert_eq!(p.min, p.max);
    }
}
