//! Plain-old-data declarations for the zero-copy snapshot path.
//!
//! The `Pod` trait lives in `gsr-graph` (next to the `Col` column type);
//! the geometry types qualify and must be declared here because of the
//! orphan rule. This is the only `unsafe` in the crate.
#![allow(unsafe_code)]

use crate::{Aabb, Point};

// SAFETY: `Point` is `#[repr(C)] { x: f64, y: f64 }` — two same-size,
// same-alignment fields, so no padding — and every bit pattern is a valid
// f64 (including NaNs; geometry code never relies on validity beyond that).
unsafe impl gsr_graph::Pod for Point {}

// SAFETY: `Aabb<N>` is `#[repr(C)] { min: [f64; N], max: [f64; N] }` — two
// arrays of the element type, no padding for any `N` — and every bit
// pattern is a valid f64. Structural expectations (min <= max) are not part
// of bit validity; loaders that need them must check explicitly.
unsafe impl<const N: usize> gsr_graph::Pod for Aabb<N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_layouts_have_no_padding() {
        assert_eq!(std::mem::size_of::<Point>(), 16);
        assert_eq!(std::mem::size_of::<Aabb<2>>(), 32);
        assert_eq!(std::mem::size_of::<Aabb<3>>(), 48);
        assert_eq!(std::mem::align_of::<Point>(), 8);
        assert_eq!(std::mem::align_of::<Aabb<3>>(), 8);
    }

    #[test]
    fn points_round_trip_through_bytes() {
        let pts = [Point::new(1.5, -2.5), Point::new(0.0, f64::MAX)];
        let bytes = gsr_graph::bytes_of(&pts[..]);
        assert_eq!(bytes.len(), 32);
        let col: gsr_graph::Col<Point> = {
            struct Region(Vec<u8>);
            // SAFETY (test-only): immutable after construction.
            #[allow(unsafe_code)]
            unsafe impl gsr_graph::StableBytes for Region {
                fn stable_bytes(&self) -> &[u8] {
                    &self.0
                }
            }
            gsr_graph::Col::view(&std::sync::Arc::new(Region(bytes.to_vec())), 0, 2).unwrap()
        };
        assert_eq!(&col[..], &pts[..]);
    }
}
