//! Two-dimensional points.

use std::fmt;

/// A point in the two-dimensional plane.
///
/// In the paper's model (Section 2.1) every *spatial vertex* `v` of a
/// geosocial network carries a `v.point` of this type; the set of all such
/// points is the collection `P` of the network `G = (V, E, P)`.
/// `#[repr(C)]` is part of the snapshot contract: v3 sections store point
/// columns as raw `x, y` f64 pairs and remap them zero-copy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Point {
    /// Horizontal coordinate (e.g. longitude).
    pub x: f64,
    /// Vertical coordinate (e.g. latitude).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper than [`Point::distance`] when only
    /// comparisons are needed).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min_components(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max_components(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns `true` when both coordinates are finite (not NaN/Inf).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for [f64; 2] {
    fn from(p: Point) -> Self {
        [p.x, p.y]
    }
}

impl From<[f64; 2]> for Point {
    fn from([x, y]: [f64; 2]) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn component_extrema() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min_components(&b), Point::new(1.0, 3.0));
        assert_eq!(a.max_components(&b), Point::new(2.0, 5.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn conversions_round_trip() {
        let p = Point::from((1.5, -2.5));
        let arr: [f64; 2] = p.into();
        assert_eq!(Point::from(arr), p);
        assert_eq!(format!("{p}"), "(1.5, -2.5)");
    }
}
