//! Axis-aligned rectangles: query regions and minimum bounding rectangles.

use crate::{Aabb, Point};
use std::fmt;

/// An axis-aligned rectangle in the plane, `[min_x, max_x] × [min_y, max_y]`.
///
/// Rectangles are *closed*: points on the boundary are contained. This type
/// plays two roles in the paper:
///
/// * the query region `R` of a `RangeReach(G, v, R)` query, and
/// * the *reachability minimum bounding rectangle* `RMBR(v)` of the GeoReach
///   baseline as well as the MBR of a strongly connected component's spatial
///   members (Section 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Smallest x coordinate.
    pub min_x: f64,
    /// Smallest y coordinate.
    pub min_y: f64,
    /// Largest x coordinate.
    pub max_x: f64,
    /// Largest y coordinate.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its extrema. Panics in debug builds when the
    /// extrema are inverted.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y, "inverted rectangle");
        Rect { min_x, min_y, max_x, max_y }
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// Creates a rectangle from two opposite corners given in any order.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// The minimum bounding rectangle of a non-empty set of points, or `None`
    /// for an empty iterator.
    pub fn mbr_of<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut r = Rect::from_point(first);
        for p in iter {
            r.expand_to_point(p);
        }
        Some(r)
    }

    /// A square of side `side` centred on `center`.
    #[inline]
    pub fn square(center: Point, side: f64) -> Self {
        let h = side / 2.0;
        Rect::new(center.x - h, center.y - h, center.x + h, center.y + h)
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle (zero for degenerate rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)
    }

    /// Whether `p` lies inside the (closed) rectangle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether `other` is fully contained in `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Whether the two (closed) rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// The intersection of two rectangles, or `None` when they are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(
            self.min_x.max(other.min_x),
            self.min_y.max(other.min_y),
            self.max_x.min(other.max_x),
            self.max_y.min(other.max_y),
        ))
    }

    /// The smallest rectangle containing both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.min_x.min(other.min_x),
            self.min_y.min(other.min_y),
            self.max_x.max(other.max_x),
            self.max_y.max(other.max_y),
        )
    }

    /// Grows the rectangle in place so that it contains `p`.
    #[inline]
    pub fn expand_to_point(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Grows the rectangle in place so that it contains `other`.
    #[inline]
    pub fn expand_to_rect(&mut self, other: &Rect) {
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// Clamps this rectangle so it lies inside `bounds` (both must intersect).
    pub fn clamp_within(&self, bounds: &Rect) -> Rect {
        self.intersection(bounds).unwrap_or(Rect::from_point(bounds.center()))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}] x [{}, {}]", self.min_x, self.max_x, self.min_y, self.max_y)
    }
}

impl From<Rect> for Aabb<2> {
    fn from(r: Rect) -> Self {
        Aabb::new([r.min_x, r.min_y], [r.max_x, r.max_y])
    }
}

impl From<Aabb<2>> for Rect {
    fn from(b: Aabb<2>) -> Self {
        Rect::new(b.min[0], b.min[1], b.max[0], b.max[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d)
    }

    #[test]
    fn containment_is_closed() {
        let q = r(0.0, 0.0, 1.0, 1.0);
        assert!(q.contains_point(&Point::new(0.0, 0.0)));
        assert!(q.contains_point(&Point::new(1.0, 1.0)));
        assert!(q.contains_point(&Point::new(0.5, 0.5)));
        assert!(!q.contains_point(&Point::new(1.000001, 0.5)));
    }

    #[test]
    fn rect_containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        assert!(outer.contains_rect(&r(1.0, 1.0, 9.0, 9.0)));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&r(1.0, 1.0, 11.0, 9.0)));
    }

    #[test]
    fn intersection_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        let c = r(5.0, 5.0, 6.0, 6.0);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
        // Touching edges count as intersecting (closed rectangles).
        let d = r(2.0, 0.0, 4.0, 2.0);
        assert!(a.intersects(&d));
        assert_eq!(a.intersection(&d).unwrap().area(), 0.0);
    }

    #[test]
    fn union_and_mbr() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        assert_eq!(a.union(&b), r(0.0, -1.0, 3.0, 1.0));

        let pts = [Point::new(1.0, 2.0), Point::new(-1.0, 0.0), Point::new(3.0, 1.0)];
        assert_eq!(Rect::mbr_of(pts), Some(r(-1.0, 0.0, 3.0, 2.0)));
        assert_eq!(Rect::mbr_of(std::iter::empty()), None);
    }

    #[test]
    fn geometry_helpers() {
        let q = Rect::square(Point::new(5.0, 5.0), 2.0);
        assert_eq!(q, r(4.0, 4.0, 6.0, 6.0));
        assert_eq!(q.area(), 4.0);
        assert_eq!(q.center(), Point::new(5.0, 5.0));
        assert_eq!(q.width(), 2.0);
        assert_eq!(q.height(), 2.0);
    }

    #[test]
    fn expansion() {
        let mut q = Rect::from_point(Point::new(1.0, 1.0));
        q.expand_to_point(Point::new(-1.0, 4.0));
        assert_eq!(q, r(-1.0, 1.0, 1.0, 4.0));
        q.expand_to_rect(&r(0.0, 0.0, 5.0, 2.0));
        assert_eq!(q, r(-1.0, 0.0, 5.0, 4.0));
    }

    #[test]
    fn aabb_round_trip() {
        let q = r(1.0, 2.0, 3.0, 4.0);
        let b: Aabb<2> = q.into();
        assert_eq!(Rect::from(b), q);
    }
}
