//! Property-based tests for the geometry primitives.

use gsr_geo::{Aabb, Point, Rect};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e3..1e3f64, -1e3..1e3f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

fn arb_aabb3() -> impl Strategy<Value = Aabb<3>> {
    (
        [-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64],
        [-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64],
    )
        .prop_map(|(a, b)| {
            let mut min = [0.0; 3];
            let mut max = [0.0; 3];
            for d in 0..3 {
                min[d] = a[d].min(b[d]);
                max[d] = a[d].max(b[d]);
            }
            Aabb::new(min, max)
        })
}

proptest! {
    #[test]
    fn rect_intersection_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn rect_intersection_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn rect_containment_implies_intersection(a in arb_rect(), b in arb_rect()) {
        if a.contains_rect(&b) {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn mbr_contains_all_points(pts in prop::collection::vec(arb_point(), 1..50)) {
        let mbr = Rect::mbr_of(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(mbr.contains_point(p));
        }
    }

    #[test]
    fn point_in_rect_iff_in_aabb(p in arb_point(), r in arb_rect()) {
        let b: Aabb<2> = r.into();
        prop_assert_eq!(r.contains_point(&p), b.contains_point(&[p.x, p.y]));
    }

    #[test]
    fn aabb_union_monotone_volume(a in arb_aabb3(), b in arb_aabb3()) {
        let u = a.union(&b);
        prop_assert!(u.volume() >= a.volume());
        prop_assert!(u.volume() >= b.volume());
        prop_assert!(a.enlargement(&b) >= 0.0);
    }

    #[test]
    fn aabb_containment_transitive(a in arb_aabb3(), b in arb_aabb3(), c in arb_aabb3()) {
        if a.contains(&b) && b.contains(&c) {
            prop_assert!(a.contains(&c));
        }
    }

    #[test]
    fn square_centered_on_center(c in arb_point(), side in 0.0..100.0f64) {
        let q = Rect::square(c, side);
        let center = q.center();
        prop_assert!((center.x - c.x).abs() < 1e-9);
        prop_assert!((center.y - c.y).abs() < 1e-9);
        prop_assert!((q.width() - side).abs() < 1e-9);
    }
}
