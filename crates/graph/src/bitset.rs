//! A dense bit matrix for small-to-medium reachability closures.

/// An `n x n` bit matrix with row-wise unions — the workhorse of the DAG
/// reductions and handy for test oracles.
#[derive(Debug, Clone)]
pub struct BitMatrix {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero `n x n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        BitMatrix { words_per_row, bits: vec![0; n * words_per_row] }
    }

    /// Sets bit `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        self.bits[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Reads bit `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.bits[row * self.words_per_row + col / 64] & (1u64 << (col % 64)) != 0
    }

    /// `row |= other` (row-wise union). No-op when `row == other`.
    pub fn union_row(&mut self, row: usize, other: usize) {
        if row == other {
            return;
        }
        let w = self.words_per_row;
        let (dst, src) = if row < other {
            let (lo, hi) = self.bits.split_at_mut(other * w);
            (&mut lo[row * w..(row + 1) * w], &hi[..w])
        } else {
            let (lo, hi) = self.bits.split_at_mut(row * w);
            (&mut hi[..w], &lo[other * w..(other + 1) * w])
        };
        for (d, s) in dst.iter_mut().zip(src) {
            *d |= *s;
        }
    }

    /// Number of set bits in `row`.
    pub fn count_row(&self, row: usize) -> usize {
        self.bits[row * self.words_per_row..(row + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_union() {
        let mut m = BitMatrix::new(130); // forces 3 words per row
        m.set(0, 0);
        m.set(0, 129);
        m.set(1, 64);
        assert!(m.get(0, 0) && m.get(0, 129) && m.get(1, 64));
        assert!(!m.get(1, 0));
        m.union_row(1, 0);
        assert!(m.get(1, 0) && m.get(1, 129) && m.get(1, 64));
        assert_eq!(m.count_row(1), 3);
        // Self-union is a no-op.
        m.union_row(1, 1);
        assert_eq!(m.count_row(1), 3);
    }

    #[test]
    fn empty_matrix() {
        let m = BitMatrix::new(0);
        let _ = m; // must simply not panic on construction
    }
}
