//! Incremental construction of [`DiGraph`]s.

use crate::{DiGraph, VertexId};

/// Collects edges and produces a deduplicated CSR [`DiGraph`].
///
/// ```
/// use gsr_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(0, 1); // duplicates are removed
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder { num_vertices: n, edges: Vec::new() }
    }

    /// Creates a builder with pre-allocated capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder { num_vertices: n, edges: Vec::with_capacity(m) }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges added so far (before deduplication).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Grows the vertex set so it includes id `v`.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        self.num_vertices = self.num_vertices.max(v as usize + 1);
    }

    /// Adds the directed edge `(u, v)`, growing the vertex set as needed.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.ensure_vertex(u);
        self.ensure_vertex(v);
        self.edges.push((u, v));
    }

    /// Adds both `(u, v)` and `(v, u)` — the symmetric friendship edges of
    /// the Gowalla/WeePlaces-style networks, whose bidirectional social core
    /// collapses into one giant SCC (Section 6.1 of the paper).
    pub fn add_undirected_edge(&mut self, u: VertexId, v: VertexId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Adds every edge of an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }

    /// Finalizes into a CSR graph: sorts the edge list and drops duplicates.
    pub fn build(mut self) -> DiGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        DiGraph::from_sorted_edges(self.num_vertices, &self.edges)
    }
}

/// Convenience constructor: a graph over `n` vertices from an edge slice.
pub fn graph_from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    b.extend_edges(edges.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_auto_grow() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(5, 2);
        b.add_edge(5, 2);
        b.add_edge(2, 5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(5, 2));
        assert!(g.has_edge(2, 5));
    }

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(0, 1);
        let g = b.build();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }

    #[test]
    fn from_edges_helper() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loops_are_kept() {
        let g = graph_from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 0));
    }
}
