//! Zero-copy typed columns: the storage cell of every flat index arena.
//!
//! A [`Col<T>`] is an immutable, shared column of `T`s that is either
//! *owned* (an `Arc<Vec<T>>`, the result of an in-process build) or
//! *mapped* (a typed view into a byte region kept alive by an erased
//! [`StableBytes`] owner — typically a memory-mapped v3 snapshot). Both
//! variants deref to `&[T]`, so query kernels index columns exactly as
//! they indexed the `Vec`s they replace, and both clone in O(1), which
//! preserves the cheap `Arc`-style index clones the server relies on when
//! fanning a snapshot out to worker threads.
//!
//! The mapped variant is the heart of the v3 snapshot format: a load
//! validates bounds and alignment once, then every column of the index
//! *is* the file — no per-element decode, no allocation proportional to
//! the index.
//!
//! This module is the only place in the crate that needs `unsafe`: the
//! pointer-typed view and the byte reinterpretation casts. The safety
//! argument is local — [`Pod`] restricts element types to
//! padding-free, any-bit-pattern-valid layouts, and [`StableBytes`]
//! restricts owners to ones whose bytes never move while the owner is
//! alive.
#![allow(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Marker for plain-old-data element types.
///
/// # Safety
///
/// Implementors guarantee that `Self`
/// * has no padding bytes (`size_of::<Self>()` equals the sum of its
///   field sizes, recursively),
/// * is valid for **any** bit pattern (no niches, no invariants enforced
///   by construction), and
/// * has a stable, `#[repr(C)]`-or-primitive layout.
///
/// Together these make `&[u8] -> &[Self]` and `&[Self] -> &[u8]`
/// reinterpretation casts sound (given length and alignment checks).
/// Structural invariants beyond bit validity (sortedness, bounds) are
/// *not* part of the contract — loaders validate those separately.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for f64 {}

/// An owner of a byte region whose address is stable for the owner's
/// lifetime.
///
/// # Safety
///
/// `stable_bytes` must return the same pointer and length every call, and
/// the region must stay valid (mapped, unmodified address) until the
/// owner is dropped. A `Vec<u8>` inside an `Arc` qualifies only if nothing
/// can reallocate it; owners in this workspace are immutable by
/// construction (aligned heap buffers and memory mappings in `gsr-store`).
pub unsafe trait StableBytes: Send + Sync + 'static {
    /// The owned byte region.
    fn stable_bytes(&self) -> &[u8];
}

/// Keep-alive handle for a column's storage; never read through, only
/// held. The element pointer and length live inline in [`Col`] so that
/// deref never touches the owner — query kernels index columns millions
/// of times per second, and an extra dependent load per access is
/// measurable on the hot path.
enum ColOwner<T> {
    Owned(Arc<Vec<T>>),
    Mapped(Arc<dyn StableBytes>),
}

/// An immutable shared column of `T`s: either an owned `Arc<Vec<T>>` or a
/// zero-copy typed view into a [`StableBytes`] region. Derefs to `&[T]`
/// from a cached inline pointer — the same cost as `Vec<T>` — and clones
/// in O(1) either way.
pub struct Col<T> {
    /// Cached at construction; always valid while `owner` is alive.
    ptr: *const T,
    len: usize,
    owner: ColOwner<T>,
}

impl<T> Col<T> {
    /// Whether two columns share the same underlying storage (same pointer
    /// and length) — the column analogue of `Arc::ptr_eq`.
    pub fn ptr_eq(a: &Col<T>, b: &Col<T>) -> bool {
        std::ptr::eq(a.ptr, b.ptr) && a.len == b.len
    }

    /// Whether this column borrows from a mapped region rather than owning
    /// its elements.
    pub fn is_mapped(&self) -> bool {
        matches!(self.owner, ColOwner::Mapped(_))
    }
}

impl<T: Pod> Col<T> {
    /// A zero-copy view of `count` elements starting `offset` bytes into
    /// `owner`'s region. Validates bounds, overflow and alignment; the
    /// returned column holds the owner alive. Untrusted offsets are safe:
    /// every defect is an `Err(String)`.
    pub fn view<A: StableBytes>(
        owner: &Arc<A>,
        offset: usize,
        count: usize,
    ) -> Result<Col<T>, String> {
        if count == 0 {
            return Ok(Col::from(Vec::new()));
        }
        let bytes = owner.stable_bytes();
        let elem = std::mem::size_of::<T>();
        let size = count
            .checked_mul(elem)
            .ok_or_else(|| format!("col: {count} x {elem}-byte elements overflows"))?;
        let end = offset
            .checked_add(size)
            .ok_or_else(|| format!("col: offset {offset} + {size} bytes overflows"))?;
        if end > bytes.len() {
            return Err(format!(
                "col: [{offset}, {end}) out of bounds of a {}-byte region",
                bytes.len()
            ));
        }
        let ptr = bytes[offset..].as_ptr();
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(format!(
                "col: offset {offset} misaligned for {}-byte alignment",
                std::mem::align_of::<T>()
            ));
        }
        let owner: Arc<dyn StableBytes> = Arc::clone(owner) as Arc<dyn StableBytes>;
        // SAFETY: bounds and alignment checked above; T: Pod means any bit
        // pattern is a valid T; the owner Arc keeps the region alive and
        // StableBytes guarantees its address never changes.
        Ok(Col { ptr: ptr as *const T, len: count, owner: ColOwner::Mapped(owner) })
    }
}

/// Reinterprets a slice of [`Pod`] elements as its underlying bytes (in
/// native byte order — the v3 snapshot writer is little-endian-host only
/// and checks before calling).
pub fn bytes_of<T: Pod>(slice: &[T]) -> &[u8] {
    // SAFETY: T: Pod has no padding, so every byte of the slice is
    // initialized; u8 has alignment 1.
    unsafe {
        std::slice::from_raw_parts(slice.as_ptr() as *const u8, std::mem::size_of_val(slice))
    }
}

// SAFETY: both variants are immutable shared storage. Owned is Send+Sync
// whenever T is (Pod requires it; the Owned-only case for non-Pod T
// inherits the bound below). Mapped holds a Send+Sync owner and a pointer
// into its region that is only ever read.
unsafe impl<T: Send + Sync> Send for Col<T> {}
unsafe impl<T: Send + Sync> Sync for Col<T> {}

impl<T> Deref for Col<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: `ptr`/`len` were validated at construction (`From<Vec>`
        // or `Col::view`) and `self.owner` keeps the region alive at a
        // fixed address for as long as `self` exists.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T> From<Vec<T>> for Col<T> {
    fn from(v: Vec<T>) -> Self {
        // The Vec's buffer never moves once boxed in the Arc: the column
        // is immutable by construction, so the cached pointer stays valid.
        let v = Arc::new(v);
        Col { ptr: v.as_ptr(), len: v.len(), owner: ColOwner::Owned(v) }
    }
}

impl<T> Default for Col<T> {
    fn default() -> Self {
        Col::from(Vec::new())
    }
}

impl<T> Clone for Col<T> {
    /// O(1): shares the `Arc`-owned vector or the mapped view.
    fn clone(&self) -> Self {
        let owner = match &self.owner {
            ColOwner::Owned(v) => ColOwner::Owned(Arc::clone(v)),
            ColOwner::Mapped(o) => ColOwner::Mapped(Arc::clone(o)),
        };
        Col { ptr: self.ptr, len: self.len, owner }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Col<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for Col<T> {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl<T: Eq> Eq for Col<T> {}

impl<T: std::hash::Hash> std::hash::Hash for Col<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl<T> crate::HeapBytes for Col<T> {
    /// Mapped columns are attributed like owned ones: the bytes a query
    /// walks are resident either way (page cache for mapped regions), and
    /// symmetric accounting keeps `index_bytes` comparable across load
    /// paths.
    fn heap_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeapBytes;

    struct FixedRegion(Vec<u8>);

    // SAFETY (test-only): the Vec is never touched after construction and
    // the Arc keeps it at a fixed address.
    unsafe impl StableBytes for FixedRegion {
        fn stable_bytes(&self) -> &[u8] {
            &self.0
        }
    }

    #[test]
    fn owned_round_trip_and_cheap_clone() {
        let c: Col<u32> = vec![1, 2, 3].into();
        assert_eq!(&c[..], &[1, 2, 3]);
        let d = c.clone();
        assert!(Col::ptr_eq(&c, &d), "clone must share storage");
        assert_eq!(c, d);
        assert!(!c.is_mapped());
        assert_eq!(c.heap_bytes(), 12);
    }

    #[test]
    fn mapped_view_reads_the_region() {
        let mut bytes = Vec::new();
        for x in [7u32, 8, 9] {
            bytes.extend_from_slice(&x.to_ne_bytes());
        }
        let owner = Arc::new(FixedRegion(bytes));
        let c: Col<u32> = Col::view(&owner, 0, 3).unwrap();
        assert_eq!(&c[..], &[7, 8, 9]);
        assert!(c.is_mapped());
        let d = c.clone();
        assert!(Col::ptr_eq(&c, &d));
        drop(owner); // the column keeps the region alive
        assert_eq!(c[2], 9);
    }

    #[test]
    fn view_rejects_out_of_bounds_and_misalignment() {
        let owner = Arc::new(FixedRegion(vec![0u8; 16]));
        assert!(Col::<u32>::view(&owner, 0, 5).is_err(), "20 bytes > 16");
        assert!(Col::<u32>::view(&owner, usize::MAX, 1).is_err(), "offset overflow");
        assert!(Col::<u64>::view(&owner, usize::MAX / 8, usize::MAX / 4).is_err(), "size overflow");
        let aligned = Col::<u32>::view(&owner, 0, 4);
        let shifted = Col::<u32>::view(&owner, 1, 3);
        // The region itself is at least 1-aligned; exactly one of offset 0 /
        // offset 1 can be 4-aligned.
        assert!(aligned.is_ok() != shifted.is_ok());
    }

    #[test]
    fn empty_views_are_fine_at_any_offset() {
        let owner = Arc::new(FixedRegion(vec![0u8; 3]));
        let c: Col<u64> = Col::view(&owner, 1, 0).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn bytes_of_round_trips_through_view() {
        let values = [u32::MAX, 0, 0xDEADBEEF];
        let owner = Arc::new(FixedRegion(bytes_of(&values[..]).to_vec()));
        let back: Col<u32> = Col::view(&owner, 0, 3).unwrap();
        assert_eq!(&back[..], &values[..]);
    }
}
