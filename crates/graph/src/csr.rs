//! Compressed-sparse-row storage for directed graphs.

use crate::col::Col;
use crate::VertexId;

/// A directed graph stored in CSR form, with both forward (out-neighbour)
/// and reverse (in-neighbour) adjacency.
///
/// Vertices are dense `u32` indices. Parallel edges are removed at build
/// time; self-loops are kept (they are collapsed later by the SCC
/// condensation). The reverse adjacency doubles memory but is required by
/// the reversed interval labeling of 3DReach-REV and by in-degree priorities
/// in the labeling construction (Algorithm 1 of the paper).
/// All four arrays are [`Col`]s: owned after an in-process build, borrowed
/// zero-copy from the mapped file after a v3 snapshot load. Clones are O(1)
/// either way.
#[derive(Debug, Clone)]
pub struct DiGraph {
    /// Forward CSR offsets: edges of vertex `v` are
    /// `targets[offsets[v] .. offsets[v + 1]]`.
    out_offsets: Col<u32>,
    out_targets: Col<VertexId>,
    in_offsets: Col<u32>,
    in_sources: Col<VertexId>,
}

impl DiGraph {
    /// Builds a graph from `n` vertices and a sorted, deduplicated edge list.
    /// Callers normally go through [`crate::GraphBuilder`].
    pub(crate) fn from_sorted_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must be sorted+dedup");
        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _) in edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<VertexId> = edges.iter().map(|&(_, v)| v).collect();

        // Reverse adjacency via counting sort on targets.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v) in edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as VertexId; edges.len()];
        for &(u, v) in edges {
            let slot = cursor[v as usize];
            in_sources[slot as usize] = u;
            cursor[v as usize] += 1;
        }

        DiGraph {
            out_offsets: out_offsets.into(),
            out_targets: out_targets.into(),
            in_offsets: in_offsets.into(),
            in_sources: in_sources.into(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of (deduplicated) directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbours of `v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbours of `v` (sources of edges into `v`).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Whether the (directed) edge `(u, v)` exists. `O(log out_degree(u))`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all edges `(u, v)` in source order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// The graph with every edge reversed. Used to build the reversed
    /// interval labeling of 3DReach-REV (Section 4.2).
    pub fn reversed(&self) -> DiGraph {
        let mut rev: Vec<(VertexId, VertexId)> = self.edges().map(|(u, v)| (v, u)).collect();
        rev.sort_unstable();
        DiGraph::from_sorted_edges(self.num_vertices(), &rev)
    }

    /// Forward-CSR view of the graph, `(out_offsets, out_targets)`, for
    /// snapshot encoding. Together with the vertex count implied by
    /// `out_offsets.len() - 1` this fully determines the graph; the reverse
    /// adjacency is derived and is rebuilt by [`DiGraph::from_out_csr`].
    pub fn out_csr(&self) -> (&[u32], &[VertexId]) {
        (&self.out_offsets, &self.out_targets)
    }

    /// Reverse-CSR view, `(in_offsets, in_sources)`. Derivable from the
    /// forward CSR, but v3 snapshots persist it anyway so a load is a pure
    /// map with no O(V + E) rebuild allocations.
    pub fn in_csr(&self) -> (&[u32], &[VertexId]) {
        (&self.in_offsets, &self.in_sources)
    }

    /// Rebuilds a graph from a forward CSR previously obtained via
    /// [`DiGraph::out_csr`]. The reverse adjacency is reconstructed with the
    /// same counting sort as the original build, so the result is
    /// bit-identical to the graph that was snapshotted.
    ///
    /// The input is untrusted (it typically comes from disk): shape, bounds
    /// and per-vertex ordering are validated, and the first defect is
    /// reported as an `Err(String)` for the caller to wrap in its own typed
    /// error.
    pub fn from_out_csr(out_offsets: Vec<u32>, out_targets: Vec<VertexId>) -> Result<Self, String> {
        Self::validate_forward_csr(&out_offsets, &out_targets)?;
        let n = out_offsets.len() - 1;

        // Reverse adjacency via counting sort, iterating edges in forward-CSR
        // order — the same order `from_sorted_edges` uses.
        let mut in_offsets = vec![0u32; n + 1];
        for &v in &out_targets {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as VertexId; out_targets.len()];
        for u in 0..n {
            let lo = out_offsets[u] as usize;
            let hi = out_offsets[u + 1] as usize;
            for &v in &out_targets[lo..hi] {
                let slot = cursor[v as usize];
                in_sources[slot as usize] = u as VertexId;
                cursor[v as usize] += 1;
            }
        }

        Ok(DiGraph {
            out_offsets: out_offsets.into(),
            out_targets: out_targets.into(),
            in_offsets: in_offsets.into(),
            in_sources: in_sources.into(),
        })
    }

    /// Assembles a graph from all four CSR columns at once — the v3
    /// zero-copy load path, where the columns borrow from a mapped snapshot
    /// and must not be rebuilt or copied.
    ///
    /// The forward CSR is validated exactly as in [`DiGraph::from_out_csr`].
    /// The reverse CSR is untrusted too; instead of rebuilding it (which
    /// would allocate `O(V + E)` and defeat the zero-copy load), the
    /// counting sort that *would* build it is replayed against the provided
    /// columns: every edge `(u, v)` must land on a slot whose stored source
    /// is `u`. A single pass with one `O(V)` cursor array proves the
    /// provided reverse adjacency is bit-identical to the rebuilt one.
    pub fn from_csr_cols(
        out_offsets: Col<u32>,
        out_targets: Col<VertexId>,
        in_offsets: Col<u32>,
        in_sources: Col<VertexId>,
    ) -> Result<Self, String> {
        Self::validate_forward_csr(&out_offsets, &out_targets)?;
        let n = out_offsets.len() - 1;
        let m = out_targets.len();
        if in_offsets.len() != n + 1 {
            return Err(format!(
                "csr: reverse offsets have {} entries, expected {}",
                in_offsets.len(),
                n + 1
            ));
        }
        if in_offsets[0] != 0 {
            return Err(format!("csr: reverse offsets[0] = {}, expected 0", in_offsets[0]));
        }
        if let Some(w) = in_offsets.windows(2).position(|w| w[0] > w[1]) {
            return Err(format!("csr: reverse offsets decrease at index {w}"));
        }
        if in_offsets[n] as usize != m || in_sources.len() != m {
            return Err(format!(
                "csr: reverse CSR claims {} edges ({} sources), forward has {m}",
                in_offsets[n],
                in_sources.len()
            ));
        }
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        for u in 0..n {
            let lo = out_offsets[u] as usize;
            let hi = out_offsets[u + 1] as usize;
            for &v in &out_targets[lo..hi] {
                let slot = cursor[v as usize];
                if slot >= in_offsets[v as usize + 1] || in_sources[slot as usize] != u as VertexId
                {
                    return Err(format!(
                        "csr: reverse adjacency does not correspond to forward edge \
                         ({u}, {v})"
                    ));
                }
                cursor[v as usize] = slot + 1;
            }
        }
        // Totals already match (both CSRs claim m edges and every replayed
        // slot stayed within its vertex's range), so cursor == in_offsets[1..]
        // here by construction.
        Ok(DiGraph { out_offsets, out_targets, in_offsets, in_sources })
    }

    /// Shape, bounds and per-vertex ordering checks shared by the two
    /// untrusted constructors.
    fn validate_forward_csr(out_offsets: &[u32], out_targets: &[VertexId]) -> Result<(), String> {
        if out_offsets.is_empty() {
            return Err("csr: empty offset array".into());
        }
        if out_offsets.len() - 1 > crate::MAX_VERTICES {
            return Err(format!(
                "csr: {} vertices exceed the u32 id width (max {})",
                out_offsets.len() - 1,
                crate::MAX_VERTICES
            ));
        }
        if out_offsets[0] != 0 {
            return Err(format!("csr: offsets[0] = {}, expected 0", out_offsets[0]));
        }
        if let Some(w) = out_offsets.windows(2).position(|w| w[0] > w[1]) {
            return Err(format!("csr: offsets decrease at index {w}"));
        }
        let n = out_offsets.len() - 1;
        let m = out_offsets[n] as usize;
        if m != out_targets.len() {
            return Err(format!(
                "csr: offsets claim {m} edges but {} targets present",
                out_targets.len()
            ));
        }
        for (v, w) in out_offsets.windows(2).enumerate() {
            let list = &out_targets[w[0] as usize..w[1] as usize];
            if let Some(&t) = list.iter().find(|&&t| (t as usize) >= n) {
                return Err(format!("csr: vertex {v} has out-neighbour {t} >= {n} vertices"));
            }
            if list.windows(2).any(|p| p[0] >= p[1]) {
                return Err(format!("csr: out-neighbours of vertex {v} not sorted+dedup"));
            }
        }
        Ok(())
    }

    /// Approximate heap footprint in bytes, for the index-size accounting of
    /// Table 4 in the paper.
    pub fn heap_bytes(&self) -> usize {
        self.out_offsets.len() * 4
            + self.out_targets.len() * 4
            + self.in_offsets.len() * 4
            + self.in_sources.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn diamond() -> crate::DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn adjacency_round_trip() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(3), &[] as &[u32]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[] as &[u32]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn has_edge_checks() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edge_iterator_in_source_order() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn reversal_flips_every_edge() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(r.has_edge(v, u));
        }
        assert_eq!(r.out_neighbors(3), &[1, 2]);
    }

    #[test]
    fn csr_parts_round_trip() {
        let g = diamond();
        let (offsets, targets) = g.out_csr();
        let h = crate::DiGraph::from_out_csr(offsets.to_vec(), targets.to_vec())
            .expect("valid csr must round-trip");
        assert_eq!(g.num_vertices(), h.num_vertices());
        for v in g.vertices() {
            assert_eq!(g.out_neighbors(v), h.out_neighbors(v));
            assert_eq!(g.in_neighbors(v), h.in_neighbors(v));
        }
    }

    #[test]
    fn from_out_csr_rejects_malformed() {
        // Offsets must start at zero.
        assert!(crate::DiGraph::from_out_csr(vec![1, 1], vec![]).is_err());
        // Offsets must be monotone.
        assert!(crate::DiGraph::from_out_csr(vec![0, 2, 1], vec![0, 0]).is_err());
        // Edge count must match target length.
        assert!(crate::DiGraph::from_out_csr(vec![0, 2], vec![0]).is_err());
        // Targets must be in range.
        assert!(crate::DiGraph::from_out_csr(vec![0, 1], vec![7]).is_err());
        // Adjacency lists must be sorted and deduplicated.
        assert!(crate::DiGraph::from_out_csr(vec![0, 2], vec![1, 0]).is_err());
        assert!(crate::DiGraph::from_out_csr(vec![0, 2], vec![1, 1]).is_err());
        // Empty offsets are rejected outright.
        assert!(crate::DiGraph::from_out_csr(vec![], vec![]).is_err());
    }

    #[test]
    fn from_csr_cols_round_trips_and_rejects_tampering() {
        let g = diamond();
        let (oo, ot) = g.out_csr();
        let (io, is_) = g.in_csr();
        let cols = |src: &[u32]| crate::Col::from(src.to_vec());
        let h = crate::DiGraph::from_csr_cols(cols(oo), cols(ot), cols(io), cols(is_))
            .expect("faithful columns must assemble");
        for v in g.vertices() {
            assert_eq!(g.out_neighbors(v), h.out_neighbors(v));
            assert_eq!(g.in_neighbors(v), h.in_neighbors(v));
        }

        // Reordering within one vertex's in-list breaks the counting-sort
        // correspondence even though the multiset of edges is unchanged.
        let mut shuffled = is_.to_vec();
        shuffled.swap(2, 3);
        assert!(
            crate::DiGraph::from_csr_cols(cols(oo), cols(ot), cols(io), cols(&shuffled)).is_err()
        );
        // Reverse shape defects are typed errors, not panics.
        assert!(crate::DiGraph::from_csr_cols(cols(oo), cols(ot), cols(&io[..3]), cols(is_))
            .is_err());
        let mut bad_counts = io.to_vec();
        bad_counts[4] = 3;
        assert!(
            crate::DiGraph::from_csr_cols(cols(oo), cols(ot), cols(&bad_counts), cols(is_))
                .is_err()
        );
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.num_vertices(), 3);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 0);
            assert_eq!(g.in_degree(v), 0);
        }
    }
}
