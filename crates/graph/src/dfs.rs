//! DFS spanning forests with global post-order numbering.
//!
//! The interval-based labeling of Section 3 is built on a *spanning forest*
//! of the (DAG) input: geosocial networks have many vertices with only
//! outgoing edges, each of which roots a separate spanning tree (Section
//! 3.2). This module computes such a forest by depth-first search.
//!
//! Using a DFS forest (rather than an arbitrary spanning forest) matters for
//! the correctness of Algorithm 1: on a DAG, every non-tree edge `(v, u)` of
//! a DFS forest satisfies `post(u) < post(v)` (there are no back edges), so
//! processing non-tree edges by increasing source post-order guarantees the
//! target's labels are already final. See `gsr-reach::interval`.

use crate::{DiGraph, VertexId};

/// Sentinel for "no parent" in [`SpanningForest::parent`].
pub const NO_PARENT: VertexId = VertexId::MAX;

/// How the DFS chooses among candidate vertices — the knob behind the
/// paper's future-work question on "the role of optimal (e.g., shallow)
/// spanning forests in the construction of the interval-based labeling"
/// (Section 8). The strategy orders both the root sequence and each
/// vertex's out-neighbour visit order; different orders change which edges
/// become tree edges and therefore how many extra labels the non-tree
/// edges generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForestStrategy {
    /// Ascending vertex id (CSR order) — the deterministic default.
    #[default]
    VertexOrder,
    /// Visit high-out-degree neighbours first: hubs become internal tree
    /// vertices, so their large descendant sets are covered by tree
    /// intervals instead of propagated labels.
    HighDegreeFirst,
    /// Visit low-out-degree neighbours first (the adversarial counterpart).
    LowDegreeFirst,
    /// A seeded pseudo-random order, for randomized ensembles.
    Random(u64),
}

/// A DFS spanning forest of a DAG with 1-based global post-order numbers.
///
/// ```
/// use gsr_graph::dfs::SpanningForest;
/// use gsr_graph::graph_from_edges;
///
/// let g = graph_from_edges(3, &[(0, 1), (0, 2)]);
/// let f = SpanningForest::of(&g);
/// assert_eq!(f.roots, vec![0]);
/// assert_eq!(f.post[0], 3, "the root finishes last");
/// ```
#[derive(Debug, Clone)]
pub struct SpanningForest {
    /// `post[v]` is the post-order number of `v`, in `1..=n`.
    pub post: Vec<u32>,
    /// `post_to_vertex[p - 1]` is the vertex with post-order number `p`.
    pub post_to_vertex: Vec<VertexId>,
    /// `parent[v]` is the tree parent of `v`, or [`NO_PARENT`] for roots.
    pub parent: Vec<VertexId>,
    /// The tree roots, in the order their trees were traversed.
    pub roots: Vec<VertexId>,
}

impl SpanningForest {
    /// Builds the DFS spanning forest of `g`.
    ///
    /// Trees are rooted at the vertices with in-degree zero (the paper's
    /// "vertices with only outgoing edges"), visited in ascending id order;
    /// any vertex still unvisited afterwards (possible only when `g` has a
    /// cycle, which the condensation rules out) roots an extra tree so the
    /// forest always spans all vertices.
    pub fn of(g: &DiGraph) -> SpanningForest {
        Self::of_with(g, ForestStrategy::VertexOrder)
    }

    /// Builds the DFS spanning forest with an explicit visit strategy.
    pub fn of_with(g: &DiGraph, strategy: ForestStrategy) -> SpanningForest {
        let n = g.num_vertices();
        let order = visit_order(g, strategy);
        let mut post = vec![0u32; n];
        let mut post_to_vertex = vec![0 as VertexId; n];
        let mut parent = vec![NO_PARENT; n];
        let mut roots = Vec::new();
        let mut visited = vec![false; n];
        let mut counter = 0u32;

        // Frames: (vertex, position in its out-neighbour list).
        let mut frames: Vec<(VertexId, usize)> = Vec::new();

        let run_tree = |root: VertexId,
                            visited: &mut Vec<bool>,
                            parent: &mut Vec<VertexId>,
                            post: &mut Vec<u32>,
                            post_to_vertex: &mut Vec<VertexId>,
                            counter: &mut u32,
                            frames: &mut Vec<(VertexId, usize)>| {
            visited[root as usize] = true;
            frames.push((root, 0));
            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                let neighbors = order.neighbors(v);
                if *pos < neighbors.len() {
                    let w = neighbors[*pos];
                    *pos += 1;
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        parent[w as usize] = v;
                        frames.push((w, 0));
                    }
                } else {
                    frames.pop();
                    *counter += 1;
                    post[v as usize] = *counter;
                    post_to_vertex[(*counter - 1) as usize] = v;
                }
            }
        };

        for &v in &order.roots {
            if !visited[v as usize] {
                roots.push(v);
                run_tree(v, &mut visited, &mut parent, &mut post, &mut post_to_vertex, &mut counter, &mut frames);
            }
        }
        // Safety net for non-DAG inputs: cover any remaining vertices.
        for v in 0..n as VertexId {
            if !visited[v as usize] {
                roots.push(v);
                run_tree(v, &mut visited, &mut parent, &mut post, &mut post_to_vertex, &mut counter, &mut frames);
            }
        }

        SpanningForest { post, post_to_vertex, parent, roots }
    }

    /// Number of vertices spanned.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.post.len()
    }

    /// Whether edge `(u, v)` is a tree edge of this forest.
    #[inline]
    pub fn is_tree_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.parent[v as usize] == u
    }

    /// Iterator over the tree ancestors of `v` (excluding `v` itself),
    /// closest first.
    pub fn ancestors(&self, v: VertexId) -> Ancestors<'_> {
        Ancestors { parent: &self.parent, current: self.parent[v as usize] }
    }

    /// The non-tree edges of `g` with respect to this forest, sorted by the
    /// post-order number of their *source* vertex (ascending) — the
    /// processing order of Algorithm 1's final phase.
    pub fn non_tree_edges_by_source_post(&self, g: &DiGraph) -> Vec<(VertexId, VertexId)> {
        let mut edges: Vec<(VertexId, VertexId)> = g
            .edges()
            .filter(|&(u, v)| !self.is_tree_edge(u, v))
            .collect();
        edges.sort_unstable_by_key(|&(u, _)| self.post[u as usize]);
        edges
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.post.len() * 4
            + self.post_to_vertex.len() * 4
            + self.parent.len() * 4
            + self.roots.len() * 4
    }
}

/// Precomputed visit orders for one DFS run.
struct VisitOrder<'a> {
    g: &'a DiGraph,
    /// Root visit sequence (in-degree-0 vertices, strategy-ordered).
    roots: Vec<VertexId>,
    /// Reordered adjacency, or `None` to use CSR order directly.
    adjacency: Option<(Vec<u32>, Vec<VertexId>)>,
}

impl VisitOrder<'_> {
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match &self.adjacency {
            None => self.g.out_neighbors(v),
            Some((offsets, targets)) => {
                let lo = offsets[v as usize] as usize;
                let hi = offsets[v as usize + 1] as usize;
                &targets[lo..hi]
            }
        }
    }
}

fn visit_order(g: &DiGraph, strategy: ForestStrategy) -> VisitOrder<'_> {
    let n = g.num_vertices();
    let mut roots: Vec<VertexId> =
        (0..n as VertexId).filter(|&v| g.in_degree(v) == 0).collect();

    let adjacency = match strategy {
        ForestStrategy::VertexOrder => None,
        ForestStrategy::HighDegreeFirst | ForestStrategy::LowDegreeFirst => {
            let descending = strategy == ForestStrategy::HighDegreeFirst;
            let key = |v: VertexId| {
                let d = g.out_degree(v) as i64;
                if descending {
                    (-d, v)
                } else {
                    (d, v)
                }
            };
            roots.sort_unstable_by_key(|&v| key(v));
            let mut offsets = Vec::with_capacity(n + 1);
            let mut targets = Vec::with_capacity(g.num_edges());
            offsets.push(0u32);
            for v in 0..n as VertexId {
                let mut adj: Vec<VertexId> = g.out_neighbors(v).to_vec();
                adj.sort_unstable_by_key(|&w| key(w));
                targets.extend_from_slice(&adj);
                offsets.push(targets.len() as u32);
            }
            Some((offsets, targets))
        }
        ForestStrategy::Random(seed) => {
            let mut state = seed ^ 0x9E3779B97F4A7C15;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in (1..roots.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                roots.swap(i, j);
            }
            let mut offsets = Vec::with_capacity(n + 1);
            let mut targets = Vec::with_capacity(g.num_edges());
            offsets.push(0u32);
            for v in 0..n as VertexId {
                let mut adj: Vec<VertexId> = g.out_neighbors(v).to_vec();
                for i in (1..adj.len()).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    adj.swap(i, j);
                }
                targets.extend_from_slice(&adj);
                offsets.push(targets.len() as u32);
            }
            Some((offsets, targets))
        }
    };

    VisitOrder { g, roots, adjacency }
}

/// Iterator over tree ancestors; see [`SpanningForest::ancestors`].
pub struct Ancestors<'a> {
    parent: &'a [VertexId],
    current: VertexId,
}

impl Iterator for Ancestors<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        if self.current == NO_PARENT {
            return None;
        }
        let v = self.current;
        self.current = self.parent[v as usize];
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn post_orders_are_a_permutation() {
        let g = graph_from_edges(6, &[(0, 1), (0, 2), (2, 3), (4, 5), (1, 3)]);
        let f = SpanningForest::of(&g);
        let mut posts: Vec<u32> = f.post.clone();
        posts.sort_unstable();
        assert_eq!(posts, (1..=6).collect::<Vec<_>>());
        for v in 0..6u32 {
            assert_eq!(f.post_to_vertex[(f.post[v as usize] - 1) as usize], v);
        }
    }

    #[test]
    fn parents_form_trees_rooted_at_sources() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (4, 3)]);
        let f = SpanningForest::of(&g);
        assert_eq!(f.roots, vec![0, 4]);
        assert_eq!(f.parent[0], NO_PARENT);
        assert_eq!(f.parent[4], NO_PARENT);
        // Vertex 3 was discovered through exactly one of its in-edges.
        assert!([1u32, 2, 4].contains(&f.parent[3]));
    }

    #[test]
    fn dag_non_tree_edges_point_to_smaller_post() {
        // Non-tree edges of a DFS forest on a DAG always satisfy
        // post(target) < post(source): the property the labeling relies on.
        let g = graph_from_edges(
            7,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4), (5, 6), (5, 2)],
        );
        let f = SpanningForest::of(&g);
        for (u, v) in f.non_tree_edges_by_source_post(&g) {
            assert!(
                f.post[v as usize] < f.post[u as usize],
                "non-tree edge ({u},{v}) has post {} >= {}",
                f.post[v as usize],
                f.post[u as usize]
            );
        }
    }

    #[test]
    fn non_tree_edges_sorted_by_source_post() {
        let g = graph_from_edges(
            7,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4), (5, 6), (5, 2)],
        );
        let f = SpanningForest::of(&g);
        let e = f.non_tree_edges_by_source_post(&g);
        assert!(e.windows(2).all(|w| f.post[w[0].0 as usize] <= f.post[w[1].0 as usize]));
        // Tree + non-tree edges partition the edge set.
        let tree_count = g.edges().filter(|&(u, v)| f.is_tree_edge(u, v)).count();
        assert_eq!(tree_count + e.len(), g.num_edges());
    }

    #[test]
    fn ancestor_chain_walks_to_root() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let f = SpanningForest::of(&g);
        let chain: Vec<_> = f.ancestors(3).collect();
        assert_eq!(chain, vec![2, 1, 0]);
        assert_eq!(f.ancestors(0).count(), 0);
    }

    #[test]
    fn ancestors_have_larger_posts() {
        let g = graph_from_edges(6, &[(0, 1), (0, 2), (2, 3), (2, 4), (4, 5)]);
        let f = SpanningForest::of(&g);
        for v in 0..6u32 {
            for a in f.ancestors(v) {
                assert!(f.post[a as usize] > f.post[v as usize]);
            }
        }
    }

    #[test]
    fn strategies_produce_valid_forests() {
        let g = graph_from_edges(
            9,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4), (5, 6), (5, 2), (7, 8)],
        );
        for strategy in [
            ForestStrategy::VertexOrder,
            ForestStrategy::HighDegreeFirst,
            ForestStrategy::LowDegreeFirst,
            ForestStrategy::Random(1),
            ForestStrategy::Random(99),
        ] {
            let f = SpanningForest::of_with(&g, strategy);
            let mut posts = f.post.clone();
            posts.sort_unstable();
            assert_eq!(posts, (1..=9).collect::<Vec<_>>(), "{strategy:?}");
            // Non-tree edges still point to smaller posts (DFS on a DAG).
            for (u, v) in f.non_tree_edges_by_source_post(&g) {
                assert!(f.post[v as usize] < f.post[u as usize], "{strategy:?}");
            }
            // Parents are real edges.
            for v in g.vertices() {
                let p = f.parent[v as usize];
                if p != NO_PARENT {
                    assert!(g.has_edge(p, v), "{strategy:?}: parent edge missing");
                }
            }
        }
    }

    #[test]
    fn high_degree_first_visits_hubs_early() {
        // 0 -> {1, 2}; 1 is a hub with many children, 2 is a leaf. Under
        // HighDegreeFirst, 1 must be visited before 2, making 2 finish
        // *after* the hub subtree.
        let g = graph_from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (1, 5), (1, 6)]);
        let f = SpanningForest::of_with(&g, ForestStrategy::HighDegreeFirst);
        assert!(f.post[1] < f.post[2], "hub subtree finishes before the leaf");
        let f2 = SpanningForest::of_with(&g, ForestStrategy::LowDegreeFirst);
        assert!(f2.post[2] < f2.post[1], "leaf first under LowDegreeFirst");
    }

    #[test]
    fn random_strategy_is_seed_deterministic() {
        let g = graph_from_edges(8, &[(0, 1), (0, 2), (2, 3), (2, 4), (4, 5), (0, 6), (6, 7)]);
        let a = SpanningForest::of_with(&g, ForestStrategy::Random(42));
        let b = SpanningForest::of_with(&g, ForestStrategy::Random(42));
        assert_eq!(a.post, b.post);
    }

    #[test]
    fn covers_cyclic_leftovers() {
        // A pure cycle has no in-degree-0 vertex; the safety net must still
        // span it.
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let f = SpanningForest::of(&g);
        let mut posts = f.post.clone();
        posts.sort_unstable();
        assert_eq!(posts, vec![1, 2, 3]);
        assert_eq!(f.roots.len(), 1);
    }
}
