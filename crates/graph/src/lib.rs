//! Directed-graph substrate for the geosocial reachability library.
//!
//! The paper models a (geo)social network as a directed graph `G = (V, E)`
//! (Section 2.1). This crate provides:
//!
//! * [`DiGraph`] — a compact CSR (compressed sparse row) representation with
//!   both forward and reverse adjacency, built through [`GraphBuilder`];
//! * [`scc`] — an iterative Tarjan strongly-connected-components algorithm
//!   and the [`scc::Condensation`] of an arbitrary graph into a DAG, the
//!   standard preprocessing step of all graph-reachability indexes
//!   (Section 5 of the paper);
//! * [`topo`] — Kahn topological ordering over DAGs;
//! * [`dfs`] — DFS spanning forests with global post-order numbering, the
//!   backbone of the interval-based labeling scheme (Section 3);
//! * [`stats`] — degree statistics used by the workload generators
//!   (query vertices are bucketed by out-degree in Section 6.1);
//! * [`par`] — a scoped-thread work pool used by the parallel (but
//!   deterministic) index constructions across the workspace;
//! * [`col`] — the zero-copy [`Col`] column type every flat index arena is
//!   stored in, so v3 snapshots can be memory-mapped and served without
//!   deserialization.
//!
//! `unsafe` is denied crate-wide and allowed only inside [`col`], which
//! contains the two reinterpretation casts the zero-copy snapshot path
//! needs (with the safety argument documented there).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
mod builder;
pub mod col;
mod csr;
pub mod dfs;
pub mod mem;
pub mod par;
pub mod reduction;
pub mod scc;
pub mod stats;
pub mod topo;

pub use builder::{graph_from_edges, GraphBuilder};
pub use col::{bytes_of, Col, Pod, StableBytes};
pub use csr::DiGraph;
pub use mem::HeapBytes;

/// Identifier of a vertex: a dense index in `0..graph.num_vertices()`.
pub type VertexId = u32;

/// Largest vertex count representable under the `u32` id width.
///
/// Ids are dense indices in `0..V`, so `V` may be at most `u32::MAX + 1`;
/// we cap at `u32::MAX` so that `V` itself also fits in a `u32` (snapshot
/// headers and CSR offsets store it as one). Builders and loaders must
/// reject — never truncate — vertex counts above this.
pub const MAX_VERTICES: usize = u32::MAX as usize;
