//! Heap-footprint accounting shared by every index in the workspace.
//!
//! The paper's Table 4 compares methods by index size; the `repro memory`
//! experiment and the server `STATS` reply report the same numbers. Each
//! index implements [`HeapBytes`] by summing the footprints of its owned
//! buffers, so the accounting stays honest as layouts change.

/// Number of bytes a value owns on the heap (excluding `size_of::<Self>()`
/// itself, which lives wherever the value does).
///
/// Implementations count capacity actually reachable from the value:
/// `Vec`s report `len * size_of::<T>()` (the retained payload — spare
/// capacity is a transient of construction and is not part of the layout
/// contract being measured).
pub trait HeapBytes {
    /// Heap bytes owned by `self`.
    fn heap_bytes(&self) -> usize;
}

impl<T> HeapBytes for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl<T: HeapBytes + ?Sized> HeapBytes for &T {
    fn heap_bytes(&self) -> usize {
        (**self).heap_bytes()
    }
}

impl<T: HeapBytes + ?Sized> HeapBytes for std::sync::Arc<T> {
    /// An `Arc` shares its payload; for index accounting we attribute the
    /// full payload to each handle (indexes never share sections with other
    /// indexes except via explicit `clone()`, where double-counting is the
    /// honest answer to "what does this index keep alive?").
    fn heap_bytes(&self) -> usize {
        (**self).heap_bytes()
    }
}

impl HeapBytes for crate::DiGraph {
    fn heap_bytes(&self) -> usize {
        self.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_counts_len_not_capacity() {
        let mut v: Vec<u32> = Vec::with_capacity(100);
        v.extend([1, 2, 3]);
        assert_eq!(HeapBytes::heap_bytes(&v), 12);
    }

    #[test]
    fn arc_reports_payload() {
        let a = std::sync::Arc::new(vec![0u64; 4]);
        assert_eq!(a.heap_bytes(), 32);
    }
}
