//! A minimal scoped-thread work pool for deterministic parallel
//! construction.
//!
//! Index builds in this workspace decompose into batches of *independent*
//! per-item jobs (one DFS traversal per GRAIL label, one interval union per
//! DAG vertex within a level, one sort per STR slab). This module runs such
//! batches across N OS threads with `std::thread::scope` — no runtime
//! dependencies, no `unsafe` — and places each result by its input index,
//! so the output is identical to the sequential loop regardless of how the
//! scheduler interleaves workers. That placement discipline is what lets
//! `tests/parallel_determinism.rs` assert byte-identical indexes at every
//! thread count.
//!
//! Work is distributed by an atomic cursor (work stealing in its simplest
//! form) rather than pre-chunking, so a few expensive items cannot strand
//! the other workers idle.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested thread count: `0` means "use the machine's
/// available parallelism", anything else is taken as-is.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Runs `f(i)` for every `i in 0..n` across `threads` workers and returns
/// the results in index order.
///
/// With `threads <= 1` (after [`effective_threads`] resolution of `0`) the
/// loop runs inline on the calling thread — no spawn, no allocation beyond
/// the output — so the sequential path stays zero-overhead.
pub fn map_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_with(threads, n, || (), move |(), i| f(i))
}

/// Like [`map_indexed`], but each worker first builds private scratch state
/// with `init` and threads it through its jobs — the pattern for reusable
/// buffers that must not be shared across workers.
pub fn map_indexed_with<S, T, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = effective_threads(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut state = init();
                let mut produced: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    produced.push((i, f(&mut state, i)));
                }
                produced
            }));
        }
        for handle in handles {
            // A worker panic propagates here, failing the whole build just
            // like the sequential loop would.
            for (i, value) in handle.join().expect("worker thread panicked") {
                slots[i] = Some(value);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly once"))
        .collect()
}

/// Consuming variant of [`map_indexed`]: moves each item of `items` into
/// exactly one `f` call and returns the results in input order. For jobs
/// that take ownership of their input (e.g. recursive partitioning of
/// owned buffers).
pub fn map_consume<I, T, F>(threads: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let threads = effective_threads(threads).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<std::sync::Mutex<Option<I>>> =
        items.into_iter().map(|item| std::sync::Mutex::new(Some(item))).collect();
    map_indexed(threads, slots.len(), |i| {
        let item = slots[i]
            .lock()
            .expect("no worker panics while holding an item lock")
            .take()
            .expect("each item consumed exactly once");
        f(item)
    })
}

/// Splits `data` into at most `threads` contiguous chunks and runs
/// `f(chunk_start, chunk)` on each concurrently. Chunks are disjoint
/// `&mut` views, so workers may mutate freely; `chunk_start` is the offset
/// of the chunk's first element in `data`.
///
/// Used where results are written in place (batch query answers, flattened
/// label rows) instead of collected.
pub fn for_each_chunk_mut<T, F>(threads: usize, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let threads = effective_threads(threads).min(data.len().max(1));
    if threads <= 1 || data.len() <= 1 {
        f(0, data);
        return;
    }
    let chunk_len = data.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(ci * chunk_len, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_requests_machine_parallelism() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn map_indexed_preserves_order_at_every_thread_count() {
        let expected: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1, 2, 3, 4, 8] {
            let got = map_indexed(threads, 257, |i| i * i);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_singleton() {
        assert_eq!(map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn map_indexed_with_gives_each_worker_private_state() {
        // Each worker's scratch accumulates only its own jobs; results must
        // still come back in index order.
        let got = map_indexed_with(
            4,
            100,
            Vec::<usize>::new,
            |scratch, i| {
                scratch.push(i);
                (i, scratch.len())
            },
        );
        for (idx, (i, seen)) in got.iter().enumerate() {
            assert_eq!(idx, *i);
            assert!(*seen >= 1 && *seen <= 100);
        }
    }

    #[test]
    fn map_indexed_uneven_workloads_balance() {
        // Heavily skewed job costs must still produce ordered output.
        let got = map_indexed(4, 64, |i| {
            let spin = if i == 0 { 100_000 } else { 10 };
            (0..spin).fold(i as u64, |acc, x| acc.wrapping_add(x))
        });
        let expected: Vec<u64> = (0..64)
            .map(|i| {
                let spin = if i == 0 { 100_000u64 } else { 10 };
                (0..spin).fold(i as u64, |acc, x| acc.wrapping_add(x))
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn map_consume_moves_each_item_once() {
        let items: Vec<Vec<u32>> = (0..40).map(|i| vec![i; 3]).collect();
        for threads in [1, 2, 4] {
            let got = map_consume(threads, items.clone(), |v| v.into_iter().sum::<u32>());
            let expected: Vec<u32> = (0..40).map(|i| i * 3).collect();
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunks_cover_slice_exactly_once() {
        let mut data = vec![0u32; 1000];
        for threads in [1, 2, 4, 8] {
            data.fill(0);
            for_each_chunk_mut(threads, &mut data, |start, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x += (start + k) as u32;
                }
            });
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, i as u32, "threads = {threads}");
            }
        }
    }
}
