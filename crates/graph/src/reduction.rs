//! DAG reduction: transitive reduction and equivalence reduction.
//!
//! The paper's related work (Section 7.1) closes with "directed acyclic
//! graph reduction was further considered to accelerate reachability
//! queries. The idea is to reduce the size of the input graph by computing
//! its transitive reduction followed by the equivalence reduction." Both
//! reductions preserve the reachability relation while shrinking the input
//! every index is built on:
//!
//! * [`transitive_reduction`] deletes every edge implied by a longer path;
//! * [`equivalence_reduction`] merges vertices with identical
//!   in-neighbourhoods *and* out-neighbourhoods (they are reachability-
//!   equivalent up to themselves).

use crate::bitset::BitMatrix;
use crate::{DiGraph, GraphBuilder, VertexId};
use std::collections::HashMap;

/// Removes every edge `(u, v)` for which another path `u -> .. -> v` of
/// length ≥ 2 exists. The result is the unique minimal subgraph of a DAG
/// with the same reachability relation.
///
/// Runs in `O(|E| · |V| / 64)` using a bitset closure; intended for
/// condensation-sized inputs (up to a few hundred thousand vertices).
///
/// # Panics
/// Panics when `g` has a cycle (reduce the condensation instead).
pub fn transitive_reduction(g: &DiGraph) -> DiGraph {
    let order = crate::topo::topological_order(g).expect("transitive reduction needs a DAG");
    let n = g.num_vertices();

    // closure[v] = vertices reachable from v via paths of length >= 1.
    let mut closure = BitMatrix::new(n);
    for &v in order.iter().rev() {
        for &w in g.out_neighbors(v) {
            closure.set(v as usize, w as usize);
            closure.union_row(v as usize, w as usize);
        }
    }

    // Edge (u, v) is redundant iff some other out-neighbour w reaches v.
    let mut b = GraphBuilder::with_capacity(n, g.num_edges());
    for v in 0..n as VertexId {
        b.ensure_vertex(v);
    }
    for (u, v) in g.edges() {
        let implied = g
            .out_neighbors(u)
            .iter()
            .any(|&w| w != v && closure.get(w as usize, v as usize));
        if !implied {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Merges vertices whose in-neighbour and out-neighbour sets are identical.
/// Such vertices reach exactly the same set of other vertices and are
/// reached by exactly the same set, so one representative suffices for any
/// reachability index; the mapping lets answers be projected back:
/// `reaches(u, v) = (u == v) || (rep[u] != rep[v] && reaches'(rep[u], rep[v]))`.
/// (On a DAG two distinct twins can never reach each other — a connecting
/// path would close a cycle through their shared neighbourhoods — which is
/// why the same-class case projects to `false`.)
///
/// Returns the reduced graph and `rep[v]`, the representative (new id) of
/// every original vertex.
pub fn equivalence_reduction(g: &DiGraph) -> (DiGraph, Vec<VertexId>) {
    let n = g.num_vertices();

    // Group by (out-neighbours, in-neighbours). Both slices are sorted by
    // CSR construction, so they hash consistently.
    let mut groups: HashMap<(&[VertexId], &[VertexId]), Vec<VertexId>> = HashMap::new();
    for v in 0..n as VertexId {
        groups
            .entry((g.out_neighbors(v), g.in_neighbors(v)))
            .or_default()
            .push(v);
    }

    // Representatives keep their relative order for determinism.
    let mut leaders: Vec<VertexId> = groups.values().map(|members| members[0]).collect();
    leaders.sort_unstable();
    let mut new_id = vec![0 as VertexId; n];
    let mut leader_index: HashMap<VertexId, VertexId> = HashMap::new();
    for (i, &l) in leaders.iter().enumerate() {
        leader_index.insert(l, i as VertexId);
    }
    for members in groups.values() {
        let leader = leader_index[&members[0]];
        for &m in members {
            new_id[m as usize] = leader;
        }
    }

    let mut b = GraphBuilder::with_capacity(leaders.len(), g.num_edges());
    for v in 0..leaders.len() as VertexId {
        b.ensure_vertex(v);
    }
    for (u, v) in g.edges() {
        let (nu, nv) = (new_id[u as usize], new_id[v as usize]);
        if nu != nv {
            b.add_edge(nu, nv);
        }
    }
    (b.build(), new_id)
}



#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn reaches(g: &DiGraph, s: VertexId, t: VertexId) -> bool {
        if s == t {
            return true;
        }
        let mut visited = vec![false; g.num_vertices()];
        let mut stack = vec![s];
        visited[s as usize] = true;
        while let Some(v) = stack.pop() {
            for &w in g.out_neighbors(v) {
                if w == t {
                    return true;
                }
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        false
    }

    #[test]
    fn diamond_with_shortcut() {
        // 0 -> {1, 2} -> 3 plus the redundant shortcut 0 -> 3.
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        let reduced = transitive_reduction(&g);
        assert_eq!(reduced.num_edges(), 4, "the shortcut goes away");
        assert!(!reduced.has_edge(0, 3));
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(reaches(&g, u, v), reaches(&reduced, u, v));
            }
        }
    }

    #[test]
    fn chain_of_shortcuts() {
        // Complete DAG over 6 vertices reduces to a simple chain.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let g = graph_from_edges(6, &edges);
        let reduced = transitive_reduction(&g);
        assert_eq!(reduced.num_edges(), 5);
    }

    #[test]
    fn equivalence_merges_twins() {
        // Vertices 1 and 2 have identical neighbourhoods ({0} in, {3} out).
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (reduced, rep) = equivalence_reduction(&g);
        assert_eq!(reduced.num_vertices(), 3);
        assert_eq!(rep[1], rep[2], "twins share a representative");
        assert_ne!(rep[0], rep[3]);
        // Reachability is preserved through the projection rule.
        for u in g.vertices() {
            for v in g.vertices() {
                let projected = u == v
                    || (rep[u as usize] != rep[v as usize]
                        && reaches(&reduced, rep[u as usize], rep[v as usize]));
                assert_eq!(reaches(&g, u, v), projected, "({u}, {v})");
            }
        }
    }

    #[test]
    fn twins_never_reach_each_other_in_a_dag() {
        // The projection rule's justification, checked on random DAGs.
        let mut state = 31u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _case in 0..30 {
            let n = 4 + (rnd() % 16) as usize;
            let edges: Vec<(u32, u32)> = (0..(rnd() % 60) as usize)
                .filter_map(|_| {
                    let a = (rnd() % n as u64) as u32;
                    let b = (rnd() % n as u64) as u32;
                    (a != b).then(|| (a.min(b), a.max(b)))
                })
                .collect();
            let g = graph_from_edges(n, &edges);
            let (_, rep) = equivalence_reduction(&g);
            for u in g.vertices() {
                for v in g.vertices() {
                    if u != v && rep[u as usize] == rep[v as usize] {
                        assert!(!reaches(&g, u, v), "twins ({u}, {v}) must be unreachable");
                    }
                }
            }
        }
    }

    #[test]
    fn no_twins_means_no_change() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (reduced, rep) = equivalence_reduction(&g);
        assert_eq!(reduced.num_vertices(), 4);
        let mut sorted = rep.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn isolated_vertices_collapse_to_one() {
        let g = graph_from_edges(5, &[(0, 1)]);
        let (reduced, rep) = equivalence_reduction(&g);
        // Vertices 2, 3, 4 are all isolated (empty neighbourhoods).
        assert_eq!(rep[2], rep[3]);
        assert_eq!(rep[3], rep[4]);
        assert_eq!(reduced.num_vertices(), 3);
    }
}
