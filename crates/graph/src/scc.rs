//! Strongly connected components and graph condensation.
//!
//! Graph-reachability indexes assume a DAG input; arbitrary graphs are first
//! condensed by collapsing every strongly connected component (SCC) into a
//! super-vertex (Section 5 of the paper). Every pair of vertices inside an
//! SCC reaches each other by definition, so reachability on the original
//! graph reduces to reachability between components on the condensation DAG.

use crate::{DiGraph, GraphBuilder, VertexId};

/// Identifier of a strongly connected component (dense index).
pub type CompId = u32;

/// The result of running Tarjan's algorithm: the component id of every
/// vertex, with components numbered in *reverse topological order of
/// discovery* (Tarjan emits a component only after all components reachable
/// from it); we renumber so that ids are arbitrary but dense.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// `comp_of[v]` is the component containing vertex `v`.
    pub comp_of: Vec<CompId>,
    /// Total number of components.
    pub num_components: usize,
}

/// Computes the strongly connected components of `g` using an iterative
/// Tarjan's algorithm (explicit stack; no recursion, so million-vertex
/// inputs cannot overflow the call stack).
pub fn tarjan_scc(g: &DiGraph) -> SccResult {
    let n = g.num_vertices();
    const UNVISITED: u32 = u32::MAX;

    let mut index = vec![UNVISITED; n]; // discovery index
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp_of = vec![0 as CompId; n];
    let mut stack: Vec<VertexId> = Vec::new();
    let mut next_index = 0u32;
    let mut num_components = 0usize;

    // Call-stack frames: (vertex, next-out-neighbour position).
    let mut frames: Vec<(VertexId, usize)> = Vec::new();

    for start in 0..n as VertexId {
        if index[start as usize] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let neighbors = g.out_neighbors(v);
            if *pos < neighbors.len() {
                let w = neighbors[*pos];
                *pos += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of a component: pop down to it.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = num_components as CompId;
                        if w == v {
                            break;
                        }
                    }
                    num_components += 1;
                }
            }
        }
    }

    SccResult { comp_of, num_components }
}

/// The condensation of a directed graph: every SCC collapsed into one
/// super-vertex, yielding a DAG, together with the membership mapping.
///
/// ```
/// use gsr_graph::graph_from_edges;
/// use gsr_graph::scc::Condensation;
///
/// // 0 <-> 1 form a cycle; 2 hangs off it.
/// let g = graph_from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
/// let c = Condensation::of(&g);
/// assert_eq!(c.num_components(), 2);
/// assert_eq!(c.comp(0), c.comp(1));
/// assert_eq!(c.members(c.comp(0)), &[0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Condensation {
    /// The condensation DAG over component ids.
    pub dag: DiGraph,
    /// `comp_of[v]` is the component of original vertex `v`.
    pub comp_of: Vec<CompId>,
    /// CSR member lists: members of component `c` are
    /// `member_data[member_offsets[c] .. member_offsets[c + 1]]`.
    member_offsets: Vec<u32>,
    member_data: Vec<VertexId>,
}

impl Condensation {
    /// Condenses `g` into its SCC DAG.
    pub fn of(g: &DiGraph) -> Condensation {
        let SccResult { comp_of, num_components } = tarjan_scc(g);

        // Member lists via counting sort on component id.
        let mut member_offsets = vec![0u32; num_components + 1];
        for &c in &comp_of {
            member_offsets[c as usize + 1] += 1;
        }
        for i in 0..num_components {
            member_offsets[i + 1] += member_offsets[i];
        }
        let mut cursor = member_offsets.clone();
        let mut member_data = vec![0 as VertexId; comp_of.len()];
        for (v, &c) in comp_of.iter().enumerate() {
            member_data[cursor[c as usize] as usize] = v as VertexId;
            cursor[c as usize] += 1;
        }

        // DAG edges: project each original edge; drop intra-component edges.
        let mut b = GraphBuilder::with_capacity(num_components, g.num_edges());
        for (u, v) in g.edges() {
            let (cu, cv) = (comp_of[u as usize], comp_of[v as usize]);
            if cu != cv {
                b.add_edge(cu, cv);
            }
        }
        let dag = b.build();

        Condensation { dag, comp_of, member_offsets, member_data }
    }

    /// Number of components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.member_offsets.len() - 1
    }

    /// Component of original vertex `v`.
    #[inline]
    pub fn comp(&self, v: VertexId) -> CompId {
        self.comp_of[v as usize]
    }

    /// The original vertices belonging to component `c`.
    #[inline]
    pub fn members(&self, c: CompId) -> &[VertexId] {
        let lo = self.member_offsets[c as usize] as usize;
        let hi = self.member_offsets[c as usize + 1] as usize;
        &self.member_data[lo..hi]
    }

    /// Size of the largest component — the "# vertices in largest SCC"
    /// column of Table 3 in the paper.
    pub fn largest_component_size(&self) -> usize {
        (0..self.num_components()).map(|c| self.members(c as CompId).len()).max().unwrap_or(0)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.dag.heap_bytes()
            + self.comp_of.len() * 4
            + self.member_offsets.len() * 4
            + self.member_data.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::topo;

    #[test]
    fn dag_is_its_own_condensation() {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let c = Condensation::of(&g);
        assert_eq!(c.num_components(), 4);
        assert_eq!(c.dag.num_edges(), 4);
        assert_eq!(c.largest_component_size(), 1);
    }

    #[test]
    fn simple_cycle_collapses() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let c = Condensation::of(&g);
        assert_eq!(c.num_components(), 1);
        assert_eq!(c.dag.num_edges(), 0);
        assert_eq!(c.members(0), &[0, 1, 2]);
    }

    #[test]
    fn mixed_graph() {
        // Two 2-cycles joined by a bridge, plus a tail vertex.
        let g = graph_from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)]);
        let c = Condensation::of(&g);
        assert_eq!(c.num_components(), 3);
        assert_eq!(c.largest_component_size(), 2);
        // The two cycle components must be distinct and connected in order.
        let c0 = c.comp(0);
        let c2 = c.comp(2);
        let c4 = c.comp(4);
        assert_eq!(c.comp(1), c0);
        assert_eq!(c.comp(3), c2);
        assert_ne!(c0, c2);
        assert!(c.dag.has_edge(c0, c2));
        assert!(c.dag.has_edge(c2, c4));
    }

    #[test]
    fn condensation_is_acyclic() {
        // A denser graph with several overlapping cycles.
        let g = graph_from_edges(
            8,
            &[
                (0, 1), (1, 2), (2, 0), // triangle
                (2, 3), (3, 4), (4, 3), // 2-cycle
                (4, 5), (5, 6), (6, 7), (7, 5), // triangle at the end
                (0, 5),
            ],
        );
        let c = Condensation::of(&g);
        assert!(topo::topological_order(&c.dag).is_some(), "condensation must be a DAG");
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let g = graph_from_edges(2, &[(0, 0), (0, 1)]);
        let c = Condensation::of(&g);
        assert_eq!(c.num_components(), 2);
        // The self-loop projects away.
        assert_eq!(c.dag.num_edges(), 1);
    }

    #[test]
    fn members_partition_vertices() {
        let g = graph_from_edges(6, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2), (4, 5)]);
        let c = Condensation::of(&g);
        let mut seen = [false; 6];
        for comp in 0..c.num_components() as CompId {
            for &v in c.members(comp) {
                assert!(!seen[v as usize], "vertex in two components");
                seen[v as usize] = true;
                assert_eq!(c.comp(v), comp);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
