//! Degree statistics and the out-degree buckets of the paper's workloads.

use crate::{DiGraph, VertexId};

/// The out-degree buckets used to select query vertices in Section 6.1:
/// `[1-49]`, `[50-99]`, `[100-149]`, `[150-199]`, `[200-..]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DegreeBucket {
    /// Smallest out-degree included.
    pub lo: u32,
    /// Largest out-degree included (`u32::MAX` for the open-ended bucket).
    pub hi: u32,
}

impl DegreeBucket {
    /// The five buckets of the paper, in order. The third (`[100-149]`) is
    /// the paper's default.
    pub const PAPER_BUCKETS: [DegreeBucket; 5] = [
        DegreeBucket { lo: 1, hi: 49 },
        DegreeBucket { lo: 50, hi: 99 },
        DegreeBucket { lo: 100, hi: 149 },
        DegreeBucket { lo: 150, hi: 199 },
        DegreeBucket { lo: 200, hi: u32::MAX },
    ];

    /// Index of the paper's default bucket (`[100-149]`) in
    /// [`DegreeBucket::PAPER_BUCKETS`].
    pub const DEFAULT_INDEX: usize = 2;

    /// Whether `degree` falls inside this bucket.
    #[inline]
    pub fn contains(&self, degree: u32) -> bool {
        degree >= self.lo && degree <= self.hi
    }

    /// Human-readable label, e.g. `"100-149"` or `"200+"`.
    pub fn label(&self) -> String {
        if self.hi == u32::MAX {
            format!("{}+", self.lo)
        } else {
            format!("{}-{}", self.lo, self.hi)
        }
    }
}

/// Summary degree statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Maximum out-degree.
    pub max_out: u32,
    /// Maximum in-degree.
    pub max_in: u32,
    /// Mean out-degree (equals mean in-degree).
    pub mean_out: f64,
    /// Number of vertices with out-degree zero (sinks).
    pub sinks: usize,
    /// Number of vertices with in-degree zero (sources).
    pub sources: usize,
}

/// Computes [`DegreeStats`] for `g`.
pub fn degree_stats(g: &DiGraph) -> DegreeStats {
    let n = g.num_vertices();
    let mut max_out = 0u32;
    let mut max_in = 0u32;
    let mut sinks = 0usize;
    let mut sources = 0usize;
    for v in g.vertices() {
        let od = g.out_degree(v) as u32;
        let id = g.in_degree(v) as u32;
        max_out = max_out.max(od);
        max_in = max_in.max(id);
        if od == 0 {
            sinks += 1;
        }
        if id == 0 {
            sources += 1;
        }
    }
    let mean_out = if n == 0 { 0.0 } else { g.num_edges() as f64 / n as f64 };
    DegreeStats { max_out, max_in, mean_out, sinks, sources }
}

/// All vertices whose out-degree falls inside `bucket`. The paper samples
/// query vertices uniformly from such pools.
pub fn vertices_in_bucket(g: &DiGraph, bucket: DegreeBucket) -> Vec<VertexId> {
    g.vertices().filter(|&v| bucket.contains(g.out_degree(v) as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn bucket_membership() {
        let b = DegreeBucket::PAPER_BUCKETS[0];
        assert!(b.contains(1) && b.contains(49));
        assert!(!b.contains(0) && !b.contains(50));
        let open = DegreeBucket::PAPER_BUCKETS[4];
        assert!(open.contains(200) && open.contains(1_000_000));
        assert_eq!(open.label(), "200+");
        assert_eq!(b.label(), "1-49");
    }

    #[test]
    fn buckets_partition_positive_degrees() {
        for d in 1..500u32 {
            let hits = DegreeBucket::PAPER_BUCKETS.iter().filter(|b| b.contains(d)).count();
            assert_eq!(hits, 1, "degree {d} must fall in exactly one bucket");
        }
    }

    #[test]
    fn stats_on_star() {
        // 0 -> 1..=4
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = degree_stats(&g);
        assert_eq!(s.max_out, 4);
        assert_eq!(s.max_in, 1);
        assert_eq!(s.sinks, 4);
        assert_eq!(s.sources, 1);
        assert!((s.mean_out - 0.8).abs() < 1e-12);
    }

    #[test]
    fn bucket_pool() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        let pool = vertices_in_bucket(&g, DegreeBucket { lo: 1, hi: 3 });
        assert_eq!(pool, vec![1]);
        let pool4 = vertices_in_bucket(&g, DegreeBucket { lo: 4, hi: 4 });
        assert_eq!(pool4, vec![0]);
    }
}
