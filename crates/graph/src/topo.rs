//! Topological ordering of DAGs (Kahn's algorithm).

use crate::{DiGraph, VertexId};
use std::collections::VecDeque;

/// Returns a topological order of `g` (`order[i]` comes before `order[j]`
/// whenever there is an edge `order[i] -> order[j]`), or `None` when `g`
/// contains a cycle.
pub fn topological_order(g: &DiGraph) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut in_deg: Vec<u32> = (0..n).map(|v| g.in_degree(v as VertexId) as u32).collect();
    let mut queue: VecDeque<VertexId> =
        (0..n as VertexId).filter(|&v| in_deg[v as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);

    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.out_neighbors(v) {
            in_deg[w as usize] -= 1;
            if in_deg[w as usize] == 0 {
                queue.push_back(w);
            }
        }
    }

    (order.len() == n).then_some(order)
}

/// Whether `g` is acyclic.
pub fn is_dag(g: &DiGraph) -> bool {
    topological_order(g).is_some()
}

/// `rank[v]` = position of `v` in a fixed topological order. Processing
/// vertices by *decreasing* rank visits every vertex after all of its
/// out-neighbours — the order used by the bottom-up label builders.
pub fn topological_rank(g: &DiGraph) -> Option<Vec<u32>> {
    let order = topological_order(g)?;
    let mut rank = vec![0u32; g.num_vertices()];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    Some(rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn orders_a_diamond() {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let order = topological_order(&g).unwrap();
        let pos = |v: u32| order.iter().position(|&x| x == v).unwrap();
        for (u, v) in g.edges() {
            assert!(pos(u) < pos(v), "edge ({u},{v}) violates topological order");
        }
    }

    #[test]
    fn detects_cycles() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(topological_order(&g).is_none());
        assert!(!is_dag(&g));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph_from_edges(1, &[(0, 0)]);
        assert!(!is_dag(&g));
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(topological_order(&graph_from_edges(0, &[])), Some(vec![]));
        let g = graph_from_edges(3, &[]);
        assert_eq!(topological_order(&g).unwrap().len(), 3);
    }

    #[test]
    fn rank_respects_edges() {
        let g = graph_from_edges(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]);
        let rank = topological_rank(&g).unwrap();
        for (u, v) in g.edges() {
            assert!(rank[u as usize] < rank[v as usize]);
        }
    }
}
