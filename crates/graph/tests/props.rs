//! Property-based tests for the graph substrate, checked against naive
//! reference implementations.

use gsr_graph::dfs::SpanningForest;
use gsr_graph::reduction::{equivalence_reduction, transitive_reduction};
use gsr_graph::scc::Condensation;
use gsr_graph::{graph_from_edges, topo, DiGraph, VertexId};
use proptest::prelude::*;

/// Random edge list over `n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (2..max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n as VertexId, 0..n as VertexId), 0..max_m)
            .prop_map(move |edges| graph_from_edges(n, &edges))
    })
}

/// Random DAG: only edges `u -> v` with `u < v`.
fn arb_dag(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (2..max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n as VertexId, 0..n as VertexId), 0..max_m).prop_map(
            move |edges| {
                let dag_edges: Vec<_> = edges
                    .into_iter()
                    .filter(|&(u, v)| u != v)
                    .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
                    .collect();
                graph_from_edges(n, &dag_edges)
            },
        )
    })
}

/// Naive reachability: BFS from `s`.
fn naive_reaches(g: &DiGraph, s: VertexId, t: VertexId) -> bool {
    let mut visited = vec![false; g.num_vertices()];
    let mut stack = vec![s];
    visited[s as usize] = true;
    while let Some(v) = stack.pop() {
        if v == t {
            return true;
        }
        for &w in g.out_neighbors(v) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                stack.push(w);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scc_matches_mutual_reachability(g in arb_graph(24, 60)) {
        let c = Condensation::of(&g);
        let n = g.num_vertices() as VertexId;
        for u in 0..n {
            for v in (u + 1)..n {
                let mutual = naive_reaches(&g, u, v) && naive_reaches(&g, v, u);
                prop_assert_eq!(
                    c.comp(u) == c.comp(v),
                    mutual,
                    "vertices {} and {} (mutual = {})", u, v, mutual
                );
            }
        }
    }

    #[test]
    fn condensation_dag_is_acyclic(g in arb_graph(40, 150)) {
        let c = Condensation::of(&g);
        prop_assert!(topo::is_dag(&c.dag));
    }

    #[test]
    fn condensation_preserves_reachability(g in arb_graph(18, 50)) {
        let c = Condensation::of(&g);
        let n = g.num_vertices() as VertexId;
        for u in 0..n {
            for v in 0..n {
                let orig = naive_reaches(&g, u, v);
                let cond = naive_reaches(&c.dag, c.comp(u), c.comp(v));
                prop_assert_eq!(orig, cond, "u={} v={}", u, v);
            }
        }
    }

    #[test]
    fn forest_posts_are_valid(g in arb_dag(40, 120)) {
        let f = SpanningForest::of(&g);
        // Post-orders form a permutation of 1..=n.
        let mut posts = f.post.clone();
        posts.sort_unstable();
        prop_assert_eq!(posts, (1..=g.num_vertices() as u32).collect::<Vec<_>>());
        // Tree ancestors always have larger post-order numbers.
        for v in g.vertices() {
            for a in f.ancestors(v) {
                prop_assert!(f.post[a as usize] > f.post[v as usize]);
            }
        }
    }

    #[test]
    fn dag_dfs_has_no_back_edges(g in arb_dag(40, 120)) {
        // On a DAG, every non-tree DFS edge points to a smaller post-order —
        // the invariant the interval labeling's final phase relies on.
        let f = SpanningForest::of(&g);
        for (u, v) in f.non_tree_edges_by_source_post(&g) {
            prop_assert!(f.post[v as usize] < f.post[u as usize]);
        }
    }

    #[test]
    fn tree_descendants_form_contiguous_post_ranges(g in arb_dag(30, 80)) {
        // The tree-descendant posts of v are exactly [index(v), post(v)]:
        // the "tree-cover" property of Agrawal et al.'s scheme.
        let f = SpanningForest::of(&g);
        let n = g.num_vertices();
        let mut descendant_posts: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in g.vertices() {
            descendant_posts[v as usize].push(f.post[v as usize]);
            for a in f.ancestors(v) {
                descendant_posts[a as usize].push(f.post[v as usize]);
            }
        }
        for (v, posts) in descendant_posts.iter_mut().enumerate() {
            posts.sort_unstable();
            let lo = posts[0];
            let hi = *posts.last().unwrap();
            prop_assert_eq!(hi, f.post[v]);
            prop_assert_eq!(posts.len() as u32, hi - lo + 1, "gap in tree interval of {}", v);
        }
    }

    #[test]
    fn topological_order_is_consistent(g in arb_dag(50, 200)) {
        let order = topo::topological_order(&g).expect("DAG must have a topo order");
        let mut pos = vec![0usize; g.num_vertices()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for (u, v) in g.edges() {
            prop_assert!(pos[u as usize] < pos[v as usize]);
        }
    }

    #[test]
    fn transitive_reduction_preserves_reachability(g in arb_dag(25, 120)) {
        let reduced = transitive_reduction(&g);
        prop_assert!(reduced.num_edges() <= g.num_edges());
        for u in g.vertices() {
            for v in g.vertices() {
                prop_assert_eq!(
                    naive_reaches(&g, u, v),
                    naive_reaches(&reduced, u, v),
                    "({}, {})", u, v
                );
            }
        }
    }

    #[test]
    fn transitive_reduction_is_idempotent(g in arb_dag(20, 80)) {
        let once = transitive_reduction(&g);
        let twice = transitive_reduction(&once);
        prop_assert_eq!(once.num_edges(), twice.num_edges());
    }

    #[test]
    fn equivalence_reduction_projects_correctly(g in arb_dag(20, 80)) {
        let (reduced, rep) = equivalence_reduction(&g);
        prop_assert!(reduced.num_vertices() <= g.num_vertices());
        for u in g.vertices() {
            for v in g.vertices() {
                let projected = u == v
                    || (rep[u as usize] != rep[v as usize]
                        && naive_reaches(&reduced, rep[u as usize], rep[v as usize]));
                prop_assert_eq!(naive_reaches(&g, u, v), projected, "({}, {})", u, v);
            }
        }
    }

    #[test]
    fn reversal_is_involutive(g in arb_graph(30, 100)) {
        let r2 = g.reversed().reversed();
        prop_assert_eq!(g.num_edges(), r2.num_edges());
        for (u, v) in g.edges() {
            prop_assert!(r2.has_edge(u, v));
        }
    }
}
