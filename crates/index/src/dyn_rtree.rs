//! A mutable const-generic R-tree (Guttman) with quadratic split, for
//! incremental workloads.
//!
//! The static [`crate::RTree`] stores its nodes in a flat breadth-first
//! structure-of-arrays arena, which is compact and cache-linear but
//! immutable once built. Dynamic workloads — the paper's dynamic-update
//! extension (`Dyn3DReach`) and stress tests that interleave inserts and
//! removes — need in-place mutation, which this pointer-style node arena
//! provides: Guttman insertion with quadratic split and CondenseTree
//! removal with orphan reinsertion.

use gsr_geo::Aabb;
use gsr_graph::HeapBytes;

pub use crate::rtree::RTreeParams;

#[derive(Debug, Clone, PartialEq)]
enum NodeKind<const N: usize, T> {
    /// Data entries.
    Leaf(Vec<(Aabb<N>, T)>),
    /// Child node ids into the arena.
    Inner(Vec<u32>),
}

#[derive(Debug, Clone, PartialEq)]
struct Node<const N: usize, T> {
    mbr: Aabb<N>,
    kind: NodeKind<N, T>,
}

impl<const N: usize, T> Node<N, T> {
    fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Inner(c) => c.len(),
        }
    }
}

/// A mutable R-tree over `N`-dimensional boxes with payloads of type `T`.
///
/// ```
/// use gsr_geo::Aabb;
/// use gsr_index::DynRTree;
///
/// let mut t: DynRTree<2, u32> = DynRTree::new();
/// for i in 0..100u32 {
///     let p = [i as f64, (i * 7 % 100) as f64];
///     t.insert(Aabb::from_point(p), i);
/// }
/// let region = Aabb::new([0.0, 0.0], [10.0, 100.0]);
/// assert!(t.query_exists(&region));
/// assert_eq!(t.query(&region).count(), 11);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DynRTree<const N: usize, T> {
    params: RTreeParams,
    nodes: Vec<Node<N, T>>,
    root: u32,
    len: usize,
}

impl<const N: usize, T> Default for DynRTree<N, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize, T> DynRTree<N, T> {
    /// An empty tree with default parameters.
    pub fn new() -> Self {
        Self::with_params(RTreeParams::default())
    }

    /// An empty tree with the given fan-out parameters.
    pub fn with_params(params: RTreeParams) -> Self {
        DynRTree {
            params,
            nodes: vec![Node { mbr: Aabb::empty(), kind: NodeKind::Leaf(Vec::new()) }],
            root: 0,
            len: 0,
        }
    }

    fn push_node(&mut self, node: Node<N, T>) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        id
    }

    /// Number of data entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The MBR of all entries ([`Aabb::empty`] when the tree is empty).
    #[inline]
    pub fn mbr(&self) -> Aabb<N> {
        self.nodes[self.root as usize].mbr
    }

    /// The fan-out parameters the tree was built with.
    #[inline]
    pub fn params(&self) -> RTreeParams {
        self.params
    }

    /// Inserts one entry (Guttman insertion with quadratic split).
    pub fn insert(&mut self, aabb: Aabb<N>, value: T) {
        self.len += 1;

        // Descend to a leaf, remembering the path.
        let mut path: Vec<u32> = Vec::new();
        let mut current = self.root;
        loop {
            path.push(current);
            match &self.nodes[current as usize].kind {
                NodeKind::Leaf(_) => break,
                NodeKind::Inner(children) => {
                    current = choose_child(&self.nodes, children, &aabb);
                }
            }
        }

        // Insert into the leaf and expand MBRs along the path.
        let leaf = *path.last().expect("path contains the leaf");
        match &mut self.nodes[leaf as usize].kind {
            NodeKind::Leaf(entries) => entries.push((aabb, value)),
            NodeKind::Inner(_) => unreachable!("descent must end at a leaf"),
        }
        for &id in &path {
            self.nodes[id as usize].mbr.expand(&aabb);
        }

        // Split overflowing nodes bottom-up, recomputing ancestor MBRs: a
        // split shrinks the original node, so the simple expansion above is
        // no longer tight on the path.
        let mut overflow: Option<u32> = None; // node created by the last split
        let mut split_below = false;
        for depth in (0..path.len()).rev() {
            let id = path[depth];
            if let Some(new_child) = overflow.take() {
                match &mut self.nodes[id as usize].kind {
                    NodeKind::Inner(children) => children.push(new_child),
                    NodeKind::Leaf(_) => unreachable!("split child under a leaf"),
                }
            }
            if split_below {
                self.recompute_mbr(id);
            }
            if self.nodes[id as usize].len() > self.params.max_entries {
                overflow = Some(self.split_node(id));
                split_below = true;
            } else if overflow.is_none() && !split_below {
                break;
            }
        }

        // A pending overflow at the top means the root itself split.
        if let Some(sibling) = overflow {
            let old_root = self.root;
            let mbr = self.nodes[old_root as usize].mbr.union(&self.nodes[sibling as usize].mbr);
            let new_root =
                self.push_node(Node { mbr, kind: NodeKind::Inner(vec![old_root, sibling]) });
            self.root = new_root;
        }
    }

    /// Recomputes a node's MBR tightly from its contents.
    fn recompute_mbr(&mut self, id: u32) {
        let mbr = match &self.nodes[id as usize].kind {
            NodeKind::Leaf(entries) => Aabb::mbr_of(entries.iter().map(|(b, _)| *b)),
            NodeKind::Inner(children) => {
                Aabb::mbr_of(children.iter().map(|&c| self.nodes[c as usize].mbr))
            }
        };
        self.nodes[id as usize].mbr = mbr.unwrap_or_else(Aabb::empty);
    }

    /// Splits node `id` in place, returning the id of the new sibling.
    fn split_node(&mut self, id: u32) -> u32 {
        let min = self.params.min_entries;
        match std::mem::replace(
            &mut self.nodes[id as usize].kind,
            NodeKind::Leaf(Vec::new()),
        ) {
            NodeKind::Leaf(entries) => {
                let (a, b) = quadratic_split(entries, min);
                let mbr_a = Aabb::mbr_of(a.iter().map(|(m, _)| *m)).expect("non-empty");
                let mbr_b = Aabb::mbr_of(b.iter().map(|(m, _)| *m)).expect("non-empty");
                self.nodes[id as usize].kind = NodeKind::Leaf(a);
                self.nodes[id as usize].mbr = mbr_a;
                self.push_node(Node { mbr: mbr_b, kind: NodeKind::Leaf(b) })
            }
            NodeKind::Inner(children) => {
                let with_mbrs: Vec<(Aabb<N>, u32)> =
                    children.iter().map(|&c| (self.nodes[c as usize].mbr, c)).collect();
                let (a, b) = quadratic_split(with_mbrs, min);
                let mbr_a = Aabb::mbr_of(a.iter().map(|(m, _)| *m)).expect("non-empty");
                let mbr_b = Aabb::mbr_of(b.iter().map(|(m, _)| *m)).expect("non-empty");
                self.nodes[id as usize].kind =
                    NodeKind::Inner(a.into_iter().map(|(_, c)| c).collect());
                self.nodes[id as usize].mbr = mbr_a;
                self.push_node(Node {
                    mbr: mbr_b,
                    kind: NodeKind::Inner(b.into_iter().map(|(_, c)| c).collect()),
                })
            }
        }
    }

    /// Removes one entry whose box equals `aabb` and whose value satisfies
    /// `matches`, returning it. Underfull nodes are condensed (Guttman's
    /// CondenseTree): their surviving entries are reinserted and the root
    /// is shrunk when it degenerates to a single inner child.
    pub fn remove_one(&mut self, aabb: &Aabb<N>, matches: impl Fn(&T) -> bool) -> Option<T> {
        // Find a path (root -> leaf) to a leaf holding a matching entry.
        let mut path: Vec<u32> = Vec::new();
        let mut removed: Option<T> = None;
        self.find_and_remove(self.root, aabb, &matches, &mut path, &mut removed);
        let value = removed?;
        self.len -= 1;

        // Condense bottom-up: drop underfull non-root nodes, collecting
        // their remaining entries for reinsertion.
        let min = self.params.min_entries;
        let mut orphans: Vec<(Aabb<N>, T)> = Vec::new();
        for depth in (1..path.len()).rev() {
            let id = path[depth];
            let parent = path[depth - 1];
            if self.nodes[id as usize].len() < min {
                match &mut self.nodes[parent as usize].kind {
                    NodeKind::Inner(children) => children.retain(|&c| c != id),
                    NodeKind::Leaf(_) => unreachable!("parents are inner nodes"),
                }
                self.collect_entries(id, &mut orphans);
            } else {
                self.recompute_mbr(id);
            }
        }
        self.recompute_mbr(self.root);

        // Shrink a degenerate root.
        loop {
            let next = match &self.nodes[self.root as usize].kind {
                NodeKind::Inner(children) if children.len() == 1 => children[0],
                NodeKind::Inner(children) if children.is_empty() => {
                    self.nodes[self.root as usize] =
                        Node { mbr: Aabb::empty(), kind: NodeKind::Leaf(Vec::new()) };
                    break;
                }
                _ => break,
            };
            self.root = next;
        }

        // Reinsert orphans (insert() bumps len, so compensate first).
        self.len -= orphans.len();
        for (b, t) in orphans {
            self.insert(b, t);
        }
        Some(value)
    }

    /// Removes one entry equal to `(aabb, value)`; see
    /// [`DynRTree::remove_one`].
    pub fn remove(&mut self, aabb: &Aabb<N>, value: &T) -> bool
    where
        T: PartialEq,
    {
        self.remove_one(aabb, |t| t == value).is_some()
    }

    /// Depth-first search for a matching entry; fills `path` with the node
    /// chain to the leaf it was removed from.
    fn find_and_remove(
        &mut self,
        id: u32,
        aabb: &Aabb<N>,
        matches: &impl Fn(&T) -> bool,
        path: &mut Vec<u32>,
        removed: &mut Option<T>,
    ) {
        if removed.is_some() || !self.nodes[id as usize].mbr.contains(aabb) {
            return;
        }
        path.push(id);
        match &mut self.nodes[id as usize].kind {
            NodeKind::Leaf(entries) => {
                if let Some(pos) = entries.iter().position(|(b, t)| b == aabb && matches(t)) {
                    *removed = Some(entries.swap_remove(pos).1);
                    return;
                }
            }
            NodeKind::Inner(children) => {
                for c in children.clone() {
                    self.find_and_remove(c, aabb, matches, path, removed);
                    if removed.is_some() {
                        return;
                    }
                }
            }
        }
        path.pop();
    }

    /// Drains every data entry under `id` into `out` (used by condensing).
    fn collect_entries(&mut self, id: u32, out: &mut Vec<(Aabb<N>, T)>) {
        match std::mem::replace(&mut self.nodes[id as usize].kind, NodeKind::Inner(Vec::new())) {
            NodeKind::Leaf(entries) => out.extend(entries),
            NodeKind::Inner(children) => {
                for c in children {
                    self.collect_entries(c, out);
                }
            }
        }
    }

    /// Iterator over all entries whose box intersects `region`.
    pub fn query<'a>(&'a self, region: &Aabb<N>) -> DynQuery<'a, N, T> {
        let mut stack = Vec::new();
        if self.nodes[self.root as usize].mbr.intersects(region) {
            stack.push(self.root);
        }
        DynQuery { tree: self, region: *region, stack, leaf: None }
    }

    /// Whether any entry intersects `region` (early-exit traversal).
    pub fn query_exists(&self, region: &Aabb<N>) -> bool {
        self.query(region).next().is_some()
    }

    /// Number of entries intersecting `region`.
    pub fn count_in(&self, region: &Aabb<N>) -> usize {
        self.query(region).count()
    }

    /// Iterator over all entries in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (&Aabb<N>, &T)> {
        self.nodes
            .iter()
            .flat_map(|n| match &n.kind {
                NodeKind::Leaf(entries) => entries.iter(),
                NodeKind::Inner(_) => [].iter(),
            })
            .map(|(b, t)| (b, t))
    }

    /// Height of the tree (1 for a single leaf root).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize].kind {
                NodeKind::Leaf(_) => return h,
                NodeKind::Inner(children) => {
                    h += 1;
                    id = children[0];
                }
            }
        }
    }

    /// Approximate heap footprint in bytes: node headers plus entry storage.
    pub fn heap_bytes(&self) -> usize {
        let node_header = std::mem::size_of::<Node<N, T>>();
        let entry = std::mem::size_of::<(Aabb<N>, T)>();
        self.nodes
            .iter()
            .map(|n| {
                node_header
                    + match &n.kind {
                        NodeKind::Leaf(e) => e.len() * entry,
                        NodeKind::Inner(c) => c.len() * 4,
                    }
            })
            .sum()
    }

    /// Checks structural invariants (entry count, MBR containment, fan-out
    /// bounds). Intended for tests; panics with a description on violation.
    pub fn check_invariants(&self) {
        fn walk<const N: usize, T>(
            tree: &DynRTree<N, T>,
            id: u32,
            is_root: bool,
            count: &mut usize,
        ) -> Aabb<N> {
            let node = &tree.nodes[id as usize];
            assert!(
                node.len() <= tree.params.max_entries,
                "node {id} overflows: {} > {}",
                node.len(),
                tree.params.max_entries
            );
            if !is_root && tree.len > tree.params.max_entries {
                assert!(node.len() >= 1, "empty non-root node {id}");
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    *count += entries.len();
                    for (b, _) in entries {
                        assert!(node.mbr.contains(b), "leaf {id} mbr misses an entry");
                    }
                    node.mbr
                }
                NodeKind::Inner(children) => {
                    assert!(!children.is_empty(), "inner node {id} has no children");
                    let mut acc = Aabb::empty();
                    for &c in children {
                        let child_mbr = walk(tree, c, false, count);
                        assert!(node.mbr.contains(&child_mbr), "node {id} mbr misses child {c}");
                        acc.expand(&child_mbr);
                    }
                    assert_eq!(acc, node.mbr, "node {id} mbr is not tight");
                    node.mbr
                }
            }
        }
        let mut count = 0;
        if self.len > 0 {
            walk(self, self.root, true, &mut count);
        }
        assert_eq!(count, self.len, "entry count mismatch");
    }
}

impl<const N: usize, T> HeapBytes for DynRTree<N, T> {
    fn heap_bytes(&self) -> usize {
        DynRTree::heap_bytes(self)
    }
}

/// Picks the child needing the least MBR enlargement (ties: smaller volume).
fn choose_child<const N: usize, T>(nodes: &[Node<N, T>], children: &[u32], aabb: &Aabb<N>) -> u32 {
    debug_assert!(!children.is_empty());
    let mut best = children[0];
    let mut best_enl = f64::INFINITY;
    let mut best_vol = f64::INFINITY;
    for &c in children {
        let mbr = nodes[c as usize].mbr;
        let enl = mbr.enlargement(aabb);
        let vol = mbr.volume();
        if enl < best_enl || (enl == best_enl && vol < best_vol) {
            best = c;
            best_enl = enl;
            best_vol = vol;
        }
    }
    best
}

/// Guttman's quadratic split: seeds are the pair wasting the most area; the
/// remaining entries go to the group whose MBR grows the least, with the
/// `min` lower bound enforced.
type SplitGroups<const N: usize, E> = (Vec<(Aabb<N>, E)>, Vec<(Aabb<N>, E)>);

fn quadratic_split<const N: usize, E>(
    mut entries: Vec<(Aabb<N>, E)>,
    min: usize,
) -> SplitGroups<N, E> {
    debug_assert!(entries.len() >= 2);

    // Pick seeds.
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let d = entries[i].0.union(&entries[j].0).volume()
                - entries[i].0.volume()
                - entries[j].0.volume();
            if d > worst {
                worst = d;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    // Move the seeds out (larger index first so removal is stable).
    let (hi, lo) = (seed_a.max(seed_b), seed_a.min(seed_b));
    let b0 = entries.swap_remove(hi);
    let a0 = entries.swap_remove(lo);
    let mut group_a = vec![a0];
    let mut group_b = vec![b0];
    let mut mbr_a = group_a[0].0;
    let mut mbr_b = group_b[0].0;

    while let Some((aabb, e)) = entries.pop() {
        let remaining = entries.len();
        // Force-assign when a group must absorb everything left to reach min.
        if group_a.len() + remaining < min {
            mbr_a.expand(&aabb);
            group_a.push((aabb, e));
            continue;
        }
        if group_b.len() + remaining < min {
            mbr_b.expand(&aabb);
            group_b.push((aabb, e));
            continue;
        }
        let enl_a = mbr_a.enlargement(&aabb);
        let enl_b = mbr_b.enlargement(&aabb);
        let to_a = match enl_a.partial_cmp(&enl_b) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => group_a.len() <= group_b.len(),
        };
        if to_a {
            mbr_a.expand(&aabb);
            group_a.push((aabb, e));
        } else {
            mbr_b.expand(&aabb);
            group_b.push((aabb, e));
        }
    }
    (group_a, group_b)
}

/// Range-query iterator over a [`DynRTree`]; see [`DynRTree::query`].
pub struct DynQuery<'a, const N: usize, T> {
    tree: &'a DynRTree<N, T>,
    region: Aabb<N>,
    stack: Vec<u32>,
    leaf: Option<(&'a [(Aabb<N>, T)], usize)>,
}

impl<'a, const N: usize, T> Iterator for DynQuery<'a, N, T> {
    type Item = (&'a Aabb<N>, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((entries, pos)) = &mut self.leaf {
                while *pos < entries.len() {
                    let (b, t) = &entries[*pos];
                    *pos += 1;
                    if b.intersects(&self.region) {
                        return Some((b, t));
                    }
                }
                self.leaf = None;
            }
            let id = self.stack.pop()?;
            match &self.tree.nodes[id as usize].kind {
                NodeKind::Leaf(entries) => {
                    self.leaf = Some((entries.as_slice(), 0));
                }
                NodeKind::Inner(children) => {
                    for &c in children {
                        if self.tree.nodes[c as usize].mbr.intersects(&self.region) {
                            self.stack.push(c);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Aabb<2> {
        Aabb::from_point([x, y])
    }

    fn grid_points(n: usize) -> Vec<(Aabb<2>, usize)> {
        (0..n).map(|i| (pt((i % 32) as f64, (i / 32) as f64), i)).collect()
    }

    #[test]
    fn insert_maintains_invariants_and_finds_everything() {
        let mut t: DynRTree<2, usize> = DynRTree::new();
        for (b, i) in grid_points(1000) {
            t.insert(b, i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 1000);
        let region = Aabb::new([10.0, 10.0], [12.0, 11.0]);
        let mut hits: Vec<usize> = t.query(&region).map(|(_, &i)| i).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![330, 331, 332, 362, 363, 364]);
    }

    #[test]
    fn empty_tree_queries() {
        let t: DynRTree<2, u32> = DynRTree::new();
        assert!(t.is_empty());
        let all = Aabb::new([-1e9, -1e9], [1e9, 1e9]);
        assert_eq!(t.query(&all).count(), 0);
        assert!(!t.query_exists(&all));
        t.check_invariants();
    }

    #[test]
    fn remove_condenses_and_reinserts() {
        let mut t: DynRTree<2, usize> = DynRTree::with_params(RTreeParams::new(8, 3));
        let entries = grid_points(300);
        for &(b, i) in &entries {
            t.insert(b, i);
        }
        // Remove every third entry.
        for &(b, i) in entries.iter().step_by(3) {
            assert!(t.remove(&b, &i), "entry {i} must be removable");
        }
        t.check_invariants();
        assert_eq!(t.len(), 200);
        // The survivors are all still findable; removed ones are gone.
        for (j, &(b, i)) in entries.iter().enumerate() {
            let found = t.query(&b).any(|(_, &v)| v == i);
            assert_eq!(found, j % 3 != 0, "entry {i}");
        }
        // Removing a missing entry reports false.
        assert!(!t.remove(&pt(0.0, 0.0), &0));
    }

    #[test]
    fn remove_down_to_empty() {
        let mut t: DynRTree<2, usize> = DynRTree::with_params(RTreeParams::new(4, 2));
        let entries = grid_points(64);
        for &(b, i) in &entries {
            t.insert(b, i);
        }
        for &(b, i) in &entries {
            assert!(t.remove(&b, &i));
        }
        assert!(t.is_empty());
        t.check_invariants();
        // The tree remains usable.
        t.insert(pt(1.0, 2.0), 7);
        assert_eq!(t.count_in(&pt(1.0, 2.0)), 1);
    }

    #[test]
    fn duplicate_geometry_is_allowed() {
        let mut t: DynRTree<2, u32> = DynRTree::new();
        for i in 0..50u32 {
            t.insert(pt(1.0, 1.0), i);
        }
        t.check_invariants();
        assert_eq!(t.count_in(&Aabb::from_point([1.0, 1.0])), 50);
        // remove_one takes out exactly one of them.
        assert!(t.remove_one(&pt(1.0, 1.0), |_| true).is_some());
        assert_eq!(t.count_in(&Aabb::from_point([1.0, 1.0])), 49);
    }

    #[test]
    fn heap_bytes_grows_with_entries() {
        let mut small: DynRTree<2, usize> = DynRTree::new();
        let mut large: DynRTree<2, usize> = DynRTree::new();
        for (b, i) in grid_points(10) {
            small.insert(b, i);
        }
        for (b, i) in grid_points(5000) {
            large.insert(b, i);
        }
        assert!(large.heap_bytes() > small.heap_bytes());
    }
}
