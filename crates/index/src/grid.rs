//! The hierarchical grid of GeoReach's SPA-graph (Section 2.2.2).
//!
//! GeoReach partitions the space with a hierarchy of grids: level `L0` is
//! the most detailed partitioning, and each cell of level `L(i+1)` covers a
//! 2×2 block of quad-sibling cells of level `Li` (quad-tree style). The
//! `ReachGrid(v)` sets of the SPA-graph hold cells "potentially from
//! different levels": when more than `MERGE_COUNT` sibling cells of a level
//! appear in a set, they are merged into their parent cell of the next
//! level.

use gsr_geo::{Point, Rect};

/// A cell of the hierarchical grid, identified by its level and its integer
/// column/row within that level. Level 0 is the finest partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Grid level; 0 is finest, `HierarchicalGrid::num_levels() - 1` is the
    /// single cell covering the whole space.
    pub level: u8,
    /// Column index within the level.
    pub ix: u32,
    /// Row index within the level.
    pub iy: u32,
}

impl CellId {
    /// The parent cell one level up (covering this cell's 2×2 block).
    #[inline]
    pub fn parent(&self) -> CellId {
        CellId { level: self.level + 1, ix: self.ix / 2, iy: self.iy / 2 }
    }

    /// The four children one level down (only meaningful for `level > 0`).
    pub fn children(&self) -> [CellId; 4] {
        debug_assert!(self.level > 0);
        let (level, ix, iy) = (self.level - 1, self.ix * 2, self.iy * 2);
        [
            CellId { level, ix, iy },
            CellId { level, ix: ix + 1, iy },
            CellId { level, ix, iy: iy + 1 },
            CellId { level, ix: ix + 1, iy: iy + 1 },
        ]
    }

    /// A compact `u64` encoding, handy as a set/map key.
    #[inline]
    pub fn encode(&self) -> u64 {
        ((self.level as u64) << 56) | ((self.ix as u64) << 28) | self.iy as u64
    }

    /// Inverse of [`CellId::encode`].
    #[inline]
    pub fn decode(code: u64) -> CellId {
        CellId {
            level: (code >> 56) as u8,
            ix: ((code >> 28) & 0x0FFF_FFFF) as u32,
            iy: (code & 0x0FFF_FFFF) as u32,
        }
    }
}

/// A quad-tree-style hierarchy of grids over a rectangular space.
#[derive(Debug, Clone)]
pub struct HierarchicalGrid {
    space: Rect,
    /// Level 0 has `1 << finest_exp` cells per side.
    finest_exp: u8,
}

impl HierarchicalGrid {
    /// Creates a hierarchy over `space` whose finest level (`L0`) has
    /// `2^finest_exp × 2^finest_exp` cells. `finest_exp` is clamped to 14
    /// (a 16384×16384 finest grid) to keep cell ids encodable.
    pub fn new(space: Rect, finest_exp: u8) -> Self {
        HierarchicalGrid { space, finest_exp: finest_exp.min(14) }
    }

    /// The full space covered by the hierarchy.
    #[inline]
    pub fn space(&self) -> &Rect {
        &self.space
    }

    /// The finest-level exponent (`L0` has `2^finest_exp` cells per side).
    /// Together with [`HierarchicalGrid::space`] this fully determines the
    /// hierarchy, so `HierarchicalGrid::new(*g.space(), g.finest_exp())`
    /// reconstructs it exactly — the snapshot encoding of GeoReach relies
    /// on this.
    #[inline]
    pub fn finest_exp(&self) -> u8 {
        self.finest_exp
    }

    /// Number of levels (level `num_levels() - 1` is one cell).
    #[inline]
    pub fn num_levels(&self) -> u8 {
        self.finest_exp + 1
    }

    /// Cells per side at `level`.
    #[inline]
    pub fn side_cells(&self, level: u8) -> u32 {
        debug_assert!(level <= self.finest_exp);
        1u32 << (self.finest_exp - level)
    }

    /// The finest-level (`L0`) cell containing `p`. Points on the max edge
    /// of the space are clamped into the last cell.
    pub fn cell_of(&self, p: &Point) -> CellId {
        let side = self.side_cells(0);
        let fx = (p.x - self.space.min_x) / self.space.width().max(f64::MIN_POSITIVE);
        let fy = (p.y - self.space.min_y) / self.space.height().max(f64::MIN_POSITIVE);
        let ix = ((fx * side as f64) as i64).clamp(0, side as i64 - 1) as u32;
        let iy = ((fy * side as f64) as i64).clamp(0, side as i64 - 1) as u32;
        CellId { level: 0, ix, iy }
    }

    /// The rectangle covered by `cell`.
    pub fn cell_rect(&self, cell: &CellId) -> Rect {
        let side = self.side_cells(cell.level) as f64;
        let w = self.space.width() / side;
        let h = self.space.height() / side;
        Rect::new(
            self.space.min_x + cell.ix as f64 * w,
            self.space.min_y + cell.iy as f64 * h,
            self.space.min_x + (cell.ix + 1) as f64 * w,
            self.space.min_y + (cell.iy + 1) as f64 * h,
        )
    }

    /// Applies GeoReach's merge rule to a set of cells: starting from `L0`,
    /// whenever more than `merge_count` sibling quad-cells of a level are
    /// present, they are replaced by their parent cell at the next level.
    /// The input may contain cells from several levels; the result is
    /// deduplicated and sorted.
    pub fn merge_cells(&self, cells: &mut Vec<CellId>, merge_count: usize) {
        cells.sort_unstable();
        cells.dedup();
        for level in 0..self.finest_exp {
            // Group the cells of this level by parent.
            let mut promoted: Vec<CellId> = Vec::new();
            let mut keep: Vec<CellId> = Vec::with_capacity(cells.len());
            // Siblings are not contiguous in sorted order, so collect
            // per-parent member lists explicitly.
            let mut groups: std::collections::HashMap<CellId, Vec<usize>> =
                std::collections::HashMap::new();
            for (idx, c) in cells.iter().enumerate() {
                if c.level == level {
                    groups.entry(c.parent()).or_default().push(idx);
                } else {
                    keep.push(*c);
                }
            }
            for (parent, members) in groups {
                if members.len() > merge_count {
                    promoted.push(parent);
                } else {
                    for idx in members {
                        keep.push(cells[idx]);
                    }
                }
            }
            if promoted.is_empty() {
                // Nothing changed at this level; higher levels cannot gain
                // new members either, so we are done.
                break;
            }
            keep.extend(promoted);
            *cells = keep;
            cells.sort_unstable();
            cells.dedup();
        }
        // Absorb any cell covered by a coarser cell also in the set.
        let set: std::collections::HashSet<CellId> = cells.iter().copied().collect();
        cells.retain(|c| {
            let mut cur = *c;
            while cur.level < self.finest_exp {
                cur = cur.parent();
                if set.contains(&cur) {
                    return false;
                }
            }
            true
        });
        cells.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid(exp: u8) -> HierarchicalGrid {
        HierarchicalGrid::new(Rect::new(0.0, 0.0, 1.0, 1.0), exp)
    }

    #[test]
    fn cell_of_maps_into_bounds() {
        let g = unit_grid(2); // 4x4 finest grid
        assert_eq!(g.cell_of(&Point::new(0.0, 0.0)), CellId { level: 0, ix: 0, iy: 0 });
        assert_eq!(g.cell_of(&Point::new(0.99, 0.99)), CellId { level: 0, ix: 3, iy: 3 });
        // The max corner clamps into the last cell.
        assert_eq!(g.cell_of(&Point::new(1.0, 1.0)), CellId { level: 0, ix: 3, iy: 3 });
        // Out-of-space points clamp too (defensive).
        assert_eq!(g.cell_of(&Point::new(-5.0, 2.0)), CellId { level: 0, ix: 0, iy: 3 });
    }

    #[test]
    fn cell_rect_partition() {
        let g = unit_grid(2);
        let c = CellId { level: 0, ix: 1, iy: 2 };
        assert_eq!(g.cell_rect(&c), Rect::new(0.25, 0.5, 0.5, 0.75));
        // Top level covers everything.
        let top = CellId { level: 2, ix: 0, iy: 0 };
        assert_eq!(g.cell_rect(&top), *g.space());
    }

    #[test]
    fn parent_child_round_trip() {
        let c = CellId { level: 0, ix: 5, iy: 7 };
        let p = c.parent();
        assert_eq!(p, CellId { level: 1, ix: 2, iy: 3 });
        assert!(p.children().contains(&c));
    }

    #[test]
    fn encode_round_trip() {
        let c = CellId { level: 3, ix: 123456, iy: 654321 };
        assert_eq!(CellId::decode(c.encode()), c);
    }

    #[test]
    fn cell_rect_contains_its_points() {
        let g = unit_grid(4);
        for &(x, y) in &[(0.1, 0.2), (0.5, 0.5), (0.93, 0.07)] {
            let p = Point::new(x, y);
            let c = g.cell_of(&p);
            assert!(g.cell_rect(&c).contains_point(&p), "cell of {p} must contain it");
        }
    }

    #[test]
    fn merge_promotes_full_sibling_groups() {
        let g = unit_grid(2);
        // All four children of (L1, 0, 0) with merge_count = 1: must merge
        // into the parent; two siblings of (L1, 1, 1) with merge_count = 3:
        // must stay.
        let mut cells = vec![
            CellId { level: 0, ix: 0, iy: 0 },
            CellId { level: 0, ix: 1, iy: 0 },
            CellId { level: 0, ix: 0, iy: 1 },
            CellId { level: 0, ix: 1, iy: 1 },
            CellId { level: 0, ix: 2, iy: 2 },
        ];
        g.merge_cells(&mut cells, 1);
        assert!(cells.contains(&CellId { level: 1, ix: 0, iy: 0 }));
        assert!(cells.contains(&CellId { level: 0, ix: 2, iy: 2 }));
        assert_eq!(cells.len(), 2);
    }

    #[test]
    fn merge_count_two_keeps_pairs() {
        let g = unit_grid(2);
        let mut cells = vec![
            CellId { level: 0, ix: 0, iy: 0 },
            CellId { level: 0, ix: 1, iy: 0 },
        ];
        g.merge_cells(&mut cells, 2);
        assert_eq!(cells.len(), 2);
        g.merge_cells(&mut cells, 1);
        assert_eq!(cells, vec![CellId { level: 1, ix: 0, iy: 0 }]);
    }

    #[test]
    fn merge_cascades_up_levels() {
        let g = unit_grid(2);
        // All 16 finest cells with merge_count 1: collapse to the top cell.
        let mut cells: Vec<CellId> = (0..4)
            .flat_map(|ix| (0..4).map(move |iy| CellId { level: 0, ix, iy }))
            .collect();
        g.merge_cells(&mut cells, 1);
        assert_eq!(cells, vec![CellId { level: 2, ix: 0, iy: 0 }]);
    }

    #[test]
    fn merge_absorbs_covered_cells() {
        let g = unit_grid(2);
        let mut cells = vec![
            CellId { level: 1, ix: 0, iy: 0 },
            CellId { level: 0, ix: 0, iy: 0 }, // covered by the L1 cell
        ];
        g.merge_cells(&mut cells, 3);
        assert_eq!(cells, vec![CellId { level: 1, ix: 0, iy: 0 }]);
    }

    #[test]
    fn merged_cells_cover_originals() {
        let g = unit_grid(3);
        let originals: Vec<CellId> = (0..5)
            .map(|i| g.cell_of(&Point::new(0.13 * i as f64, 0.2 * i as f64)))
            .collect();
        let mut merged = originals.clone();
        g.merge_cells(&mut merged, 1);
        for c in &originals {
            let r = g.cell_rect(c);
            assert!(
                merged.iter().any(|m| g.cell_rect(m).contains_rect(&r)),
                "original cell {c:?} not covered"
            );
        }
    }
}
