//! A static kd-tree over 2-D points — the classic hierarchical
//! space-oriented-partitioning index of the paper's related work
//! (Section 7.2, "hierarchical indices that fall in this category are the
//! kd-tree and the quad-tree"). Used alongside [`crate::UniformGrid`] as an
//! ablation baseline against the R-tree.
//!
//! The tree is built once by recursive median splits on alternating axes
//! and stored implicitly in one array (node `i`'s children are `2i + 1`
//! and `2i + 2` in build order — here we keep explicit subtree ranges for
//! simplicity and cache-friendly range scans).

use gsr_geo::{Point, Rect};

/// A static kd-tree over points with payloads `T`.
///
/// ```
/// use gsr_geo::{Point, Rect};
/// use gsr_index::KdTree;
///
/// let tree = KdTree::bulk_load(vec![
///     (Point::new(1.0, 1.0), 'a'),
///     (Point::new(5.0, 5.0), 'b'),
///     (Point::new(9.0, 1.0), 'c'),
/// ]);
/// assert_eq!(tree.count_in(&Rect::new(0.0, 0.0, 6.0, 6.0)), 2);
/// let (p, &tag) = tree.nearest(&Point::new(8.0, 0.0)).unwrap();
/// assert_eq!(tag, 'c');
/// assert_eq!(p.x, 9.0);
/// ```
///
/// The points are reordered in place into kd order: each subtree occupies
/// a contiguous slice, the splitting point sits at the slice's median
/// position, and the axis alternates with depth. Range queries recurse
/// only into half-spaces that intersect the query rectangle.
#[derive(Debug, Clone)]
pub struct KdTree<T> {
    entries: Vec<(Point, T)>,
}

impl<T> KdTree<T> {
    /// Builds the tree (O(n log² n): median by full sort per level would be
    /// O(n log² n); we use `select_nth_unstable` for O(n log n)).
    pub fn bulk_load(mut entries: Vec<(Point, T)>) -> Self {
        fn build<T>(slice: &mut [(Point, T)], axis: usize) {
            if slice.len() <= 1 {
                return;
            }
            let mid = slice.len() / 2;
            slice.select_nth_unstable_by(mid, |a, b| {
                let (ka, kb) = if axis == 0 { (a.0.x, b.0.x) } else { (a.0.y, b.0.y) };
                ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
            });
            let (lo, rest) = slice.split_at_mut(mid);
            let (_, hi) = rest.split_at_mut(1);
            build(lo, 1 - axis);
            build(hi, 1 - axis);
        }
        build(&mut entries, 0);
        KdTree { entries }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Visits every point inside `region`; stops early when `visit`
    /// returns `true`, and reports whether that happened.
    pub fn query_until<'a>(
        &'a self,
        region: &Rect,
        mut visit: impl FnMut(&'a Point, &'a T) -> bool,
    ) -> bool {
        fn walk<'a, T>(
            slice: &'a [(Point, T)],
            axis: usize,
            region: &Rect,
            visit: &mut impl FnMut(&'a Point, &'a T) -> bool,
        ) -> bool {
            if slice.is_empty() {
                return false;
            }
            let mid = slice.len() / 2;
            let (p, t) = &slice[mid];
            let key = if axis == 0 { p.x } else { p.y };
            let (lo_bound, hi_bound) = if axis == 0 {
                (region.min_x, region.max_x)
            } else {
                (region.min_y, region.max_y)
            };
            // Left half-space may contain matches when the region starts
            // below the split key, right when it ends at or above it.
            if lo_bound <= key && walk(&slice[..mid], 1 - axis, region, visit) {
                return true;
            }
            if region.contains_point(p) && visit(p, t) {
                return true;
            }
            if hi_bound >= key && walk(&slice[mid + 1..], 1 - axis, region, visit) {
                return true;
            }
            false
        }
        walk(&self.entries, 0, region, &mut visit)
    }

    /// All points inside `region`.
    pub fn query(&self, region: &Rect) -> Vec<(&Point, &T)> {
        let mut out = Vec::new();
        self.query_until(region, |p, t| {
            out.push((p, t));
            false
        });
        out
    }

    /// Number of points inside `region`.
    pub fn count_in(&self, region: &Rect) -> usize {
        self.query(region).len()
    }

    /// Whether any point lies inside `region`.
    pub fn query_exists(&self, region: &Rect) -> bool {
        self.query_until(region, |_, _| true)
    }

    /// The point nearest to `target` (branch-and-bound), or `None` when
    /// empty.
    pub fn nearest(&self, target: &Point) -> Option<(&Point, &T)> {
        fn walk<'a, T>(
            slice: &'a [(Point, T)],
            axis: usize,
            target: &Point,
            best: &mut Option<(f64, &'a Point, &'a T)>,
        ) {
            if slice.is_empty() {
                return;
            }
            let mid = slice.len() / 2;
            let (p, t) = &slice[mid];
            let d = p.distance_sq(target);
            if best.is_none() || d < best.unwrap().0 {
                *best = Some((d, p, t));
            }
            let key = if axis == 0 { p.x } else { p.y };
            let q = if axis == 0 { target.x } else { target.y };
            let (near, far) = if q < key {
                (&slice[..mid], &slice[mid + 1..])
            } else {
                (&slice[mid + 1..], &slice[..mid])
            };
            walk(near, 1 - axis, target, best);
            // The far half can only help if the splitting plane is closer
            // than the best match so far.
            let plane = (q - key) * (q - key);
            if best.map(|(bd, _, _)| plane < bd).unwrap_or(true) {
                walk(far, 1 - axis, target, best);
            }
        }
        let mut best = None;
        walk(&self.entries, 0, target, &mut best);
        best.map(|(_, p, t)| (p, t))
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(Point, T)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<(Point, usize)> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 101) as f64;
                let y = ((i * 53) % 97) as f64;
                (Point::new(x, y), i)
            })
            .collect()
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let pts = sample(500);
        let tree = KdTree::bulk_load(pts.clone());
        assert_eq!(tree.len(), 500);
        for region in [
            Rect::new(0.0, 0.0, 20.0, 20.0),
            Rect::new(50.0, 40.0, 80.0, 90.0),
            Rect::new(100.0, 96.0, 200.0, 200.0),
            Rect::new(-10.0, -10.0, -1.0, -1.0),
        ] {
            let mut got: Vec<usize> = tree.query(&region).iter().map(|(_, &i)| i).collect();
            got.sort_unstable();
            let mut expected: Vec<usize> = pts
                .iter()
                .filter(|(p, _)| region.contains_point(p))
                .map(|&(_, i)| i)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "region {region}");
            assert_eq!(tree.query_exists(&region), !expected.is_empty());
        }
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let pts = sample(300);
        let tree = KdTree::bulk_load(pts.clone());
        for target in [Point::new(0.0, 0.0), Point::new(50.5, 49.5), Point::new(150.0, -3.0)] {
            let (p, _) = tree.nearest(&target).unwrap();
            let best = pts
                .iter()
                .map(|(q, _)| q.distance_sq(&target))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(p.distance_sq(&target), best, "target {target}");
        }
    }

    #[test]
    fn duplicates_and_empty() {
        let tree: KdTree<u32> = KdTree::bulk_load(vec![]);
        assert!(tree.is_empty());
        assert!(!tree.query_exists(&Rect::new(-1e9, -1e9, 1e9, 1e9)));
        assert!(tree.nearest(&Point::new(0.0, 0.0)).is_none());

        let dup = KdTree::bulk_load(vec![(Point::new(1.0, 1.0), 0u32); 20]);
        assert_eq!(dup.count_in(&Rect::from_point(Point::new(1.0, 1.0))), 20);
    }

    #[test]
    fn early_exit() {
        let tree = KdTree::bulk_load(sample(100));
        let mut visits = 0;
        let found = tree.query_until(&Rect::new(0.0, 0.0, 101.0, 97.0), |_, _| {
            visits += 1;
            true
        });
        assert!(found);
        assert_eq!(visits, 1);
    }
}
