//! Spatial-indexing substrate for the geosocial reachability library.
//!
//! The paper's evaluation methods need two kinds of spatial access paths:
//!
//! * an **R-tree** over 2-D points/rectangles (SpaReach's spatial
//!   filter) and over 3-D points/segments/boxes (3DReach's transformed
//!   space) — provided by the const-generic [`RTree`], a static STR
//!   bulk-loaded tree stored as a flat breadth-first structure-of-arrays
//!   arena, and by [`DynRTree`], a mutable Guttman tree (quadratic split)
//!   for incremental workloads;
//! * the **hierarchical grid** that GeoReach's SPA-graph partitions the
//!   space with — provided by [`grid::HierarchicalGrid`] and [`grid::CellId`];
//! * a **uniform grid** ([`UniformGrid`]), a static **kd-tree**
//!   ([`KdTree`]) and a point-region **quadtree** ([`QuadTree`]) — the
//!   space-oriented-partitioning indexes of the paper's related work
//!   (Section 7.2), used as ablation baselines for range queries.
//!
//! Everything is implemented from scratch; the paper used Boost's R-tree,
//! which we substitute with this implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dyn_rtree;
pub mod grid;
mod kdtree;
mod quadtree;
mod rtree;
mod uniform;

pub use dyn_rtree::DynRTree;
pub use kdtree::KdTree;
pub use quadtree::QuadTree;
pub use rtree::{RTree, RTreeCols, RTreeParams, RTreeSnapshot};
pub use uniform::UniformGrid;
