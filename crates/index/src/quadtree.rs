//! A point-region quadtree — the second hierarchical SOP index named by the
//! paper's related work (Section 7.2). Like [`crate::KdTree`] and
//! [`crate::UniformGrid`], it serves as an ablation baseline for the
//! spatial range queries of SpaReach.

use gsr_geo::{Point, Rect};

/// Maximum points per leaf before it splits into four quadrants.
const LEAF_CAPACITY: usize = 16;
/// Maximum depth; duplicate-heavy inputs stop splitting here.
const MAX_DEPTH: usize = 24;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<(Point, T)>),
    /// Children in quadrant order: SW, SE, NW, NE (split at the centre).
    Inner(Box<[QuadNode<T>; 4]>),
}

#[derive(Debug, Clone)]
struct QuadNode<T> {
    bounds: Rect,
    node: Node<T>,
}

/// A point-region quadtree over points with payloads `T`.
///
/// ```
/// use gsr_geo::{Point, Rect};
/// use gsr_index::QuadTree;
///
/// let space = Rect::new(0.0, 0.0, 100.0, 100.0);
/// let mut tree = QuadTree::new(space);
/// for i in 0..100u32 {
///     tree.insert(Point::new(i as f64, (i * 7 % 100) as f64), i);
/// }
/// assert_eq!(tree.len(), 100);
/// assert!(tree.query_exists(&Rect::new(0.0, 0.0, 10.0, 100.0)));
/// ```
#[derive(Debug, Clone)]
pub struct QuadTree<T> {
    root: QuadNode<T>,
    /// Points outside the declared space: kept in a side list so the
    /// bounds-based pruning stays sound. Scanned linearly per query —
    /// fine as long as outliers are rare, which holds for the clamped
    /// synthetic and real datasets.
    outliers: Vec<(Point, T)>,
    len: usize,
}

impl<T> QuadTree<T> {
    /// An empty tree covering `space`. Points outside `space` go to a
    /// linear side list, so nothing is lost.
    pub fn new(space: Rect) -> Self {
        QuadTree {
            root: QuadNode { bounds: space, node: Node::Leaf(Vec::new()) },
            outliers: Vec::new(),
            len: 0,
        }
    }

    /// Builds a tree from a batch of points.
    pub fn bulk_load(space: Rect, entries: Vec<(Point, T)>) -> Self {
        let mut tree = QuadTree::new(space);
        for (p, t) in entries {
            tree.insert(p, t);
        }
        tree
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts one point.
    pub fn insert(&mut self, p: Point, value: T) {
        self.len += 1;
        if !self.root.bounds.contains_point(&p) {
            self.outliers.push((p, value));
            return;
        }
        insert_into(&mut self.root, p, (p, value), 0);
    }

    /// Visits every point inside `region`; stops early when `visit` returns
    /// `true`, and reports whether that happened.
    pub fn query_until<'a>(
        &'a self,
        region: &Rect,
        mut visit: impl FnMut(&'a Point, &'a T) -> bool,
    ) -> bool {
        fn walk<'a, T>(
            qn: &'a QuadNode<T>,
            region: &Rect,
            visit: &mut impl FnMut(&'a Point, &'a T) -> bool,
        ) -> bool {
            if !qn.bounds.intersects(region) {
                return false;
            }
            match &qn.node {
                Node::Leaf(entries) => {
                    for (p, t) in entries {
                        if region.contains_point(p) && visit(p, t) {
                            return true;
                        }
                    }
                    false
                }
                Node::Inner(children) => children.iter().any(|c| walk(c, region, visit)),
            }
        }
        if walk(&self.root, region, &mut visit) {
            return true;
        }
        self.outliers
            .iter()
            .any(|(p, t)| region.contains_point(p) && visit(p, t))
    }

    /// All points inside `region`.
    pub fn query(&self, region: &Rect) -> Vec<(&Point, &T)> {
        let mut out = Vec::new();
        self.query_until(region, |p, t| {
            out.push((p, t));
            false
        });
        out
    }

    /// Number of points inside `region`.
    pub fn count_in(&self, region: &Rect) -> usize {
        self.query(region).len()
    }

    /// Whether any point lies inside `region`.
    pub fn query_exists(&self, region: &Rect) -> bool {
        self.query_until(region, |_, _| true)
    }

    /// Depth of the tree (1 for a single leaf).
    pub fn depth(&self) -> usize {
        fn walk<T>(qn: &QuadNode<T>) -> usize {
            match &qn.node {
                Node::Leaf(_) => 1,
                Node::Inner(children) => 1 + children.iter().map(walk).max().unwrap_or(0),
            }
        }
        walk(&self.root)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        fn walk<T>(qn: &QuadNode<T>) -> usize {
            std::mem::size_of::<QuadNode<T>>()
                + match &qn.node {
                    Node::Leaf(entries) => entries.len() * std::mem::size_of::<(Point, T)>(),
                    Node::Inner(children) => children.iter().map(walk).sum(),
                }
        }
        walk(&self.root) + self.outliers.len() * std::mem::size_of::<(Point, T)>()
    }
}

/// Quadrant rectangles of `bounds` in SW, SE, NW, NE order.
fn quadrants(bounds: &Rect) -> [Rect; 4] {
    let c = bounds.center();
    [
        Rect::new(bounds.min_x, bounds.min_y, c.x, c.y),
        Rect::new(c.x, bounds.min_y, bounds.max_x, c.y),
        Rect::new(bounds.min_x, c.y, c.x, bounds.max_y),
        Rect::new(c.x, c.y, bounds.max_x, bounds.max_y),
    ]
}

/// Index of the quadrant containing `p` (ties go to the NE-most quadrant,
/// matching half-open routing so every point routes to exactly one child).
fn quadrant_of(bounds: &Rect, p: &Point) -> usize {
    let c = bounds.center();
    (if p.x >= c.x { 1 } else { 0 }) + (if p.y >= c.y { 2 } else { 0 })
}

fn insert_into<T>(qn: &mut QuadNode<T>, routed: Point, entry: (Point, T), depth: usize) {
    match &mut qn.node {
        Node::Leaf(entries) => {
            entries.push(entry);
            if entries.len() > LEAF_CAPACITY && depth < MAX_DEPTH {
                // Split: every stored point is inside the bounds (outliers
                // never enter the tree), so quadrant routing is exact.
                let old = std::mem::take(entries);
                let quads = quadrants(&qn.bounds);
                let mut children: Box<[QuadNode<T>; 4]> = Box::new(quads.map(|bounds| QuadNode {
                    bounds,
                    node: Node::Leaf(Vec::new()),
                }));
                for (p, t) in old {
                    let q = quadrant_of(&qn.bounds, &p);
                    match &mut children[q].node {
                        Node::Leaf(v) => v.push((p, t)),
                        Node::Inner(_) => unreachable!("fresh children are leaves"),
                    }
                }
                qn.node = Node::Inner(children);
            }
        }
        Node::Inner(children) => {
            let q = quadrant_of(&qn.bounds, &routed);
            insert_into(&mut children[q], routed, entry, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    fn sample(n: usize) -> Vec<(Point, usize)> {
        (0..n)
            .map(|i| (Point::new(((i * 17) % 101) as f64, ((i * 31) % 97) as f64), i))
            .collect()
    }

    #[test]
    fn query_matches_linear_scan() {
        let pts = sample(800);
        let tree = QuadTree::bulk_load(space(), pts.clone());
        assert_eq!(tree.len(), 800);
        assert!(tree.depth() > 1, "800 points must split the root");
        for region in [
            Rect::new(0.0, 0.0, 25.0, 25.0),
            Rect::new(40.0, 40.0, 60.0, 60.0),
            Rect::new(99.0, 95.0, 120.0, 120.0),
            Rect::new(-5.0, -5.0, -1.0, -1.0),
        ] {
            let mut got: Vec<usize> = tree.query(&region).iter().map(|(_, &i)| i).collect();
            got.sort_unstable();
            let mut expected: Vec<usize> = pts
                .iter()
                .filter(|(p, _)| region.contains_point(p))
                .map(|&(_, i)| i)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "region {region}");
            assert_eq!(tree.query_exists(&region), !expected.is_empty());
        }
    }

    #[test]
    fn out_of_space_points_survive() {
        let mut tree = QuadTree::new(space());
        tree.insert(Point::new(-50.0, 150.0), "far");
        tree.insert(Point::new(50.0, 50.0), "in");
        assert_eq!(tree.len(), 2);
        assert!(tree.query_exists(&Rect::new(-60.0, 140.0, -40.0, 160.0)));
    }

    #[test]
    fn duplicate_points_bottom_out_at_max_depth() {
        let mut tree = QuadTree::new(space());
        for i in 0..200u32 {
            tree.insert(Point::new(10.0, 10.0), i);
        }
        assert_eq!(tree.len(), 200);
        assert!(tree.depth() <= MAX_DEPTH + 1);
        assert_eq!(tree.count_in(&Rect::from_point(Point::new(10.0, 10.0))), 200);
    }

    #[test]
    fn early_exit() {
        let tree = QuadTree::bulk_load(space(), sample(100));
        let mut visits = 0;
        assert!(tree.query_until(&space(), |_, _| {
            visits += 1;
            true
        }));
        assert_eq!(visits, 1);
    }

    #[test]
    fn empty_tree() {
        let tree: QuadTree<u32> = QuadTree::new(space());
        assert!(tree.is_empty());
        assert!(!tree.query_exists(&space()));
        assert_eq!(tree.depth(), 1);
    }
}
