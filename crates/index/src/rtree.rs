//! A const-generic static R-tree packed with STR bulk loading, stored as a
//! flat breadth-first structure-of-arrays arena.
//!
//! The tree indexes axis-aligned boxes ([`Aabb<N>`]) with an arbitrary
//! payload `T`. Points are degenerate boxes, so the same structure serves as
//! the paper's 2-D point R-tree (SpaReach), its 2-D rectangle R-tree (the
//! MBR-based SCC variants of Section 5), the 3-D point R-tree (3DReach) and
//! the 3-D segment/box R-tree (3DReach-REV).
//!
//! # Memory layout
//!
//! Nodes are numbered breadth-first from the root (id 0): all inner nodes
//! come before all leaves, parents before children, and the children of any
//! node are consecutive ids. Instead of per-node allocations the tree keeps
//! six flat arrays:
//!
//! * `mbrs[id]` — every node's MBR, contiguous so a traversal that filters
//!   children scans coordinates cache-linearly;
//! * `child_start` / `children` — CSR adjacency of the inner nodes;
//! * `entry_start` — CSR offsets of the leaves into the entry columns;
//! * entry coordinates in column-major order (one column per dimension and
//!   bound), with per-dimension *degenerate compression*: when every entry
//!   is flat in some dimension (points in any dimension, the x/y columns of
//!   3DReach-REV's vertical segments) the `hi` column is dropped and reads
//!   fall back to `lo` — bit-exact, since equality is tested on the raw
//!   `f64` bits;
//! * `values` — the payloads, parallel to the entry columns.
//!
//! Traversal order (children pushed in list order, leaf entries scanned
//! forward) is a function of the per-node child lists only, not of the id
//! values, so queries visit candidates in exactly the order of the previous
//! pointer-style arena and `QueryCost` accounting is unchanged.
//!
//! The tree is immutable once built; for incremental workloads (the
//! dynamic-insertion extension) see [`crate::DynRTree`].

use gsr_geo::Aabb;
use gsr_graph::{Col, HeapBytes};

/// Fan-out parameters of an [`RTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeParams {
    /// Maximum entries per node before a split (Guttman's `M`).
    pub max_entries: usize,
    /// Minimum entries per node after a split (Guttman's `m <= M/2`).
    pub min_entries: usize,
}

impl Default for RTreeParams {
    fn default() -> Self {
        RTreeParams { max_entries: 16, min_entries: 6 }
    }
}

impl RTreeParams {
    /// Creates parameters, clamping `min_entries` into the valid
    /// `1 ..= max_entries / 2` range.
    pub fn new(max_entries: usize, min_entries: usize) -> Self {
        let max_entries = max_entries.max(4);
        let min_entries = min_entries.clamp(1, max_entries / 2);
        RTreeParams { max_entries, min_entries }
    }
}

/// Column-major entry coordinates with per-dimension degenerate
/// compression: dimension `d` keeps no `hi` column when every entry
/// satisfies `lo[d] == hi[d]` bit-exactly.
#[derive(Debug, Clone, PartialEq)]
struct EntryStore<const N: usize> {
    lo: [Col<f64>; N],
    hi: [Option<Col<f64>>; N],
}

impl<const N: usize> EntryStore<N> {
    fn from_boxes(boxes: &[Aabb<N>]) -> Self {
        let lo: [Col<f64>; N] =
            std::array::from_fn(|d| boxes.iter().map(|b| b.min[d]).collect::<Vec<_>>().into());
        let hi: [Option<Col<f64>>; N] = std::array::from_fn(|d| {
            if boxes.iter().all(|b| b.min[d].to_bits() == b.max[d].to_bits()) {
                None
            } else {
                Some(boxes.iter().map(|b| b.max[d]).collect::<Vec<_>>().into())
            }
        });
        EntryStore { lo, hi }
    }

    #[inline]
    fn len(&self) -> usize {
        self.lo[0].len()
    }

    /// Reconstructs entry `i`'s box, bit-identical to the one stored.
    #[inline]
    fn get(&self, i: usize) -> Aabb<N> {
        let min: [f64; N] = std::array::from_fn(|d| self.lo[d][i]);
        let max: [f64; N] = std::array::from_fn(|d| match &self.hi[d] {
            Some(col) => col[i],
            None => self.lo[d][i],
        });
        Aabb { min, max }
    }

    /// Whether entry `i` intersects `region` — the same closed-interval
    /// test as [`Aabb::intersects`], evaluated straight off the columns.
    #[inline]
    fn intersects(&self, i: usize, region: &Aabb<N>) -> bool {
        (0..N).all(|d| {
            let lo = self.lo[d][i];
            let hi = match &self.hi[d] {
                Some(col) => col[i],
                None => lo,
            };
            lo <= region.max[d] && region.min[d] <= hi
        })
    }

    fn heap_bytes(&self) -> usize {
        let lo: usize = self.lo.iter().map(HeapBytes::heap_bytes).sum();
        let hi: usize =
            self.hi.iter().map(|c| c.as_ref().map_or(0, HeapBytes::heap_bytes)).sum();
        lo + hi
    }
}

/// The flat arena of an [`RTree`] with public fields, for snapshot
/// encoding. [`RTree::to_snapshot`] produces it and
/// [`RTree::from_snapshot`] re-validates and rebuilds the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RTreeSnapshot<const N: usize, T> {
    /// Fan-out parameters.
    pub params: RTreeParams,
    /// Per-node MBRs in breadth-first id order (inner nodes first).
    pub mbrs: Vec<Aabb<N>>,
    /// CSR offsets into `children` for inner node `i` (`len = num_inner + 1`).
    pub child_start: Vec<u32>,
    /// Concatenated child id lists of the inner nodes.
    pub children: Vec<u32>,
    /// CSR offsets into the entry columns for leaf `l` = node
    /// `num_inner + l` (`len = num_leaves + 1`).
    pub entry_start: Vec<u32>,
    /// Per-dimension entry lower bounds.
    pub entry_lo: [Vec<f64>; N],
    /// Per-dimension entry upper bounds; `None` marks a degenerate
    /// dimension whose upper bounds equal `entry_lo` bit-exactly.
    pub entry_hi: [Option<Vec<f64>>; N],
    /// Entry payloads, parallel to the coordinate columns.
    pub values: Vec<T>,
}

/// Borrowed view of an [`RTree`]'s arena columns, for zero-copy snapshot
/// encoding. Unlike [`RTreeSnapshot`] nothing is cloned; the slices alias
/// the live tree. Produced by [`RTree::cols`], inverted by
/// [`RTree::from_cols`].
#[derive(Debug)]
pub struct RTreeCols<'a, const N: usize, T> {
    /// Fan-out parameters.
    pub params: RTreeParams,
    /// Per-node MBRs in breadth-first id order (inner nodes first).
    pub mbrs: &'a [Aabb<N>],
    /// CSR offsets into `children` for inner node `i`.
    pub child_start: &'a [u32],
    /// Concatenated child id lists of the inner nodes.
    pub children: &'a [u32],
    /// CSR offsets into the entry columns for leaf nodes.
    pub entry_start: &'a [u32],
    /// Per-dimension entry lower bounds.
    pub entry_lo: [&'a [f64]; N],
    /// Per-dimension entry upper bounds; `None` marks a degenerate
    /// dimension whose upper bounds equal `entry_lo` bit-exactly.
    pub entry_hi: [Option<&'a [f64]>; N],
    /// Entry payloads, parallel to the coordinate columns.
    pub values: &'a [T],
}

/// An R-tree over `N`-dimensional boxes with payloads of type `T`.
///
/// ```
/// use gsr_geo::Aabb;
/// use gsr_index::RTree;
///
/// let entries: Vec<(Aabb<2>, u32)> = (0..100u32)
///     .map(|i| (Aabb::from_point([i as f64, (i * 7 % 100) as f64]), i))
///     .collect();
/// let t = RTree::bulk_load(entries);
/// let region = Aabb::new([0.0, 0.0], [10.0, 100.0]);
/// assert!(t.query_exists(&region));
/// assert_eq!(t.query(&region).count(), 11);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RTree<const N: usize, T> {
    params: RTreeParams,
    len: usize,
    num_inner: usize,
    mbrs: Col<Aabb<N>>,
    child_start: Col<u32>,
    children: Col<u32>,
    entry_start: Col<u32>,
    entries: EntryStore<N>,
    values: Col<T>,
}

impl<const N: usize, T> Default for RTree<N, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize, T> RTree<N, T> {
    /// An empty tree with default parameters.
    pub fn new() -> Self {
        Self::with_params(RTreeParams::default())
    }

    /// An empty tree with the given fan-out parameters: a single empty
    /// leaf root.
    pub fn with_params(params: RTreeParams) -> Self {
        RTree {
            params,
            len: 0,
            num_inner: 0,
            mbrs: vec![Aabb::empty()].into(),
            child_start: vec![0].into(),
            entry_start: vec![0, 0].into(),
            children: Col::default(),
            entries: EntryStore::from_boxes(&[]),
            values: Col::default(),
        }
    }

    /// Bulk-loads the tree with Sort-Tile-Recursive packing, which produces
    /// nearly fully packed nodes with little overlap — the standard loading
    /// strategy for static datasets such as the paper's networks.
    pub fn bulk_load(entries: Vec<(Aabb<N>, T)>) -> Self {
        Self::bulk_load_with_params(entries, RTreeParams::default())
    }

    /// [`RTree::bulk_load`] with explicit parameters.
    pub fn bulk_load_with_params(entries: Vec<(Aabb<N>, T)>, params: RTreeParams) -> Self {
        if entries.is_empty() {
            return Self::with_params(params);
        }
        let mut leaf_groups: Vec<Vec<(Aabb<N>, T)>> = Vec::new();
        str_tile(entries, params.max_entries, 0, &mut leaf_groups);
        Self::assemble(params, leaf_groups, |level| {
            let mut groups = Vec::new();
            str_tile(level, params.max_entries, 0, &mut groups);
            groups
        })
    }

    /// [`RTree::bulk_load`] with explicit parameters and a thread count:
    /// the top-level STR slabs are tiled concurrently and their groups
    /// concatenated in slab order, so the resulting tree is **identical**
    /// to the sequential bulk load at any thread count (`0` = machine
    /// parallelism, `1` = sequential).
    pub fn bulk_load_parallel(
        entries: Vec<(Aabb<N>, T)>,
        params: RTreeParams,
        threads: usize,
    ) -> Self
    where
        T: Send,
    {
        let threads = gsr_graph::par::effective_threads(threads);
        if threads <= 1 {
            return Self::bulk_load_with_params(entries, params);
        }
        if entries.is_empty() {
            return Self::with_params(params);
        }
        let leaf_groups = str_tile_threaded(entries, params.max_entries, threads);
        Self::assemble(params, leaf_groups, |level| {
            str_tile_threaded(level, params.max_entries, threads)
        })
    }

    /// Builds the breadth-first arena from the STR leaf groups, tiling the
    /// upper levels with `tile` (sequential or threaded — both emit the
    /// same group lists, so both produce the same arena).
    fn assemble(
        params: RTreeParams,
        mut leaf_groups: Vec<Vec<(Aabb<N>, T)>>,
        mut tile: impl FnMut(Vec<(Aabb<N>, u32)>) -> Vec<Vec<(Aabb<N>, u32)>>,
    ) -> Self {
        // Tile upward until one root group remains. Positions in
        // `upper_children[k]` index the groups of the level below.
        let mut level_mbrs: Vec<Vec<Aabb<N>>> = vec![leaf_groups
            .iter()
            .map(|g| Aabb::mbr_of(g.iter().map(|(b, _)| *b)).expect("non-empty group"))
            .collect()];
        let mut upper_children: Vec<Vec<Vec<u32>>> = Vec::new();
        while level_mbrs.last().expect("at least the leaf level").len() > 1 {
            let below = level_mbrs.last().expect("non-empty");
            let with_pos: Vec<(Aabb<N>, u32)> =
                below.iter().enumerate().map(|(i, &m)| (m, i as u32)).collect();
            let groups = tile(with_pos);
            level_mbrs.push(
                groups
                    .iter()
                    .map(|g| Aabb::mbr_of(g.iter().map(|(b, _)| *b)).expect("non-empty group"))
                    .collect(),
            );
            upper_children
                .push(groups.into_iter().map(|g| g.into_iter().map(|(_, p)| p).collect()).collect());
        }

        // Breadth-first numbering, root (the single top group) first. The
        // BFS order of each level is the concatenation of the child lists
        // of the level above in its own BFS order.
        let top = upper_children.len();
        let mut orders: Vec<Vec<u32>> = vec![Vec::new(); top + 1];
        orders[top] = vec![0];
        for lvl in (1..=top).rev() {
            let mut next = Vec::new();
            for &pos in &orders[lvl] {
                next.extend_from_slice(&upper_children[lvl - 1][pos as usize]);
            }
            orders[lvl - 1] = next;
        }
        let ranks: Vec<Vec<u32>> = orders
            .iter()
            .map(|order| {
                let mut rank = vec![0u32; order.len()];
                for (i, &pos) in order.iter().enumerate() {
                    rank[pos as usize] = i as u32;
                }
                rank
            })
            .collect();
        let mut base = vec![0u32; top + 1];
        let mut next_id = 0u32;
        for lvl in (0..=top).rev() {
            base[lvl] = next_id;
            next_id += orders[lvl].len() as u32;
        }
        let num_nodes = next_id as usize;
        let num_inner = num_nodes - orders[0].len();

        // Fill the arrays in id order: MBRs over every level, child CSR
        // over the inner levels, entry columns over the leaves.
        let mut mbrs = Vec::with_capacity(num_nodes);
        for lvl in (0..=top).rev() {
            for &pos in &orders[lvl] {
                mbrs.push(level_mbrs[lvl][pos as usize]);
            }
        }
        let mut child_start = Vec::with_capacity(num_inner + 1);
        let mut children = Vec::new();
        child_start.push(0u32);
        for lvl in (1..=top).rev() {
            for &pos in &orders[lvl] {
                for &cpos in &upper_children[lvl - 1][pos as usize] {
                    children.push(base[lvl - 1] + ranks[lvl - 1][cpos as usize]);
                }
                child_start.push(children.len() as u32);
            }
        }
        let mut entry_start = Vec::with_capacity(orders[0].len() + 1);
        let mut boxes = Vec::new();
        let mut values = Vec::new();
        entry_start.push(0u32);
        for &pos in &orders[0] {
            for (b, t) in std::mem::take(&mut leaf_groups[pos as usize]) {
                boxes.push(b);
                values.push(t);
            }
            entry_start.push(boxes.len() as u32);
        }
        let entries = EntryStore::from_boxes(&boxes);

        RTree {
            params,
            len: values.len(),
            num_inner,
            mbrs: mbrs.into(),
            child_start: child_start.into(),
            children: children.into(),
            entry_start: entry_start.into(),
            entries,
            values: values.into(),
        }
    }

    /// Number of data entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The MBR of all entries ([`Aabb::empty`] when the tree is empty).
    #[inline]
    pub fn mbr(&self) -> Aabb<N> {
        self.mbrs[0]
    }

    /// Number of nodes in the arena.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.mbrs.len()
    }

    /// Number of inner (non-leaf) nodes; node ids `0..num_inner_nodes()`
    /// are inner, the rest are leaves.
    #[inline]
    pub fn num_inner_nodes(&self) -> usize {
        self.num_inner
    }

    /// Child ids of inner node `id`.
    #[inline]
    fn node_children(&self, id: usize) -> &[u32] {
        &self.children[self.child_start[id] as usize..self.child_start[id + 1] as usize]
    }

    /// Entry index range of leaf node `id` (`id >= num_inner`).
    #[inline]
    fn leaf_range(&self, id: usize) -> (usize, usize) {
        let l = id - self.num_inner;
        (self.entry_start[l] as usize, self.entry_start[l + 1] as usize)
    }

    /// The entry nearest to `point` (minimum Euclidean distance from the
    /// point to the entry's box), or `None` for an empty tree. Best-first
    /// branch-and-bound over node MBRs.
    pub fn nearest_neighbor(&self, point: &[f64; N]) -> Option<(Aabb<N>, &T)> {
        self.nearest_where(point, |_, _| true)
    }

    /// The nearest entry whose `(box, value)` satisfies `accept` — e.g. the
    /// nearest *reachable* spatial vertex. Entries failing the predicate
    /// are skipped without terminating the search.
    pub fn nearest_where(
        &self,
        point: &[f64; N],
        accept: impl FnMut(&Aabb<N>, &T) -> bool,
    ) -> Option<(Aabb<N>, &T)> {
        self.nearest_k_where(point, 1, accept).into_iter().next()
    }

    /// The `k` nearest accepted entries, ordered by ascending distance.
    /// Best-first search that stops once every remaining node is farther
    /// than the current k-th best.
    pub fn nearest_k_where(
        &self,
        point: &[f64; N],
        k: usize,
        mut accept: impl FnMut(&Aabb<N>, &T) -> bool,
    ) -> Vec<(Aabb<N>, &T)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        // Heap over (distance, node id); OrderedF64 wraps the comparison.
        let mut heap: BinaryHeap<(Reverse<OrderedF64>, u32)> = BinaryHeap::new();
        heap.push((Reverse(OrderedF64(min_dist_sq(&self.mbrs[0], point))), 0));
        // The k best accepted entries so far, sorted ascending by distance.
        let mut best: Vec<(f64, (Aabb<N>, &T))> = Vec::with_capacity(k + 1);

        while let Some((Reverse(OrderedF64(dist)), id)) = heap.pop() {
            if best.len() == k && dist > best[k - 1].0 {
                break; // every remaining node is farther than the k-th best
            }
            let id = id as usize;
            if id < self.num_inner {
                for &c in self.node_children(id) {
                    heap.push((
                        Reverse(OrderedF64(min_dist_sq(&self.mbrs[c as usize], point))),
                        c,
                    ));
                }
            } else {
                let (start, end) = self.leaf_range(id);
                for i in start..end {
                    let b = self.entries.get(i);
                    let t = &self.values[i];
                    let d = min_dist_sq(&b, point);
                    let qualifies = best.len() < k || d < best[k - 1].0;
                    if qualifies && accept(&b, t) {
                        let pos =
                            best.iter().position(|(bd, _)| d < *bd).unwrap_or(best.len());
                        best.insert(pos, (d, (b, t)));
                        best.truncate(k);
                    }
                }
            }
        }
        best.into_iter().map(|(_, entry)| entry).collect()
    }

    /// Iterator over all entries whose box intersects `region`.
    pub fn query<'a>(&'a self, region: &Aabb<N>) -> Query<'a, N, T> {
        let mut stack = Vec::new();
        if self.mbrs[0].intersects(region) {
            stack.push(0u32);
        }
        Query { tree: self, region: *region, stack, leaf: None }
    }

    /// Whether any entry intersects `region` (early-exit traversal). This is
    /// the access pattern of 3DReach: a `RangeReach` answer needs only the
    /// *existence* of a point inside the query cuboid, not the result set.
    pub fn query_exists(&self, region: &Aabb<N>) -> bool {
        self.query(region).next().is_some()
    }

    /// Like [`RTree::query`], but traversing with a caller-provided stack
    /// buffer instead of allocating one per query. The stack is cleared on
    /// entry and retains its capacity afterwards, so a caller that reuses
    /// the same buffer (e.g. a per-thread `QueryScratch`) performs zero
    /// heap allocations per query in steady state. Results are identical
    /// to [`RTree::query`].
    pub fn query_with<'t, 's>(
        &'t self,
        region: &Aabb<N>,
        stack: &'s mut Vec<u32>,
    ) -> QueryWith<'t, 's, N, T> {
        stack.clear();
        if self.mbrs[0].intersects(region) {
            stack.push(0u32);
        }
        QueryWith { tree: self, region: *region, stack, leaf: None }
    }

    /// [`RTree::query_exists`] with a caller-provided stack buffer.
    pub fn query_exists_with(&self, region: &Aabb<N>, stack: &mut Vec<u32>) -> bool {
        self.query_with(region, stack).next().is_some()
    }

    /// Number of entries intersecting `region`.
    pub fn count_in(&self, region: &Aabb<N>) -> usize {
        self.query(region).count()
    }

    /// Iterator over all entries in storage (breadth-first leaf) order.
    pub fn iter(&self) -> impl Iterator<Item = (Aabb<N>, &T)> {
        (0..self.len).map(|i| (self.entries.get(i), &self.values[i]))
    }

    /// Height of the tree (1 for a single leaf root). Derived by walking
    /// the first-child chain — children always have larger ids, so the
    /// walk terminates.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = 0usize;
        while id < self.num_inner {
            h += 1;
            id = self.node_children(id)[0] as usize;
        }
        h
    }

    /// Approximate heap footprint in bytes: MBR, adjacency and entry-column
    /// arrays plus payload storage. Used for the index-size accounting of
    /// Table 4 and the `repro memory` experiment.
    pub fn heap_bytes(&self) -> usize {
        self.mbrs.heap_bytes()
            + self.child_start.heap_bytes()
            + self.children.heap_bytes()
            + self.entry_start.heap_bytes()
            + self.entries.heap_bytes()
            + self.values.heap_bytes()
    }

    /// The fan-out parameters the tree was built with.
    #[inline]
    pub fn params(&self) -> RTreeParams {
        self.params
    }

    /// Clones the arena into an [`RTreeSnapshot`] for encoding.
    /// [`RTree::from_snapshot`] inverts it exactly, so a saved tree reloads
    /// bit-identical (same arena layout, same traversal order, same query
    /// costs).
    pub fn to_snapshot(&self) -> RTreeSnapshot<N, T>
    where
        T: Clone,
    {
        RTreeSnapshot {
            params: self.params,
            mbrs: self.mbrs.to_vec(),
            child_start: self.child_start.to_vec(),
            children: self.children.to_vec(),
            entry_start: self.entry_start.to_vec(),
            entry_lo: std::array::from_fn(|d| self.entries.lo[d].to_vec()),
            entry_hi: std::array::from_fn(|d| self.entries.hi[d].as_ref().map(|c| c.to_vec())),
            values: self.values.to_vec(),
        }
    }

    /// Borrowed view of the arena columns for zero-copy (v3) snapshot
    /// encoding — no clone, unlike [`RTree::to_snapshot`].
    /// [`RTree::from_cols`] inverts it.
    pub fn cols(&self) -> RTreeCols<'_, N, T> {
        RTreeCols {
            params: self.params,
            mbrs: &self.mbrs,
            child_start: &self.child_start,
            children: &self.children,
            entry_start: &self.entry_start,
            entry_lo: std::array::from_fn(|d| &self.entries.lo[d][..]),
            entry_hi: std::array::from_fn(|d| self.entries.hi[d].as_deref()),
            values: &self.values,
        }
    }

    /// Assembles a tree directly from arena columns — the v3 zero-copy load
    /// path, where the columns borrow from a mapped snapshot. Runs exactly
    /// the structural validation of [`RTree::from_snapshot`] (which
    /// delegates here); the columns themselves are never copied.
    #[allow(clippy::too_many_arguments)]
    pub fn from_cols(
        params: RTreeParams,
        mbrs: Col<Aabb<N>>,
        child_start: Col<u32>,
        children: Col<u32>,
        entry_start: Col<u32>,
        entry_lo: [Col<f64>; N],
        entry_hi: [Option<Col<f64>>; N],
        values: Col<T>,
    ) -> Result<Self, String> {
        if child_start.is_empty() || entry_start.is_empty() {
            return Err("rtree: empty CSR offset array".into());
        }
        let num_inner = child_start.len() - 1;
        let num_leaves = entry_start.len() - 1;
        if num_leaves == 0 {
            return Err("rtree: no leaf nodes".into());
        }
        let num_nodes = num_inner + num_leaves;
        if mbrs.len() != num_nodes {
            return Err(format!(
                "rtree: {} mbrs for {num_inner} inner + {num_leaves} leaf nodes",
                mbrs.len()
            ));
        }
        for (name, offsets, total) in [
            ("child", &child_start[..], children.len()),
            ("entry", &entry_start[..], values.len()),
        ] {
            if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("rtree: {name} offsets not monotone from 0"));
            }
            if offsets[offsets.len() - 1] as usize != total {
                return Err(format!(
                    "rtree: {name} offsets claim {} items but {total} present",
                    offsets[offsets.len() - 1]
                ));
            }
        }
        if num_inner == 0 && num_leaves != 1 {
            return Err(format!("rtree: {num_leaves} leaves but no inner root"));
        }
        let mut referenced = vec![false; num_nodes];
        for i in 0..num_inner {
            let list = &children[child_start[i] as usize..child_start[i + 1] as usize];
            if list.is_empty() {
                return Err(format!("rtree: inner node {i} has no children"));
            }
            for &c in list {
                let c = c as usize;
                if c >= num_nodes {
                    return Err(format!("rtree: node {i} references child {c} out of range"));
                }
                if c <= i {
                    return Err(format!(
                        "rtree: node {i} references child {c}; ids must be breadth-first \
                         (child > parent)"
                    ));
                }
                if referenced[c] {
                    return Err(format!("rtree: node {c} referenced twice (not a tree)"));
                }
                referenced[c] = true;
            }
        }
        if let Some(orphan) = (1..num_nodes).find(|&i| !referenced[i]) {
            return Err(format!("rtree: node {orphan} unreachable from the root"));
        }
        let n_entries = values.len();
        for (d, col) in entry_lo.iter().enumerate() {
            if col.len() != n_entries {
                return Err(format!(
                    "rtree: lo column {d} has {} coords for {n_entries} entries",
                    col.len()
                ));
            }
        }
        for (d, col) in entry_hi.iter().enumerate() {
            if let Some(col) = col {
                if col.len() != n_entries {
                    return Err(format!(
                        "rtree: hi column {d} has {} coords for {n_entries} entries",
                        col.len()
                    ));
                }
            }
        }
        Ok(RTree {
            params,
            len: n_entries,
            num_inner,
            mbrs,
            child_start,
            children,
            entry_start,
            entries: EntryStore { lo: entry_lo, hi: entry_hi },
            values,
        })
    }

    /// Rebuilds a tree from an [`RTreeSnapshot`].
    ///
    /// The input is untrusted: the arrays must describe a proper
    /// breadth-first tree — monotone CSR offsets, child ids strictly
    /// greater than their parent's (which rules out cycles), every
    /// non-root node referenced exactly once, coordinate columns parallel
    /// to the payloads — so that no traversal can panic or loop.
    /// Violations are reported as `Err(String)`.
    pub fn from_snapshot(snap: RTreeSnapshot<N, T>) -> Result<Self, String> {
        let RTreeSnapshot {
            params,
            mbrs,
            child_start,
            children,
            entry_start,
            entry_lo,
            entry_hi,
            values,
        } = snap;
        Self::from_cols(
            params,
            mbrs.into(),
            child_start.into(),
            children.into(),
            entry_start.into(),
            entry_lo.map(Col::from),
            entry_hi.map(|c| c.map(Col::from)),
            values.into(),
        )
    }

    /// Checks structural invariants (entry count, MBR containment, fan-out
    /// bounds). Intended for tests; panics with a description on violation.
    pub fn check_invariants(&self) {
        assert_eq!(self.values.len(), self.len, "value count mismatch");
        assert_eq!(self.entries.len(), self.len, "entry column length mismatch");
        let num_nodes = self.mbrs.len();
        for id in 0..num_nodes {
            let count = if id < self.num_inner {
                self.node_children(id).len()
            } else {
                let (s, e) = self.leaf_range(id);
                e - s
            };
            assert!(
                count <= self.params.max_entries,
                "node {id} overflows: {count} > {}",
                self.params.max_entries
            );
            if id > 0 {
                assert!(count >= 1, "empty non-root node {id}");
            }
            if id < self.num_inner {
                let mut acc = Aabb::empty();
                for &c in self.node_children(id) {
                    assert!(
                        (c as usize) > id,
                        "node {id} has child {c} with a smaller id (not breadth-first)"
                    );
                    assert!(
                        self.mbrs[id].contains(&self.mbrs[c as usize]),
                        "node {id} mbr misses child {c}"
                    );
                    acc.expand(&self.mbrs[c as usize]);
                }
                assert_eq!(acc, self.mbrs[id], "node {id} mbr is not tight");
            } else {
                let (s, e) = self.leaf_range(id);
                for i in s..e {
                    assert!(
                        self.mbrs[id].contains(&self.entries.get(i)),
                        "leaf {id} mbr misses entry {i}"
                    );
                }
            }
        }
        let total: usize = (self.num_inner..num_nodes)
            .map(|id| {
                let (s, e) = self.leaf_range(id);
                e - s
            })
            .sum();
        assert_eq!(total, self.len, "entry count mismatch");
    }
}

impl<const N: usize, T> HeapBytes for RTree<N, T> {
    fn heap_bytes(&self) -> usize {
        RTree::heap_bytes(self)
    }
}

/// Squared distance from `point` to the closest point of `aabb` (zero when
/// the point lies inside).
pub(crate) fn min_dist_sq<const N: usize>(aabb: &Aabb<N>, point: &[f64; N]) -> f64 {
    let mut d = 0.0;
    for (i, &p) in point.iter().enumerate() {
        let delta = if p < aabb.min[i] {
            aabb.min[i] - p
        } else if p > aabb.max[i] {
            p - aabb.max[i]
        } else {
            0.0
        };
        d += delta * delta;
    }
    d
}

/// A total order over finite f64 distances for the best-first heap.
#[derive(PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Recursive Sort-Tile-Recursive partitioning: sorts by the centre of
/// dimension `dim`, cuts into vertical slabs, and recurses on the remaining
/// dimensions; at the last dimension it emits groups of up to `cap` entries.
pub(crate) fn str_tile<const N: usize, E>(
    mut entries: Vec<(Aabb<N>, E)>,
    cap: usize,
    dim: usize,
    out: &mut Vec<Vec<(Aabb<N>, E)>>,
) {
    if entries.len() <= cap {
        if !entries.is_empty() {
            out.push(entries);
        }
        return;
    }
    entries.sort_by(|a, b| {
        a.0.center()[dim].partial_cmp(&b.0.center()[dim]).unwrap_or(std::cmp::Ordering::Equal)
    });
    if dim + 1 == N {
        // Final dimension: emit runs of `cap`.
        while !entries.is_empty() {
            let rest = entries.split_off(entries.len().min(cap));
            out.push(std::mem::replace(&mut entries, rest));
        }
        return;
    }
    // Number of slabs: ceil((P)^(1/(N-dim))) where P = pages needed.
    let pages = entries.len().div_ceil(cap);
    let slabs = (pages as f64).powf(1.0 / (N - dim) as f64).ceil() as usize;
    let per_slab = entries.len().div_ceil(slabs.max(1));
    while !entries.is_empty() {
        let rest = entries.split_off(entries.len().min(per_slab));
        let slab = std::mem::replace(&mut entries, rest);
        str_tile(slab, cap, dim + 1, out);
    }
}

/// Parallel top level of [`str_tile`]: performs the first-dimension sort
/// and slab cut exactly as the sequential recursion would, then tiles the
/// slabs concurrently and concatenates their emitted groups in slab order.
/// Slab boundaries, per-slab sorts (stable `sort_by` with the identical
/// comparator) and emission order are all unchanged, so the group list —
/// and hence the packed tree — matches the sequential result exactly.
fn str_tile_threaded<const N: usize, E: Send>(
    mut entries: Vec<(Aabb<N>, E)>,
    cap: usize,
    threads: usize,
) -> Vec<Vec<(Aabb<N>, E)>> {
    let mut out = Vec::new();
    if entries.len() <= cap || N == 1 {
        str_tile(entries, cap, 0, &mut out);
        return out;
    }
    entries.sort_by(|a, b| {
        a.0.center()[0].partial_cmp(&b.0.center()[0]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let pages = entries.len().div_ceil(cap);
    let slabs = (pages as f64).powf(1.0 / N as f64).ceil() as usize;
    let per_slab = entries.len().div_ceil(slabs.max(1));
    let mut slab_vec: Vec<Vec<(Aabb<N>, E)>> = Vec::new();
    while !entries.is_empty() {
        let rest = entries.split_off(entries.len().min(per_slab));
        slab_vec.push(std::mem::replace(&mut entries, rest));
    }
    let per_slab_groups = gsr_graph::par::map_consume(threads, slab_vec, |slab| {
        let mut groups = Vec::new();
        str_tile(slab, cap, 1, &mut groups);
        groups
    });
    for groups in per_slab_groups {
        out.extend(groups);
    }
    out
}

/// Range-query iterator over an [`RTree`]; see [`RTree::query`].
pub struct Query<'a, const N: usize, T> {
    tree: &'a RTree<N, T>,
    region: Aabb<N>,
    stack: Vec<u32>,
    leaf: Option<(usize, usize)>,
}

impl<'a, const N: usize, T> Iterator for Query<'a, N, T> {
    type Item = (Aabb<N>, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((pos, end)) = &mut self.leaf {
                while *pos < *end {
                    let i = *pos;
                    *pos += 1;
                    if self.tree.entries.intersects(i, &self.region) {
                        return Some((self.tree.entries.get(i), &self.tree.values[i]));
                    }
                }
                self.leaf = None;
            }
            let id = self.stack.pop()? as usize;
            if id < self.tree.num_inner {
                for &c in self.tree.node_children(id) {
                    if self.tree.mbrs[c as usize].intersects(&self.region) {
                        self.stack.push(c);
                    }
                }
            } else {
                self.leaf = Some(self.tree.leaf_range(id));
            }
        }
    }
}

/// Range-query iterator borrowing its traversal stack from the caller;
/// see [`RTree::query_with`].
pub struct QueryWith<'t, 's, const N: usize, T> {
    tree: &'t RTree<N, T>,
    region: Aabb<N>,
    stack: &'s mut Vec<u32>,
    leaf: Option<(usize, usize)>,
}

impl<'t, const N: usize, T> Iterator for QueryWith<'t, '_, N, T> {
    type Item = (Aabb<N>, &'t T);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((pos, end)) = &mut self.leaf {
                while *pos < *end {
                    let i = *pos;
                    *pos += 1;
                    if self.tree.entries.intersects(i, &self.region) {
                        return Some((self.tree.entries.get(i), &self.tree.values[i]));
                    }
                }
                self.leaf = None;
            }
            let id = self.stack.pop()? as usize;
            if id < self.tree.num_inner {
                for &c in self.tree.node_children(id) {
                    if self.tree.mbrs[c as usize].intersects(&self.region) {
                        self.stack.push(c);
                    }
                }
            } else {
                self.leaf = Some(self.tree.leaf_range(id));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Aabb<2> {
        Aabb::from_point([x, y])
    }

    fn grid_points(n: usize) -> Vec<(Aabb<2>, usize)> {
        (0..n).map(|i| (pt((i % 32) as f64, (i / 32) as f64), i)).collect()
    }

    #[test]
    fn empty_tree_queries() {
        let t: RTree<2, u32> = RTree::new();
        assert!(t.is_empty());
        let all = Aabb::new([-1e9, -1e9], [1e9, 1e9]);
        assert_eq!(t.query(&all).count(), 0);
        assert!(!t.query_exists(&all));
        t.check_invariants();
    }

    #[test]
    fn bulk_load_finds_everything() {
        let t = RTree::bulk_load(grid_points(1000));
        assert_eq!(t.len(), 1000);
        t.check_invariants();
        let region = Aabb::new([10.0, 10.0], [12.0, 11.0]);
        let mut hits: Vec<usize> = t.query(&region).map(|(_, &i)| i).collect();
        hits.sort_unstable();
        // Points with x in 10..=12, y in 10..=11: i = y*32 + x.
        assert_eq!(hits, vec![330, 331, 332, 362, 363, 364]);
    }

    #[test]
    fn arena_is_breadth_first() {
        let t = RTree::bulk_load(grid_points(4096));
        assert!(t.height() >= 2);
        // Root is node 0; every child id exceeds its parent's; leaves
        // occupy the id range after the inner nodes.
        for id in 0..t.num_inner_nodes() {
            for &c in t.node_children(id) {
                assert!(c as usize > id);
            }
        }
        assert_eq!(t.num_nodes() - t.num_inner_nodes(), t.entry_start.len() - 1);
    }

    #[test]
    fn degenerate_dimensions_are_compressed() {
        // Points: both dimensions flat — no hi columns at all.
        let t = RTree::bulk_load(grid_points(500));
        assert!(t.entries.hi.iter().all(Option::is_none));
        // Vertical 3-D segments: x/y flat, z extended.
        let segs: Vec<(Aabb<3>, u32)> = (0..200u32)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (Aabb::new([x, y, 0.0], [x, y, 1.0 + i as f64]), i)
            })
            .collect();
        let t3 = RTree::bulk_load(segs.clone());
        assert!(t3.entries.hi[0].is_none());
        assert!(t3.entries.hi[1].is_none());
        assert!(t3.entries.hi[2].is_some());
        // Reconstruction is bit-exact.
        let mut boxes: Vec<(Aabb<3>, u32)> = t3.iter().map(|(b, &v)| (b, v)).collect();
        boxes.sort_by_key(|&(_, v)| v);
        assert_eq!(boxes, segs);
    }

    #[test]
    fn negative_zero_is_not_conflated_with_zero() {
        // -0.0 == 0.0 numerically but differs bit-wise; a dimension mixing
        // them must keep its hi column so reconstruction is bit-faithful.
        let entries = vec![(Aabb::new([-0.0, 1.0], [0.0, 1.0]), 1u32)];
        let t = RTree::bulk_load(entries);
        assert!(t.entries.hi[0].is_some(), "[-0.0, 0.0] is not degenerate");
        assert!(t.entries.hi[1].is_none());
        let (b, _) = t.iter().next().unwrap();
        assert_eq!(b.min[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(b.max[0].to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn query_exists_early_exit_agrees_with_count() {
        let t = RTree::bulk_load(grid_points(500));
        for (lo, hi) in [([0.0, 0.0], [1.0, 1.0]), ([900.0, 900.0], [950.0, 950.0])] {
            let r = Aabb::new(lo, hi);
            assert_eq!(t.query_exists(&r), t.count_in(&r) > 0);
        }
    }

    #[test]
    fn query_with_matches_query_and_reuses_buffer() {
        let t = RTree::bulk_load(grid_points(500));
        let mut stack = Vec::new();
        for (lo, hi) in [
            ([0.0, 0.0], [1.0, 1.0]),
            ([3.0, 3.0], [12.0, 9.0]),
            ([900.0, 900.0], [950.0, 950.0]),
            ([-10.0, -10.0], [100.0, 100.0]),
        ] {
            let r = Aabb::new(lo, hi);
            let plain: Vec<usize> = t.query(&r).map(|(_, &v)| v).collect();
            let with: Vec<usize> = t.query_with(&r, &mut stack).map(|(_, &v)| v).collect();
            assert_eq!(plain, with, "query_with diverged on {r:?}");
            assert_eq!(t.query_exists(&r), t.query_exists_with(&r, &mut stack));
        }
        // The buffer is reusable: a second pass over the same windows must
        // not need to grow it.
        let cap = stack.capacity();
        let r = Aabb::new([-10.0, -10.0], [100.0, 100.0]);
        let _ = t.query_with(&r, &mut stack).count();
        assert_eq!(stack.capacity(), cap);
    }

    #[test]
    fn boxes_not_only_points() {
        let t = RTree::bulk_load(vec![
            (Aabb::new([0.0, 0.0], [10.0, 10.0]), "big"),
            (Aabb::new([20.0, 20.0], [21.0, 21.0]), "small"),
        ]);
        let probe = Aabb::new([5.0, 5.0], [6.0, 6.0]);
        let hits: Vec<&str> = t.query(&probe).map(|(_, &s)| s).collect();
        assert_eq!(hits, vec!["big"]);
    }

    #[test]
    fn three_dimensional_segments() {
        // Vertical segments as in 3DReach-REV: degenerate in x/y.
        let entries: Vec<(Aabb<3>, u32)> = (0..100u32)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                (Aabb::new([x, y, 0.0], [x, y, i as f64]), i)
            })
            .collect();
        let t = RTree::bulk_load(entries);
        t.check_invariants();
        // A plane at z = 50 over the whole xy extent cuts segments with
        // i >= 50.
        let plane = Aabb::new([0.0, 0.0, 50.0], [10.0, 10.0, 50.0]);
        assert_eq!(t.count_in(&plane), 50);
    }

    #[test]
    fn duplicate_geometry_is_allowed() {
        let t = RTree::bulk_load((0..50u32).map(|i| (pt(1.0, 1.0), i)).collect());
        t.check_invariants();
        assert_eq!(t.count_in(&Aabb::from_point([1.0, 1.0])), 50);
    }

    #[test]
    fn iter_visits_all_entries() {
        let t = RTree::bulk_load(grid_points(333));
        let mut ids: Vec<usize> = t.iter().map(|(_, &i)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..333).collect::<Vec<_>>());
    }

    #[test]
    fn custom_params_respected() {
        let params = RTreeParams::new(8, 3);
        let t = RTree::bulk_load_with_params(grid_points(200), params);
        t.check_invariants();
        assert_eq!(t.len(), 200);
        assert_eq!(t.params(), params);
    }

    #[test]
    fn nearest_neighbor_matches_linear_scan() {
        let entries = grid_points(777);
        let t = RTree::bulk_load(entries.clone());
        for probe in [[0.0, 0.0], [15.5, 10.2], [100.0, 100.0], [-5.0, 3.0]] {
            let (_, &got) = t.nearest_neighbor(&probe).unwrap();
            let best = entries
                .iter()
                .min_by(|(a, _), (b, _)| {
                    min_dist_sq(a, &probe).partial_cmp(&min_dist_sq(b, &probe)).unwrap()
                })
                .unwrap();
            let got_d = min_dist_sq(&entries[got].0, &probe);
            let best_d = min_dist_sq(&best.0, &probe);
            assert_eq!(got_d, best_d, "probe {probe:?}");
        }
        let empty: RTree<2, u32> = RTree::new();
        assert!(empty.nearest_neighbor(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn k_nearest_matches_sorted_scan() {
        let entries = grid_points(500);
        let t = RTree::bulk_load(entries.clone());
        for probe in [[0.0, 0.0], [16.0, 8.0], [40.0, 40.0]] {
            for k in [1usize, 3, 10, 600] {
                let got: Vec<usize> =
                    t.nearest_k_where(&probe, k, |_, _| true).iter().map(|(_, &i)| i).collect();
                let mut expected: Vec<(f64, usize)> = entries
                    .iter()
                    .map(|&(b, i)| (min_dist_sq(&b, &probe), i))
                    .collect();
                expected.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                assert_eq!(got.len(), k.min(entries.len()), "probe {probe:?} k {k}");
                // Compare by distance (ties may reorder ids).
                for (j, &i) in got.iter().enumerate() {
                    let d = min_dist_sq(&entries[i].0, &probe);
                    assert_eq!(d, expected[j].0, "probe {probe:?} k {k} rank {j}");
                }
            }
        }
    }

    #[test]
    fn k_nearest_with_predicate_skips_rejected() {
        let entries = grid_points(200);
        let t = RTree::bulk_load(entries.clone());
        // Accept only even payloads.
        let got: Vec<usize> = t
            .nearest_k_where(&[0.0, 0.0], 5, |_, &i| i % 2 == 0)
            .iter()
            .map(|(_, &i)| i)
            .collect();
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|i| i % 2 == 0));
    }

    #[test]
    fn parallel_bulk_load_matches_sequential_exactly() {
        for n in [0usize, 5, 100, 3000] {
            let entries = grid_points(n);
            let seq = RTree::bulk_load(entries.clone());
            for threads in [2, 4, 8] {
                let par = RTree::bulk_load_parallel(
                    entries.clone(),
                    RTreeParams::default(),
                    threads,
                );
                assert_eq!(seq, par, "n = {n}, threads = {threads}");
                par.check_invariants();
            }
        }
    }

    #[test]
    fn parallel_bulk_load_matches_sequential_in_3d() {
        let entries: Vec<(Aabb<3>, u32)> = (0..2000u32)
            .map(|i| {
                let x = (i % 13) as f64;
                let y = (i % 57) as f64;
                let z = (i % 101) as f64;
                (Aabb::new([x, y, 0.0], [x, y, z]), i)
            })
            .collect();
        let seq = RTree::bulk_load(entries.clone());
        let par = RTree::bulk_load_parallel(entries, RTreeParams::default(), 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn snapshot_round_trip_exactly() {
        for n in [0usize, 1, 50, 2000] {
            let t = RTree::bulk_load(grid_points(n));
            let back = RTree::from_snapshot(t.to_snapshot()).expect("valid snapshot rebuilds");
            assert_eq!(t, back, "n = {n}");
            back.check_invariants();
        }
        // Segment trees (with live hi columns) round-trip too.
        let segs: Vec<(Aabb<3>, u32)> = (0..300u32)
            .map(|i| (Aabb::new([i as f64, 0.0, 0.0], [i as f64, 0.0, i as f64]), i))
            .collect();
        let t = RTree::bulk_load(segs);
        let back = RTree::from_snapshot(t.to_snapshot()).expect("valid snapshot rebuilds");
        assert_eq!(t, back);
    }

    #[test]
    fn from_snapshot_rejects_malformed_arenas() {
        let good = RTree::bulk_load(grid_points(100)).to_snapshot();
        assert!(RTree::from_snapshot(good.clone()).is_ok());

        // Child id out of range.
        let mut bad = good.clone();
        bad.children[0] = 10_000;
        assert!(RTree::from_snapshot(bad).is_err());
        // Child id not greater than its parent (cycle-shaped).
        let mut bad = good.clone();
        bad.children[0] = 0;
        assert!(RTree::from_snapshot(bad).is_err());
        // A node referenced twice.
        let mut bad = good.clone();
        bad.children[1] = bad.children[0];
        assert!(RTree::from_snapshot(bad).is_err());
        // Non-monotone child offsets.
        let mut bad = good.clone();
        bad.child_start[1] = u32::MAX;
        assert!(RTree::from_snapshot(bad).is_err());
        // Entry offsets disagreeing with the payload count.
        let mut bad = good.clone();
        bad.values.pop();
        assert!(RTree::from_snapshot(bad).is_err());
        // A coordinate column of the wrong length.
        let mut bad = good.clone();
        bad.entry_lo[0].pop();
        assert!(RTree::from_snapshot(bad).is_err());
        // Wrong mbr count.
        let mut bad = good.clone();
        bad.mbrs.pop();
        assert!(RTree::from_snapshot(bad).is_err());
        // Multiple leaves without an inner root.
        let mut bad = good;
        bad.child_start = vec![0];
        bad.children = Vec::new();
        assert!(RTree::from_snapshot(bad).is_err());
    }

    #[test]
    fn heap_bytes_grows_with_entries() {
        let small = RTree::bulk_load(grid_points(10));
        let large = RTree::bulk_load(grid_points(10_000));
        assert!(large.heap_bytes() > small.heap_bytes());
    }

    #[test]
    fn soa_arena_is_smaller_than_pointer_nodes() {
        // The reconstruction formula of the old pointer-node layout (node
        // headers + per-entry (Aabb, T) tuples + child id lists) — the
        // baseline `repro memory` compares against.
        let t = RTree::bulk_load(grid_points(10_000));
        let node_header = std::mem::size_of::<Aabb<2>>() + 32;
        let legacy = t.num_nodes() * node_header
            + t.len() * std::mem::size_of::<(Aabb<2>, usize)>()
            + (t.num_nodes() - 1) * 4;
        assert!(
            t.heap_bytes() < legacy,
            "arena {} must undercut pointer layout {legacy}",
            t.heap_bytes()
        );
    }
}
