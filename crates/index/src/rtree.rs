//! A const-generic R-tree (Guttman) with quadratic split and STR bulk load.
//!
//! The tree indexes axis-aligned boxes ([`Aabb<N>`]) with an arbitrary
//! payload `T`. Points are degenerate boxes, so the same structure serves as
//! the paper's 2-D point R-tree (SpaReach), its 2-D rectangle R-tree (the
//! MBR-based SCC variants of Section 5), the 3-D point R-tree (3DReach) and
//! the 3-D segment/box R-tree (3DReach-REV).

use gsr_geo::Aabb;

/// Fan-out parameters of an [`RTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeParams {
    /// Maximum entries per node before a split (Guttman's `M`).
    pub max_entries: usize,
    /// Minimum entries per node after a split (Guttman's `m <= M/2`).
    pub min_entries: usize,
}

impl Default for RTreeParams {
    fn default() -> Self {
        RTreeParams { max_entries: 16, min_entries: 6 }
    }
}

impl RTreeParams {
    /// Creates parameters, clamping `min_entries` into the valid
    /// `1 ..= max_entries / 2` range.
    pub fn new(max_entries: usize, min_entries: usize) -> Self {
        let max_entries = max_entries.max(4);
        let min_entries = min_entries.clamp(1, max_entries / 2);
        RTreeParams { max_entries, min_entries }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum NodeKind<const N: usize, T> {
    /// Data entries.
    Leaf(Vec<(Aabb<N>, T)>),
    /// Child node ids into the arena.
    Inner(Vec<u32>),
}

#[derive(Debug, Clone, PartialEq)]
struct Node<const N: usize, T> {
    mbr: Aabb<N>,
    kind: NodeKind<N, T>,
}

impl<const N: usize, T> Node<N, T> {
    fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Inner(c) => c.len(),
        }
    }
}

/// One node of an [`RTree`] in snapshot form. Node ids index the arena
/// order returned by [`RTree::snapshot_nodes`]; [`RTree::from_snapshot`]
/// re-validates the ids before rebuilding a tree.
#[derive(Debug, Clone, PartialEq)]
pub enum RTreeNode<const N: usize, T> {
    /// A leaf holding data entries.
    Leaf {
        /// Minimum bounding rectangle of the entries.
        mbr: Aabb<N>,
        /// The data entries.
        entries: Vec<(Aabb<N>, T)>,
    },
    /// An inner node holding child node ids.
    Inner {
        /// Minimum bounding rectangle of the children.
        mbr: Aabb<N>,
        /// Arena ids of the children.
        children: Vec<u32>,
    },
}

/// An R-tree over `N`-dimensional boxes with payloads of type `T`.
///
/// ```
/// use gsr_geo::Aabb;
/// use gsr_index::RTree;
///
/// let mut t: RTree<2, u32> = RTree::new();
/// for i in 0..100u32 {
///     let p = [i as f64, (i * 7 % 100) as f64];
///     t.insert(Aabb::from_point(p), i);
/// }
/// let region = Aabb::new([0.0, 0.0], [10.0, 100.0]);
/// assert!(t.query_exists(&region));
/// assert_eq!(t.query(&region).count(), 11);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RTree<const N: usize, T> {
    params: RTreeParams,
    nodes: Vec<Node<N, T>>,
    root: u32,
    len: usize,
}

impl<const N: usize, T> Default for RTree<N, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize, T> RTree<N, T> {
    /// An empty tree with default parameters.
    pub fn new() -> Self {
        Self::with_params(RTreeParams::default())
    }

    /// An empty tree with the given fan-out parameters.
    pub fn with_params(params: RTreeParams) -> Self {
        RTree {
            params,
            nodes: vec![Node { mbr: Aabb::empty(), kind: NodeKind::Leaf(Vec::new()) }],
            root: 0,
            len: 0,
        }
    }

    /// Bulk-loads the tree with Sort-Tile-Recursive packing, which produces
    /// nearly fully packed nodes with little overlap — the standard loading
    /// strategy for static datasets such as the paper's networks.
    pub fn bulk_load(entries: Vec<(Aabb<N>, T)>) -> Self {
        Self::bulk_load_with_params(entries, RTreeParams::default())
    }

    /// [`RTree::bulk_load`] with explicit parameters and a thread count:
    /// the top-level STR slabs are tiled concurrently and their groups
    /// concatenated in slab order, so the resulting tree is **identical**
    /// to the sequential bulk load at any thread count (`0` = machine
    /// parallelism, `1` = sequential).
    pub fn bulk_load_parallel(
        entries: Vec<(Aabb<N>, T)>,
        params: RTreeParams,
        threads: usize,
    ) -> Self
    where
        T: Send,
    {
        let threads = gsr_graph::par::effective_threads(threads);
        if threads <= 1 {
            return Self::bulk_load_with_params(entries, params);
        }
        let len = entries.len();
        let mut tree = RTree { params, nodes: Vec::new(), root: 0, len };
        if entries.is_empty() {
            tree.nodes.push(Node { mbr: Aabb::empty(), kind: NodeKind::Leaf(Vec::new()) });
            return tree;
        }

        let leaf_groups = str_tile_threaded(entries, params.max_entries, threads);
        let mut level: Vec<u32> = leaf_groups
            .into_iter()
            .map(|group| {
                let mbr = Aabb::mbr_of(group.iter().map(|(b, _)| *b)).expect("non-empty group");
                tree.push_node(Node { mbr, kind: NodeKind::Leaf(group) })
            })
            .collect();

        while level.len() > 1 {
            let with_mbrs: Vec<(Aabb<N>, u32)> =
                level.iter().map(|&id| (tree.nodes[id as usize].mbr, id)).collect();
            let groups = str_tile_threaded(with_mbrs, params.max_entries, threads);
            level = groups
                .into_iter()
                .map(|group| {
                    let mbr =
                        Aabb::mbr_of(group.iter().map(|(b, _)| *b)).expect("non-empty group");
                    let children = group.into_iter().map(|(_, id)| id).collect();
                    tree.push_node(Node { mbr, kind: NodeKind::Inner(children) })
                })
                .collect();
        }
        tree.root = level[0];
        tree
    }

    /// [`RTree::bulk_load`] with explicit parameters.
    pub fn bulk_load_with_params(entries: Vec<(Aabb<N>, T)>, params: RTreeParams) -> Self {
        let len = entries.len();
        let mut tree = RTree { params, nodes: Vec::new(), root: 0, len };
        if entries.is_empty() {
            tree.nodes.push(Node { mbr: Aabb::empty(), kind: NodeKind::Leaf(Vec::new()) });
            return tree;
        }

        // Build the leaf level.
        let mut leaf_groups: Vec<Vec<(Aabb<N>, T)>> = Vec::new();
        str_tile(entries, params.max_entries, 0, &mut leaf_groups);
        let mut level: Vec<u32> = leaf_groups
            .into_iter()
            .map(|group| {
                let mbr = Aabb::mbr_of(group.iter().map(|(b, _)| *b)).expect("non-empty group");
                tree.push_node(Node { mbr, kind: NodeKind::Leaf(group) })
            })
            .collect();

        // Build upper levels until a single root remains.
        while level.len() > 1 {
            let with_mbrs: Vec<(Aabb<N>, u32)> =
                level.iter().map(|&id| (tree.nodes[id as usize].mbr, id)).collect();
            let mut groups: Vec<Vec<(Aabb<N>, u32)>> = Vec::new();
            str_tile(with_mbrs, params.max_entries, 0, &mut groups);
            level = groups
                .into_iter()
                .map(|group| {
                    let mbr =
                        Aabb::mbr_of(group.iter().map(|(b, _)| *b)).expect("non-empty group");
                    let children = group.into_iter().map(|(_, id)| id).collect();
                    tree.push_node(Node { mbr, kind: NodeKind::Inner(children) })
                })
                .collect();
        }
        tree.root = level[0];
        tree
    }

    fn push_node(&mut self, node: Node<N, T>) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        id
    }

    /// Number of data entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The MBR of all entries ([`Aabb::empty`] when the tree is empty).
    #[inline]
    pub fn mbr(&self) -> Aabb<N> {
        self.nodes[self.root as usize].mbr
    }

    /// Inserts one entry (Guttman insertion with quadratic split).
    pub fn insert(&mut self, aabb: Aabb<N>, value: T) {
        self.len += 1;

        // Descend to a leaf, remembering the path.
        let mut path: Vec<u32> = Vec::new();
        let mut current = self.root;
        loop {
            path.push(current);
            match &self.nodes[current as usize].kind {
                NodeKind::Leaf(_) => break,
                NodeKind::Inner(children) => {
                    current = choose_child(&self.nodes, children, &aabb);
                }
            }
        }

        // Insert into the leaf and expand MBRs along the path.
        let leaf = *path.last().expect("path contains the leaf");
        match &mut self.nodes[leaf as usize].kind {
            NodeKind::Leaf(entries) => entries.push((aabb, value)),
            NodeKind::Inner(_) => unreachable!("descent must end at a leaf"),
        }
        for &id in &path {
            self.nodes[id as usize].mbr.expand(&aabb);
        }

        // Split overflowing nodes bottom-up, recomputing ancestor MBRs: a
        // split shrinks the original node, so the simple expansion above is
        // no longer tight on the path.
        let mut overflow: Option<u32> = None; // node created by the last split
        let mut split_below = false;
        for depth in (0..path.len()).rev() {
            let id = path[depth];
            if let Some(new_child) = overflow.take() {
                match &mut self.nodes[id as usize].kind {
                    NodeKind::Inner(children) => children.push(new_child),
                    NodeKind::Leaf(_) => unreachable!("split child under a leaf"),
                }
            }
            if split_below {
                self.recompute_mbr(id);
            }
            if self.nodes[id as usize].len() > self.params.max_entries {
                overflow = Some(self.split_node(id));
                split_below = true;
            } else if overflow.is_none() && !split_below {
                break;
            }
        }

        // A pending overflow at the top means the root itself split.
        if let Some(sibling) = overflow {
            let old_root = self.root;
            let mbr = self.nodes[old_root as usize].mbr.union(&self.nodes[sibling as usize].mbr);
            let new_root =
                self.push_node(Node { mbr, kind: NodeKind::Inner(vec![old_root, sibling]) });
            self.root = new_root;
        }
    }

    /// Recomputes a node's MBR tightly from its contents.
    fn recompute_mbr(&mut self, id: u32) {
        let mbr = match &self.nodes[id as usize].kind {
            NodeKind::Leaf(entries) => Aabb::mbr_of(entries.iter().map(|(b, _)| *b)),
            NodeKind::Inner(children) => {
                Aabb::mbr_of(children.iter().map(|&c| self.nodes[c as usize].mbr))
            }
        };
        self.nodes[id as usize].mbr = mbr.unwrap_or_else(Aabb::empty);
    }

    /// Splits node `id` in place, returning the id of the new sibling.
    fn split_node(&mut self, id: u32) -> u32 {
        let min = self.params.min_entries;
        match std::mem::replace(
            &mut self.nodes[id as usize].kind,
            NodeKind::Leaf(Vec::new()),
        ) {
            NodeKind::Leaf(entries) => {
                let (a, b) = quadratic_split(entries, min);
                let mbr_a = Aabb::mbr_of(a.iter().map(|(m, _)| *m)).expect("non-empty");
                let mbr_b = Aabb::mbr_of(b.iter().map(|(m, _)| *m)).expect("non-empty");
                self.nodes[id as usize].kind = NodeKind::Leaf(a);
                self.nodes[id as usize].mbr = mbr_a;
                self.push_node(Node { mbr: mbr_b, kind: NodeKind::Leaf(b) })
            }
            NodeKind::Inner(children) => {
                let with_mbrs: Vec<(Aabb<N>, u32)> =
                    children.iter().map(|&c| (self.nodes[c as usize].mbr, c)).collect();
                let (a, b) = quadratic_split(with_mbrs, min);
                let mbr_a = Aabb::mbr_of(a.iter().map(|(m, _)| *m)).expect("non-empty");
                let mbr_b = Aabb::mbr_of(b.iter().map(|(m, _)| *m)).expect("non-empty");
                self.nodes[id as usize].kind =
                    NodeKind::Inner(a.into_iter().map(|(_, c)| c).collect());
                self.nodes[id as usize].mbr = mbr_a;
                self.push_node(Node {
                    mbr: mbr_b,
                    kind: NodeKind::Inner(b.into_iter().map(|(_, c)| c).collect()),
                })
            }
        }
    }

    /// Removes one entry whose box equals `aabb` and whose value satisfies
    /// `matches`, returning it. Underfull nodes are condensed (Guttman's
    /// CondenseTree): their surviving entries are reinserted and the root
    /// is shrunk when it degenerates to a single inner child.
    pub fn remove_one(&mut self, aabb: &Aabb<N>, matches: impl Fn(&T) -> bool) -> Option<T> {
        // Find a path (root -> leaf) to a leaf holding a matching entry.
        let mut path: Vec<u32> = Vec::new();
        let mut removed: Option<T> = None;
        self.find_and_remove(self.root, aabb, &matches, &mut path, &mut removed);
        let value = removed?;
        self.len -= 1;

        // Condense bottom-up: drop underfull non-root nodes, collecting
        // their remaining entries for reinsertion.
        let min = self.params.min_entries;
        let mut orphans: Vec<(Aabb<N>, T)> = Vec::new();
        for depth in (1..path.len()).rev() {
            let id = path[depth];
            let parent = path[depth - 1];
            if self.nodes[id as usize].len() < min {
                match &mut self.nodes[parent as usize].kind {
                    NodeKind::Inner(children) => children.retain(|&c| c != id),
                    NodeKind::Leaf(_) => unreachable!("parents are inner nodes"),
                }
                self.collect_entries(id, &mut orphans);
            } else {
                self.recompute_mbr(id);
            }
        }
        self.recompute_mbr(self.root);

        // Shrink a degenerate root.
        loop {
            let next = match &self.nodes[self.root as usize].kind {
                NodeKind::Inner(children) if children.len() == 1 => children[0],
                NodeKind::Inner(children) if children.is_empty() => {
                    self.nodes[self.root as usize] =
                        Node { mbr: Aabb::empty(), kind: NodeKind::Leaf(Vec::new()) };
                    break;
                }
                _ => break,
            };
            self.root = next;
        }

        // Reinsert orphans (insert() bumps len, so compensate first).
        self.len -= orphans.len();
        for (b, t) in orphans {
            self.insert(b, t);
        }
        Some(value)
    }

    /// Removes one entry equal to `(aabb, value)`; see [`RTree::remove_one`].
    pub fn remove(&mut self, aabb: &Aabb<N>, value: &T) -> bool
    where
        T: PartialEq,
    {
        self.remove_one(aabb, |t| t == value).is_some()
    }

    /// Depth-first search for a matching entry; fills `path` with the node
    /// chain to the leaf it was removed from.
    fn find_and_remove(
        &mut self,
        id: u32,
        aabb: &Aabb<N>,
        matches: &impl Fn(&T) -> bool,
        path: &mut Vec<u32>,
        removed: &mut Option<T>,
    ) {
        if removed.is_some() || !self.nodes[id as usize].mbr.contains(aabb) {
            return;
        }
        path.push(id);
        match &mut self.nodes[id as usize].kind {
            NodeKind::Leaf(entries) => {
                if let Some(pos) = entries.iter().position(|(b, t)| b == aabb && matches(t)) {
                    *removed = Some(entries.swap_remove(pos).1);
                    return;
                }
            }
            NodeKind::Inner(children) => {
                for c in children.clone() {
                    self.find_and_remove(c, aabb, matches, path, removed);
                    if removed.is_some() {
                        return;
                    }
                }
            }
        }
        path.pop();
    }

    /// Drains every data entry under `id` into `out` (used by condensing).
    fn collect_entries(&mut self, id: u32, out: &mut Vec<(Aabb<N>, T)>) {
        match std::mem::replace(&mut self.nodes[id as usize].kind, NodeKind::Inner(Vec::new())) {
            NodeKind::Leaf(entries) => out.extend(entries),
            NodeKind::Inner(children) => {
                for c in children {
                    self.collect_entries(c, out);
                }
            }
        }
    }

    /// The entry nearest to `point` (minimum Euclidean distance from the
    /// point to the entry's box), or `None` for an empty tree. Best-first
    /// branch-and-bound over node MBRs.
    pub fn nearest_neighbor(&self, point: &[f64; N]) -> Option<(&Aabb<N>, &T)> {
        self.nearest_where(point, |_, _| true)
    }

    /// The nearest entry whose `(box, value)` satisfies `accept` — e.g. the
    /// nearest *reachable* spatial vertex. Entries failing the predicate
    /// are skipped without terminating the search.
    pub fn nearest_where(
        &self,
        point: &[f64; N],
        accept: impl FnMut(&Aabb<N>, &T) -> bool,
    ) -> Option<(&Aabb<N>, &T)> {
        self.nearest_k_where(point, 1, accept).into_iter().next()
    }

    /// The `k` nearest accepted entries, ordered by ascending distance.
    /// Best-first search that stops once every remaining node is farther
    /// than the current k-th best.
    pub fn nearest_k_where(
        &self,
        point: &[f64; N],
        k: usize,
        mut accept: impl FnMut(&Aabb<N>, &T) -> bool,
    ) -> Vec<(&Aabb<N>, &T)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        // Heap over (distance, node id); OrderedF64 wraps the comparison.
        let mut heap: BinaryHeap<(Reverse<OrderedF64>, u32)> = BinaryHeap::new();
        heap.push((Reverse(OrderedF64(min_dist_sq(&self.nodes[self.root as usize].mbr, point))), self.root));
        // The k best accepted entries so far, sorted ascending by distance.
        let mut best: Vec<(f64, (&Aabb<N>, &T))> = Vec::with_capacity(k + 1);

        while let Some((Reverse(OrderedF64(dist)), id)) = heap.pop() {
            if best.len() == k && dist > best[k - 1].0 {
                break; // every remaining node is farther than the k-th best
            }
            match &self.nodes[id as usize].kind {
                NodeKind::Leaf(entries) => {
                    for (b, t) in entries {
                        let d = min_dist_sq(b, point);
                        let qualifies = best.len() < k || d < best[k - 1].0;
                        if qualifies && accept(b, t) {
                            let pos = best
                                .iter()
                                .position(|(bd, _)| d < *bd)
                                .unwrap_or(best.len());
                            best.insert(pos, (d, (b, t)));
                            best.truncate(k);
                        }
                    }
                }
                NodeKind::Inner(children) => {
                    for &c in children {
                        heap.push((
                            Reverse(OrderedF64(min_dist_sq(&self.nodes[c as usize].mbr, point))),
                            c,
                        ));
                    }
                }
            }
        }
        best.into_iter().map(|(_, entry)| entry).collect()
    }

    /// Iterator over all entries whose box intersects `region`.
    pub fn query<'a>(&'a self, region: &Aabb<N>) -> Query<'a, N, T> {
        let mut stack = Vec::new();
        if self.nodes[self.root as usize].mbr.intersects(region) {
            stack.push(self.root);
        }
        Query { tree: self, region: *region, stack, leaf: None }
    }

    /// Whether any entry intersects `region` (early-exit traversal). This is
    /// the access pattern of 3DReach: a `RangeReach` answer needs only the
    /// *existence* of a point inside the query cuboid, not the result set.
    pub fn query_exists(&self, region: &Aabb<N>) -> bool {
        self.query(region).next().is_some()
    }

    /// Like [`RTree::query`], but traversing with a caller-provided stack
    /// buffer instead of allocating one per query. The stack is cleared on
    /// entry and retains its capacity afterwards, so a caller that reuses
    /// the same buffer (e.g. a per-thread `QueryScratch`) performs zero
    /// heap allocations per query in steady state. Results are identical
    /// to [`RTree::query`].
    pub fn query_with<'t, 's>(
        &'t self,
        region: &Aabb<N>,
        stack: &'s mut Vec<u32>,
    ) -> QueryWith<'t, 's, N, T> {
        stack.clear();
        if self.nodes[self.root as usize].mbr.intersects(region) {
            stack.push(self.root);
        }
        QueryWith { tree: self, region: *region, stack, leaf: None }
    }

    /// [`RTree::query_exists`] with a caller-provided stack buffer.
    pub fn query_exists_with(&self, region: &Aabb<N>, stack: &mut Vec<u32>) -> bool {
        self.query_with(region, stack).next().is_some()
    }

    /// Number of entries intersecting `region`.
    pub fn count_in(&self, region: &Aabb<N>) -> usize {
        self.query(region).count()
    }

    /// Iterator over all entries in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (&Aabb<N>, &T)> {
        self.nodes.iter().flat_map(|n| match &n.kind {
            NodeKind::Leaf(entries) => entries.iter(),
            NodeKind::Inner(_) => [].iter(),
        })
        .map(|(b, t)| (b, t))
    }

    /// Height of the tree (1 for a single leaf root).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize].kind {
                NodeKind::Leaf(_) => return h,
                NodeKind::Inner(children) => {
                    h += 1;
                    id = children[0];
                }
            }
        }
    }

    /// Approximate heap footprint in bytes: node headers plus entry storage.
    /// Used for the index-size accounting of Table 4.
    pub fn heap_bytes(&self) -> usize {
        let node_header = std::mem::size_of::<Node<N, T>>();
        let entry = std::mem::size_of::<(Aabb<N>, T)>();
        self.nodes
            .iter()
            .map(|n| {
                node_header
                    + match &n.kind {
                        NodeKind::Leaf(e) => e.len() * entry,
                        NodeKind::Inner(c) => c.len() * 4,
                    }
            })
            .sum()
    }

    /// The fan-out parameters the tree was built with.
    #[inline]
    pub fn params(&self) -> RTreeParams {
        self.params
    }

    /// The arena id of the root node (for [`RTree::snapshot_nodes`]).
    #[inline]
    pub fn root_id(&self) -> u32 {
        self.root
    }

    /// The node arena in storage order, as public [`RTreeNode`] values, for
    /// snapshot encoding. [`RTree::from_snapshot`] inverts it exactly, so a
    /// saved tree reloads bit-identical (same arena layout, same traversal
    /// order, same query costs).
    pub fn snapshot_nodes(&self) -> Vec<RTreeNode<N, T>>
    where
        T: Clone,
    {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Leaf(entries) => {
                    RTreeNode::Leaf { mbr: n.mbr, entries: entries.clone() }
                }
                NodeKind::Inner(children) => {
                    RTreeNode::Inner { mbr: n.mbr, children: children.clone() }
                }
            })
            .collect()
    }

    /// Rebuilds a tree from `(params, root, len, nodes)` as produced by
    /// [`RTree::params`] / [`RTree::root_id`] / [`RTree::len`] /
    /// [`RTree::snapshot_nodes`].
    ///
    /// The input is untrusted: the arena reachable from `root` must be a
    /// proper tree (in-range ids, no node visited twice, non-empty inner
    /// nodes) and its leaves must hold exactly `len` entries, so that no
    /// traversal can panic or loop. Violations are reported as
    /// `Err(String)`.
    pub fn from_snapshot(
        params: RTreeParams,
        root: u32,
        len: usize,
        nodes: Vec<RTreeNode<N, T>>,
    ) -> Result<Self, String> {
        if root as usize >= nodes.len() {
            return Err(format!("rtree: root id {root} out of range ({} nodes)", nodes.len()));
        }
        let mut seen = vec![false; nodes.len()];
        let mut stack = vec![root];
        let mut entry_count = 0usize;
        while let Some(id) = stack.pop() {
            let i = id as usize;
            if seen[i] {
                return Err(format!("rtree: node {id} reachable twice (not a tree)"));
            }
            seen[i] = true;
            match &nodes[i] {
                RTreeNode::Leaf { entries, .. } => entry_count += entries.len(),
                RTreeNode::Inner { children, .. } => {
                    if children.is_empty() {
                        return Err(format!("rtree: inner node {id} has no children"));
                    }
                    for &c in children {
                        if c as usize >= nodes.len() {
                            return Err(format!(
                                "rtree: node {id} references child {c} out of range"
                            ));
                        }
                        stack.push(c);
                    }
                }
            }
        }
        if entry_count != len {
            return Err(format!(
                "rtree: {entry_count} entries reachable from root but len = {len}"
            ));
        }
        let nodes = nodes
            .into_iter()
            .map(|n| match n {
                RTreeNode::Leaf { mbr, entries } => Node { mbr, kind: NodeKind::Leaf(entries) },
                RTreeNode::Inner { mbr, children } => {
                    Node { mbr, kind: NodeKind::Inner(children) }
                }
            })
            .collect();
        Ok(RTree { params, nodes, root, len })
    }

    /// Checks structural invariants (entry count, MBR containment, fan-out
    /// bounds). Intended for tests; panics with a description on violation.
    pub fn check_invariants(&self) {
        fn walk<const N: usize, T>(
            tree: &RTree<N, T>,
            id: u32,
            is_root: bool,
            count: &mut usize,
        ) -> Aabb<N> {
            let node = &tree.nodes[id as usize];
            assert!(
                node.len() <= tree.params.max_entries,
                "node {id} overflows: {} > {}",
                node.len(),
                tree.params.max_entries
            );
            if !is_root && tree.len > tree.params.max_entries {
                // Bulk-loaded trees pack nodes; underfull nodes can only be
                // the last of a level, which is still >= 1 entry.
                assert!(node.len() >= 1, "empty non-root node {id}");
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    *count += entries.len();
                    for (b, _) in entries {
                        assert!(node.mbr.contains(b), "leaf {id} mbr misses an entry");
                    }
                    node.mbr
                }
                NodeKind::Inner(children) => {
                    assert!(!children.is_empty(), "inner node {id} has no children");
                    let mut acc = Aabb::empty();
                    for &c in children {
                        let child_mbr = walk(tree, c, false, count);
                        assert!(node.mbr.contains(&child_mbr), "node {id} mbr misses child {c}");
                        acc.expand(&child_mbr);
                    }
                    assert_eq!(acc, node.mbr, "node {id} mbr is not tight");
                    node.mbr
                }
            }
        }
        let mut count = 0;
        if self.len > 0 {
            walk(self, self.root, true, &mut count);
        }
        assert_eq!(count, self.len, "entry count mismatch");
    }
}

/// Squared distance from `point` to the closest point of `aabb` (zero when
/// the point lies inside).
fn min_dist_sq<const N: usize>(aabb: &Aabb<N>, point: &[f64; N]) -> f64 {
    let mut d = 0.0;
    for (i, &p) in point.iter().enumerate() {
        let delta = if p < aabb.min[i] {
            aabb.min[i] - p
        } else if p > aabb.max[i] {
            p - aabb.max[i]
        } else {
            0.0
        };
        d += delta * delta;
    }
    d
}

/// A total order over finite f64 distances for the best-first heap.
#[derive(PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Picks the child needing the least MBR enlargement (ties: smaller volume).
fn choose_child<const N: usize, T>(nodes: &[Node<N, T>], children: &[u32], aabb: &Aabb<N>) -> u32 {
    debug_assert!(!children.is_empty());
    let mut best = children[0];
    let mut best_enl = f64::INFINITY;
    let mut best_vol = f64::INFINITY;
    for &c in children {
        let mbr = nodes[c as usize].mbr;
        let enl = mbr.enlargement(aabb);
        let vol = mbr.volume();
        if enl < best_enl || (enl == best_enl && vol < best_vol) {
            best = c;
            best_enl = enl;
            best_vol = vol;
        }
    }
    best
}

/// Guttman's quadratic split: seeds are the pair wasting the most area; the
/// remaining entries go to the group whose MBR grows the least, with the
/// `min` lower bound enforced.
type SplitGroups<const N: usize, E> = (Vec<(Aabb<N>, E)>, Vec<(Aabb<N>, E)>);

fn quadratic_split<const N: usize, E>(
    mut entries: Vec<(Aabb<N>, E)>,
    min: usize,
) -> SplitGroups<N, E> {
    debug_assert!(entries.len() >= 2);

    // Pick seeds.
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let d = entries[i].0.union(&entries[j].0).volume()
                - entries[i].0.volume()
                - entries[j].0.volume();
            if d > worst {
                worst = d;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    // Move the seeds out (larger index first so removal is stable).
    let (hi, lo) = (seed_a.max(seed_b), seed_a.min(seed_b));
    let b0 = entries.swap_remove(hi);
    let a0 = entries.swap_remove(lo);
    let mut group_a = vec![a0];
    let mut group_b = vec![b0];
    let mut mbr_a = group_a[0].0;
    let mut mbr_b = group_b[0].0;

    while let Some((aabb, e)) = entries.pop() {
        let remaining = entries.len();
        // Force-assign when a group must absorb everything left to reach min.
        if group_a.len() + remaining < min {
            mbr_a.expand(&aabb);
            group_a.push((aabb, e));
            continue;
        }
        if group_b.len() + remaining < min {
            mbr_b.expand(&aabb);
            group_b.push((aabb, e));
            continue;
        }
        let enl_a = mbr_a.enlargement(&aabb);
        let enl_b = mbr_b.enlargement(&aabb);
        let to_a = match enl_a.partial_cmp(&enl_b) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => group_a.len() <= group_b.len(),
        };
        if to_a {
            mbr_a.expand(&aabb);
            group_a.push((aabb, e));
        } else {
            mbr_b.expand(&aabb);
            group_b.push((aabb, e));
        }
    }
    (group_a, group_b)
}

/// Recursive Sort-Tile-Recursive partitioning: sorts by the centre of
/// dimension `dim`, cuts into vertical slabs, and recurses on the remaining
/// dimensions; at the last dimension it emits groups of up to `cap` entries.
fn str_tile<const N: usize, E>(
    mut entries: Vec<(Aabb<N>, E)>,
    cap: usize,
    dim: usize,
    out: &mut Vec<Vec<(Aabb<N>, E)>>,
) {
    if entries.len() <= cap {
        if !entries.is_empty() {
            out.push(entries);
        }
        return;
    }
    entries.sort_by(|a, b| {
        a.0.center()[dim].partial_cmp(&b.0.center()[dim]).unwrap_or(std::cmp::Ordering::Equal)
    });
    if dim + 1 == N {
        // Final dimension: emit runs of `cap`.
        while !entries.is_empty() {
            let rest = entries.split_off(entries.len().min(cap));
            out.push(std::mem::replace(&mut entries, rest));
        }
        return;
    }
    // Number of slabs: ceil((P)^(1/(N-dim))) where P = pages needed.
    let pages = entries.len().div_ceil(cap);
    let slabs = (pages as f64).powf(1.0 / (N - dim) as f64).ceil() as usize;
    let per_slab = entries.len().div_ceil(slabs.max(1));
    while !entries.is_empty() {
        let rest = entries.split_off(entries.len().min(per_slab));
        let slab = std::mem::replace(&mut entries, rest);
        str_tile(slab, cap, dim + 1, out);
    }
}

/// Parallel top level of [`str_tile`]: performs the first-dimension sort
/// and slab cut exactly as the sequential recursion would, then tiles the
/// slabs concurrently and concatenates their emitted groups in slab order.
/// Slab boundaries, per-slab sorts (stable `sort_by` with the identical
/// comparator) and emission order are all unchanged, so the group list —
/// and hence the packed tree — matches the sequential result exactly.
fn str_tile_threaded<const N: usize, E: Send>(
    mut entries: Vec<(Aabb<N>, E)>,
    cap: usize,
    threads: usize,
) -> Vec<Vec<(Aabb<N>, E)>> {
    let mut out = Vec::new();
    if entries.len() <= cap || N == 1 {
        str_tile(entries, cap, 0, &mut out);
        return out;
    }
    entries.sort_by(|a, b| {
        a.0.center()[0].partial_cmp(&b.0.center()[0]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let pages = entries.len().div_ceil(cap);
    let slabs = (pages as f64).powf(1.0 / N as f64).ceil() as usize;
    let per_slab = entries.len().div_ceil(slabs.max(1));
    let mut slab_vec: Vec<Vec<(Aabb<N>, E)>> = Vec::new();
    while !entries.is_empty() {
        let rest = entries.split_off(entries.len().min(per_slab));
        slab_vec.push(std::mem::replace(&mut entries, rest));
    }
    let per_slab_groups = gsr_graph::par::map_consume(threads, slab_vec, |slab| {
        let mut groups = Vec::new();
        str_tile(slab, cap, 1, &mut groups);
        groups
    });
    for groups in per_slab_groups {
        out.extend(groups);
    }
    out
}

/// Range-query iterator over an [`RTree`]; see [`RTree::query`].
pub struct Query<'a, const N: usize, T> {
    tree: &'a RTree<N, T>,
    region: Aabb<N>,
    stack: Vec<u32>,
    leaf: Option<(&'a [(Aabb<N>, T)], usize)>,
}

impl<'a, const N: usize, T> Iterator for Query<'a, N, T> {
    type Item = (&'a Aabb<N>, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((entries, pos)) = &mut self.leaf {
                while *pos < entries.len() {
                    let (b, t) = &entries[*pos];
                    *pos += 1;
                    if b.intersects(&self.region) {
                        return Some((b, t));
                    }
                }
                self.leaf = None;
            }
            let id = self.stack.pop()?;
            match &self.tree.nodes[id as usize].kind {
                NodeKind::Leaf(entries) => {
                    self.leaf = Some((entries.as_slice(), 0));
                }
                NodeKind::Inner(children) => {
                    for &c in children {
                        if self.tree.nodes[c as usize].mbr.intersects(&self.region) {
                            self.stack.push(c);
                        }
                    }
                }
            }
        }
    }
}

/// Range-query iterator borrowing its traversal stack from the caller;
/// see [`RTree::query_with`].
pub struct QueryWith<'t, 's, const N: usize, T> {
    tree: &'t RTree<N, T>,
    region: Aabb<N>,
    stack: &'s mut Vec<u32>,
    leaf: Option<(&'t [(Aabb<N>, T)], usize)>,
}

impl<'t, const N: usize, T> Iterator for QueryWith<'t, '_, N, T> {
    type Item = (&'t Aabb<N>, &'t T);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((entries, pos)) = &mut self.leaf {
                while *pos < entries.len() {
                    let (b, t) = &entries[*pos];
                    *pos += 1;
                    if b.intersects(&self.region) {
                        return Some((b, t));
                    }
                }
                self.leaf = None;
            }
            let id = self.stack.pop()?;
            match &self.tree.nodes[id as usize].kind {
                NodeKind::Leaf(entries) => {
                    self.leaf = Some((entries.as_slice(), 0));
                }
                NodeKind::Inner(children) => {
                    for &c in children {
                        if self.tree.nodes[c as usize].mbr.intersects(&self.region) {
                            self.stack.push(c);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Aabb<2> {
        Aabb::from_point([x, y])
    }

    fn grid_points(n: usize) -> Vec<(Aabb<2>, usize)> {
        (0..n).map(|i| (pt((i % 32) as f64, (i / 32) as f64), i)).collect()
    }

    #[test]
    fn empty_tree_queries() {
        let t: RTree<2, u32> = RTree::new();
        assert!(t.is_empty());
        let all = Aabb::new([-1e9, -1e9], [1e9, 1e9]);
        assert_eq!(t.query(&all).count(), 0);
        assert!(!t.query_exists(&all));
        t.check_invariants();
    }

    #[test]
    fn insertion_finds_everything() {
        let mut t: RTree<2, usize> = RTree::new();
        for (b, i) in grid_points(1000) {
            t.insert(b, i);
        }
        assert_eq!(t.len(), 1000);
        t.check_invariants();
        let all = Aabb::new([-1.0, -1.0], [1000.0, 1000.0]);
        assert_eq!(t.query(&all).count(), 1000);
        // A tight region.
        let region = Aabb::new([0.0, 0.0], [3.0, 0.0]);
        let mut hits: Vec<usize> = t.query(&region).map(|(_, &i)| i).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bulk_load_finds_everything() {
        let t = RTree::bulk_load(grid_points(1000));
        assert_eq!(t.len(), 1000);
        t.check_invariants();
        let region = Aabb::new([10.0, 10.0], [12.0, 11.0]);
        let mut hits: Vec<usize> = t.query(&region).map(|(_, &i)| i).collect();
        hits.sort_unstable();
        // Points with x in 10..=12, y in 10..=11: i = y*32 + x.
        assert_eq!(hits, vec![330, 331, 332, 362, 363, 364]);
    }

    #[test]
    fn bulk_load_is_shallower_than_insertion() {
        let pts = grid_points(4096);
        let ins = {
            let mut t = RTree::new();
            for (b, i) in pts.clone() {
                t.insert(b, i);
            }
            t
        };
        let bulk = RTree::bulk_load(pts);
        assert!(bulk.height() <= ins.height());
        assert!(bulk.height() >= 2);
    }

    #[test]
    fn query_exists_early_exit_agrees_with_count() {
        let t = RTree::bulk_load(grid_points(500));
        for (lo, hi) in [([0.0, 0.0], [1.0, 1.0]), ([900.0, 900.0], [950.0, 950.0])] {
            let r = Aabb::new(lo, hi);
            assert_eq!(t.query_exists(&r), t.count_in(&r) > 0);
        }
    }

    #[test]
    fn query_with_matches_query_and_reuses_buffer() {
        let t = RTree::bulk_load(grid_points(500));
        let mut stack = Vec::new();
        for (lo, hi) in [
            ([0.0, 0.0], [1.0, 1.0]),
            ([3.0, 3.0], [12.0, 9.0]),
            ([900.0, 900.0], [950.0, 950.0]),
            ([-10.0, -10.0], [100.0, 100.0]),
        ] {
            let r = Aabb::new(lo, hi);
            let plain: Vec<usize> = t.query(&r).map(|(_, &v)| v).collect();
            let with: Vec<usize> = t.query_with(&r, &mut stack).map(|(_, &v)| v).collect();
            assert_eq!(plain, with, "query_with diverged on {r:?}");
            assert_eq!(t.query_exists(&r), t.query_exists_with(&r, &mut stack));
        }
        // The buffer is reusable: a second pass over the same windows must
        // not need to grow it.
        let cap = stack.capacity();
        let r = Aabb::new([-10.0, -10.0], [100.0, 100.0]);
        let _ = t.query_with(&r, &mut stack).count();
        assert_eq!(stack.capacity(), cap);
    }

    #[test]
    fn boxes_not_only_points() {
        let mut t: RTree<2, &str> = RTree::new();
        t.insert(Aabb::new([0.0, 0.0], [10.0, 10.0]), "big");
        t.insert(Aabb::new([20.0, 20.0], [21.0, 21.0]), "small");
        let probe = Aabb::new([5.0, 5.0], [6.0, 6.0]);
        let hits: Vec<&str> = t.query(&probe).map(|(_, &s)| s).collect();
        assert_eq!(hits, vec!["big"]);
    }

    #[test]
    fn three_dimensional_segments() {
        // Vertical segments as in 3DReach-REV: degenerate in x/y.
        let mut t: RTree<3, u32> = RTree::new();
        for i in 0..100u32 {
            let x = (i % 10) as f64;
            let y = (i / 10) as f64;
            t.insert(Aabb::new([x, y, 0.0], [x, y, i as f64]), i);
        }
        t.check_invariants();
        // A plane at z = 50 over the whole xy extent cuts segments with
        // i >= 50.
        let plane = Aabb::new([0.0, 0.0, 50.0], [10.0, 10.0, 50.0]);
        assert_eq!(t.count_in(&plane), 50);
    }

    #[test]
    fn duplicate_geometry_is_allowed() {
        let mut t: RTree<2, u32> = RTree::new();
        for i in 0..50 {
            t.insert(pt(1.0, 1.0), i);
        }
        t.check_invariants();
        assert_eq!(t.count_in(&Aabb::from_point([1.0, 1.0])), 50);
    }

    #[test]
    fn iter_visits_all_entries() {
        let t = RTree::bulk_load(grid_points(333));
        let mut ids: Vec<usize> = t.iter().map(|(_, &i)| i).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..333).collect::<Vec<_>>());
    }

    #[test]
    fn custom_params_respected() {
        let params = RTreeParams::new(8, 3);
        let mut t: RTree<2, usize> = RTree::with_params(params);
        for (b, i) in grid_points(200) {
            t.insert(b, i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn remove_keeps_queries_consistent() {
        let mut t: RTree<2, usize> = RTree::new();
        for (b, i) in grid_points(400) {
            t.insert(b, i);
        }
        // Remove every third entry.
        for i in (0..400).step_by(3) {
            let b = pt((i % 32) as f64, (i / 32) as f64);
            assert!(t.remove(&b, &i), "entry {i} must be removable");
        }
        assert_eq!(t.len(), 400 - 134);
        t.check_invariants();
        let all = Aabb::new([-1.0, -1.0], [1000.0, 1000.0]);
        let mut left: Vec<usize> = t.query(&all).map(|(_, &i)| i).collect();
        left.sort_unstable();
        let expected: Vec<usize> = (0..400).filter(|i| i % 3 != 0).collect();
        assert_eq!(left, expected);
        // Removing a non-existent entry is a no-op.
        assert!(!t.remove(&pt(0.0, 0.0), &0));
    }

    #[test]
    fn remove_down_to_empty_and_reuse() {
        let mut t: RTree<2, u32> = RTree::new();
        for i in 0..100u32 {
            t.insert(pt(i as f64, 0.0), i);
        }
        for i in 0..100u32 {
            assert!(t.remove(&pt(i as f64, 0.0), &i));
        }
        assert!(t.is_empty());
        t.check_invariants();
        // The tree is reusable after total removal.
        t.insert(pt(1.0, 1.0), 7);
        assert_eq!(t.count_in(&Aabb::from_point([1.0, 1.0])), 1);
    }

    #[test]
    fn remove_one_with_predicate() {
        let mut t: RTree<2, (u32, &str)> = RTree::new();
        t.insert(pt(1.0, 1.0), (1, "keep"));
        t.insert(pt(1.0, 1.0), (2, "drop"));
        let removed = t.remove_one(&pt(1.0, 1.0), |(_, tag)| *tag == "drop");
        assert_eq!(removed, Some((2, "drop")));
        assert_eq!(t.len(), 1);
        assert!(t.query_exists(&pt(1.0, 1.0)));
    }

    #[test]
    fn nearest_neighbor_matches_linear_scan() {
        let entries = grid_points(777);
        let t = RTree::bulk_load(entries.clone());
        for probe in [[0.0, 0.0], [15.5, 10.2], [100.0, 100.0], [-5.0, 3.0]] {
            let (_, &got) = t.nearest_neighbor(&probe).unwrap();
            let best = entries
                .iter()
                .min_by(|(a, _), (b, _)| {
                    min_dist_sq(a, &probe).partial_cmp(&min_dist_sq(b, &probe)).unwrap()
                })
                .unwrap();
            let got_d = min_dist_sq(&entries[got].0, &probe);
            let best_d = min_dist_sq(&best.0, &probe);
            assert_eq!(got_d, best_d, "probe {probe:?}");
        }
        let empty: RTree<2, u32> = RTree::new();
        assert!(empty.nearest_neighbor(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn k_nearest_matches_sorted_scan() {
        let entries = grid_points(500);
        let t = RTree::bulk_load(entries.clone());
        for probe in [[0.0, 0.0], [16.0, 8.0], [40.0, 40.0]] {
            for k in [1usize, 3, 10, 600] {
                let got: Vec<usize> =
                    t.nearest_k_where(&probe, k, |_, _| true).iter().map(|(_, &i)| i).collect();
                let mut expected: Vec<(f64, usize)> = entries
                    .iter()
                    .map(|&(b, i)| (min_dist_sq(&b, &probe), i))
                    .collect();
                expected.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                assert_eq!(got.len(), k.min(entries.len()), "probe {probe:?} k {k}");
                // Compare by distance (ties may reorder ids).
                for (j, &i) in got.iter().enumerate() {
                    let d = min_dist_sq(&entries[i].0, &probe);
                    assert_eq!(d, expected[j].0, "probe {probe:?} k {k} rank {j}");
                }
            }
        }
    }

    #[test]
    fn k_nearest_with_predicate_skips_rejected() {
        let entries = grid_points(200);
        let t = RTree::bulk_load(entries.clone());
        // Accept only even payloads.
        let got: Vec<usize> = t
            .nearest_k_where(&[0.0, 0.0], 5, |_, &i| i % 2 == 0)
            .iter()
            .map(|(_, &i)| i)
            .collect();
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|i| i % 2 == 0));
    }

    #[test]
    fn parallel_bulk_load_matches_sequential_exactly() {
        for n in [0usize, 5, 100, 3000] {
            let entries = grid_points(n);
            let seq = RTree::bulk_load(entries.clone());
            for threads in [2, 4, 8] {
                let par = RTree::bulk_load_parallel(
                    entries.clone(),
                    RTreeParams::default(),
                    threads,
                );
                assert_eq!(seq, par, "n = {n}, threads = {threads}");
                par.check_invariants();
            }
        }
    }

    #[test]
    fn parallel_bulk_load_matches_sequential_in_3d() {
        let entries: Vec<(Aabb<3>, u32)> = (0..2000u32)
            .map(|i| {
                let x = (i % 13) as f64;
                let y = (i % 57) as f64;
                let z = (i % 101) as f64;
                (Aabb::new([x, y, 0.0], [x, y, z]), i)
            })
            .collect();
        let seq = RTree::bulk_load(entries.clone());
        let par = RTree::bulk_load_parallel(entries, RTreeParams::default(), 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn snapshot_nodes_round_trip_exactly() {
        for n in [0usize, 1, 50, 2000] {
            let t = RTree::bulk_load(grid_points(n));
            let back = RTree::from_snapshot(t.params(), t.root_id(), t.len(), t.snapshot_nodes())
                .expect("valid snapshot must rebuild");
            assert_eq!(t, back, "n = {n}");
            back.check_invariants();
        }
        // Insertion-built trees (quadratic splits) round-trip too.
        let mut t: RTree<2, usize> = RTree::new();
        for (b, i) in grid_points(300) {
            t.insert(b, i);
        }
        let back = RTree::from_snapshot(t.params(), t.root_id(), t.len(), t.snapshot_nodes())
            .expect("valid snapshot must rebuild");
        assert_eq!(t, back);
    }

    #[test]
    fn from_snapshot_rejects_malformed_arenas() {
        let params = RTreeParams::default();
        let leaf = |entries: Vec<(Aabb<2>, u32)>| RTreeNode::Leaf {
            mbr: Aabb::mbr_of(entries.iter().map(|(b, _)| *b)).unwrap_or_else(Aabb::empty),
            entries,
        };
        // Root out of range.
        assert!(RTree::<2, u32>::from_snapshot(params, 3, 0, vec![leaf(vec![])]).is_err());
        // Child id out of range.
        let bad_child = vec![RTreeNode::Inner { mbr: Aabb::empty(), children: vec![9] }];
        assert!(RTree::<2, u32>::from_snapshot(params, 0, 0, bad_child).is_err());
        // A cycle (node reachable twice).
        let cyclic = vec![
            RTreeNode::Inner { mbr: Aabb::empty(), children: vec![1, 1] },
            leaf(vec![(pt(0.0, 0.0), 7)]),
        ];
        assert!(RTree::<2, u32>::from_snapshot(params, 0, 2, cyclic).is_err());
        // Inner node with no children.
        let hollow = vec![RTreeNode::Inner::<2, u32> { mbr: Aabb::empty(), children: vec![] }];
        assert!(RTree::from_snapshot(params, 0, 0, hollow).is_err());
        // Entry count mismatch.
        assert!(
            RTree::<2, u32>::from_snapshot(params, 0, 5, vec![leaf(vec![(pt(1.0, 1.0), 1)])])
                .is_err()
        );
    }

    #[test]
    fn heap_bytes_grows_with_entries() {
        let small = RTree::bulk_load(grid_points(10));
        let large = RTree::bulk_load(grid_points(10_000));
        assert!(large.heap_bytes() > small.heap_bytes());
    }
}
