//! A uniform (single-level) grid over 2-D points — "the simplest SOP
//! index" of the paper's related-work discussion (Section 7.2). Used as an
//! ablation baseline against the R-tree for the spatial range queries of
//! SpaReach.

use gsr_geo::{Point, Rect};

/// A fixed-resolution bucket grid over points with payloads `T`.
///
/// Points outside the declared space are clamped into the border cells, so
/// the structure never loses entries.
///
/// ```
/// use gsr_geo::{Point, Rect};
/// use gsr_index::UniformGrid;
///
/// let space = Rect::new(0.0, 0.0, 100.0, 100.0);
/// let entries = vec![(Point::new(10.0, 10.0), "cafe"), (Point::new(90.0, 90.0), "park")];
/// let grid = UniformGrid::bulk_load(space, entries, 4);
/// assert!(grid.query_exists(&Rect::new(0.0, 0.0, 20.0, 20.0)));
/// assert_eq!(grid.count_in(&Rect::new(0.0, 0.0, 100.0, 100.0)), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UniformGrid<T> {
    space: Rect,
    cells_per_side: u32,
    /// CSR buckets: entries of cell `(ix, iy)` are
    /// `entries[offsets[iy * side + ix] .. offsets[iy * side + ix + 1]]`.
    offsets: Vec<u32>,
    entries: Vec<(Point, T)>,
}

impl<T> UniformGrid<T> {
    /// Bulk-loads a grid with roughly `target_per_cell` entries per cell.
    pub fn bulk_load(space: Rect, points: Vec<(Point, T)>, target_per_cell: usize) -> Self {
        let n = points.len().max(1);
        let cells = n.div_ceil(target_per_cell.max(1));
        let side = (cells as f64).sqrt().ceil().max(1.0) as u32;
        Self::bulk_load_with_side(space, points, side)
    }

    /// Bulk-loads with an explicit number of cells per side.
    pub fn bulk_load_with_side(space: Rect, points: Vec<(Point, T)>, side: u32) -> Self {
        let side = side.max(1);
        let ncells = (side * side) as usize;
        let cell_of = |p: &Point| -> usize {
            let fx = (p.x - space.min_x) / space.width().max(f64::MIN_POSITIVE);
            let fy = (p.y - space.min_y) / space.height().max(f64::MIN_POSITIVE);
            let ix = ((fx * side as f64) as i64).clamp(0, side as i64 - 1) as usize;
            let iy = ((fy * side as f64) as i64).clamp(0, side as i64 - 1) as usize;
            iy * side as usize + ix
        };

        // Counting sort into buckets.
        let mut offsets = vec![0u32; ncells + 1];
        for (p, _) in &points {
            offsets[cell_of(p) + 1] += 1;
        }
        for i in 0..ncells {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut slots: Vec<Option<(Point, T)>> = Vec::with_capacity(points.len());
        slots.resize_with(points.len(), || None);
        for (p, t) in points {
            let c = cell_of(&p);
            slots[cursor[c] as usize] = Some((p, t));
            cursor[c] += 1;
        }
        let entries: Vec<(Point, T)> = slots.into_iter().map(|s| s.expect("filled")).collect();

        UniformGrid { space, cells_per_side: side, offsets, entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the grid holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cells per side.
    pub fn cells_per_side(&self) -> u32 {
        self.cells_per_side
    }

    fn cell_range(&self, coord: f64, min: f64, extent: f64) -> u32 {
        let f = (coord - min) / extent.max(f64::MIN_POSITIVE);
        ((f * self.cells_per_side as f64) as i64).clamp(0, self.cells_per_side as i64 - 1) as u32
    }

    /// Visits every entry inside `region`, stopping early when `visit`
    /// returns `true`; returns whether any visit returned `true`.
    pub fn query_until<'a>(
        &'a self,
        region: &Rect,
        mut visit: impl FnMut(&'a Point, &'a T) -> bool,
    ) -> bool {
        let ix0 = self.cell_range(region.min_x, self.space.min_x, self.space.width());
        let ix1 = self.cell_range(region.max_x, self.space.min_x, self.space.width());
        let iy0 = self.cell_range(region.min_y, self.space.min_y, self.space.height());
        let iy1 = self.cell_range(region.max_y, self.space.min_y, self.space.height());
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let cell = (iy * self.cells_per_side + ix) as usize;
                let lo = self.offsets[cell] as usize;
                let hi = self.offsets[cell + 1] as usize;
                for (p, t) in &self.entries[lo..hi] {
                    if region.contains_point(p) && visit(p, t) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// All entries inside `region`, materialized.
    pub fn query(&self, region: &Rect) -> Vec<(&Point, &T)> {
        let mut out = Vec::new();
        self.query_until(region, |p, t| {
            out.push((p, t));
            false
        });
        out
    }

    /// Number of entries inside `region`.
    pub fn count_in(&self, region: &Rect) -> usize {
        self.query(region).len()
    }

    /// Whether any entry lies inside `region`.
    pub fn query_exists(&self, region: &Rect) -> bool {
        self.query_until(region, |_, _| true)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.entries.len() * std::mem::size_of::<(Point, T)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points(n: usize) -> Vec<(Point, usize)> {
        (0..n)
            .map(|i| (Point::new((i % 37) as f64, (i % 53) as f64), i))
            .collect()
    }

    fn space() -> Rect {
        Rect::new(0.0, 0.0, 37.0, 53.0)
    }

    #[test]
    fn query_matches_linear_scan() {
        let pts = sample_points(1000);
        let grid = UniformGrid::bulk_load(space(), pts.clone(), 8);
        for region in [
            Rect::new(0.0, 0.0, 5.0, 5.0),
            Rect::new(10.0, 20.0, 30.0, 40.0),
            Rect::new(36.0, 52.0, 40.0, 60.0),
            Rect::new(-5.0, -5.0, -1.0, -1.0),
        ] {
            let mut got: Vec<usize> = grid.query(&region).iter().map(|(_, &i)| i).collect();
            got.sort_unstable();
            let mut expected: Vec<usize> = pts
                .iter()
                .filter(|(p, _)| region.contains_point(p))
                .map(|&(_, i)| i)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "region {region}");
            assert_eq!(grid.query_exists(&region), !expected.is_empty());
            assert_eq!(grid.count_in(&region), expected.len());
        }
    }

    #[test]
    fn out_of_space_points_are_clamped_not_lost() {
        let pts = vec![
            (Point::new(-10.0, -10.0), 0usize),
            (Point::new(100.0, 100.0), 1),
            (Point::new(5.0, 5.0), 2),
        ];
        let grid = UniformGrid::bulk_load_with_side(Rect::new(0.0, 0.0, 10.0, 10.0), pts, 4);
        assert_eq!(grid.len(), 3);
        // The clamped entries are still findable by their true coordinates.
        assert!(grid.query_exists(&Rect::new(-20.0, -20.0, 0.0, 0.0)));
        assert!(grid.query_exists(&Rect::new(50.0, 50.0, 200.0, 200.0)));
    }

    #[test]
    fn early_exit_stops_visiting() {
        let grid = UniformGrid::bulk_load(space(), sample_points(500), 8);
        let mut visited = 0usize;
        let found = grid.query_until(&Rect::new(0.0, 0.0, 37.0, 53.0), |_, _| {
            visited += 1;
            true
        });
        assert!(found);
        assert_eq!(visited, 1, "first hit must stop the scan");
    }

    #[test]
    fn empty_grid() {
        let grid: UniformGrid<u32> = UniformGrid::bulk_load(space(), vec![], 8);
        assert!(grid.is_empty());
        assert!(!grid.query_exists(&space()));
        assert!(grid.cells_per_side() >= 1);
    }

    #[test]
    fn cell_sizing_tracks_target() {
        let grid = UniformGrid::bulk_load(space(), sample_points(10_000), 10);
        let cells = (grid.cells_per_side() * grid.cells_per_side()) as usize;
        assert!(cells >= 10_000 / 10, "enough cells for the target, got {cells}");
    }
}
