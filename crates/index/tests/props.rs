//! Property-based tests: the R-tree must agree with a linear scan, and the
//! grid must behave like a partition.

use gsr_geo::{Aabb, Point, Rect};
use gsr_index::grid::HierarchicalGrid;
use gsr_index::{DynRTree, KdTree, QuadTree, RTree, RTreeParams, UniformGrid};
use proptest::prelude::*;

fn arb_box2() -> impl Strategy<Value = Aabb<2>> {
    ((-100.0..100.0f64, -100.0..100.0f64), (0.0..20.0f64, 0.0..20.0f64)).prop_map(
        |((x, y), (w, h))| Aabb::new([x, y], [x + w, y + h]),
    )
}

fn arb_point3() -> impl Strategy<Value = Aabb<3>> {
    (-100.0..100.0f64, -100.0..100.0f64, 0.0..1000.0f64)
        .prop_map(|(x, y, z)| Aabb::from_point([x, y, z]))
}

fn linear_scan<const N: usize>(entries: &[(Aabb<N>, usize)], region: &Aabb<N>) -> Vec<usize> {
    let mut hits: Vec<usize> =
        entries.iter().filter(|(b, _)| b.intersects(region)).map(|&(_, i)| i).collect();
    hits.sort_unstable();
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inserted_tree_matches_linear_scan(
        boxes in prop::collection::vec(arb_box2(), 0..300),
        region in arb_box2(),
    ) {
        let entries: Vec<(Aabb<2>, usize)> =
            boxes.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let mut tree = DynRTree::new();
        for (b, i) in entries.iter() {
            tree.insert(*b, *i);
        }
        tree.check_invariants();
        let mut hits: Vec<usize> = tree.query(&region).map(|(_, &i)| i).collect();
        hits.sort_unstable();
        prop_assert_eq!(hits, linear_scan(&entries, &region));
    }

    #[test]
    fn bulk_tree_matches_linear_scan(
        boxes in prop::collection::vec(arb_box2(), 0..300),
        region in arb_box2(),
    ) {
        let entries: Vec<(Aabb<2>, usize)> =
            boxes.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let tree = RTree::bulk_load(entries.clone());
        tree.check_invariants();
        let mut hits: Vec<usize> = tree.query(&region).map(|(_, &i)| i).collect();
        hits.sort_unstable();
        prop_assert_eq!(hits, linear_scan(&entries, &region));
    }

    #[test]
    fn bulk_and_inserted_agree_in_3d(
        pts in prop::collection::vec(arb_point3(), 1..200),
        region_lo in (-100.0..100.0f64, -100.0..100.0f64, 0.0..1000.0f64),
        extent in (0.0..100.0f64, 0.0..100.0f64, 0.0..500.0f64),
    ) {
        let entries: Vec<(Aabb<3>, usize)> =
            pts.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let region = Aabb::new(
            [region_lo.0, region_lo.1, region_lo.2],
            [region_lo.0 + extent.0, region_lo.1 + extent.1, region_lo.2 + extent.2],
        );
        let bulk = RTree::bulk_load(entries.clone());
        let mut ins = DynRTree::with_params(RTreeParams::new(8, 3));
        for (b, i) in entries.iter() {
            ins.insert(*b, *i);
        }
        let mut a: Vec<usize> = bulk.query(&region).map(|(_, &i)| i).collect();
        let mut b: Vec<usize> = ins.query(&region).map(|(_, &i)| i).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(bulk.query_exists(&region), !a.is_empty());
    }

    #[test]
    fn removal_then_query_matches_scan(
        boxes in prop::collection::vec(arb_box2(), 1..150),
        removals in prop::collection::vec(0usize..150, 0..60),
        region in arb_box2(),
    ) {
        let entries: Vec<(Aabb<2>, usize)> =
            boxes.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let mut tree = DynRTree::with_params(RTreeParams::new(8, 3));
        for (b, i) in entries.iter() {
            tree.insert(*b, *i);
        }
        let mut alive: Vec<bool> = vec![true; entries.len()];
        for r in removals {
            let i = r % entries.len();
            let did = tree.remove(&entries[i].0, &i);
            prop_assert_eq!(did, alive[i], "removal {} mismatch", i);
            alive[i] = false;
        }
        tree.check_invariants();
        let mut hits: Vec<usize> = tree.query(&region).map(|(_, &i)| i).collect();
        hits.sort_unstable();
        let expected: Vec<usize> = entries
            .iter()
            .filter(|(b, i)| alive[*i] && b.intersects(&region))
            .map(|&(_, i)| i)
            .collect();
        prop_assert_eq!(hits, expected);
    }

    #[test]
    fn uniform_grid_matches_rtree(
        pts in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..250),
        region in arb_box2(),
        per_cell in 1usize..20,
    ) {
        let entries: Vec<(Point, usize)> =
            pts.iter().enumerate().map(|(i, &(x, y))| (Point::new(x, y), i)).collect();
        let tree = RTree::bulk_load(
            entries
                .iter()
                .map(|&(p, i)| (Aabb::from_point([p.x, p.y]), i))
                .collect(),
        );
        let grid = UniformGrid::bulk_load(
            Rect::new(-100.0, -100.0, 100.0, 100.0),
            entries.clone(),
            per_cell,
        );
        let rect: Rect = region.into();
        let mut a: Vec<usize> = tree.query(&region).map(|(_, &i)| i).collect();
        let mut b: Vec<usize> = grid.query(&rect).iter().map(|(_, &i)| i).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(grid.query_exists(&rect), tree.query_exists(&region));
    }

    #[test]
    fn kdtree_matches_rtree(
        pts in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..250),
        region in arb_box2(),
        probe in (-150.0..150.0f64, -150.0..150.0f64),
    ) {
        let entries: Vec<(Point, usize)> =
            pts.iter().enumerate().map(|(i, &(x, y))| (Point::new(x, y), i)).collect();
        let rt = RTree::bulk_load(
            entries.iter().map(|&(p, i)| (Aabb::from_point([p.x, p.y]), i)).collect(),
        );
        let kd = KdTree::bulk_load(entries.clone());
        let rect: Rect = region.into();
        let mut a: Vec<usize> = rt.query(&region).map(|(_, &i)| i).collect();
        let mut b: Vec<usize> = kd.query(&rect).iter().map(|(_, &i)| i).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Nearest neighbours agree on distance.
        let target = Point::new(probe.0, probe.1);
        match (rt.nearest_neighbor(&[target.x, target.y]), kd.nearest(&target)) {
            (None, None) => {}
            (Some((rb, _)), Some((kp, _))) => {
                let rd = (rb.min[0] - target.x).powi(2) + (rb.min[1] - target.y).powi(2);
                let kdist = kp.distance_sq(&target);
                prop_assert!((rd - kdist).abs() < 1e-9);
            }
            other => prop_assert!(false, "presence mismatch {:?}", other.0.is_some()),
        }
    }

    #[test]
    fn quadtree_matches_rtree(
        pts in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..250),
        region in arb_box2(),
    ) {
        let entries: Vec<(Point, usize)> =
            pts.iter().enumerate().map(|(i, &(x, y))| (Point::new(x, y), i)).collect();
        let rt = RTree::bulk_load(
            entries.iter().map(|&(p, i)| (Aabb::from_point([p.x, p.y]), i)).collect(),
        );
        // A space smaller than the data exercises the clamping path.
        let qt = QuadTree::bulk_load(Rect::new(-50.0, -50.0, 50.0, 50.0), entries);
        let rect: Rect = region.into();
        let mut a: Vec<usize> = rt.query(&region).map(|(_, &i)| i).collect();
        let mut b: Vec<usize> = qt.query(&rect).iter().map(|(_, &i)| i).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn nearest_neighbor_is_globally_nearest(
        pts in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 1..200),
        probe in (-150.0..150.0f64, -150.0..150.0f64),
    ) {
        let entries: Vec<(Aabb<2>, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Aabb::from_point([x, y]), i))
            .collect();
        let tree = RTree::bulk_load(entries.clone());
        let probe_pt = [probe.0, probe.1];
        let (got_box, _) = tree.nearest_neighbor(&probe_pt).unwrap();
        let d = |b: &Aabb<2>| {
            let dx = b.min[0] - probe_pt[0];
            let dy = b.min[1] - probe_pt[1];
            dx * dx + dy * dy
        };
        let got_d = d(&got_box);
        for (b, _) in &entries {
            prop_assert!(got_d <= d(b) + 1e-9, "a closer point exists");
        }
    }

    #[test]
    fn grid_cells_tile_the_space(
        xs in prop::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..100),
        exp in 1u8..6,
    ) {
        let grid = HierarchicalGrid::new(Rect::new(0.0, 0.0, 1.0, 1.0), exp);
        for (x, y) in xs {
            let p = Point::new(x, y);
            let cell = grid.cell_of(&p);
            prop_assert!(grid.cell_rect(&cell).contains_point(&p));
            // The parent chain is nested.
            let mut cur = cell;
            let mut rect = grid.cell_rect(&cur);
            while cur.level + 1 < grid.num_levels() {
                cur = cur.parent();
                let parent_rect = grid.cell_rect(&cur);
                prop_assert!(parent_rect.contains_rect(&rect));
                rect = parent_rect;
            }
            prop_assert_eq!(rect, *grid.space());
        }
    }

    #[test]
    fn merge_preserves_coverage(
        xs in prop::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..60),
        exp in 2u8..6,
        merge_count in 1usize..4,
    ) {
        let grid = HierarchicalGrid::new(Rect::new(0.0, 0.0, 1.0, 1.0), exp);
        let cells: Vec<_> = xs.iter().map(|&(x, y)| grid.cell_of(&Point::new(x, y))).collect();
        let mut merged = cells.clone();
        grid.merge_cells(&mut merged, merge_count);
        // Every original point is still covered by some merged cell.
        for (x, y) in xs {
            let p = Point::new(x, y);
            prop_assert!(merged.iter().any(|c| grid.cell_rect(c).contains_point(&p)));
        }
        // No merged cell is covered by another merged cell.
        for (i, a) in merged.iter().enumerate() {
            for (j, b) in merged.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !grid.cell_rect(a).contains_rect(&grid.cell_rect(b))
                            || a.level == b.level
                    );
                }
            }
        }
    }
}
