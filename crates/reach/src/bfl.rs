//! Bloom-Filter Labeling (BFL) for graph reachability.
//!
//! A from-scratch implementation of the scheme of Su, Zhu, Wei and Yu
//! ("Reachability querying: can it be even faster?"), which the paper picks
//! as the `GReach` back-end of its best spatial-first method, SpaReach-BFL,
//! "due to its promising results" (Section 7.1). BFL is a *Label+G* method:
//!
//! * a **positive cut** — every vertex carries the interval
//!   `[tree_min(v), post(v)]` of its DFS-subtree post-order numbers; if
//!   `post(to)` falls inside `from`'s interval, `from` reaches `to` through
//!   the spanning tree and the query answers TRUE immediately;
//! * two **negative cuts** — every vertex carries Bloom-filter summaries
//!   `L_out(v)` (hashes of all vertices reachable *from* `v`) and `L_in(v)`
//!   (hashes of all vertices that reach `v`). `from` reaches `to` only if
//!   `L_out(to) ⊆ L_out(from)` and `L_in(from) ⊆ L_in(to)`; a failed subset
//!   test proves non-reachability;
//! * a **guided DFS fallback** — when both cuts are inconclusive, the graph
//!   is traversed with the same cuts pruning every expansion, plus the
//!   DAG-DFS topological prune `post(w) < post(to) ⇒ w cannot reach to`.
//!
//! The input must be a DAG (condense SCCs first).

use crate::Reachability;
use gsr_graph::dfs::{SpanningForest, NO_PARENT};
use gsr_graph::{Col, DiGraph, VertexId};

/// Construction parameters for [`BflIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BflParams {
    /// Bloom filter width in 64-bit words per vertex per direction.
    /// The paper's BFL uses a few hundred bits; 4 words = 256 bits.
    pub filter_words: usize,
    /// Seed for the per-vertex hash assignment.
    pub seed: u64,
    /// Worker threads: `1` (default) runs the sequential filter passes,
    /// `0` uses machine parallelism, `n > 1` exactly `n` threads. Filters
    /// are identical at any thread count: each vertex's filter is a pure
    /// bitwise-OR of its neighbours' final filters, computed level by
    /// level.
    pub threads: usize,
}

impl Default for BflParams {
    fn default() -> Self {
        BflParams { filter_words: 4, seed: 0x9E3779B97F4A7C15, threads: 1 }
    }
}

/// The BFL reachability index.
///
/// ```
/// use gsr_graph::graph_from_edges;
/// use gsr_reach::bfl::BflIndex;
/// use gsr_reach::Reachability;
///
/// let g = graph_from_edges(4, &[(0, 1), (1, 2)]);
/// let idx = BflIndex::build(&g);
/// assert!(idx.reaches(0, 2));
/// assert!(!idx.reaches(0, 3));
/// ```
#[derive(Debug, Clone)]
pub struct BflIndex {
    g: DiGraph,
    /// 1-based DFS post-order.
    post: Col<u32>,
    /// Smallest post-order number in the DFS subtree of each vertex.
    tree_min: Col<u32>,
    /// Per-vertex out-filters, `filter_words` words each, concatenated.
    out_filters: Col<u64>,
    /// Per-vertex in-filters.
    in_filters: Col<u64>,
    words: usize,
}

/// The borrowed decomposition returned by [`BflIndex::parts`]:
/// `(graph, post, tree_min, out_filters, in_filters, words)`.
pub type BflParts<'a> = (&'a DiGraph, &'a [u32], &'a [u32], &'a [u64], &'a [u64], usize);

impl BflIndex {
    /// Builds the index over a DAG with default parameters.
    pub fn build(g: &DiGraph) -> Self {
        Self::build_with(g, BflParams::default())
    }

    /// Builds the index over a DAG with explicit parameters.
    pub fn build_with(g: &DiGraph, params: BflParams) -> Self {
        let n = g.num_vertices();
        let words = params.filter_words.max(1);
        let forest = SpanningForest::of(g);

        // Subtree minimum post-order numbers: DFS subtrees occupy contiguous
        // post ranges, so tree_min(v) = post(v) - subtree_size(v) + 1.
        let mut subtree_size = vec![1u32; n];
        // Children finish before parents, so accumulate in post order.
        for p in 1..=n as u32 {
            let v = forest.post_to_vertex[(p - 1) as usize];
            let parent = forest.parent[v as usize];
            if parent != NO_PARENT {
                subtree_size[parent as usize] += subtree_size[v as usize];
            }
        }
        let tree_min: Vec<u32> =
            (0..n).map(|v| forest.post[v] - subtree_size[v] + 1).collect();

        // Per-vertex hash bit (a cheap splitmix over the id).
        let bits = words * 64;
        let hash_bit = |v: VertexId| -> (usize, u64) {
            let mut x = v as u64 ^ params.seed;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
            x ^= x >> 31;
            let bit = (x % bits as u64) as usize;
            (bit / 64, 1u64 << (bit % 64))
        };

        let threads = gsr_graph::par::effective_threads(params.threads);

        // L_out: processed in increasing post order, every out-neighbour is
        // final (DAG DFS property: all edges point to smaller posts).
        // L_in: processed in decreasing post order, every in-neighbour of a
        // vertex has a *larger* post and is final.
        let fwd: Vec<VertexId> = (1..=n as u32)
            .map(|p| forest.post_to_vertex[(p - 1) as usize])
            .collect();
        let rev: Vec<VertexId> = fwd.iter().rev().copied().collect();
        let (out_filters, in_filters) = if threads > 1 {
            (
                fill_filters_parallel(n, words, &fwd, |v| g.out_neighbors(v), &hash_bit, threads),
                fill_filters_parallel(n, words, &rev, |v| g.in_neighbors(v), &hash_bit, threads),
            )
        } else {
            (
                fill_filters(n, words, &fwd, |v| g.out_neighbors(v), &hash_bit),
                fill_filters(n, words, &rev, |v| g.in_neighbors(v), &hash_bit),
            )
        };

        BflIndex {
            g: g.clone(),
            post: forest.post.into(),
            tree_min: tree_min.into(),
            out_filters: out_filters.into(),
            in_filters: in_filters.into(),
            words,
        }
    }

    #[inline]
    fn out_row(&self, v: usize) -> &[u64] {
        &self.out_filters[v * self.words..(v + 1) * self.words]
    }

    #[inline]
    fn in_row(&self, v: usize) -> &[u64] {
        &self.in_filters[v * self.words..(v + 1) * self.words]
    }

    /// Positive cut: `to` in the DFS subtree of `from`.
    #[inline]
    fn tree_contains(&self, from: usize, to_post: u32) -> bool {
        self.tree_min[from] <= to_post && to_post <= self.post[from]
    }

    /// Negative cuts; `true` means "possibly reachable".
    #[inline]
    fn filters_admit(&self, from: usize, to: usize) -> bool {
        subset(self.out_row(to), self.out_row(from)) && subset(self.in_row(from), self.in_row(to))
    }

    /// The raw `(out, in)` filter tables, `n * filter_words` words each —
    /// exposed so determinism tests can compare builds structurally.
    pub fn filters(&self) -> (&[u64], &[u64]) {
        (&self.out_filters, &self.in_filters)
    }

    /// Borrowed decomposition for snapshot encoding:
    /// `(graph, post, tree_min, out_filters, in_filters, words)`.
    /// [`BflIndex::from_parts`] inverts it.
    pub fn parts(&self) -> BflParts<'_> {
        (&self.g, &self.post, &self.tree_min, &self.out_filters, &self.in_filters, self.words)
    }

    /// Reassembles an index from the pieces of [`BflIndex::parts`].
    ///
    /// Untrusted input: vector lengths must be mutually consistent with the
    /// graph's vertex count and filter width, posts must be a 1-based
    /// permutation, and `tree_min(v) <= post(v)` must hold so the positive
    /// cut can never admit a nonsense range. Violations come back as
    /// `Err(String)` — never panics.
    pub fn from_parts(
        g: DiGraph,
        post: impl Into<Col<u32>>,
        tree_min: impl Into<Col<u32>>,
        out_filters: impl Into<Col<u64>>,
        in_filters: impl Into<Col<u64>>,
        words: usize,
    ) -> Result<Self, String> {
        let (post, tree_min) = (post.into(), tree_min.into());
        let (out_filters, in_filters) = (out_filters.into(), in_filters.into());
        let n = g.num_vertices();
        if words == 0 {
            return Err("bfl: zero filter words".into());
        }
        if post.len() != n || tree_min.len() != n {
            return Err(format!(
                "bfl: {n} vertices but {} posts / {} tree mins",
                post.len(),
                tree_min.len()
            ));
        }
        let expected = n.checked_mul(words).ok_or("bfl: filter table size overflows")?;
        if out_filters.len() != expected || in_filters.len() != expected {
            return Err(format!(
                "bfl: expected {expected} filter words per direction, got {} out / {} in",
                out_filters.len(),
                in_filters.len()
            ));
        }
        let mut seen = vec![false; n];
        for (v, &p) in post.iter().enumerate() {
            if p == 0 || p as usize > n || seen[(p - 1) as usize] {
                return Err(format!("bfl: post({v}) = {p} is not a 1..={n} permutation"));
            }
            seen[(p - 1) as usize] = true;
            if tree_min[v] == 0 || tree_min[v] > p {
                return Err(format!(
                    "bfl: tree_min({v}) = {} outside 1..=post({v})={p}",
                    tree_min[v]
                ));
            }
        }
        Ok(BflIndex { g, post, tree_min, out_filters, in_filters, words })
    }
}

/// Sequential filter pass: visits `order` front to back, OR-ing each
/// vertex's own hash bit with the (already final) filters of its
/// `neighbors`.
fn fill_filters<'a, N>(
    n: usize,
    words: usize,
    order: &[VertexId],
    neighbors: N,
    hash_bit: &impl Fn(VertexId) -> (usize, u64),
) -> Vec<u64>
where
    N: Fn(VertexId) -> &'a [VertexId],
{
    let mut filters = vec![0u64; n * words];
    for &v in order {
        let v = v as usize;
        let (w, m) = hash_bit(v as VertexId);
        filters[v * words + w] |= m;
        for &u in neighbors(v as VertexId) {
            if u as usize == v {
                continue;
            }
            let (dst, src) = split_rows(&mut filters, v, u as usize, words);
            for (d, s) in dst.iter_mut().zip(src) {
                *d |= *s;
            }
        }
    }
    filters
}

/// Level-scheduled parallel form of [`fill_filters`].
///
/// `order` visits every neighbour before its dependents, so
/// `depth(v) = 1 + max(depth(neighbours))` partitions the vertices into
/// levels of mutually independent rows. Each level computes its rows
/// concurrently, reading only rows finalized by earlier levels. A row is a
/// bitwise OR of its inputs — associative and commutative — so the result
/// is bit-identical to the sequential pass at any thread count.
fn fill_filters_parallel<'a, N>(
    n: usize,
    words: usize,
    order: &[VertexId],
    neighbors: N,
    hash_bit: &(impl Fn(VertexId) -> (usize, u64) + Sync),
    threads: usize,
) -> Vec<u64>
where
    N: Fn(VertexId) -> &'a [VertexId] + Sync,
{
    let mut depth = vec![0u32; n];
    let mut max_depth = 0u32;
    for &v in order {
        let mut d = 0u32;
        for &u in neighbors(v) {
            if u != v {
                d = d.max(depth[u as usize] + 1);
            }
        }
        depth[v as usize] = d;
        max_depth = max_depth.max(d);
    }
    let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); max_depth as usize + 1];
    for &v in order {
        levels[depth[v as usize] as usize].push(v);
    }

    let mut filters = vec![0u64; n * words];
    for level in &levels {
        let rows = gsr_graph::par::map_indexed(threads, level.len(), |i| {
            let v = level[i];
            let mut row = vec![0u64; words];
            let (w, m) = hash_bit(v);
            row[w] |= m;
            for &u in neighbors(v) {
                if u != v {
                    let u = u as usize;
                    for (d, s) in row.iter_mut().zip(&filters[u * words..(u + 1) * words]) {
                        *d |= *s;
                    }
                }
            }
            row
        });
        for (i, row) in rows.into_iter().enumerate() {
            let v = level[i] as usize;
            filters[v * words..(v + 1) * words].copy_from_slice(&row);
        }
    }
    filters
}

/// `a ⊆ b` on bitset rows.
#[inline]
fn subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// Disjoint mutable/shared views of rows `v` and `u` of a filter table.
fn split_rows(table: &mut [u64], v: usize, u: usize, words: usize) -> (&mut [u64], &[u64]) {
    debug_assert_ne!(v, u);
    if v < u {
        let (lo, hi) = table.split_at_mut(u * words);
        (&mut lo[v * words..(v + 1) * words], &hi[..words])
    } else {
        let (lo, hi) = table.split_at_mut(v * words);
        (&mut hi[..words], &lo[u * words..(u + 1) * words])
    }
}

impl Reachability for BflIndex {
    fn reaches(&self, from: VertexId, to: VertexId) -> bool {
        let (f, t) = (from as usize, to as usize);
        if f == t {
            return true;
        }
        let to_post = self.post[t];
        if self.tree_contains(f, to_post) {
            return true;
        }
        // On a DFS forest of a DAG, every edge decreases the post number, so
        // reachability implies post(to) < post(from).
        if to_post >= self.post[f] {
            return false;
        }
        if !self.filters_admit(f, t) {
            return false;
        }
        // Guided DFS with the same cuts, over this thread's reusable
        // traversal buffers (zero allocations in steady state).
        crate::scratch::with_traversal_scratch(|s| {
            s.begin(self.g.num_vertices());
            s.stack.push(from);
            s.mark(from);
            while let Some(v) = s.stack.pop() {
                for &w in self.g.out_neighbors(v) {
                    let wi = w as usize;
                    if w == to {
                        return true;
                    }
                    if s.is_marked(w) || self.post[wi] < to_post {
                        continue;
                    }
                    if self.tree_contains(wi, to_post) {
                        return true;
                    }
                    s.mark(w);
                    if self.filters_admit(wi, t) {
                        s.stack.push(w);
                    }
                }
            }
            false
        })
    }

    fn heap_bytes(&self) -> usize {
        self.g.heap_bytes()
            + self.post.len() * 4
            + self.tree_min.len() * 4
            + self.out_filters.len() * 8
            + self.in_filters.len() * 8
    }

    fn name(&self) -> &'static str {
        "BFL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::reaches_bfs;
    use gsr_graph::graph_from_edges;

    fn check_all_pairs(g: &DiGraph) {
        let idx = BflIndex::build(g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    idx.reaches(u, v),
                    reaches_bfs(g, u, v),
                    "BFL wrong for ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn chain_and_diamond() {
        check_all_pairs(&graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]));
        check_all_pairs(&graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]));
    }

    #[test]
    fn forest_with_cross_edges() {
        check_all_pairs(&graph_from_edges(
            9,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (4, 5), (5, 6), (4, 6), (6, 1), (7, 8)],
        ));
    }

    #[test]
    fn tiny_filters_still_exact() {
        // One word of filter forces collisions; answers must stay exact
        // because the Bloom cut only ever proves *non*-reachability.
        let g = graph_from_edges(
            30,
            &(0..29).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        );
        let idx = BflIndex::build_with(
            &g,
            BflParams { filter_words: 1, seed: 42, ..BflParams::default() },
        );
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(idx.reaches(u, v), u <= v);
            }
        }
    }

    #[test]
    fn subset_test() {
        assert!(subset(&[0b0101], &[0b1101]));
        assert!(!subset(&[0b0101], &[0b0001]));
        assert!(subset(&[0, 0], &[0, 0]));
    }

    #[test]
    fn isolated_vertices() {
        let g = graph_from_edges(3, &[]);
        let idx = BflIndex::build(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(idx.reaches(u, v), u == v);
            }
        }
    }

    #[test]
    fn parallel_build_matches_sequential_exactly() {
        let g = graph_from_edges(
            9,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (4, 5), (5, 6), (4, 6), (6, 1), (7, 8)],
        );
        let seq = BflIndex::build(&g);
        for threads in [2, 4, 8] {
            let par = BflIndex::build_with(&g, BflParams { threads, ..BflParams::default() });
            assert_eq!(seq.out_filters, par.out_filters, "threads = {threads}");
            assert_eq!(seq.in_filters, par.in_filters, "threads = {threads}");
            assert_eq!(seq.post, par.post, "threads = {threads}");
            assert_eq!(seq.tree_min, par.tree_min, "threads = {threads}");
        }
    }

    #[test]
    fn heap_accounting_positive() {
        let g = graph_from_edges(10, &[(0, 1), (1, 2)]);
        let idx = BflIndex::build(&g);
        assert!(idx.heap_bytes() > 10 * 2 * 4 * 8, "filters dominate");
        assert_eq!(idx.name(), "BFL");
    }
}
