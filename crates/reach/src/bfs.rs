//! Online graph traversal and small-graph transitive closures.
//!
//! These are the "no index" baselines: a `GReach` query by BFS costs
//! `O(|V| + |E|)` (Section 7.1), and the full transitive closure is the
//! ground truth the property tests compare every index against.

use crate::Reachability;
use gsr_graph::{DiGraph, VertexId};
use std::collections::VecDeque;

/// Answers one `GReach(from, to)` query by breadth-first search.
pub fn reaches_bfs(g: &DiGraph, from: VertexId, to: VertexId) -> bool {
    if from == to {
        return true;
    }
    let mut visited = vec![false; g.num_vertices()];
    let mut queue = VecDeque::new();
    visited[from as usize] = true;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        for &w in g.out_neighbors(v) {
            if w == to {
                return true;
            }
            if !visited[w as usize] {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    false
}

/// The descendant set of `from` (including `from`) as a boolean vector.
pub fn descendants_bfs(g: &DiGraph, from: VertexId) -> Vec<bool> {
    let mut visited = vec![false; g.num_vertices()];
    let mut queue = VecDeque::new();
    visited[from as usize] = true;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        for &w in g.out_neighbors(v) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    visited
}

/// An index-free [`Reachability`] oracle that traverses the graph per query.
#[derive(Debug, Clone)]
pub struct OnlineBfs<'a> {
    g: &'a DiGraph,
}

impl<'a> OnlineBfs<'a> {
    /// Wraps a graph; no preprocessing is performed.
    pub fn new(g: &'a DiGraph) -> Self {
        OnlineBfs { g }
    }
}

impl Reachability for OnlineBfs<'_> {
    fn reaches(&self, from: VertexId, to: VertexId) -> bool {
        reaches_bfs(self.g, from, to)
    }

    fn heap_bytes(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "BFS"
    }
}

/// The full transitive closure as a dense bit matrix. Quadratic memory —
/// only for tests and tiny graphs.
#[derive(Debug, Clone)]
pub struct TransitiveClosure {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl TransitiveClosure {
    /// Computes the closure of `g` (reflexive) by repeated BFS.
    pub fn of(g: &DiGraph) -> Self {
        let n = g.num_vertices();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        for v in 0..n as VertexId {
            let desc = descendants_bfs(g, v);
            let row = &mut bits[v as usize * words_per_row..(v as usize + 1) * words_per_row];
            for (u, &reached) in desc.iter().enumerate() {
                if reached {
                    row[u / 64] |= 1u64 << (u % 64);
                }
            }
        }
        TransitiveClosure { n, words_per_row, bits }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of reachable pairs (including the `n` reflexive pairs).
    pub fn num_pairs(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

impl Reachability for TransitiveClosure {
    fn reaches(&self, from: VertexId, to: VertexId) -> bool {
        let word = self.bits[from as usize * self.words_per_row + to as usize / 64];
        word & (1u64 << (to % 64)) != 0
    }

    fn heap_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    fn name(&self) -> &'static str {
        "TC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_graph::graph_from_edges;

    #[test]
    fn bfs_reaches_along_paths() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2)]);
        assert!(reaches_bfs(&g, 0, 2));
        assert!(reaches_bfs(&g, 0, 0), "reachability is reflexive");
        assert!(!reaches_bfs(&g, 2, 0));
        assert!(!reaches_bfs(&g, 0, 3));
    }

    #[test]
    fn descendants_include_self() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2)]);
        let d = descendants_bfs(&g, 1);
        assert_eq!(d, vec![false, true, true, false]);
    }

    #[test]
    fn closure_matches_bfs() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (3, 1), (4, 5), (5, 4)]);
        let tc = TransitiveClosure::of(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(tc.reaches(u, v), reaches_bfs(&g, u, v));
            }
        }
        // Pairs: reflexive 6 + (0,1),(0,2),(1,2),(3,1),(3,2),(4,5),(5,4).
        assert_eq!(tc.num_pairs(), 13);
    }

    #[test]
    fn online_oracle_has_no_index() {
        let g = graph_from_edges(3, &[(0, 1)]);
        let o = OnlineBfs::new(&g);
        assert!(o.reaches(0, 1));
        assert_eq!(o.heap_bytes(), 0);
        assert_eq!(o.name(), "BFS");
    }

    #[test]
    fn closure_on_wide_graph_crosses_word_boundaries() {
        // 70 vertices forces two u64 words per row.
        let edges: Vec<(u32, u32)> = (0..69).map(|i| (i, i + 1)).collect();
        let g = graph_from_edges(70, &edges);
        let tc = TransitiveClosure::of(&g);
        assert!(tc.reaches(0, 69));
        assert!(!tc.reaches(69, 0));
        assert_eq!(tc.num_pairs(), 70 * 71 / 2);
    }
}
