//! Delta-compressed storage for sorted label sets and monotone arrays.
//!
//! Post-order interval labels are sorted and disjoint per vertex, and the
//! per-post point offsets of SocReach are monotone — both are textbook
//! delta-compression targets (FERRARI makes the same observation for
//! reachability labels under size budgets). Two containers live here:
//!
//! * [`CompactLabels`] — an [`IntervalLabeling`]'s label sets re-encoded as
//!   per-vertex LEB128 varint streams of `(gap, length)` pairs. Methods
//!   that only ever *scan* a vertex's labels in order (SocReach, 3DReach)
//!   trade the 8-byte-per-interval array for ~2–4 bytes per interval with
//!   no loss of information; decoding is a forward pass that allocates
//!   nothing.
//! * [`DeltaArray`] — a monotone `u32` array stored as anchored varint
//!   deltas (one absolute anchor every [`DeltaArray::BLOCK`] entries), with
//!   `O(BLOCK)` random access and an amortized-`O(1)` sequential cursor.
//!
//! Both validate untrusted input in their `from_parts`/`from_sorted`
//! constructors and never panic on malformed bytes.

use crate::interval::{Interval, IntervalLabeling};
use gsr_graph::{Col, HeapBytes, VertexId};

/// Appends `v` to `out` as an LEB128 varint (7 payload bits per byte,
/// high bit = continuation). At most 5 bytes for a `u32`.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `bytes` at `*pos`, advancing `*pos` past
/// it. Returns `None` on truncation or on a value that overflows `u32` —
/// never panics, so hostile streams are safe to feed.
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut acc: u32 = 0;
    let mut shift: u32 = 0;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        let payload = (byte & 0x7f) as u32;
        if shift == 28 && payload > 0x0f {
            return None; // bits 32.. set: overflows u32
        }
        if shift > 28 {
            return None; // sixth byte: over-long even if zero
        }
        acc |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(acc);
        }
        shift += 7;
    }
}

/// An [`IntervalLabeling`]'s label sets, delta-compressed.
///
/// Per vertex the stream encodes `varint(lo_1), varint(hi_1 - lo_1)`, then
/// for every further interval `varint(lo_k - hi_{k-1}), varint(hi_k - lo_k)`.
/// Gaps are ≥ 1 because label sets are sorted and disjoint. The stream
/// carries exactly the information of [`IntervalLabeling::intervals`]; the
/// post-order permutation itself is *not* stored — methods that need
/// `post(v)` or `vertex_of_post` keep those arrays separately (or, like
/// 3DReach, bake the post numbers into their spatial index and need no
/// table at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactLabels {
    /// Largest valid post-order number (`n` for a labeling of `n` posts).
    max_post: u32,
    /// CSR offsets into `bytes`: vertex `v`'s stream is
    /// `bytes[offsets[v] as usize .. offsets[v + 1] as usize]`.
    offsets: Col<u32>,
    /// Concatenated per-vertex varint streams.
    bytes: Col<u8>,
}

impl CompactLabels {
    /// Compresses the label sets of `labeling`. Lossless: decoding yields
    /// the exact interval sequence of every vertex.
    pub fn from_labeling(labeling: &IntervalLabeling) -> Self {
        let n = labeling.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut bytes = Vec::new();
        offsets.push(0u32);
        for v in 0..n as VertexId {
            let mut prev_hi = 0u32;
            for (k, iv) in labeling.intervals(v).iter().enumerate() {
                let gap = if k == 0 { iv.lo } else { iv.lo - prev_hi };
                write_varint(&mut bytes, gap);
                write_varint(&mut bytes, iv.hi - iv.lo);
                prev_hi = iv.hi;
            }
            debug_assert!(bytes.len() <= u32::MAX as usize, "label stream exceeds u32 offsets");
            offsets.push(bytes.len() as u32);
        }
        CompactLabels { max_post: n as u32, offsets: offsets.into(), bytes: bytes.into() }
    }

    /// Number of vertices with a label set.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Largest valid post-order number.
    #[inline]
    pub fn max_post(&self) -> u32 {
        self.max_post
    }

    /// The label set `L(v)` as a forward, allocation-free iterator of
    /// sorted, pairwise-disjoint intervals.
    #[inline]
    pub fn intervals(&self, v: VertexId) -> LabelIter<'_> {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        LabelIter { bytes: &self.bytes[..hi], pos: lo, prev_hi: 0, first: true }
    }

    /// Whether some label of `v` contains post-order number `p` — a forward
    /// scan with early exit once the stream passes `p`.
    #[inline]
    pub fn covers_post(&self, v: VertexId, p: u32) -> bool {
        for iv in self.intervals(v) {
            if iv.lo > p {
                return false;
            }
            if iv.hi >= p {
                return true;
            }
        }
        false
    }

    /// Number of intervals in `L(v)`.
    pub fn num_intervals(&self, v: VertexId) -> usize {
        self.intervals(v).count()
    }

    /// Number of descendants of `v` (including `v`): the total post count
    /// covered by `L(v)`.
    pub fn num_descendants(&self, v: VertexId) -> usize {
        self.intervals(v).map(|iv| iv.len() as usize).sum()
    }

    /// Total number of labels over all vertices.
    pub fn num_labels(&self) -> usize {
        (0..self.num_vertices() as VertexId).map(|v| self.num_intervals(v)).sum()
    }

    /// Borrowed decomposition `(max_post, offsets, bytes)` for snapshot
    /// encoding; [`CompactLabels::from_parts`] inverts it.
    pub fn parts(&self) -> (u32, &[u32], &[u8]) {
        (self.max_post, &self.offsets, &self.bytes)
    }

    /// Reassembles from the pieces of [`CompactLabels::parts`]. The input
    /// is untrusted: the offsets must form a CSR over `bytes` and every
    /// per-vertex stream must decode to a sorted, disjoint interval set
    /// inside `1..=max_post`, consuming its byte range exactly.
    pub fn from_parts(
        max_post: u32,
        offsets: impl Into<Col<u32>>,
        bytes: impl Into<Col<u8>>,
    ) -> Result<Self, String> {
        let (offsets, bytes) = (offsets.into(), bytes.into());
        if offsets.is_empty() {
            return Err("compact labels: empty offset array".into());
        }
        if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("compact labels: offsets not monotone from 0".into());
        }
        if offsets[offsets.len() - 1] as usize != bytes.len() {
            return Err(format!(
                "compact labels: offsets claim {} stream bytes but {} present",
                offsets[offsets.len() - 1],
                bytes.len()
            ));
        }
        for (v, w) in offsets.windows(2).enumerate() {
            let end = w[1] as usize;
            let mut pos = w[0] as usize;
            let mut prev_hi: u64 = 0;
            while pos < end {
                let gap = read_varint(&bytes[..end], &mut pos)
                    .ok_or_else(|| format!("compact labels: vertex {v} stream truncated"))?;
                let span = read_varint(&bytes[..end], &mut pos)
                    .ok_or_else(|| format!("compact labels: vertex {v} stream truncated"))?;
                if gap == 0 {
                    return Err(format!(
                        "compact labels: vertex {v} has zero gap (overlapping or zero lo)"
                    ));
                }
                let lo = prev_hi + gap as u64;
                let hi = lo + span as u64;
                if hi > max_post as u64 {
                    return Err(format!(
                        "compact labels: vertex {v} interval ends at {hi} > max post {max_post}"
                    ));
                }
                prev_hi = hi;
            }
        }
        Ok(CompactLabels { max_post, offsets, bytes })
    }
}

impl HeapBytes for CompactLabels {
    fn heap_bytes(&self) -> usize {
        self.offsets.heap_bytes() + self.bytes.heap_bytes()
    }
}

/// Forward iterator over one vertex's compressed label stream.
#[derive(Debug, Clone)]
pub struct LabelIter<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev_hi: u32,
    first: bool,
}

impl Iterator for LabelIter<'_> {
    type Item = Interval;

    #[inline]
    fn next(&mut self) -> Option<Interval> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        // Streams are validated at construction, so decoding cannot fail;
        // the `?` keeps the path panic-free regardless.
        let gap = read_varint(self.bytes, &mut self.pos)?;
        let span = read_varint(self.bytes, &mut self.pos)?;
        let lo = if self.first { gap } else { self.prev_hi + gap };
        let hi = lo + span;
        self.prev_hi = hi;
        self.first = false;
        Some(Interval::new(lo, hi))
    }
}

/// A monotone (non-decreasing) `u32` array stored as anchored varint
/// deltas: every [`DeltaArray::BLOCK`]-th value is stored verbatim in
/// `anchors`, the rest as varint gaps from their predecessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaArray {
    len: usize,
    /// `anchors[b]` = value at index `b * BLOCK`.
    anchors: Col<u32>,
    /// `starts[b]` = offset into `bytes` of block `b`'s delta stream.
    starts: Col<u32>,
    /// Concatenated varint deltas for the non-anchor positions.
    bytes: Col<u8>,
}

impl Default for DeltaArray {
    /// An empty array.
    fn default() -> Self {
        DeltaArray { len: 0, anchors: Col::default(), starts: Col::default(), bytes: Col::default() }
    }
}

impl DeltaArray {
    /// Entries per absolute anchor: random access decodes at most
    /// `BLOCK - 1` deltas.
    pub const BLOCK: usize = 32;

    /// Compresses a monotone array. Returns a typed error (never panics)
    /// when the input decreases anywhere — `from_sorted` doubles as the
    /// validation step for untrusted snapshot payloads.
    pub fn from_sorted(values: &[u32]) -> Result<Self, String> {
        if let Some(i) = values.windows(2).position(|w| w[0] > w[1]) {
            return Err(format!(
                "delta array: values decrease at index {i} ({} -> {})",
                values[i],
                values[i + 1]
            ));
        }
        let blocks = values.len().div_ceil(Self::BLOCK);
        let mut anchors = Vec::with_capacity(blocks);
        let mut starts = Vec::with_capacity(blocks);
        let mut bytes = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if i % Self::BLOCK == 0 {
                anchors.push(v);
                debug_assert!(bytes.len() <= u32::MAX as usize);
                starts.push(bytes.len() as u32);
            } else {
                write_varint(&mut bytes, v - values[i - 1]);
            }
        }
        Ok(DeltaArray {
            len: values.len(),
            anchors: anchors.into(),
            starts: starts.into(),
            bytes: bytes.into(),
        })
    }

    /// The raw columns `(len, anchors, starts, bytes)` for snapshot
    /// encoding; [`DeltaArray::from_cols`] inverts it. `len` must be
    /// persisted explicitly — it is not derivable from the columns (the last
    /// block may be partial).
    pub fn cols(&self) -> (usize, &[u32], &[u32], &[u8]) {
        (self.len, &self.anchors, &self.starts, &self.bytes)
    }

    /// Reassembles a compressed array directly from its columns — the v3
    /// zero-copy load path, which must not decompress-and-recompress the
    /// way `to_vec()` + [`DeltaArray::from_sorted`] would.
    ///
    /// The input is untrusted. Validation decodes every block's stream once
    /// (allocation-free): block counts must match `len`, `starts` must
    /// partition `bytes` exactly, every varint must be well-formed, running
    /// values must stay monotone within `u32`, and each block's anchor must
    /// not decrease relative to the previous block's last value — exactly
    /// the invariants [`DeltaArray::from_sorted`] establishes.
    pub fn from_cols(
        len: usize,
        anchors: impl Into<Col<u32>>,
        starts: impl Into<Col<u32>>,
        bytes: impl Into<Col<u8>>,
    ) -> Result<Self, String> {
        let (anchors, starts) = (anchors.into(), starts.into());
        let bytes: Col<u8> = bytes.into();
        let blocks = len.div_ceil(Self::BLOCK);
        if anchors.len() != blocks || starts.len() != blocks {
            return Err(format!(
                "delta array: {len} entries imply {blocks} blocks, got {} anchors / {} starts",
                anchors.len(),
                starts.len()
            ));
        }
        if blocks == 0 {
            if !bytes.is_empty() {
                return Err(format!("delta array: empty array with {} stream bytes", bytes.len()));
            }
            return Ok(DeltaArray { len, anchors, starts, bytes });
        }
        if starts[0] != 0 {
            return Err(format!("delta array: starts[0] = {}, expected 0", starts[0]));
        }
        let mut prev_last: u64 = 0;
        for b in 0..blocks {
            let begin = starts[b] as usize;
            let end = if b + 1 < blocks { starts[b + 1] as usize } else { bytes.len() };
            if begin > end || end > bytes.len() {
                return Err(format!("delta array: block {b} stream [{begin}, {end}) malformed"));
            }
            let anchor = anchors[b] as u64;
            if b > 0 && anchor < prev_last {
                return Err(format!(
                    "delta array: anchor {anchor} of block {b} decreases below {prev_last}"
                ));
            }
            let in_block = (len - b * Self::BLOCK).min(Self::BLOCK);
            let mut value = anchor;
            let mut pos = begin;
            for _ in 1..in_block {
                let delta = read_varint(&bytes[..end], &mut pos)
                    .ok_or_else(|| format!("delta array: block {b} stream truncated"))?;
                value += delta as u64;
                if value > u32::MAX as u64 {
                    return Err(format!("delta array: block {b} overflows u32"));
                }
            }
            if pos != end {
                return Err(format!(
                    "delta array: block {b} stream has {} trailing bytes",
                    end - pos
                ));
            }
            prev_last = value;
        }
        Ok(DeltaArray { len, anchors, starts, bytes })
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value at `i`, decoding at most `BLOCK - 1` deltas. Panics when
    /// `i >= len()`, like slice indexing.
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.len, "delta array index {i} out of range {}", self.len);
        let block = i / Self::BLOCK;
        let mut value = self.anchors[block];
        let mut pos = self.starts[block] as usize;
        for _ in 0..i % Self::BLOCK {
            // Encoded by from_sorted, so the stream is well-formed; the
            // unwrap_or keeps the path panic-free for belt and braces.
            value += read_varint(&self.bytes, &mut pos).unwrap_or(0);
        }
        value
    }

    /// Sequential cursor over `values[start..]`, amortized `O(1)` per step
    /// and allocation-free — the shape the per-post scan of SocReach needs.
    /// A mid-block start pays one `O(BLOCK)` seek here; every subsequent
    /// step decodes a single delta.
    pub fn iter_from(&self, start: usize) -> DeltaIter<'_> {
        let mut value = 0u32;
        let mut pos = 0usize;
        if start < self.len && !start.is_multiple_of(Self::BLOCK) {
            // Seed the cursor with values[start - 1] and leave `pos` at the
            // delta for `start`.
            let block = start / Self::BLOCK;
            value = self.anchors[block];
            pos = self.starts[block] as usize;
            for _ in 0..(start % Self::BLOCK) - 1 {
                value += read_varint(&self.bytes, &mut pos).unwrap_or(0);
            }
        }
        DeltaIter { array: self, index: start, value, pos }
    }

    /// Decompresses into a plain vector (snapshot encoding).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter_from(0).collect()
    }
}

impl HeapBytes for DeltaArray {
    fn heap_bytes(&self) -> usize {
        self.anchors.heap_bytes() + self.starts.heap_bytes() + self.bytes.heap_bytes()
    }
}

/// Sequential cursor produced by [`DeltaArray::iter_from`]. Invariant
/// between calls: `value` holds `values[index - 1]` and `pos` points at the
/// delta for `index` whenever `index` is not an anchor position (anchors
/// reset both).
#[derive(Debug, Clone)]
pub struct DeltaIter<'a> {
    array: &'a DeltaArray,
    index: usize,
    value: u32,
    pos: usize,
}

impl Iterator for DeltaIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.index >= self.array.len {
            return None;
        }
        if self.index.is_multiple_of(DeltaArray::BLOCK) {
            let block = self.index / DeltaArray::BLOCK;
            self.value = self.array.anchors[block];
            self.pos = self.array.starts[block] as usize;
        } else {
            self.value += read_varint(&self.array.bytes, &mut self.pos).unwrap_or(0);
        }
        self.index += 1;
        Some(self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_graph::graph_from_edges;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u32, 1, 127, 128, 16383, 16384, u32::MAX - 1, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        // Truncated continuation.
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None);
        // Overflowing fifth byte (bits 32.. set).
        let mut pos = 0;
        assert_eq!(read_varint(&[0xff, 0xff, 0xff, 0xff, 0x7f], &mut pos), None);
        // Over-long sixth byte.
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x00], &mut pos), None);
    }

    fn labeling() -> IntervalLabeling {
        // The paper's condensed example graph exercises multi-interval sets.
        let g = graph_from_edges(
            12,
            &[
                (0, 1), (0, 3), (0, 9), (1, 4), (1, 11), (4, 5), (9, 6), (9, 7),
                (2, 8), (2, 10), (11, 7), (1, 3), (6, 8), (8, 5), (2, 3),
            ],
        );
        IntervalLabeling::build(&g)
    }

    #[test]
    fn compact_labels_decode_exactly() {
        let l = labeling();
        let c = CompactLabels::from_labeling(&l);
        assert_eq!(c.num_vertices(), l.num_vertices());
        assert_eq!(c.num_labels(), l.num_labels());
        for v in 0..l.num_vertices() as VertexId {
            let decoded: Vec<Interval> = c.intervals(v).collect();
            assert_eq!(decoded.as_slice(), l.intervals(v), "vertex {v}");
            assert_eq!(c.num_descendants(v), l.num_descendants(v));
            for p in 1..=l.num_vertices() as u32 {
                assert_eq!(c.covers_post(v, p), l.covers_post(v, p), "vertex {v} post {p}");
            }
        }
        // The compressed form must not be larger than the interval array.
        assert!(c.heap_bytes() <= l.heap_bytes());
    }

    #[test]
    fn compact_labels_parts_round_trip_and_reject_corruption() {
        let c = CompactLabels::from_labeling(&labeling());
        let (max_post, offsets, bytes) = c.parts();
        let back = CompactLabels::from_parts(max_post, offsets.to_vec(), bytes.to_vec())
            .expect("valid parts reassemble");
        assert_eq!(back, c);

        // Truncated stream.
        let mut short = bytes.to_vec();
        short.pop();
        assert!(CompactLabels::from_parts(max_post, offsets.to_vec(), short).is_err());
        // Offsets that disagree with the byte count.
        assert!(CompactLabels::from_parts(max_post, vec![0, 1], bytes.to_vec()).is_err());
        // An interval escaping the post range.
        assert!(CompactLabels::from_parts(0, offsets.to_vec(), bytes.to_vec()).is_err());
        // Zero gap (overlap).
        let mut zero_gap = Vec::new();
        write_varint(&mut zero_gap, 0);
        write_varint(&mut zero_gap, 1);
        let end = zero_gap.len() as u32;
        assert!(CompactLabels::from_parts(5, vec![0, end], zero_gap).is_err());
    }

    #[test]
    fn delta_array_random_and_sequential_access() {
        let values: Vec<u32> =
            (0..1000u32).scan(0u32, |acc, i| { *acc += i % 7; Some(*acc) }).collect();
        let d = DeltaArray::from_sorted(&values).unwrap();
        assert_eq!(d.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(d.get(i), v, "get({i})");
        }
        for start in [0usize, 1, 31, 32, 33, 500, 999] {
            let tail: Vec<u32> = d.iter_from(start).collect();
            assert_eq!(tail.as_slice(), &values[start..], "iter_from({start})");
        }
        assert_eq!(d.to_vec(), values);
        assert!(d.heap_bytes() < values.len() * 4, "compression must pay off on small deltas");
    }

    #[test]
    fn delta_array_cols_round_trip_and_reject_corruption() {
        let values: Vec<u32> =
            (0..100u32).scan(0u32, |acc, i| { *acc += i % 5; Some(*acc) }).collect();
        let d = DeltaArray::from_sorted(&values).unwrap();
        let (len, anchors, starts, bytes) = d.cols();
        let back =
            DeltaArray::from_cols(len, anchors.to_vec(), starts.to_vec(), bytes.to_vec())
                .expect("faithful columns reassemble");
        assert_eq!(back, d);
        assert_eq!(back.to_vec(), values);

        // Wrong length: block count disagrees with the columns.
        assert!(DeltaArray::from_cols(
            len + DeltaArray::BLOCK,
            anchors.to_vec(),
            starts.to_vec(),
            bytes.to_vec()
        )
        .is_err());
        // Truncated stream.
        assert!(DeltaArray::from_cols(
            len,
            anchors.to_vec(),
            starts.to_vec(),
            bytes[..bytes.len() - 1].to_vec()
        )
        .is_err());
        // A decreasing anchor breaks monotonicity.
        let mut bad_anchor = anchors.to_vec();
        bad_anchor[1] = 0;
        assert!(
            DeltaArray::from_cols(len, bad_anchor, starts.to_vec(), bytes.to_vec()).is_err()
        );
        // Empty arrays must carry no stream bytes.
        assert!(DeltaArray::from_cols(0, vec![], vec![], vec![1u8]).is_err());
        assert!(DeltaArray::from_cols(0, vec![], vec![], vec![]).is_ok());
    }

    #[test]
    fn delta_array_empty_and_rejects_decreasing() {
        let d = DeltaArray::from_sorted(&[]).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.iter_from(0).count(), 0);
        assert!(DeltaArray::from_sorted(&[3, 2]).is_err());
    }
}
