//! Incremental maintenance of the interval labeling (future work of the
//! paper's Section 8: "how our approach can efficiently handle updates in
//! the network").
//!
//! [`DynamicIntervalLabeling`] supports appending vertices and inserting
//! DAG-preserving edges after the initial build. Post-order numbers are
//! *not* renumbered on update: a new vertex receives the next free number,
//! and an inserted edge `(u, v)` propagates `L(v)` to `u` and to everything
//! that currently reaches `u` (found through reverse adjacency). Labels
//! therefore stay sound and complete, at the cost of gradually losing the
//! compactness a fresh DFS numbering would give — the same trade-off the
//! paper anticipates for gap-based updatable numberings (Section 4.1).

use crate::interval::{coalesce, Interval, IntervalLabeling};
use crate::Reachability;
use gsr_graph::{DiGraph, VertexId};

/// An updatable interval labeling over an adjacency-list DAG.
///
/// ```
/// use gsr_reach::dynamic::DynamicIntervalLabeling;
/// use gsr_reach::Reachability;
///
/// let mut labels = DynamicIntervalLabeling::new();
/// let a = labels.add_vertex();
/// let b = labels.add_vertex();
/// let c = labels.add_vertex();
/// labels.add_edge(a, b).unwrap();
/// labels.add_edge(b, c).unwrap();
/// assert!(labels.reaches(a, c));
/// assert!(labels.add_edge(c, a).is_err(), "cycles are rejected");
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicIntervalLabeling {
    out: Vec<Vec<VertexId>>,
    rin: Vec<Vec<VertexId>>,
    sets: Vec<Vec<Interval>>,
    post: Vec<u32>,
    next_post: u32,
}

/// Error returned when an update would break the DAG invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleError {
    /// Source of the rejected edge.
    pub from: VertexId,
    /// Target of the rejected edge.
    pub to: VertexId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "edge ({}, {}) would create a cycle", self.from, self.to)
    }
}

impl std::error::Error for CycleError {}

impl DynamicIntervalLabeling {
    /// Seeds the structure from a static labeling of `g`.
    pub fn from_graph(g: &DiGraph) -> Self {
        let labeling = IntervalLabeling::build(g);
        let n = g.num_vertices();
        let out: Vec<Vec<VertexId>> = g.vertices().map(|v| g.out_neighbors(v).to_vec()).collect();
        let rin: Vec<Vec<VertexId>> = g.vertices().map(|v| g.in_neighbors(v).to_vec()).collect();
        let sets: Vec<Vec<Interval>> =
            g.vertices().map(|v| labeling.intervals(v).to_vec()).collect();
        let post: Vec<u32> = g.vertices().map(|v| labeling.post(v)).collect();
        DynamicIntervalLabeling { out, rin, sets, post, next_post: n as u32 + 1 }
    }

    /// An empty structure (no vertices).
    pub fn new() -> Self {
        DynamicIntervalLabeling { next_post: 1, ..Default::default() }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Appends an isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = self.out.len() as VertexId;
        self.out.push(Vec::new());
        self.rin.push(Vec::new());
        self.sets.push(vec![Interval::point(self.next_post)]);
        self.post.push(self.next_post);
        self.next_post += 1;
        v
    }

    /// Inserts edge `(from, to)`. Rejects edges that would create a cycle
    /// (including self-loops); duplicate edges are no-ops.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) -> Result<(), CycleError> {
        if from == to || self.reaches(to, from) {
            return Err(CycleError { from, to });
        }
        if self.out[from as usize].contains(&to) {
            return Ok(());
        }
        self.out[from as usize].push(to);
        self.rin[to as usize].push(from);

        // Propagate L(to) into every vertex that reaches `from` (including
        // `from` itself), via reverse BFS. Vertices whose labels already
        // cover L(to) stop the propagation early.
        let addition = self.sets[to as usize].clone();
        let mut visited = vec![false; self.out.len()];
        let mut stack = vec![from];
        visited[from as usize] = true;
        while let Some(v) = stack.pop() {
            if !self.union_labels(v, &addition) {
                // Already covered. The invariant "L(w) ⊇ L(v) for every edge
                // (w, v)" then guarantees every ancestor is covered too, so
                // the walk can stop here.
                continue;
            }
            for &w in &self.rin[v as usize].clone() {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        Ok(())
    }

    /// Unions `add` into `L(v)`; returns whether anything changed.
    fn union_labels(&mut self, v: VertexId, add: &[Interval]) -> bool {
        let set = &mut self.sets[v as usize];
        let before = set.clone();
        set.extend_from_slice(add);
        set.sort_unstable();
        coalesce(set, true);
        *set != before
    }

    /// The current label set of `v`.
    pub fn intervals(&self, v: VertexId) -> &[Interval] {
        &self.sets[v as usize]
    }

    /// The post-order number assigned to `v`.
    pub fn post(&self, v: VertexId) -> u32 {
        self.post[v as usize]
    }
}

impl Reachability for DynamicIntervalLabeling {
    fn reaches(&self, from: VertexId, to: VertexId) -> bool {
        let p = self.post[to as usize];
        let labels = &self.sets[from as usize];
        match labels.binary_search_by(|iv| iv.lo.cmp(&p)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => labels[i - 1].contains(p),
        }
    }

    fn heap_bytes(&self) -> usize {
        let intervals: usize = self.sets.iter().map(|s| s.len()).sum();
        let adjacency: usize = self.out.iter().chain(&self.rin).map(|a| a.len() * 4).sum();
        intervals * std::mem::size_of::<Interval>() + adjacency + self.post.len() * 4
    }

    fn name(&self) -> &'static str {
        "DYN-INT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::reaches_bfs;
    use gsr_graph::{graph_from_edges, GraphBuilder};

    #[test]
    fn incremental_matches_static() {
        // Build the same DAG once statically and once edge by edge.
        let edges = [(0u32, 1u32), (0, 2), (1, 3), (2, 3), (3, 4), (5, 2)];
        let g = graph_from_edges(6, &edges);

        let mut dynamic = DynamicIntervalLabeling::new();
        for _ in 0..6 {
            dynamic.add_vertex();
        }
        for (u, v) in edges {
            dynamic.add_edge(u, v).unwrap();
        }
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(dynamic.reaches(u, v), reaches_bfs(&g, u, v), "pair ({u}, {v})");
            }
        }
    }

    #[test]
    fn seeded_from_graph_then_extended() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2)]);
        let mut dynamic = DynamicIntervalLabeling::from_graph(&g);
        assert!(dynamic.reaches(0, 2));
        assert!(!dynamic.reaches(0, 3));
        dynamic.add_edge(2, 3).unwrap();
        assert!(dynamic.reaches(0, 3), "propagation must reach transitive ancestors");
        assert!(dynamic.reaches(1, 3));
        let v = dynamic.add_vertex();
        assert!(!dynamic.reaches(0, v));
        dynamic.add_edge(3, v).unwrap();
        assert!(dynamic.reaches(0, v));
    }

    #[test]
    fn cycle_rejection() {
        let mut dynamic = DynamicIntervalLabeling::new();
        let a = dynamic.add_vertex();
        let b = dynamic.add_vertex();
        dynamic.add_edge(a, b).unwrap();
        assert_eq!(dynamic.add_edge(b, a), Err(CycleError { from: b, to: a }));
        assert_eq!(dynamic.add_edge(a, a), Err(CycleError { from: a, to: a }));
        // The failed insert must not have corrupted anything.
        assert!(dynamic.reaches(a, b));
        assert!(!dynamic.reaches(b, a));
    }

    #[test]
    fn duplicate_edges_are_noops() {
        let mut dynamic = DynamicIntervalLabeling::new();
        let a = dynamic.add_vertex();
        let b = dynamic.add_vertex();
        dynamic.add_edge(a, b).unwrap();
        let labels_before = dynamic.intervals(a).to_vec();
        dynamic.add_edge(a, b).unwrap();
        assert_eq!(dynamic.intervals(a), labels_before.as_slice());
    }

    #[test]
    fn random_insertion_order_stays_correct() {
        // Insert a batch of DAG edges in a scrambled order and compare
        // against BFS on the final graph.
        let n = 15u32;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut x = 11u64;
        for u in 0..n {
            for v in (u + 1)..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if x.is_multiple_of(5) {
                    edges.push((u, v));
                }
            }
        }
        // Scramble deterministically.
        let len = edges.len();
        for i in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            edges.swap(i, (x as usize) % len);
        }

        let mut dynamic = DynamicIntervalLabeling::new();
        for _ in 0..n {
            dynamic.add_vertex();
        }
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v) in &edges {
            dynamic.add_edge(u, v).unwrap();
            b.add_edge(u, v);
        }
        let g = b.build();
        for u in 0..n {
            for v in 0..n {
                assert_eq!(dynamic.reaches(u, v), reaches_bfs(&g, u, v), "pair ({u}, {v})");
            }
        }
    }
}
