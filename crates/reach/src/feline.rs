//! FELINE: reachability through two topological coordinates.
//!
//! A from-scratch implementation of the FELINE index (Veloso et al.),
//! the second SpaReach back-end evaluated by the original GeoReach paper
//! ("SpaReach-Feline", Section 2.2.1). Every vertex receives a coordinate
//! pair `(x, y)` from two different topological orders, chosen so that
//! `u` reaches `v` only if `x(u) < x(v)` **and** `y(u) < y(v)`; a violated
//! coordinate refutes reachability immediately (the *dominance* negative
//! cut, covering "as many unreachable pairs as possible"). Inconclusive
//! pairs fall back to a DFS guided by the same dominance prune plus a
//! DFS-subtree positive cut.
//!
//! * `x` is a plain Kahn topological order.
//! * `y` is a second Kahn order that, among the ready vertices, always
//!   picks the one with the *largest* `x` — the heuristic of the FELINE
//!   paper's "counter-ordered" second dimension, which maximizes the
//!   number of dominance-refuted pairs.

use crate::Reachability;
use gsr_graph::dfs::{SpanningForest, NO_PARENT};
use gsr_graph::{DiGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The FELINE reachability index.
///
/// ```
/// use gsr_graph::graph_from_edges;
/// use gsr_reach::feline::FelineIndex;
/// use gsr_reach::Reachability;
///
/// let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
/// let idx = FelineIndex::build(&g);
/// assert!(idx.reaches(0, 1));
/// // Cross-chain pairs are refuted by the coordinate dominance test alone.
/// assert!(!idx.reaches(0, 3));
/// ```
#[derive(Debug, Clone)]
pub struct FelineIndex {
    g: DiGraph,
    /// First topological coordinate.
    x: Vec<u32>,
    /// Second (counter-ordered) topological coordinate.
    y: Vec<u32>,
    /// DFS post-order and subtree minimum, the positive cut.
    post: Vec<u32>,
    tree_min: Vec<u32>,
}

impl FelineIndex {
    /// Builds the index over a DAG.
    pub fn build(g: &DiGraph) -> Self {
        let n = g.num_vertices();

        // First coordinate: Kahn by ascending vertex id.
        let x = kahn_order(g, |v: VertexId| Reverse(v));
        // Second coordinate: Kahn preferring, among the ready vertices, the
        // one with the largest first coordinate.
        let y = kahn_order(g, |v: VertexId| x[v as usize]);

        // Positive cut: DFS subtree intervals (as in BFL).
        let forest = SpanningForest::of(g);
        let mut subtree_size = vec![1u32; n];
        for p in 1..=n as u32 {
            let v = forest.post_to_vertex[(p - 1) as usize];
            let parent = forest.parent[v as usize];
            if parent != NO_PARENT {
                subtree_size[parent as usize] += subtree_size[v as usize];
            }
        }
        let tree_min: Vec<u32> =
            (0..n).map(|v| forest.post[v] - subtree_size[v] + 1).collect();

        FelineIndex { g: g.clone(), x, y, post: forest.post, tree_min }
    }

    /// The coordinate pair of `v` (exposed for stats and tests).
    pub fn coordinates(&self, v: VertexId) -> (u32, u32) {
        (self.x[v as usize], self.y[v as usize])
    }

    /// The dominance test: `false` proves `from` cannot reach `to`.
    #[inline]
    fn dominates(&self, from: usize, to: usize) -> bool {
        self.x[from] <= self.x[to] && self.y[from] <= self.y[to]
    }

    #[inline]
    fn tree_contains(&self, from: usize, to_post: u32) -> bool {
        self.tree_min[from] <= to_post && to_post <= self.post[from]
    }

    /// Fraction of *unreachable* ordered pairs refuted by dominance alone
    /// (no DFS), measured exactly — the quality metric of the FELINE
    /// heuristic. Quadratic; only for tests and small graphs.
    pub fn dominance_cut_rate(&self) -> f64 {
        let n = self.g.num_vertices();
        let mut unreachable = 0usize;
        let mut cut = 0usize;
        for u in 0..n as VertexId {
            let reach = crate::bfs::descendants_bfs(&self.g, u);
            for v in 0..n as VertexId {
                if u != v && !reach[v as usize] {
                    unreachable += 1;
                    if !self.dominates(u as usize, v as usize) {
                        cut += 1;
                    }
                }
            }
        }
        if unreachable == 0 {
            1.0
        } else {
            cut as f64 / unreachable as f64
        }
    }
}

/// Kahn's algorithm where ties among ready vertices are broken by a
/// max-heap over `key`. Returns the position of each vertex in the order.
fn kahn_order<K: Ord>(g: &DiGraph, key: impl Fn(VertexId) -> K) -> Vec<u32> {
    let n = g.num_vertices();
    let mut in_deg: Vec<u32> = (0..n).map(|v| g.in_degree(v as VertexId) as u32).collect();
    let mut heap: BinaryHeap<(K, VertexId)> = (0..n as VertexId)
        .filter(|&v| in_deg[v as usize] == 0)
        .map(|v| (key(v), v))
        .collect();
    let mut position = vec![0u32; n];
    let mut emitted = 0u32;
    while let Some((_, v)) = heap.pop() {
        position[v as usize] = emitted;
        emitted += 1;
        for &w in g.out_neighbors(v) {
            in_deg[w as usize] -= 1;
            if in_deg[w as usize] == 0 {
                heap.push((key(w), w));
            }
        }
    }
    debug_assert_eq!(emitted as usize, n, "input must be a DAG");
    position
}

impl Reachability for FelineIndex {
    fn reaches(&self, from: VertexId, to: VertexId) -> bool {
        let (f, t) = (from as usize, to as usize);
        if f == t {
            return true;
        }
        if !self.dominates(f, t) {
            return false; // dominance refutes
        }
        let to_post = self.post[t];
        if self.tree_contains(f, to_post) {
            return true;
        }
        // Guided DFS with the dominance prune, over this thread's
        // reusable traversal buffers.
        crate::scratch::with_traversal_scratch(|s| {
            s.begin(self.g.num_vertices());
            s.stack.push(from);
            s.mark(from);
            while let Some(v) = s.stack.pop() {
                for &w in self.g.out_neighbors(v) {
                    let wi = w as usize;
                    if w == to {
                        return true;
                    }
                    if s.is_marked(w) || !self.dominates(wi, t) {
                        continue;
                    }
                    if self.tree_contains(wi, to_post) {
                        return true;
                    }
                    s.mark(w);
                    s.stack.push(w);
                }
            }
            false
        })
    }

    fn heap_bytes(&self) -> usize {
        self.g.heap_bytes() + (self.x.len() + self.y.len() + self.post.len() + self.tree_min.len()) * 4
    }

    fn name(&self) -> &'static str {
        "FELINE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::reaches_bfs;
    use gsr_graph::graph_from_edges;

    fn check_all_pairs(g: &DiGraph) {
        let idx = FelineIndex::build(g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    idx.reaches(u, v),
                    reaches_bfs(g, u, v),
                    "FELINE wrong for ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn basic_shapes() {
        check_all_pairs(&graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]));
        check_all_pairs(&graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]));
        check_all_pairs(&graph_from_edges(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (5, 4)]));
    }

    #[test]
    fn coordinates_respect_edges() {
        let g = graph_from_edges(7, &[(0, 1), (0, 2), (1, 3), (2, 3), (4, 5), (5, 6), (4, 2)]);
        let idx = FelineIndex::build(&g);
        for (u, v) in g.edges() {
            let (xu, yu) = idx.coordinates(u);
            let (xv, yv) = idx.coordinates(v);
            assert!(xu < xv, "x order violated on ({u},{v})");
            assert!(yu < yv, "y order violated on ({u},{v})");
        }
    }

    #[test]
    fn two_parallel_chains_are_fully_cut() {
        // Two disjoint chains: every cross pair is unreachable, and the
        // counter-ordered y coordinate must refute all of them without DFS.
        let g = graph_from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]);
        let idx = FelineIndex::build(&g);
        check_all_pairs(&g);
        assert!(
            idx.dominance_cut_rate() > 0.9,
            "counter-order should refute nearly all cross-chain pairs, got {}",
            idx.dominance_cut_rate()
        );
    }

    #[test]
    fn isolated_vertices() {
        check_all_pairs(&graph_from_edges(4, &[]));
    }
}
