//! GRAIL: scalable reachability via randomized interval labelings.
//!
//! A from-scratch implementation of GRAIL (Yildirim, Chierichetti,
//! Zaki), one of the *Label+G* schemes in the paper's related work
//! (Section 7.1): "GRAIL uses a number of spanning trees to generate
//! vertex labels, but, if this ensemble of labels is not enough to decide
//! on the reachability, GRAIL uses depth-first search".
//!
//! Each of `k` randomized post-order traversals assigns every vertex the
//! interval `L_i(v) = [r_i(v), post_i(v)]`, where `r_i(v)` is the minimum
//! `r_i` over all of `v`'s out-neighbours (not just tree children), so the
//! interval of `v` *contains* the interval of every descendant. The
//! containment test is therefore an over-approximation: a non-contained
//! interval refutes reachability; full containment across all `k`
//! labelings falls back to a pruned DFS.

use crate::Reachability;
use gsr_graph::{DiGraph, VertexId};

/// Construction parameters for [`GrailIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrailParams {
    /// Number of randomized traversals (GRAIL's `k`; the paper's authors
    /// recommend 2-5).
    pub num_traversals: usize,
    /// Seed for the traversal randomization. Traversal `i` runs its own
    /// PRNG seeded by a splitmix64 mix of `(seed, i)`, so each traversal is
    /// independent of how (or on which thread) the others execute.
    pub seed: u64,
    /// Worker threads: `1` (default) builds traversals inline, `0` uses
    /// machine parallelism, `n > 1` exactly `n` threads. Labels are
    /// identical at any thread count because each traversal is seeded
    /// independently.
    pub threads: usize,
}

impl Default for GrailParams {
    fn default() -> Self {
        GrailParams { num_traversals: 3, seed: 0xC0FFEE, threads: 1 }
    }
}

/// The GRAIL reachability index.
///
/// ```
/// use gsr_graph::graph_from_edges;
/// use gsr_reach::grail::GrailIndex;
/// use gsr_reach::Reachability;
///
/// let g = graph_from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
/// let idx = GrailIndex::build(&g);
/// assert!(idx.reaches(0, 3));
/// assert!(!idx.reaches(2, 3));
/// ```
#[derive(Debug, Clone)]
pub struct GrailIndex {
    g: DiGraph,
    /// `k` interval labelings, each `n` pairs `(r, post)`, flattened as
    /// `labels[i * n + v]`.
    labels: Vec<(u32, u32)>,
    k: usize,
}

/// A tiny splitmix64 PRNG (deterministic, dependency-free).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

impl GrailIndex {
    /// Builds the index over a DAG with default parameters.
    pub fn build(g: &DiGraph) -> Self {
        Self::build_with(g, GrailParams::default())
    }

    /// Builds the index over a DAG. Each of the `k` traversals derives its
    /// own seed from `(params.seed, i)`, making traversals independent jobs
    /// that parallelize across `params.threads` without changing the output.
    pub fn build_with(g: &DiGraph, params: GrailParams) -> Self {
        let n = g.num_vertices();
        let k = params.num_traversals.max(1);

        let rows = gsr_graph::par::map_indexed(params.threads, k, |i| {
            let mut rng = SplitMix(traversal_seed(params.seed, i as u64));
            let post = randomized_post_order(g, &mut rng);
            // r_i(v) = min(post_i(v), min over out-neighbours r_i(u)),
            // computed in increasing post order: every edge of a DAG DFS
            // points to a smaller post, so out-neighbours are final.
            let mut order: Vec<VertexId> = (0..n as VertexId).collect();
            order.sort_unstable_by_key(|&v| post[v as usize]);
            let mut row = vec![(0u32, 0u32); n];
            for &v in &order {
                let mut r = post[v as usize];
                for &u in g.out_neighbors(v) {
                    if u != v {
                        r = r.min(row[u as usize].0);
                    }
                }
                row[v as usize] = (r, post[v as usize]);
            }
            row
        });
        let mut labels = Vec::with_capacity(k * n);
        for row in rows {
            labels.extend_from_slice(&row);
        }

        GrailIndex { g: g.clone(), labels, k }
    }

    /// Whether every labeling's interval of `from` contains `to`'s post.
    #[inline]
    fn all_contain(&self, from: usize, to: usize) -> bool {
        let n = self.g.num_vertices();
        (0..self.k).all(|i| {
            let (r, post) = self.labels[i * n + from];
            let (_, to_post) = self.labels[i * n + to];
            r <= to_post && to_post <= post
        })
    }

    /// Number of labels (one interval per vertex per traversal).
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// The raw `(r, post)` label matrix, `k * n` entries flattened row by
    /// row — exposed so determinism tests can compare builds structurally.
    pub fn labels(&self) -> &[(u32, u32)] {
        &self.labels
    }

    /// Borrowed decomposition `(graph, labels, k)` for snapshot encoding.
    /// [`GrailIndex::from_parts`] inverts it.
    pub fn parts(&self) -> (&DiGraph, &[(u32, u32)], usize) {
        (&self.g, &self.labels, self.k)
    }

    /// Reassembles an index from the pieces of [`GrailIndex::parts`].
    /// Untrusted input: the label matrix must hold exactly `k * n` entries
    /// with `r <= post` each; violations are `Err(String)`, never panics.
    pub fn from_parts(g: DiGraph, labels: Vec<(u32, u32)>, k: usize) -> Result<Self, String> {
        let n = g.num_vertices();
        if k == 0 {
            return Err("grail: zero traversals".into());
        }
        let expected = k.checked_mul(n).ok_or("grail: label matrix size overflows")?;
        if labels.len() != expected {
            return Err(format!(
                "grail: expected {expected} labels ({k} traversals x {n} vertices), got {}",
                labels.len()
            ));
        }
        if let Some((r, post)) = labels.iter().find(|(r, post)| r > post) {
            return Err(format!("grail: inverted label interval [{r}, {post}]"));
        }
        Ok(GrailIndex { g, labels, k })
    }
}

/// Independent seed for traversal `i` (splitmix64 finalizer over the pair).
fn traversal_seed(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0x2545F4914F6CDD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One randomized global post-order over a DAG: DFS from the in-degree-0
/// roots (in random order), visiting each vertex's out-neighbours in a
/// random order; leftovers (cyclic inputs) are swept up afterwards.
fn randomized_post_order(g: &DiGraph, rng: &mut SplitMix) -> Vec<u32> {
    let n = g.num_vertices();
    let mut post = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut counter = 0u32;
    // Frames: (vertex, shuffled adjacency, position).
    let mut frames: Vec<(VertexId, Vec<VertexId>, usize)> = Vec::new();

    let mut roots: Vec<VertexId> =
        (0..n as VertexId).filter(|&v| g.in_degree(v) == 0).collect();
    // Fisher-Yates shuffle of the root order.
    for i in (1..roots.len()).rev() {
        let j = rng.below(i + 1);
        roots.swap(i, j);
    }
    let extras: Vec<VertexId> = (0..n as VertexId).collect();

    for v in roots.into_iter().chain(extras) {
        if visited[v as usize] {
            continue;
        }
        visited[v as usize] = true;
        frames.push((v, shuffled_neighbors(g, v, rng), 0));
        while let Some((cur, adj, pos)) = frames.last_mut() {
            if *pos < adj.len() {
                let w = adj[*pos];
                *pos += 1;
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    let adj_w = shuffled_neighbors(g, w, rng);
                    frames.push((w, adj_w, 0));
                }
            } else {
                counter += 1;
                post[*cur as usize] = counter;
                frames.pop();
            }
        }
    }
    post
}

fn shuffled_neighbors(g: &DiGraph, v: VertexId, rng: &mut SplitMix) -> Vec<VertexId> {
    let mut adj: Vec<VertexId> = g.out_neighbors(v).to_vec();
    for i in (1..adj.len()).rev() {
        let j = rng.below(i + 1);
        adj.swap(i, j);
    }
    adj
}

impl Reachability for GrailIndex {
    fn reaches(&self, from: VertexId, to: VertexId) -> bool {
        let (f, t) = (from as usize, to as usize);
        if f == t {
            return true;
        }
        if !self.all_contain(f, t) {
            return false; // some labeling refutes
        }
        // DFS fallback pruned by the same containment test, over this
        // thread's reusable traversal buffers.
        crate::scratch::with_traversal_scratch(|s| {
            s.begin(self.g.num_vertices());
            s.stack.push(from);
            s.mark(from);
            while let Some(v) = s.stack.pop() {
                for &w in self.g.out_neighbors(v) {
                    if w == to {
                        return true;
                    }
                    if !s.is_marked(w) && self.all_contain(w as usize, t) {
                        s.mark(w);
                        s.stack.push(w);
                    }
                }
            }
            false
        })
    }

    fn heap_bytes(&self) -> usize {
        self.g.heap_bytes() + self.labels.len() * 8
    }

    fn name(&self) -> &'static str {
        "GRAIL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::reaches_bfs;
    use gsr_graph::graph_from_edges;

    fn check_all_pairs(g: &DiGraph) {
        let idx = GrailIndex::build(g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    idx.reaches(u, v),
                    reaches_bfs(g, u, v),
                    "GRAIL wrong for ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn basic_shapes() {
        check_all_pairs(&graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]));
        check_all_pairs(&graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]));
        check_all_pairs(&graph_from_edges(
            9,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (4, 5), (5, 6), (4, 6), (6, 1), (7, 8)],
        ));
        check_all_pairs(&graph_from_edges(4, &[]));
    }

    #[test]
    fn intervals_contain_descendants() {
        let g = graph_from_edges(7, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (5, 6), (5, 2)]);
        let idx = GrailIndex::build(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                if reaches_bfs(&g, u, v) {
                    assert!(
                        idx.all_contain(u as usize, v as usize),
                        "descendant ({u}, {v}) must be contained in every labeling"
                    );
                }
            }
        }
    }

    #[test]
    fn single_traversal_still_exact() {
        let g = graph_from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (0, 5)]);
        let idx = GrailIndex::build_with(
            &g,
            GrailParams { num_traversals: 1, seed: 5, ..GrailParams::default() },
        );
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(idx.reaches(u, v), reaches_bfs(&g, u, v));
            }
        }
        assert_eq!(idx.num_labels(), 8);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (0, 4)]);
        let a = GrailIndex::build_with(
            &g,
            GrailParams { num_traversals: 2, seed: 9, ..GrailParams::default() },
        );
        let b = GrailIndex::build_with(
            &g,
            GrailParams { num_traversals: 2, seed: 9, ..GrailParams::default() },
        );
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn parallel_build_matches_sequential_exactly() {
        let g = graph_from_edges(
            9,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (4, 5), (5, 6), (4, 6), (6, 1), (7, 8)],
        );
        let seq = GrailIndex::build_with(
            &g,
            GrailParams { num_traversals: 4, seed: 77, threads: 1 },
        );
        for threads in [2, 4, 8] {
            let par = GrailIndex::build_with(
                &g,
                GrailParams { num_traversals: 4, seed: 77, threads },
            );
            assert_eq!(seq.labels, par.labels, "threads = {threads}");
        }
    }
}
