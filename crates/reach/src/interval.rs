//! Interval-based reachability labeling for geosocial networks (Section 3).
//!
//! Every vertex `v` of a DAG receives a set of post-order intervals
//! `L(v)`; `v` reaches `u` iff some interval of `L(v)` contains `post(u)`
//! (Lemma 3.1 of the paper). The scheme is built over a DFS spanning
//! *forest* — geosocial networks have many "root" vertices with only
//! outgoing edges, unlike the hierarchies the original scheme of Agrawal et
//! al. targeted — and compressed by absorbing subsumed intervals and merging
//! adjacent ones.
//!
//! Two equivalent constructions are provided:
//!
//! * [`Builder::BottomUp`] (default): processes vertices by increasing
//!   post-order number. On a DFS forest of a DAG every edge `(v, u)`
//!   satisfies `post(u) < post(v)`, so all of `v`'s out-neighbours are
//!   final when `v` is processed and one union per vertex suffices.
//! * [`Builder::PaperFaithful`]: the literal Algorithm 1 — a priority queue
//!   ordered by (in-degree, post-order) drives a top-down pass over the
//!   spanning forest, labels are propagated to tree ancestors, and the
//!   non-tree edges are processed in increasing source post-order.
//!
//! Both produce the same compressed labeling (tested by equivalence
//! property tests); the bottom-up form is what the benchmarks build.

use crate::Reachability;
use gsr_graph::dfs::{ForestStrategy, SpanningForest};
use gsr_graph::{Col, DiGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A closed interval `[lo, hi]` of 1-based post-order numbers.
///
/// `#[repr(C)]` is part of the snapshot contract: v3 sections store label
/// columns as raw `lo, hi` u32 pairs and remap them zero-copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(C)]
pub struct Interval {
    /// Smallest post-order number covered.
    pub lo: u32,
    /// Largest post-order number covered.
    pub hi: u32,
}

// SAFETY: `Interval` is `#[repr(C)] { lo: u32, hi: u32 }` — no padding —
// and every bit pattern is a pair of valid u32s. The structural invariant
// `lo <= hi` is not bit validity; `IntervalLabeling::from_parts` checks it
// on every untrusted load.
#[allow(unsafe_code)]
unsafe impl gsr_graph::Pod for Interval {}

impl Interval {
    /// Creates an interval; panics in debug builds when inverted.
    #[inline]
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The singleton interval `[p, p]`.
    #[inline]
    pub fn point(p: u32) -> Self {
        Interval { lo: p, hi: p }
    }

    /// Whether `p` lies inside the interval.
    #[inline]
    pub fn contains(&self, p: u32) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Number of post-order numbers covered.
    #[inline]
    pub fn len(&self) -> u32 {
        self.hi - self.lo + 1
    }

    /// Intervals are never empty; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Which construction algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Builder {
    /// One union per vertex in increasing post-order (default).
    #[default]
    BottomUp,
    /// The literal Algorithm 1 of the paper (priority queue + ancestor
    /// propagation). Slower; used for validation and for the label-count
    /// statistics of Table 6.
    PaperFaithful,
}

/// Construction options for [`IntervalLabeling`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Construction algorithm.
    pub builder: Builder,
    /// Whether to merge *adjacent* intervals (`[1,4] + [5,7] -> [1,7]`).
    /// Overlapping intervals are always coalesced so label sets stay
    /// disjoint and sorted; disabling this reproduces the "uncompressed"
    /// rows of Table 6.
    pub compress: bool,
    /// The spanning-forest visit strategy. Different forests change which
    /// edges are tree edges and hence how many labels the non-tree edges
    /// generate — the paper's Section 8 future-work question.
    pub forest: ForestStrategy,
    /// Worker threads for the bottom-up construction: `1` (default) runs
    /// the classic sequential loop, `0` uses the machine's available
    /// parallelism, `n > 1` uses exactly `n` threads. The parallel build is
    /// level-scheduled and produces labels **identical** to the sequential
    /// build at any thread count (see [`build_bottom_up_parallel`]'s notes).
    /// [`Builder::PaperFaithful`] is inherently sequential and ignores this.
    pub threads: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            builder: Builder::BottomUp,
            compress: true,
            forest: ForestStrategy::VertexOrder,
            threads: 1,
        }
    }
}

/// The interval-based labeling of a DAG.
///
/// ```
/// use gsr_graph::graph_from_edges;
/// use gsr_reach::interval::IntervalLabeling;
/// use gsr_reach::Reachability;
///
/// // A diamond: 0 -> {1, 2} -> 3.
/// let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
/// let labels = IntervalLabeling::build(&g);
/// assert!(labels.reaches(0, 3));
/// assert!(!labels.reaches(3, 0));
/// assert_eq!(labels.num_descendants(0), 4); // reflexive
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalLabeling {
    /// `post[v]`, 1-based.
    post: Col<u32>,
    /// `post_to_vertex[p - 1]` inverts `post`.
    post_to_vertex: Col<VertexId>,
    /// CSR offsets into `labels` (`labels[offsets[v]..offsets[v+1]]`).
    offsets: Col<u32>,
    /// All labels, sorted and disjoint per vertex.
    labels: Col<Interval>,
}

impl IntervalLabeling {
    /// Builds the labeling with default options (bottom-up, compressed).
    /// `g` must be a DAG.
    pub fn build(g: &DiGraph) -> Self {
        Self::build_with(g, BuildOptions::default())
    }

    /// Builds the labeling with explicit options. `g` must be a DAG;
    /// cyclic inputs produce an unspecified (but memory-safe) labeling.
    pub fn build_with(g: &DiGraph, options: BuildOptions) -> Self {
        let forest = SpanningForest::of_with(g, options.forest);
        let threads = gsr_graph::par::effective_threads(options.threads);
        match options.builder {
            Builder::BottomUp if threads > 1 => {
                build_bottom_up_parallel(g, &forest, options.compress, threads)
            }
            Builder::BottomUp => build_bottom_up(g, &forest, options.compress),
            Builder::PaperFaithful => build_paper(g, &forest, options.compress),
        }
    }

    /// Number of vertices labeled.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.post.len()
    }

    /// The post-order number of `v` (1-based).
    #[inline]
    pub fn post(&self, v: VertexId) -> u32 {
        self.post[v as usize]
    }

    /// The vertex with post-order number `p`.
    #[inline]
    pub fn vertex_of_post(&self, p: u32) -> VertexId {
        self.post_to_vertex[(p - 1) as usize]
    }

    /// The label set `L(v)`: sorted, pairwise-disjoint intervals.
    #[inline]
    pub fn intervals(&self, v: VertexId) -> &[Interval] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.labels[lo..hi]
    }

    /// Total number of labels over all vertices — the statistic of Table 6.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Whether some label of `v` contains post-order number `p`
    /// (galloping search over the disjoint sorted label set).
    #[inline]
    pub fn covers_post(&self, v: VertexId, p: u32) -> bool {
        gallop_covers(self.intervals(v), p)
    }

    /// [`IntervalLabeling::covers_post`] via plain binary search. Kept as
    /// the reference implementation the galloping search is property-tested
    /// against.
    #[inline]
    pub fn covers_post_binary(&self, v: VertexId, p: u32) -> bool {
        binary_covers(self.intervals(v), p)
    }

    /// Iterator over the descendants of `v` (including `v` itself), i.e.
    /// the set `D(v)` of Section 4.1, produced by expanding each label
    /// interval through the post-order permutation.
    pub fn descendants(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.intervals(v)
            .iter()
            .flat_map(move |iv| (iv.lo..=iv.hi).map(move |p| self.vertex_of_post(p)))
    }

    /// Number of descendants of `v` (including `v`), in `O(|L(v)|)`.
    pub fn num_descendants(&self, v: VertexId) -> usize {
        self.intervals(v).iter().map(|iv| iv.len() as usize).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.post.len() * 4
            + self.post_to_vertex.len() * 4
            + self.offsets.len() * 4
            + self.labels.len() * std::mem::size_of::<Interval>()
    }

    /// Borrowed decomposition `(post, post_to_vertex, offsets, labels)` for
    /// snapshot encoding. [`IntervalLabeling::from_parts`] inverts it.
    pub fn parts(&self) -> (&[u32], &[VertexId], &[u32], &[Interval]) {
        (&self.post, &self.post_to_vertex, &self.offsets, &self.labels)
    }

    /// Reassembles a labeling from the vectors of [`IntervalLabeling::parts`].
    ///
    /// The input is untrusted (snapshot loaders feed it bytes from disk), so
    /// every structural invariant the query path relies on is re-validated:
    /// `post`/`post_to_vertex` must be mutually inverse 1-based permutations,
    /// `offsets` a well-formed CSR over `labels`, and every interval ordered
    /// with endpoints inside `1..=n`. Violations are reported as
    /// `Err(String)` — never panics.
    pub fn from_parts(
        post: impl Into<Col<u32>>,
        post_to_vertex: impl Into<Col<VertexId>>,
        offsets: impl Into<Col<u32>>,
        labels: impl Into<Col<Interval>>,
    ) -> Result<Self, String> {
        let (post, post_to_vertex) = (post.into(), post_to_vertex.into());
        let (offsets, labels) = (offsets.into(), labels.into());
        let n = post.len();
        if post_to_vertex.len() != n {
            return Err(format!(
                "interval labeling: {n} posts but {} inverse entries",
                post_to_vertex.len()
            ));
        }
        for (v, &p) in post.iter().enumerate() {
            if p == 0 || p as usize > n {
                return Err(format!("interval labeling: post({v}) = {p} outside 1..={n}"));
            }
            let back = post_to_vertex[(p - 1) as usize];
            if back as usize != v {
                return Err(format!(
                    "interval labeling: post_to_vertex[{}] = {back}, expected {v}",
                    p - 1
                ));
            }
        }
        if offsets.len() != n + 1 {
            return Err(format!(
                "interval labeling: {} offsets for {n} vertices, expected {}",
                offsets.len(),
                n + 1
            ));
        }
        if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("interval labeling: label offsets not monotone from 0".into());
        }
        if offsets.last().copied().unwrap_or(0) as usize != labels.len() {
            return Err(format!(
                "interval labeling: offsets claim {} labels but {} present",
                offsets.last().copied().unwrap_or(0),
                labels.len()
            ));
        }
        for (v, w) in offsets.windows(2).enumerate() {
            let set = &labels[w[0] as usize..w[1] as usize];
            for iv in set {
                if iv.lo == 0 || iv.lo > iv.hi || iv.hi as usize > n {
                    return Err(format!(
                        "interval labeling: vertex {v} has malformed interval [{}, {}]",
                        iv.lo, iv.hi
                    ));
                }
            }
            if set.windows(2).any(|p| p[0].hi >= p[1].lo) {
                return Err(format!("interval labeling: vertex {v} labels not sorted+disjoint"));
            }
        }
        Ok(IntervalLabeling { post, post_to_vertex, offsets, labels })
    }
}

impl Reachability for IntervalLabeling {
    fn reaches(&self, from: VertexId, to: VertexId) -> bool {
        self.covers_post(from, self.post(to))
    }

    fn heap_bytes(&self) -> usize {
        IntervalLabeling::heap_bytes(self)
    }

    fn name(&self) -> &'static str {
        "INT"
    }
}

/// Whether some interval of the sorted, pairwise-disjoint set `labels`
/// contains `p`, by galloping (exponential) search: double the probe stride
/// until an interval with `lo > p` is overshot, then binary-search the last
/// bracket. Labels skew heavily toward small sets where the answer sits in
/// the first few entries (Table 6 of the paper: the vast majority of
/// vertices carry one or two intervals after compression), so galloping
/// touches fewer cache lines than a full-width binary search while keeping
/// the `O(log |L|)` worst case.
#[inline]
pub fn gallop_covers(labels: &[Interval], p: u32) -> bool {
    let n = labels.len();
    if n == 0 || labels[0].lo > p {
        return false;
    }
    // Find an exponential bracket: labels[bound >> 1].lo <= p and either
    // bound >= n or labels[bound].lo > p.
    let mut bound = 1usize;
    while bound < n && labels[bound].lo <= p {
        bound <<= 1;
    }
    // Binary search in (lo, hi) for the last interval with .lo <= p;
    // invariant: labels[lo].lo <= p, and labels[hi] (if any) has .lo > p.
    let mut lo = bound >> 1;
    let mut hi = bound.min(n);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if labels[mid].lo <= p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    labels[lo].contains(p)
}

/// Reference implementation of [`gallop_covers`]: plain binary search for
/// the last interval with `lo <= p`.
#[inline]
pub fn binary_covers(labels: &[Interval], p: u32) -> bool {
    match labels.binary_search_by(|iv| iv.lo.cmp(&p)) {
        Ok(_) => true,
        Err(0) => false,
        Err(i) => labels[i - 1].contains(p),
    }
}

/// Coalesces a sorted interval list in place: overlapping intervals always
/// merge; adjacent intervals (`hi + 1 == lo`) merge only when
/// `merge_adjacent` is set. The input must be sorted by `lo`.
pub fn coalesce(intervals: &mut Vec<Interval>, merge_adjacent: bool) {
    debug_assert!(intervals.windows(2).all(|w| w[0].lo <= w[1].lo));
    let mut out = 0usize;
    for i in 0..intervals.len() {
        if out == 0 {
            intervals[0] = intervals[i];
            out = 1;
            continue;
        }
        let cur = intervals[out - 1];
        let next = intervals[i];
        let glue = if merge_adjacent { cur.hi.saturating_add(1) } else { cur.hi };
        if next.lo <= glue {
            intervals[out - 1].hi = cur.hi.max(next.hi);
        } else {
            intervals[out] = next;
            out += 1;
        }
    }
    intervals.truncate(out);
}

/// Merges sorted, disjoint `src` into sorted, disjoint `dst`.
fn union_into(dst: &mut Vec<Interval>, src: &[Interval], merge_adjacent: bool, scratch: &mut Vec<Interval>) {
    if src.is_empty() {
        return;
    }
    scratch.clear();
    scratch.reserve(dst.len() + src.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < dst.len() && j < src.len() {
        if dst[i].lo <= src[j].lo {
            scratch.push(dst[i]);
            i += 1;
        } else {
            scratch.push(src[j]);
            j += 1;
        }
    }
    scratch.extend_from_slice(&dst[i..]);
    scratch.extend_from_slice(&src[j..]);
    coalesce(scratch, merge_adjacent);
    std::mem::swap(dst, scratch);
}

/// Bottom-up construction: one union per vertex in increasing post-order.
///
/// Every vertex starts from its *tree-cover interval* `[index(v), post(v)]`
/// (the contiguous post-order range of its DFS subtree — the label of the
/// original scheme of Agrawal et al.), so the label count before
/// adjacency-merging stays proportional to the number of non-tree
/// reachability relations, matching how the paper's Table 6 counts
/// uncompressed labels.
fn build_bottom_up(g: &DiGraph, forest: &SpanningForest, compress: bool) -> IntervalLabeling {
    let n = g.num_vertices();
    let mut sets: Vec<Vec<Interval>> = vec![Vec::new(); n];
    let mut scratch: Vec<Interval> = Vec::new();
    let subtree_size = subtree_sizes(forest);

    for p in 1..=n as u32 {
        let v = forest.post_to_vertex[(p - 1) as usize];
        let index_v = p - subtree_size[v as usize] + 1;
        let mut own = vec![Interval::new(index_v, p)];
        for &u in g.out_neighbors(v) {
            if u == v {
                continue; // self-loops carry no extra reachability
            }
            // All out-neighbours have smaller posts on a DAG DFS forest,
            // so sets[u] is final here. Tree children are fully covered by
            // the tree interval; only their non-tree labels survive.
            let set = std::mem::take(&mut sets[u as usize]);
            union_into(&mut own, &set, compress, &mut scratch);
            sets[u as usize] = set;
        }
        sets[v as usize] = own;
    }

    finish(forest, sets)
}

/// `index(v)`: the smallest post-order number in `v`'s DFS subtree.
/// Subtrees occupy contiguous post ranges, so
/// `index(v) = post(v) - size(v) + 1`.
fn subtree_sizes(forest: &SpanningForest) -> Vec<u32> {
    let n = forest.post.len();
    let mut subtree_size = vec![1u32; n];
    for p in 1..=n as u32 {
        let v = forest.post_to_vertex[(p - 1) as usize];
        let parent = forest.parent[v as usize];
        if parent != gsr_graph::dfs::NO_PARENT {
            subtree_size[parent as usize] += subtree_size[v as usize];
        }
    }
    subtree_size
}

/// Level-scheduled parallel form of [`build_bottom_up`].
///
/// On a DAG DFS forest every out-neighbour of `v` has a smaller post-order
/// number, so `L(v)` is a **pure function** of the final label sets of its
/// out-neighbours — the sequential loop exploits this by processing posts
/// in increasing order. Here the same dependency structure is made
/// explicit: `depth(v) = 1 + max(depth(out-neighbours))` partitions the
/// vertices into levels whose members are mutually independent, each level
/// is computed by [`gsr_graph::par::map_indexed_with`] with results placed
/// by index, and levels run in increasing depth so all inputs are final.
/// Because each per-vertex computation is bit-identical to the sequential
/// one and no result depends on worker scheduling, the output labeling is
/// **identical** to the sequential build at any thread count.
fn build_bottom_up_parallel(
    g: &DiGraph,
    forest: &SpanningForest,
    compress: bool,
    threads: usize,
) -> IntervalLabeling {
    let n = g.num_vertices();
    let subtree_size = subtree_sizes(forest);

    // depth[v] over non-self out-edges; computed in increasing post order,
    // which visits every out-neighbour before its sources.
    let mut depth = vec![0u32; n];
    let mut max_depth = 0u32;
    for p in 1..=n as u32 {
        let v = forest.post_to_vertex[(p - 1) as usize];
        let mut d = 0u32;
        for &u in g.out_neighbors(v) {
            if u != v {
                d = d.max(depth[u as usize] + 1);
            }
        }
        depth[v as usize] = d;
        max_depth = max_depth.max(d);
    }
    let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); max_depth as usize + 1];
    for p in 1..=n as u32 {
        let v = forest.post_to_vertex[(p - 1) as usize];
        levels[depth[v as usize] as usize].push(v);
    }

    let mut sets: Vec<Vec<Interval>> = vec![Vec::new(); n];
    for level in &levels {
        let results = gsr_graph::par::map_indexed_with(
            threads,
            level.len(),
            Vec::new,
            |scratch: &mut Vec<Interval>, i| {
                let v = level[i];
                let p = forest.post[v as usize];
                let index_v = p - subtree_size[v as usize] + 1;
                let mut own = vec![Interval::new(index_v, p)];
                for &u in g.out_neighbors(v) {
                    if u != v {
                        // Strictly smaller depth => finalized in an earlier
                        // level sweep.
                        union_into(&mut own, &sets[u as usize], compress, scratch);
                    }
                }
                own
            },
        );
        for (i, set) in results.into_iter().enumerate() {
            sets[level[i] as usize] = set;
        }
    }

    finish(forest, sets)
}

/// The literal Algorithm 1 of the paper.
fn build_paper(g: &DiGraph, forest: &SpanningForest, compress: bool) -> IntervalLabeling {
    let n = g.num_vertices();
    let mut sets: Vec<Vec<Interval>> =
        (0..n).map(|v| vec![Interval::point(forest.post[v])]).collect();
    let mut scratch: Vec<Interval> = Vec::new();

    // Lines 7-9: initialize the priority queue with the forest roots.
    // Priority: fewer incoming edges first, ties by post-order number.
    let mut queue: BinaryHeap<Reverse<(u32, u32, VertexId)>> = BinaryHeap::new();
    let mut queued = vec![false; n];
    for &r in &forest.roots {
        queue.push(Reverse((g.in_degree(r) as u32, forest.post[r as usize], r)));
        queued[r as usize] = true;
    }

    // Lines 10-18: traverse the spanning forest, propagating labels upward.
    while let Some(Reverse((_, _, v))) = queue.pop() {
        let children: Vec<VertexId> = g
            .out_neighbors(v)
            .iter()
            .copied()
            .filter(|&u| forest.is_tree_edge(v, u))
            .collect();
        for u in children {
            // L(v) ∪= L(u)
            let child_set = std::mem::take(&mut sets[u as usize]);
            {
                let mut own = std::mem::take(&mut sets[v as usize]);
                union_into(&mut own, &child_set, compress, &mut scratch);
                sets[v as usize] = own;
            }
            sets[u as usize] = child_set;
            // L(w) ∪= L(v) for each tree ancestor w of v.
            let v_set = sets[v as usize].clone();
            for w in forest.ancestors(v) {
                let mut anc = std::mem::take(&mut sets[w as usize]);
                union_into(&mut anc, &v_set, compress, &mut scratch);
                sets[w as usize] = anc;
            }
            if !queued[u as usize] {
                queued[u as usize] = true;
                queue.push(Reverse((g.in_degree(u) as u32, forest.post[u as usize], u)));
            }
        }
    }

    // Lines 19-24: non-spanning edges by increasing source post-order.
    for (v, u) in forest.non_tree_edges_by_source_post(g) {
        if u == v {
            continue;
        }
        let target_set = std::mem::take(&mut sets[u as usize]);
        {
            let mut own = std::mem::take(&mut sets[v as usize]);
            union_into(&mut own, &target_set, compress, &mut scratch);
            sets[v as usize] = own;
        }
        sets[u as usize] = target_set;
        let v_set = sets[v as usize].clone();
        for w in forest.ancestors(v) {
            let mut anc = std::mem::take(&mut sets[w as usize]);
            union_into(&mut anc, &v_set, compress, &mut scratch);
            sets[w as usize] = anc;
        }
    }

    finish(forest, sets)
}

/// Flattens per-vertex sets into the CSR labeling.
fn finish(forest: &SpanningForest, sets: Vec<Vec<Interval>>) -> IntervalLabeling {
    let n = sets.len();
    let total: usize = sets.iter().map(Vec::len).sum();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut labels = Vec::with_capacity(total);
    offsets.push(0u32);
    for set in &sets {
        labels.extend_from_slice(set);
        offsets.push(labels.len() as u32);
    }
    IntervalLabeling {
        post: forest.post.clone().into(),
        post_to_vertex: forest.post_to_vertex.clone().into(),
        offsets: offsets.into(),
        labels: labels.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsr_graph::graph_from_edges;

    /// The condensed running example of the paper (Figure 1 / Figure 3 /
    /// Table 1): vertices a..l mapped to ids 0..11.
    ///
    /// ```text
    /// a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10 l=11
    /// ```
    fn paper_graph() -> DiGraph {
        const A: u32 = 0;
        const B: u32 = 1;
        const C: u32 = 2;
        const D: u32 = 3;
        const E: u32 = 4;
        const F: u32 = 5;
        const G: u32 = 6;
        const H: u32 = 7;
        const I: u32 = 8;
        const J: u32 = 9;
        const K: u32 = 10;
        const L: u32 = 11;
        graph_from_edges(
            12,
            &[
                // Spanning tree of Figure 3, rooted at a:
                (A, B), (A, D), (A, J), (B, E), (B, L), (E, F), (J, G), (J, H),
                // Spanning tree rooted at c:
                (C, I), (C, K),
                // Non-spanning edges:
                (L, H), (B, D), (G, I), (I, F), (C, D),
            ],
        )
    }

    fn naive_reaches(g: &DiGraph, s: VertexId, t: VertexId) -> bool {
        let mut visited = vec![false; g.num_vertices()];
        let mut stack = vec![s];
        visited[s as usize] = true;
        while let Some(v) = stack.pop() {
            if v == t {
                return true;
            }
            for &w in g.out_neighbors(v) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        false
    }

    fn assert_matches_bfs(g: &DiGraph, l: &IntervalLabeling) {
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    l.reaches(u, v),
                    naive_reaches(g, u, v),
                    "labeling wrong for ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn coalesce_merges_overlaps_and_adjacency() {
        let mut v = vec![
            Interval::new(1, 4),
            Interval::new(2, 3),
            Interval::new(4, 5),
            Interval::new(7, 7),
            Interval::new(8, 9),
        ];
        let mut adjacent = v.clone();
        coalesce(&mut v, false);
        assert_eq!(v, vec![Interval::new(1, 5), Interval::new(7, 7), Interval::new(8, 9)]);
        coalesce(&mut adjacent, true);
        assert_eq!(adjacent, vec![Interval::new(1, 5), Interval::new(7, 9)]);
    }

    #[test]
    fn paper_example_bottom_up_is_correct() {
        let g = paper_graph();
        let l = IntervalLabeling::build(&g);
        assert_matches_bfs(&g, &l);
    }

    #[test]
    fn paper_example_paper_builder_is_correct() {
        let g = paper_graph();
        let l = IntervalLabeling::build_with(
            &g,
            BuildOptions { builder: Builder::PaperFaithful, compress: true, ..BuildOptions::default() },
        );
        assert_matches_bfs(&g, &l);
    }

    #[test]
    fn paper_example_reproduces_table_1_shape() {
        // With the same spanning forest as Figure 3, the compressed label of
        // the root a must be the single interval [1, 10] (Table 1, final
        // column) and c must have three labels.
        let g = paper_graph();
        let l = IntervalLabeling::build(&g);
        let a = 0u32;
        let c = 2u32;
        assert_eq!(l.num_descendants(a), 10, "a reaches 10 vertices incl. itself");
        assert_eq!(l.intervals(a).len(), 1, "L(a) compresses to one interval");
        assert_eq!(
            l.intervals(a)[0].len(),
            10,
            "L(a)'s single interval covers ten posts, as in Table 1"
        );
        assert_eq!(l.intervals(c).len(), 3, "L(c) = {{[1,1],[5,5],[10,12]}} shape");
        assert_eq!(l.num_descendants(c), 5, "c reaches f, d, i, k and itself");
    }

    #[test]
    fn parallel_build_matches_sequential_exactly() {
        let g = paper_graph();
        for compress in [true, false] {
            let seq = IntervalLabeling::build_with(
                &g,
                BuildOptions { compress, ..BuildOptions::default() },
            );
            for threads in [2, 3, 4, 8] {
                let par = IntervalLabeling::build_with(
                    &g,
                    BuildOptions { compress, threads, ..BuildOptions::default() },
                );
                assert_eq!(seq.offsets, par.offsets, "threads = {threads}");
                assert_eq!(seq.labels, par.labels, "threads = {threads}");
                assert_eq!(seq.post, par.post, "threads = {threads}");
            }
        }
    }

    #[test]
    fn builders_agree_on_compressed_labels() {
        let g = paper_graph();
        let bottom = IntervalLabeling::build(&g);
        let paper = IntervalLabeling::build_with(
            &g,
            BuildOptions { builder: Builder::PaperFaithful, compress: true, ..BuildOptions::default() },
        );
        for v in g.vertices() {
            assert_eq!(bottom.intervals(v), paper.intervals(v), "labels differ at {v}");
        }
    }

    #[test]
    fn uncompressed_has_at_least_as_many_labels() {
        let g = paper_graph();
        let compressed = IntervalLabeling::build(&g);
        let raw = IntervalLabeling::build_with(
            &g,
            BuildOptions { builder: Builder::BottomUp, compress: false, ..BuildOptions::default() },
        );
        assert!(raw.num_labels() >= compressed.num_labels());
        // Reachability answers are identical either way.
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(compressed.reaches(u, v), raw.reaches(u, v));
            }
        }
    }

    #[test]
    fn descendants_set_matches_lemma() {
        let g = paper_graph();
        let l = IntervalLabeling::build(&g);
        for v in g.vertices() {
            let mut d: Vec<VertexId> = l.descendants(v).collect();
            d.sort_unstable();
            let mut expected: Vec<VertexId> =
                g.vertices().filter(|&u| naive_reaches(&g, v, u)).collect();
            expected.sort_unstable();
            assert_eq!(d, expected, "D({v}) mismatch");
            assert_eq!(l.num_descendants(v), expected.len());
        }
    }

    #[test]
    fn covers_post_binary_search_edges() {
        let g = graph_from_edges(3, &[(0, 1), (0, 2)]);
        let l = IntervalLabeling::build(&g);
        // Vertex 0 reaches everything; posts are 1..=3.
        assert!(l.covers_post(0, 1));
        assert!(l.covers_post(0, 3));
        // A leaf covers only its own post.
        let leaf = 1u32;
        let p = l.post(leaf);
        assert!(l.covers_post(leaf, p));
        assert!(!l.covers_post(leaf, l.post(0)));
    }

    #[test]
    fn gallop_agrees_with_binary_on_edges() {
        // Hand-picked adversarial shapes; the exhaustive comparison lives in
        // the proptest suite (tests/props_memory.rs).
        let sets: &[&[Interval]] = &[
            &[],
            &[Interval::new(5, 5)],
            &[Interval::new(1, 3), Interval::new(5, 5), Interval::new(9, 20)],
            &[
                Interval::new(2, 2),
                Interval::new(4, 4),
                Interval::new(6, 6),
                Interval::new(8, 8),
                Interval::new(10, 10),
            ],
            &[Interval::new(1, u32::MAX)],
            &[Interval::new(u32::MAX, u32::MAX)],
        ];
        for labels in sets {
            for p in 0..=25u32 {
                assert_eq!(gallop_covers(labels, p), binary_covers(labels, p), "{labels:?} @ {p}");
            }
            for p in [u32::MAX - 1, u32::MAX] {
                assert_eq!(gallop_covers(labels, p), binary_covers(labels, p), "{labels:?} @ {p}");
            }
        }
    }

    #[test]
    fn parts_round_trip_and_validation() {
        let g = paper_graph();
        let l = IntervalLabeling::build(&g);
        let (post, inv, offsets, labels) = l.parts();
        let back = IntervalLabeling::from_parts(
            post.to_vec(),
            inv.to_vec(),
            offsets.to_vec(),
            labels.to_vec(),
        )
        .expect("valid parts must reassemble");
        assert_eq!(l, back);

        // Broken permutation.
        let mut bad_post = post.to_vec();
        bad_post[0] = bad_post[1];
        assert!(IntervalLabeling::from_parts(
            bad_post,
            inv.to_vec(),
            offsets.to_vec(),
            labels.to_vec()
        )
        .is_err());
        // Out-of-range interval endpoint.
        let mut bad_labels = labels.to_vec();
        bad_labels[0] = Interval { lo: 1, hi: u32::MAX };
        assert!(IntervalLabeling::from_parts(
            post.to_vec(),
            inv.to_vec(),
            offsets.to_vec(),
            bad_labels
        )
        .is_err());
        // Truncated offsets.
        assert!(IntervalLabeling::from_parts(
            post.to_vec(),
            inv.to_vec(),
            offsets[..offsets.len() - 1].to_vec(),
            labels.to_vec()
        )
        .is_err());
    }

    #[test]
    fn empty_and_single_vertex() {
        let g0 = graph_from_edges(0, &[]);
        let l0 = IntervalLabeling::build(&g0);
        assert_eq!(l0.num_labels(), 0);

        let g1 = graph_from_edges(1, &[]);
        let l1 = IntervalLabeling::build(&g1);
        assert!(l1.reaches(0, 0));
        assert_eq!(l1.num_descendants(0), 1);
    }

    #[test]
    fn disconnected_components_do_not_reach_each_other() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let l = IntervalLabeling::build(&g);
        assert!(l.reaches(0, 1));
        assert!(!l.reaches(0, 2));
        assert!(!l.reaches(0, 3));
        assert!(!l.reaches(2, 1));
    }

    #[test]
    fn reversed_labeling_answers_ancestor_queries() {
        // Building on the reversed graph turns reaches(u, v) into
        // "v reaches u in the original": the 3DReach-REV construction.
        let g = paper_graph();
        let rev = IntervalLabeling::build(&g.reversed());
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(rev.reaches(u, v), naive_reaches(&g, v, u));
            }
        }
    }
}
