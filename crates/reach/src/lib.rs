//! Graph-reachability substrate for the geosocial reachability library.
//!
//! This crate implements the reachability indexes the paper builds on:
//!
//! * [`interval::IntervalLabeling`] — the interval-based labeling of
//!   Agrawal, Borgida and Jagadish adapted to geosocial networks
//!   (Section 3 of the paper, Algorithm 1), with a spanning *forest*, a
//!   priority-queue construction and label compression. Both the paper's
//!   top-down construction and an equivalent bottom-up construction are
//!   provided. This scheme powers SocReach, 3DReach and SpaReach-INT.
//! * [`bfl::BflIndex`] — a from-scratch Bloom-Filter Labeling index
//!   (Su et al.), the best-performing `GReach` scheme in the paper's
//!   comparison and the back-end of SpaReach-BFL.
//! * [`bfs`] — plain online BFS/DFS reachability and small-graph transitive
//!   closures, used as ground truth by the test suites.
//!
//! All indexes assume a DAG input (use `gsr_graph::scc::Condensation` for
//! arbitrary graphs, per Section 5 of the paper).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bfl;
pub mod bfs;
pub mod compact;
pub mod dynamic;
pub mod feline;
pub mod grail;
pub mod interval;
pub mod pll;
pub mod scratch;

use gsr_graph::VertexId;

/// A graph-reachability oracle: answers `GReach(from, to)` queries
/// (Definition 2.1 of the paper). Reachability is reflexive: every vertex
/// reaches itself.
///
/// Indexes are immutable after construction; the `Send + Sync` bound lets
/// one index serve concurrent queries.
pub trait Reachability: Send + Sync {
    /// Whether the graph contains a (possibly empty) path `from -> to`.
    fn reaches(&self, from: VertexId, to: VertexId) -> bool;

    /// Approximate heap footprint of the index in bytes (Table 4).
    fn heap_bytes(&self) -> usize;

    /// Short human-readable name, e.g. `"INT"` or `"BFL"`.
    fn name(&self) -> &'static str;
}
